"""Test package."""
