"""Tests for numerical helpers, including hypothesis property tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.numerics import (
    bisect_increasing,
    clamp,
    is_monotone_nondecreasing,
    linspace_utilisation,
    logspace_utilisation,
    relative_error_pct,
    signed_relative_error_pct,
    trapezoid,
)


class TestTrapezoid:
    def test_constant_function(self):
        x = np.linspace(0, 1, 11)
        assert trapezoid(np.full(11, 3.0), x) == pytest.approx(3.0)

    def test_linear_function_exact(self):
        x = np.linspace(0, 2, 21)
        assert trapezoid(2 * x, x) == pytest.approx(4.0)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            trapezoid([1, 2, 3], [0, 1])

    def test_rejects_unsorted_grid(self):
        with pytest.raises(ValueError):
            trapezoid([1, 2, 3], [0, 2, 1])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            trapezoid([1.0], [0.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            trapezoid(np.ones((2, 2)), np.ones((2, 2)))

    @given(st.lists(st.floats(0.1, 100), min_size=2, max_size=30))
    def test_positive_integrand_positive_integral(self, ys):
        x = np.linspace(0.0, 1.0, len(ys))
        assert trapezoid(ys, x) > 0


class TestRelativeError:
    def test_exact_match_is_zero(self):
        assert relative_error_pct(5.0, 5.0) == 0.0

    def test_symmetric_in_magnitude(self):
        assert relative_error_pct(11.0, 10.0) == pytest.approx(10.0)
        assert relative_error_pct(9.0, 10.0) == pytest.approx(10.0)

    def test_signed_keeps_direction(self):
        assert signed_relative_error_pct(11.0, 10.0) == pytest.approx(10.0)
        assert signed_relative_error_pct(9.0, 10.0) == pytest.approx(-10.0)

    def test_zero_measured_rejected(self):
        with pytest.raises(ZeroDivisionError):
            relative_error_pct(1.0, 0.0)
        with pytest.raises(ZeroDivisionError):
            signed_relative_error_pct(1.0, 0.0)

    @given(
        st.floats(-1e6, 1e6),
        st.floats(0.01, 1e6),
    )
    def test_always_non_negative(self, model, measured):
        assert relative_error_pct(model, measured) >= 0.0


class TestBisect:
    def test_linear_inverse(self):
        root = bisect_increasing(lambda x: 2 * x, 1.0, 0.0, 10.0)
        assert root == pytest.approx(0.5, abs=1e-9)

    def test_returns_lo_when_already_above(self):
        assert bisect_increasing(lambda x: x + 5, 1.0, 0.0, 10.0) == 0.0

    def test_raises_when_bracket_too_small(self):
        with pytest.raises(ValueError):
            bisect_increasing(lambda x: x, 100.0, 0.0, 1.0)

    def test_rejects_empty_bracket(self):
        with pytest.raises(ValueError):
            bisect_increasing(lambda x: x, 0.5, 1.0, 0.0)

    def test_step_function(self):
        root = bisect_increasing(lambda x: 0.0 if x < 3 else 1.0, 0.5, 0.0, 10.0)
        assert root == pytest.approx(3.0, abs=1e-6)

    @given(st.floats(0.05, 0.95))
    @settings(max_examples=30)
    def test_cdf_like_inversion(self, target):
        # Invert the exponential CDF and compare with the closed form.
        cdf = lambda x: 1.0 - math.exp(-x)
        root = bisect_increasing(cdf, target, 0.0, 100.0)
        assert root == pytest.approx(-math.log(1 - target), rel=1e-6)


class TestClamp:
    def test_inside_unchanged(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamps_both_ends(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)


class TestUtilisationGrids:
    def test_linspace_default_matches_paper_plots(self):
        grid = linspace_utilisation()
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(1.0)
        assert len(grid) == 10

    def test_logspace_spans_range(self):
        grid = logspace_utilisation(0.01, 1.0, 25)
        assert grid[0] == pytest.approx(0.01)
        assert grid[-1] == pytest.approx(1.0)
        assert np.all(np.diff(grid) > 0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            linspace_utilisation(0.0, 1.0)
        with pytest.raises(ValueError):
            logspace_utilisation(0.5, 1.5)


class TestMonotone:
    def test_detects_monotone(self):
        assert is_monotone_nondecreasing([1, 1, 2, 3])

    def test_detects_decrease(self):
        assert not is_monotone_nondecreasing([1, 2, 1.5])

    def test_tolerance_absorbs_noise(self):
        assert is_monotone_nondecreasing([1.0, 1.0 - 1e-15, 2.0])

    def test_short_sequences_trivially_monotone(self):
        assert is_monotone_nondecreasing([])
        assert is_monotone_nondecreasing([5.0])
