"""Tests for deterministic RNG stream management."""

import numpy as np
import pytest

from repro.util.rng import DEFAULT_SEED, RngRegistry, stable_hash32


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash32("powermeter/A9") == stable_hash32("powermeter/A9")

    def test_different_names_differ(self):
        assert stable_hash32("a") != stable_hash32("b")

    def test_fits_32_bits(self):
        for name in ("", "x", "a/very/long/stream/name" * 10):
            assert 0 <= stable_hash32(name) < 2**32

    def test_empty_name_supported(self):
        assert isinstance(stable_hash32(""), int)


class TestRngRegistry:
    def test_same_name_same_object(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_are_independent_of_request_order(self):
        reg1 = RngRegistry(42)
        reg2 = RngRegistry(42)
        _ = reg1.stream("first")  # consume nothing, just create
        a1 = reg1.stream("target").random(5)
        a2 = reg2.stream("target").random(5)  # created without "first"
        np.testing.assert_array_equal(a1, a2)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("s").random(4)
        b = RngRegistry(2).stream("s").random(4)
        assert not np.allclose(a, b)

    def test_different_names_differ(self):
        reg = RngRegistry(7)
        a = reg.stream("a").random(4)
        b = reg.stream("b").random(4)
        assert not np.allclose(a, b)

    def test_seed_property(self):
        assert RngRegistry(17).seed == 17

    def test_default_seed_constant(self):
        assert RngRegistry().seed == DEFAULT_SEED

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="abc")  # type: ignore[arg-type]

    def test_reset_restarts_streams(self):
        reg = RngRegistry(5)
        first = reg.stream("x").random(3)
        reg.reset()
        again = reg.stream("x").random(3)
        np.testing.assert_array_equal(first, again)

    def test_fork_is_deterministic(self):
        a = RngRegistry(3).fork("child").stream("s").random(3)
        b = RngRegistry(3).fork("child").stream("s").random(3)
        np.testing.assert_array_equal(a, b)

    def test_fork_differs_from_parent(self):
        reg = RngRegistry(3)
        parent = reg.stream("s").random(3)
        child = reg.fork("child").stream("s").random(3)
        assert not np.allclose(parent, child)
