"""Tests for statistics helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import SummaryStats, mape, p95, percentile, summarize


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_p95_matches_numpy(self):
        data = np.arange(100.0)
        assert p95(data) == pytest.approx(np.percentile(data, 95))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_p95_within_sample_range(self, data):
        value = p95(data)
        assert min(data) <= value <= max(data)


class TestSummarize:
    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_single_sample_std_zero(self):
        assert summarize([7.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ordering_invariants(self):
        s = summarize(np.random.default_rng(0).normal(size=500))
        assert s.minimum <= s.p50 <= s.p95 <= s.p99 <= s.maximum


class TestMape:
    def test_exact_is_zero(self):
        assert mape([1, 2], [1, 2]) == 0.0

    def test_known_value(self):
        assert mape([11, 22], [10, 20]) == pytest.approx(10.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mape([1], [1, 2])

    def test_zero_measured_rejected(self):
        with pytest.raises(ZeroDivisionError):
            mape([1.0], [0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mape([], [])
