"""Tests for unit constants and conversions."""

import pytest

from repro.util.units import (
    GB,
    GBPS,
    GHZ,
    KB,
    MB,
    MBPS,
    MS,
    US,
    to_ghz,
    to_mbps,
    to_ms,
    to_us,
    watts_to_milliwatts,
)


def test_frequency_constants():
    assert GHZ == 1e9
    assert to_ghz(1.4 * GHZ) == pytest.approx(1.4)


def test_byte_constants_binary():
    assert KB == 1024
    assert MB == 1024**2
    assert GB == 1024**3


def test_link_rate_constants_decimal():
    assert MBPS == 1e6
    assert GBPS == 1e9
    assert to_mbps(100 * MBPS) == pytest.approx(100.0)


def test_duration_conversions():
    assert to_ms(0.5) == pytest.approx(500.0)
    assert to_us(0.001) == pytest.approx(1000.0)
    assert MS == 1e-3 and US == 1e-6


def test_power_conversion():
    assert watts_to_milliwatts(1.8) == pytest.approx(1800.0)
