"""Tests for plain-text table rendering."""

import pytest

from repro.util.tables import format_number, render_kv, render_table


class TestFormatNumber:
    def test_large_int_gets_separators(self):
        assert format_number(6_048_057) == "6,048,057"

    def test_small_int_plain(self):
        assert format_number(42) == "42"

    def test_float_significant_digits(self):
        assert format_number(0.123456) == "0.1235"

    def test_large_float_separators(self):
        assert format_number(1_414_922.0) == "1,414,922"

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_nan(self):
        assert format_number(float("nan")) == "nan"

    def test_none_and_bool(self):
        assert format_number(None) == "None"
        assert format_number(True) == "True"

    def test_string_passthrough(self):
        assert format_number("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(("a", "b"), [(1, 2), (10, 20)])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "b" in lines[0]
        assert "10" in lines[3]

    def test_title_renders_with_rule(self):
        out = render_table(("x",), [(1,)], title="My Table")
        assert out.startswith("My Table\n========")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [(1,)])

    def test_empty_rows_ok(self):
        out = render_table(("a",), [])
        assert "a" in out

    def test_columns_align(self):
        out = render_table(("col",), [(1,), (1000,)])
        lines = out.splitlines()
        assert len(lines[2]) == len(lines[3])


class TestRenderKv:
    def test_basic(self):
        out = render_kv({"alpha": 1, "b": 2})
        assert "alpha : 1" in out
        assert "b     : 2" in out

    def test_empty_with_title(self):
        assert render_kv({}, title="T") == "T"

    def test_title(self):
        out = render_kv({"k": "v"}, title="Header")
        assert out.startswith("Header\n======")
