"""Acceptance tests for the online scheduling study.

These pin the issue's acceptance criteria: the energy-aware policy lands
within 5% of the offline oracle's energy while beating round-robin, the
Fig. 9-style mix contrast preserves p95 for EP but visibly degrades x264,
and heterogeneity-aware dispatch strictly saves energy on a fixed mix.
"""

import pytest

from repro.errors import ReproError
from repro.experiments.scheduling import (
    ENERGY_POLICY,
    STUDY_WORKLOADS,
    render_schedule_summary,
    render_scheduling_report,
    replay_day,
    run_scheduling_study,
    scheduling_workloads,
)


@pytest.fixture(scope="module")
def study():
    return run_scheduling_study()


class TestStudyShape:
    def test_covers_the_study_workloads(self, study):
        assert tuple(c.workload for c in study.comparisons) == STUDY_WORKLOADS
        assert len(study.trace) == 24
        assert all(0.0 < d <= 1.0 for d in study.trace)

    def test_lookup_helpers(self, study):
        assert study.comparison("EP").workload == "EP"
        assert study.contrast("x264").workload == "x264"
        with pytest.raises(ReproError):
            study.comparison("doom")
        with pytest.raises(ReproError):
            study.contrast("doom")
        with pytest.raises(ReproError):
            study.comparison("EP").outcome("fifo")

    def test_workload_chunking(self):
        loads = scheduling_workloads()
        assert set(loads) == set(STUDY_WORKLOADS)
        # x264 keeps per-frame granularity: seconds on an A9, sub-second
        # on a K10 — the asymmetry the mix contrast is about.
        assert loads["x264"].ops_per_job == pytest.approx(30.0)


class TestOracleGap:
    def test_energy_policy_within_five_percent_of_oracle(self, study):
        for comp in study.comparisons:
            gap = comp.outcome(ENERGY_POLICY).oracle_gap
            assert 0.0 < gap <= 0.05, (comp.workload, gap)

    def test_oracle_beats_static_provisioning(self, study):
        for comp in study.comparisons:
            assert comp.oracle_energy_j < comp.static_energy_j
            assert comp.outcome(ENERGY_POLICY).total_energy_j < comp.static_energy_j

    def test_dynamic_metrics_are_sane(self, study):
        for comp in study.comparisons:
            o = comp.outcome(ENERGY_POLICY)
            assert 0.0 < o.epm <= 1.0
            assert 0.0 <= o.sublinear_fraction <= 1.0
            assert o.jobs_arrived > 0
            assert o.p50_s <= o.p95_s <= o.p99_s


class TestPolicyOrdering:
    def test_energy_policy_beats_round_robin_on_single_type_ladders(self, study):
        # EP and memcached ladders are pure-A9, so the strict comparison is
        # clean: ppr-greedy must not consume more energy than round-robin.
        for name in ("EP", "memcached"):
            comp = study.comparison(name)
            ppr = comp.outcome(ENERGY_POLICY).total_energy_j
            rr = comp.outcome("round-robin").total_energy_j
            assert ppr <= rr * (1.0 + 1e-9), name

    def test_round_robin_melts_down_on_x264(self, study):
        # Round-robin loads 15 s/frame A9s and 0.4 s/frame K10s equally;
        # on the mixed x264 ladder its tail collapses while ppr-greedy
        # keeps serving.
        comp = study.comparison("x264")
        assert comp.outcome("round-robin").p95_s > 20 * comp.outcome(ENERGY_POLICY).p95_s
        assert comp.outcome(ENERGY_POLICY).p95_s < 30.0

    def test_tails_stay_bounded_for_the_energy_policy(self, study):
        for comp in study.comparisons:
            assert comp.outcome(ENERGY_POLICY).p99_s < 60.0


class TestMixContrast:
    def test_ep_p95_is_preserved_on_the_wimpy_mix(self, study):
        assert study.contrast("EP").degradation <= 1.5

    def test_x264_p95_visibly_degrades(self, study):
        assert study.contrast("x264").degradation >= 5.0

    def test_contrast_mirrors_figure9(self, study):
        assert study.contrast("x264").degradation > 3 * study.contrast("EP").degradation


class TestHeterogeneousDispatch:
    def test_ppr_greedy_strictly_saves_energy(self, study):
        het = study.het_energy
        assert het.ppr_greedy_energy_j < het.round_robin_energy_j
        assert het.saving_fraction > 0.0


class TestRendering:
    def test_report_mentions_every_block(self, study):
        text = render_scheduling_report(study)
        for marker in (
            "Autoscaled day: EP",
            "Autoscaled day: x264",
            "offline oracle",
            "Mix contrast",
            "Heterogeneity-aware dispatch energy",
            ENERGY_POLICY,
        ):
            assert marker in text

    def test_schedule_summary(self):
        result, oracle = replay_day("EP", n_intervals=6)
        text = render_schedule_summary(result, oracle)
        assert "gap vs oracle" in text
        assert "EP / ppr-greedy" in text


class TestReplayDay:
    def test_validation(self):
        with pytest.raises(ReproError):
            replay_day("doom")
        with pytest.raises(ReproError):
            replay_day("EP", trace_kind="square")
        with pytest.raises(ReproError):
            replay_day("EP", trace_kind="constant", demand=0.0)

    def test_constant_trace(self):
        result, oracle = replay_day(
            "EP", trace_kind="constant", demand=0.3, n_intervals=6
        )
        assert result.jobs_arrived > 0
        assert oracle.dynamic_energy_j > 0
        assert all(s.demand_fraction == pytest.approx(0.3) for s in result.timeline)
