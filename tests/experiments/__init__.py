"""Test package."""
