"""Tests for the calibration sensitivity analysis."""

import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import CalibrationError
from repro.experiments.sensitivity import (
    conclusion_sensitivity,
    crossover_sensitivity,
    perturbed_workload,
    ppr_winner,
)
from repro.model.energy_model import power_draw
from repro.model.time_model import cluster_service_rate
from repro.workloads.suite import PAPER_IPR, PAPER_PPR


class TestPerturbedWorkload:
    def test_identity_perturbation_matches_calibration(self, workloads):
        w = perturbed_workload("EP")
        base = workloads["EP"]
        for node in ("A9", "K10"):
            assert w.demand_for(node).core_cycles_per_op == pytest.approx(
                base.demand_for(node).core_cycles_per_op
            )

    def test_ppr_scaling_scales_throughput(self):
        w = perturbed_workload("EP", ppr_scale=1.2)
        config = ClusterConfiguration.mix({"A9": 1})
        rate = cluster_service_rate(w, config)
        peak = power_draw(w, config).peak_w
        assert rate / peak == pytest.approx(1.2 * PAPER_PPR["EP"]["A9"], rel=1e-6)

    def test_ipr_shift_moves_idle_share(self):
        w = perturbed_workload("EP", ipr_shift=0.05)
        draw = power_draw(w, ClusterConfiguration.mix({"A9": 1}))
        assert draw.ipr == pytest.approx(PAPER_IPR["EP"]["A9"] + 0.05, rel=1e-6)

    def test_per_node_perturbation(self):
        w = perturbed_workload("EP", ppr_scale={"A9": 2.0, "K10": 1.0})
        rate_a9 = cluster_service_rate(w, ClusterConfiguration.mix({"A9": 1}))
        base = perturbed_workload("EP")
        base_rate = cluster_service_rate(base, ClusterConfiguration.mix({"A9": 1}))
        assert rate_a9 == pytest.approx(2 * base_rate, rel=1e-9)

    def test_infeasible_perturbation_raises(self):
        # rsa2048 on the K10 already sits near the power envelope; pushing
        # the IPR down demands more dynamic power than the node has.
        with pytest.raises(CalibrationError):
            perturbed_workload("rsa2048", ipr_shift=-0.05)

    def test_unknown_workload_rejected(self):
        with pytest.raises(CalibrationError):
            perturbed_workload("doom")


class TestPPRWinner:
    def test_paper_winners(self, workloads):
        assert ppr_winner(workloads["EP"]) == "A9"
        assert ppr_winner(workloads["x264"]) == "K10"
        assert ppr_winner(workloads["rsa2048"]) == "K10"


class TestCrossoverSensitivity:
    def test_ppr_scaling_is_invariant(self):
        """Sub-linearity is a power property: throughput scaling must not
        move the crossover at all."""
        _, rows = crossover_sensitivity(ppr_scales=(0.5, 1.0, 2.0), ipr_shifts=())
        values = {r[1] for r in rows if r[2] == "ok"}
        assert len(values) == 1

    def test_ipr_shift_moves_crossover_mildly(self):
        _, rows = crossover_sensitivity(ppr_scales=(), ipr_shifts=(-0.04, 0.0, 0.04))
        values = [r[1] for r in rows if r[2] == "ok"]
        assert len(values) == 3
        assert values == sorted(values)  # higher IPR -> later crossover
        # The paper's ~50% reading survives the whole band.
        assert all(0.4 <= v <= 0.6 for v in values)


class TestConclusionSensitivity:
    def test_winners_stable_at_zero_shift(self):
        headers, rows = conclusion_sensitivity(ipr_shifts=(0.0,))
        row = dict(zip(headers, rows[0]))
        assert row["EP"] == "A9"
        assert row["x264"] == "K10"
        assert row["rsa2048"] == "K10"
        assert row["status"] == "ok"

    def test_non_exception_winners_stable_under_small_shifts(self):
        headers, rows = conclusion_sensitivity(ipr_shifts=(-0.02, 0.0, 0.02))
        idx = {h: i for i, h in enumerate(headers)}
        for name in ("EP", "memcached", "blackscholes", "julius"):
            winners = {r[idx[name]] for r in rows}
            assert winners == {"A9"}
