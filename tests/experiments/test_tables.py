"""Tests for the table regenerators against the paper's published values."""

import pytest

from repro.experiments.tables import (
    most_efficient_single_node_config,
    table5_nodes,
    table6_ppr,
    table7_single_node,
    table8_cluster,
)
from repro.workloads.suite import PAPER_IPR, PAPER_PPR, PAPER_WORKLOAD_NAMES

#: The paper's Table 8 values for the heterogeneous 64 A9 : 8 K10 column.
PAPER_TABLE8_MIXED_IPR = {
    "EP": 0.67,
    "memcached": 0.88,
    "x264": 0.62,
    "blackscholes": 0.64,
    "julius": 0.64,
    "rsa2048": 0.60,
}


class TestTable5:
    def test_has_all_spec_rows(self):
        headers, rows = table5_nodes()
        attributes = {row[0] for row in rows}
        assert {"ISA", "Clock Freq", "Cores/node", "Memory", "I/O bandwidth"} <= attributes

    def test_headers_name_nodes(self):
        headers, _ = table5_nodes()
        assert headers == ("Attribute", "A9", "K10")

    def test_values_match_paper(self):
        _, rows = table5_nodes()
        table = {row[0]: (row[1], row[2]) for row in rows}
        assert table["ISA"] == ("ARMv7-A", "x86_64")
        assert table["Cores/node"] == (4, 6)
        assert table["Clock Freq"] == ("0.2-1.4 GHz", "0.8-2.1 GHz")
        assert table["I/O bandwidth"] == ("100Mbps", "1000Mbps")


class TestTable6:
    def test_ppr_matches_paper_within_rounding(self):
        _, rows = table6_ppr()
        for row in rows:
            name = row[0]
            assert row[2] == pytest.approx(PAPER_PPR[name]["A9"], rel=0.01)
            assert row[3] == pytest.approx(PAPER_PPR[name]["K10"], rel=0.01)

    def test_most_efficient_config_races_to_idle(self):
        """With dominant idle power, race-to-idle wins: peak PPR at f_max
        with all cores — except for the memory-bound x264, where idling a
        core costs no throughput but saves CPU power."""
        for name in PAPER_WORKLOAD_NAMES:
            for node in ("A9", "K10"):
                group, _ = most_efficient_single_node_config(name, node)
                assert group.frequency_hz == group.spec.fmax_hz
                if name == "x264":
                    assert group.cores < group.spec.cores
                else:
                    assert group.cores == group.spec.cores


class TestTable7:
    def test_ipr_columns_match_paper(self):
        _, rows = table7_single_node()
        for row in rows:
            name = row[0]
            assert row[3] == pytest.approx(PAPER_IPR[name]["A9"], abs=0.005)
            assert row[4] == pytest.approx(PAPER_IPR[name]["K10"], abs=0.005)

    def test_metric_degeneracy(self):
        """DPR = 100*(1-IPR), EPM = LDR = 1-IPR (paper Section III-B)."""
        _, rows = table7_single_node()
        for row in rows:
            _, dpr_a9, _, ipr_a9, _, epm_a9, _, ldr_a9, _ = row
            assert dpr_a9 == pytest.approx(100 * (1 - ipr_a9), abs=0.5)
            assert epm_a9 == pytest.approx(1 - ipr_a9, abs=0.01)
            assert ldr_a9 == pytest.approx(epm_a9, abs=0.01)

    def test_k10_more_proportional_except_memcached(self):
        """Paper: brawny nodes have better proportionality; memcached is the
        exception (A9's NIC saturates, K10 idles through request gaps)."""
        _, rows = table7_single_node()
        for row in rows:
            name, _, _, ipr_a9, ipr_k10 = row[0], row[1], row[2], row[3], row[4]
            if name == "memcached":
                assert ipr_k10 > ipr_a9
            else:
                assert ipr_k10 < ipr_a9


class TestTable8:
    def test_columns_are_paper_mixes(self):
        headers, _ = table8_cluster()
        assert headers[2:] == ("128 A9", "64 A9 : 8 K10", "16 K10")

    def test_homogeneous_columns_match_single_node(self):
        """Cluster-wide metrics of homogeneous clusters equal the
        single-node values (paper Tables 7 vs 8)."""
        _, rows = table8_cluster()
        for row in rows:
            name, metric = row[0], row[1]
            if metric != "IPR":
                continue
            assert row[2] == pytest.approx(PAPER_IPR[name]["A9"], abs=0.005)
            assert row[4] == pytest.approx(PAPER_IPR[name]["K10"], abs=0.005)

    def test_mixed_column_matches_paper(self):
        """The heterogeneous column is a power-weighted blend; the paper's
        published values must reproduce within a percent."""
        _, rows = table8_cluster()
        for row in rows:
            name, metric = row[0], row[1]
            if metric != "IPR":
                continue
            assert row[3] == pytest.approx(PAPER_TABLE8_MIXED_IPR[name], abs=0.015)

    def test_mixed_ipr_between_homogeneous_extremes(self):
        _, rows = table8_cluster()
        for row in rows:
            if row[1] != "IPR":
                continue
            lo, hi = sorted((row[2], row[4]))
            assert lo - 1e-9 <= row[3] <= hi + 1e-9
