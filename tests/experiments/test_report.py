"""Tests for the text report renderers."""

import pytest

from repro.experiments.report import (
    report_figure,
    report_table5,
    report_table6,
    report_table7,
    report_table8,
)


class TestTableReports:
    def test_table5(self):
        out = report_table5()
        assert "Table 5" in out
        assert "ARMv7-A" in out
        assert "x86_64" in out

    def test_table6(self):
        out = report_table6()
        assert "6,048,057" in out
        assert "1,414,922" in out

    def test_table7(self):
        out = report_table7()
        assert "Table 7" in out
        assert "0.74" in out  # EP A9 IPR

    def test_table8(self):
        out = report_table8()
        assert "64 A9 : 8 K10" in out
        assert "128 A9" in out


class TestFigureReports:
    @pytest.mark.parametrize(
        "name",
        ["fig2", "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c",
         "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"],
    )
    def test_every_figure_renders(self, name):
        out = report_figure(name)
        assert "Figure" in out
        assert "Utilization" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            report_figure("fig99")


class TestCharacterizationReport:
    def test_renders_measured_vs_true(self):
        from repro.experiments.report import report_characterization

        out = report_characterization("EP", seed=3)
        assert "Characterization of EP" in out
        assert "cycles_core / op" in out
        assert "A9" in out and "K10" in out

    def test_unknown_workload_rejected(self):
        from repro.errors import WorkloadError
        from repro.experiments.report import report_characterization

        import pytest as _pytest

        with _pytest.raises(WorkloadError):
            report_characterization("doom")
