"""Tests for the figure regenerators: the paper's qualitative shapes."""

import numpy as np
import pytest

from repro.experiments.figures import (
    PARETO_MIXES,
    compute_pareto_mixes,
    figure2_metric_relationships,
    figure5_node_proportionality,
    figure6_node_ppr,
    figure7_cluster_proportionality,
    figure8_cluster_ppr,
    figure9_pareto_proportionality,
    figure11_response_time,
    pareto_mix_configs,
)


class TestFigure2:
    def test_three_series(self):
        fig = figure2_metric_relationships()
        labels = [s.label for s in fig.series]
        assert labels == ["Ideal", "super-linear", "sub-linear"]

    def test_super_above_sub(self):
        fig = figure2_metric_relationships()
        sup = fig.require_series("super-linear")
        sub = fig.require_series("sub-linear")
        mid = len(sup.y) // 2
        assert sup.y[mid] > sub.y[mid]

    def test_invalid_ipr_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            figure2_metric_relationships(ipr=1.5)


class TestFigure5:
    @pytest.mark.parametrize("name", ["EP", "x264", "blackscholes"])
    def test_both_nodes_above_ideal(self, name):
        """Single nodes are super-linear: always at or above the ideal."""
        fig = figure5_node_proportionality(name)
        ideal = fig.require_series("Ideal")
        for node in ("A9", "K10"):
            series = fig.require_series(node)
            assert (series.y >= ideal.y - 1e-9).all()

    def test_curves_start_at_ipr(self):
        """At u->0 the percent-of-peak approaches 100*IPR; at u=10% it is
        close to it (paper Figure 5 starting points)."""
        from repro.workloads.suite import PAPER_IPR

        fig = figure5_node_proportionality("EP")
        for node in ("A9", "K10"):
            y0 = fig.require_series(node).y[0]
            expected = 100 * (PAPER_IPR["EP"][node] + 0.1 * (1 - PAPER_IPR["EP"][node]))
            assert y0 == pytest.approx(expected, abs=0.5)

    def test_curves_end_at_100(self):
        fig = figure5_node_proportionality("blackscholes")
        for node in ("A9", "K10"):
            assert fig.require_series(node).y[-1] == pytest.approx(100.0)

    def test_k10_below_a9_for_compute_workloads(self):
        """Paper: 'usage of K10 nodes is more energy-proportional than the
        A9 node for compute and memory intensive workloads'."""
        for name in ("EP", "blackscholes"):
            fig = figure5_node_proportionality(name)
            a9 = fig.require_series("A9")
            k10 = fig.require_series("K10")
            assert (k10.y <= a9.y + 1e-9).all()


class TestFigure6:
    def test_a9_wins_ep_and_blackscholes(self):
        """Paper Figure 6a/6c: A9's PPR curve lies above K10's."""
        for name in ("EP", "blackscholes"):
            fig = figure6_node_ppr(name)
            assert (
                fig.require_series("A9").y > fig.require_series("K10").y
            ).all()

    def test_k10_wins_x264(self):
        """Paper Figure 6b: x264 is the exception."""
        fig = figure6_node_ppr("x264")
        assert (fig.require_series("K10").y > fig.require_series("A9").y).all()

    def test_ppr_increases_with_utilisation(self):
        fig = figure6_node_ppr("EP")
        for s in fig.series:
            assert (np.diff(s.y) > 0).all()

    def test_log_scale_flag(self):
        assert figure6_node_ppr("EP").logy


class TestFigure7:
    def test_five_mixes_plus_ideal(self):
        fig = figure7_cluster_proportionality("EP")
        assert len(fig.series) == 6
        assert fig.series[0].label == "Ideal"
        assert fig.logx

    def test_k10_cluster_most_proportional(self):
        """Paper: 'the homogeneous configuration using K10 nodes has the
        least proportionality gap' — its curve is the lowest."""
        fig = figure7_cluster_proportionality("EP")
        k10 = fig.require_series("16 K10")
        for label in ("128 A9", "64 A9 : 8 K10", "96 A9 : 4 K10", "32 A9 : 12 K10"):
            other = fig.require_series(label)
            assert (k10.y <= other.y + 1e-9).all()

    def test_all_mixes_superlinear(self):
        fig = figure7_cluster_proportionality("EP")
        ideal = fig.require_series("Ideal")
        for s in fig.series[1:]:
            assert (s.y >= ideal.y - 1e-9).all()


class TestFigure8:
    def test_a9_cluster_best_ppr_for_ep(self):
        """Paper: 'the homogeneous configuration consisting of 128 A9 nodes
        exhibits the best PPR' for EP."""
        fig = figure8_cluster_ppr("EP")
        best = fig.require_series("128 A9")
        for s in fig.series:
            if s.label != "128 A9":
                assert (best.y >= s.y - 1e-9).all()

    def test_ppr_ordering_monotone_in_wimpy_count(self):
        """For EP (A9-friendly), more A9 nodes -> better cluster PPR."""
        fig = figure8_cluster_ppr("EP")
        order = ["16 K10", "32 A9 : 12 K10", "64 A9 : 8 K10", "96 A9 : 4 K10", "128 A9"]
        final = [fig.require_series(lbl).y[-1] for lbl in order]
        assert final == sorted(final)

    def test_metric_contradiction_with_figure7(self):
        """The paper's headline: proportionality (Fig. 7) picks the K10
        cluster while PPR (Fig. 8) picks the A9 cluster."""
        fig7 = figure7_cluster_proportionality("EP")
        fig8 = figure8_cluster_ppr("EP")
        # Fig 7 winner (lowest curve): 16 K10. Fig 8 winner: 128 A9.
        k10_power = fig7.require_series("16 K10").y
        a9_power = fig7.require_series("128 A9").y
        assert (k10_power <= a9_power).all()
        k10_ppr = fig8.require_series("16 K10").y
        a9_ppr = fig8.require_series("128 A9").y
        assert (a9_ppr >= k10_ppr).all()


class TestFigure9And10:
    def test_reference_mix_is_never_sublinear(self):
        fig = figure9_pareto_proportionality("EP")
        ideal = fig.require_series("Ideal")
        ref = fig.require_series("32 A9: 12 K10")
        assert (ref.y >= ideal.y - 1e-9).all()

    @pytest.mark.parametrize("name", ["EP", "x264"])
    def test_smallest_mix_goes_sublinear(self, name):
        """(25 A9, 5 K10) must fall below the reference ideal line at high
        utilisation — the paper's sub-linear proportionality."""
        fig = figure9_pareto_proportionality(name)
        ideal = fig.require_series("Ideal")
        small = fig.require_series("25 A9: 5 K10")
        assert (small.y < ideal.y).any()
        # And specifically at full utilisation.
        assert small.y[-1] < ideal.y[-1]

    def test_sublinearity_grows_as_brawny_nodes_removed(self, workloads):
        """Fewer K10s -> curve sits lower (paper: 'configurations below the
        ideal proportionality have decreasing number of brawny nodes')."""
        fig = figure9_pareto_proportionality("EP")
        y_by_k10 = {
            k: fig.require_series(f"25 A9: {k} K10").y for k in (10, 8, 7, 5)
        }
        assert (y_by_k10[5] < y_by_k10[7]).all()
        assert (y_by_k10[7] < y_by_k10[8]).all()
        assert (y_by_k10[8] < y_by_k10[10]).all()

    def test_mixes_constant(self):
        assert PARETO_MIXES[0] == (32, 12)
        configs = pareto_mix_configs()
        assert configs[0].count_of("A9") == 32
        assert configs[-1].count_of("K10") == 5


class TestFigure11And12:
    def test_ep_is_milliseconds(self):
        fig = figure11_response_time("EP")
        assert "[ms]" in fig.ylabel

    def test_x264_is_seconds(self):
        fig = figure11_response_time("x264")
        assert "[s]" in fig.ylabel

    def test_response_increases_with_utilisation(self):
        fig = figure11_response_time("EP")
        for s in fig.series:
            assert (np.diff(s.y) > 0).all()

    def test_fewer_brawny_nodes_higher_response(self):
        fig = figure11_response_time("EP")
        full = fig.require_series("32 A9: 12 K10")
        small = fig.require_series("25 A9: 5 K10")
        assert (small.y > full.y).all()

    def test_x264_degrades_to_seconds_ep_stays_small(self, workloads):
        """The paper's Section III-E contrast: for EP the absolute spread
        between mixes stays small; for x264 it reaches seconds."""
        ep = figure11_response_time("EP")  # in ms
        x264 = figure11_response_time("x264")  # in s
        mid = len(ep.series[0].y) // 2
        ep_spread_ms = (
            ep.require_series("25 A9: 5 K10").y[mid]
            - ep.require_series("32 A9: 12 K10").y[mid]
        )
        x264_spread_s = (
            x264.require_series("25 A9: 5 K10").y[mid]
            - x264.require_series("32 A9: 12 K10").y[mid]
        )
        assert ep_spread_ms < 100.0  # sub-tenth-of-a-second for EP
        assert x264_spread_s > 1.0  # whole seconds for x264

    def test_explicit_unit_override(self):
        fig = figure11_response_time("EP", unit="s")
        assert "[s]" in fig.ylabel

    def test_invalid_unit_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            figure11_response_time("EP", unit="hours")


class TestComputedFrontier:
    def test_frontier_contains_extreme_mixes(self):
        frontier = compute_pareto_mixes("EP", n_a9=8, n_k10=4)
        labels = [ev.config.label() for ev in frontier]
        # The fastest configuration (all nodes) is always on the frontier.
        assert "8 A9 : 4 K10" in labels

    def test_frontier_energy_decreasing(self):
        frontier = compute_pareto_mixes("EP", n_a9=8, n_k10=4)
        energies = [ev.energy_j for ev in frontier]
        assert energies == sorted(energies, reverse=True)

    def test_sublinear_figure_mixes_trade_like_frontier(self, workloads):
        """The paper's named (25, k) mixes behave like frontier points:
        monotone time-energy trade as k decreases."""
        from repro.cluster.pareto import evaluate_configuration

        w = workloads["EP"]
        evals = [
            evaluate_configuration(w, c)
            for c in pareto_mix_configs(((25, 10), (25, 8), (25, 7), (25, 5)))
        ]
        times = [e.tp_s for e in evals]
        energies = [e.energy_j for e in evals]
        assert times == sorted(times)
        assert energies == sorted(energies, reverse=True)
