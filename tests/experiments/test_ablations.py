"""Tests for the ablation drivers."""

import pytest

from repro.experiments.ablations import (
    curvature_ablation,
    knightshift_ablation,
    open_vs_batch_ablation,
    service_variability_ablation,
    switch_power_ablation,
)


class TestCurvatureAblation:
    def test_zero_curvature_degenerate(self):
        headers, rows = curvature_ablation()
        by_curv = {r[0]: r for r in rows}
        zero = by_curv[0.0]
        assert zero[3] == pytest.approx(zero[2], abs=0.01)  # EPM == 1-IPR
        assert zero[4] == pytest.approx(0.0, abs=0.01)  # strict LDR == 0

    def test_curvature_separates_metrics(self):
        _, rows = curvature_ablation()
        for curv, _, one_minus_ipr, epm, ldr in rows:
            if curv > 0:
                assert epm > one_minus_ipr
                assert ldr < 0
            elif curv < 0:
                assert epm < one_minus_ipr
                assert ldr > 0

    def test_epm_monotone_in_curvature(self):
        _, rows = curvature_ablation()
        epms = [r[3] for r in rows]
        assert epms == sorted(epms)


class TestSwitchPowerAblation:
    def test_paper_point(self):
        _, rows = switch_power_ablation()
        by_sw = {r[0]: r for r in rows}
        assert by_sw[20.0][1] == pytest.approx(8.0)
        assert by_sw[20.0][2] == "128 A9"

    def test_no_switch_gives_twelve(self):
        _, rows = switch_power_ablation()
        by_sw = {r[0]: r for r in rows}
        assert by_sw[0.0][1] == pytest.approx(12.0)
        assert by_sw[0.0][2] == "192 A9"

    def test_ratio_decreases_with_switch_power(self):
        _, rows = switch_power_ablation()
        ratios = [r[1] for r in rows]
        assert ratios == sorted(ratios, reverse=True)


class TestServiceVariabilityAblation:
    def test_means_follow_pollaczek_khinchine(self):
        _, rows = service_variability_ablation(scvs=(0.0, 1.0), des_jobs=1000)
        means = [r[1] for r in rows]
        # M/M/1 mean wait is twice M/D/1's; responses differ accordingly.
        assert means[1] > means[0]

    def test_p95_grows_with_variability(self):
        _, rows = service_variability_ablation(scvs=(0.0, 0.5, 1.0), des_jobs=20_000)
        p95s = [r[2] for r in rows]
        assert p95s == sorted(p95s)

    def test_sources_labelled(self):
        _, rows = service_variability_ablation(scvs=(0.0, 0.5, 1.0), des_jobs=1000)
        assert rows[0][3] == "M/D/1 analytic"
        assert rows[2][3] == "M/M/1 analytic"
        assert "DES" in rows[1][3]

    def test_invalid_utilisation(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            service_variability_ablation(utilisation=1.5)


class TestOpenVsBatchAblation:
    def test_all_mixes_reported(self):
        _, rows = open_vs_batch_ablation()
        assert len(rows) == 5

    def test_open_spread_exceeds_batch_spread(self):
        """The point of the ablation: under batch windows the p95 spread
        between mixes collapses to quantisation scale, far below the open
        M/D/1 spread that tracks each mix's service time."""
        _, rows = open_vs_batch_ablation()
        open_values = [r[1] for r in rows]
        batch_values = [r[2] for r in rows]
        open_spread = max(open_values) - min(open_values)
        batch_spread = max(batch_values) - min(batch_values)
        assert batch_spread < open_spread


class TestKnightshiftAblation:
    def test_two_approaches(self):
        headers, rows = knightshift_ablation()
        assert {r[0] for r in rows} == {"knightshift", "internode"}

    def test_epm_vs_ppr_tension(self):
        headers, rows = knightshift_ablation()
        by_name = {r[0]: dict(zip(headers, r)) for r in rows}
        assert by_name["knightshift"]["EPM"] > by_name["internode"]["EPM"]
        assert by_name["internode"]["ppr@100%"] > by_name["knightshift"]["ppr@100%"]


class TestPoolingAblation:
    def test_partitioning_degrades_latency(self):
        from repro.experiments.ablations import pooling_ablation

        _, rows = pooling_ablation(slot_counts=(1, 2, 4))
        p95s = [r[3] for r in rows]
        assert p95s == sorted(p95s)

    def test_slot_service_time_scales(self):
        from repro.experiments.ablations import pooling_ablation

        _, rows = pooling_ablation(slot_counts=(1, 4))
        assert rows[1][1] == pytest.approx(4 * rows[0][1], rel=1e-2)

    def test_invalid_utilisation(self):
        from repro.errors import ModelError
        from repro.experiments.ablations import pooling_ablation

        with pytest.raises(ModelError):
            pooling_ablation(utilisation=0.0)


class TestAdaptationAblation:
    def test_savings_for_all_workloads(self):
        from repro.experiments.ablations import adaptation_ablation

        headers, rows = adaptation_ablation()
        assert len(rows) == 3
        for row in rows:
            savings = float(row[4].rstrip("%"))
            assert savings > 10.0  # diurnal adaptation saves double digits

    def test_static_cluster_is_peak_choice(self):
        from repro.experiments.ablations import adaptation_ablation

        _, rows = adaptation_ablation(workload_names=("EP", "x264"))
        by_name = {r[0]: r for r in rows}
        assert by_name["EP"][1] == "128 A9"
        assert by_name["x264"][1] == "16 K10"


class TestValidationScaleAblation:
    def test_errors_shrink_with_run_length(self):
        from repro.experiments.ablations import validation_scale_ablation

        _, rows = validation_scale_ablation(job_scales=(1.0, 16.0))
        # Short runs are overhead-dominated: both errors improve at scale 16.
        assert rows[1][2] < rows[0][2]
        assert rows[1][3] < rows[0][3]

    def test_run_length_grows(self):
        from repro.experiments.ablations import validation_scale_ablation

        _, rows = validation_scale_ablation(job_scales=(1.0, 4.0, 16.0))
        lengths = [r[1] for r in rows]
        assert lengths == sorted(lengths)


class TestForkJoinAblation:
    def test_penalty_monotone_in_width(self):
        from repro.experiments.ablations import fork_join_ablation

        _, rows = fork_join_ablation(node_counts=(1, 16, 44), n_jobs=6000)
        p95s = [r[2] for r in rows[1:]]  # skip the analytic row
        assert p95s == sorted(p95s)

    def test_analytic_row_first(self):
        from repro.experiments.ablations import fork_join_ablation

        _, rows = fork_join_ablation(node_counts=(1,), n_jobs=2000)
        assert rows[0][0] == "M/D/1 abstraction"
