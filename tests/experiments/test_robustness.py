"""The robustness study: ranking grid, scalars, envelope, rendering.

Default-run tests use a deliberately small grid (one workload, two
arrival and two service kinds, reduced job counts) with the contrast and
replay parts gated off — each ranking cell is a full Monte-Carlo sweep,
so the fast path must stay fast.  The full default grid (64 cells plus
contrast and oracle replay) is ``slow``.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments.robustness import (
    DEFAULT_SLO_MULTIPLE,
    DEFAULT_U_GRID,
    ROBUSTNESS_WORKLOADS,
    RobustnessReport,
    render_robustness_report,
    robustness_json,
    robustness_scalars,
    run_robustness,
)

_FAST = dict(
    workloads=("EP",),
    arrivals=("poisson", "mmpp"),
    services=("deterministic", "pareto"),
    n_jobs=1500,
    n_reps=8,
    contrast=False,
    replay=False,
)


@pytest.fixture(scope="module")
def fast_report():
    return run_robustness(**_FAST)


class TestRankingGrid:
    def test_grid_shape_and_baseline(self, fast_report):
        assert isinstance(fast_report, RobustnessReport)
        assert len(fast_report.cells) == 4  # 1 workload x 2 x 2
        assert len(fast_report.baseline_cells) == 1
        base = fast_report.baseline_cells[0]
        assert base.arrival == "poisson" and base.service == "deterministic"

    def test_baseline_matches_table6(self, fast_report):
        # ISSUE acceptance: the Poisson + deterministic cell must
        # reproduce the calibrated Table 6 winner.
        assert fast_report.baseline_match_fraction == 1.0

    def test_outcomes_well_formed(self, fast_report):
        for cell in fast_report.cells:
            assert cell.slo_s > 0.0
            nodes = {o.node for o in cell.outcomes}
            assert nodes == {"A9", "K10"}
            for o in cell.outcomes:
                assert 0.0 <= o.u_star <= max(DEFAULT_U_GRID)
                assert o.meets_slo == (o.u_star > 0.0)
                if o.meets_slo:
                    assert o.p95_lo <= o.p95_s <= o.p95_hi
                    # The feasibility criterion is the bootstrap mean.
                    assert o.p95_s <= cell.slo_s
                    assert o.score > 0.0
                else:
                    assert o.score == 0.0
            assert cell.outcome("A9").node == "A9"
            with pytest.raises(ReproError):
                cell.outcome("Xeon")

    def test_winner_is_top_score_or_none(self, fast_report):
        for cell in fast_report.cells:
            scored = [o for o in cell.outcomes if o.score > 0.0]
            if scored:
                assert cell.winner == max(scored, key=lambda o: o.score).node
            else:
                assert cell.winner == "none"

    def test_deterministic_given_seed(self, fast_report):
        again = run_robustness(**_FAST)
        assert again == fast_report

    def test_worker_invariant(self, fast_report):
        threaded = run_robustness(workers=2, **_FAST)
        assert threaded.cells == fast_report.cells

    def test_heavy_tail_never_raises_u_star(self, fast_report):
        # Pareto service only adds variance at matched mean; at the same
        # SLO a node type can never sustain *more* utilisation than it
        # does under deterministic service.
        for arrival in ("poisson", "mmpp"):
            det = next(
                c for c in fast_report.cells
                if c.arrival == arrival and c.service == "deterministic"
            )
            par = next(
                c for c in fast_report.cells
                if c.arrival == arrival and c.service == "pareto"
            )
            for node in ("A9", "K10"):
                assert par.outcome(node).u_star <= det.outcome(node).u_star


class TestValidation:
    def test_baseline_cell_required(self):
        with pytest.raises(ReproError):
            run_robustness(arrivals=("mmpp",), services=("deterministic",))
        with pytest.raises(ReproError):
            run_robustness(arrivals=("poisson",), services=("pareto",))

    def test_slo_multiple_must_exceed_one(self):
        with pytest.raises(ReproError):
            run_robustness(slo_multiple=1.0)

    def test_u_grid_bounds(self):
        with pytest.raises(ReproError):
            run_robustness(u_grid=())
        with pytest.raises(ReproError):
            run_robustness(u_grid=(0.5, 1.0))

    def test_unknown_workload_rejected(self):
        with pytest.raises(ReproError):
            run_robustness(workloads=("definitely-not-a-workload",))


class TestReportSurfaces:
    def test_scalars(self, fast_report):
        scalars = robustness_scalars(fast_report)
        assert scalars["baseline_match_fraction"] == 1.0
        assert scalars["n_cells"] == 4.0
        assert 0.0 <= scalars["holds_fraction"] <= 1.0
        assert scalars["n_inversions"] == float(len(fast_report.inversions))
        # Contrast / replay were gated off: no derived keys leak in.
        assert not any(k.startswith("contrast.") for k in scalars)
        assert not any(k.startswith("oracle_gap.") for k in scalars)

    def test_json_envelope(self, fast_report):
        doc = robustness_json(fast_report)
        assert doc["schema"] == "repro-robustness/1"
        assert doc["params"]["slo_multiple"] == DEFAULT_SLO_MULTIPLE
        assert len(doc["ranking"]) == 4
        first = doc["ranking"][0]
        assert set(first) == {
            "workload", "arrival", "service", "slo_s",
            "winner", "paper_winner", "holds", "nodes",
        }
        assert {n["node"] for n in first["nodes"]} == {"A9", "K10"}
        assert doc["contrasts"] == [] and doc["oracle_gaps"] == []
        assert doc["scalars"] == robustness_scalars(fast_report)

    def test_render(self, fast_report):
        text = render_robustness_report(fast_report)
        assert "SLO-constrained ranking" in text
        assert "Robustness summary" in text
        assert "baseline matches Table 6" in text
        for cell in fast_report.inversions:
            assert "INVERTS" in text or not fast_report.inversions


@pytest.mark.slow
class TestFullStudy:
    def test_default_grid_with_contrast_and_replay(self):
        report = run_robustness()
        expected = len(ROBUSTNESS_WORKLOADS) * 4 * 4
        assert len(report.cells) == expected
        assert report.baseline_match_fraction == 1.0
        # The headline robustness findings the EXPERIMENTS table records:
        # bursty arrivals amplify the Fig. 9 contrast, and heavy-tailed
        # service leaves the greedy-vs-oracle gap inside the monitor band.
        scalars = robustness_scalars(report)
        assert scalars["contrast.mmpp.ep"] > scalars["contrast.poisson.ep"]
        assert scalars["oracle_gap.pareto.max"] < 0.10
        text = render_robustness_report(report)
        assert "Fig. 9 mix contrast" in text
        assert "ppr-greedy vs oracle" in text
