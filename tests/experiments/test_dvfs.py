"""Tests for the DVFS/core-scaling frontier study."""

import pytest

from repro.errors import ModelError
from repro.experiments.dvfs import dvfs_frontier_study, frontier_pair


class TestFrontierPair:
    def test_full_frontier_dominates_counts_only(self):
        """Adding DVFS/core dimensions can only improve (or tie) the
        frontier: for every counts-only point some full-tuple point is at
        least as good on both axes."""
        _, full, counts = frontier_pair("blackscholes", n_a9=4, n_k10=2)
        for ev in counts:
            assert any(
                f.tp_s <= ev.tp_s + 1e-12 and f.energy_j <= ev.energy_j + 1e-12
                for f in full
            )

    def test_counts_only_subset_of_evaluations(self):
        evals, _, counts = frontier_pair("EP", n_a9=3, n_k10=1)
        assert len(counts) <= len(evals)
        for ev in counts:
            for g in ev.config.groups:
                assert g.cores == g.spec.cores
                assert g.frequency_hz == g.spec.fmax_hz


class TestDvfsStudy:
    def test_race_to_idle_wins_on_real_nodes(self):
        """The headline negative result: with the paper's idle powers the
        DVFS/core dimensions never improve the sweet spot."""
        _, rows = dvfs_frontier_study(n_a9=4, n_k10=2)
        for row in rows:
            assert row[3] == "0.0%"
            assert "f=1.4GHz" in row[5] or "f=2.1GHz" in row[5]

    def test_dvfs_helps_on_proportional_hardware(self):
        """Shrinking the idle baseline makes down-clocking worthwhile."""
        _, rows = dvfs_frontier_study(n_a9=4, n_k10=2, idle_scale=0.1)
        savings = [float(r[3].rstrip("%")) for r in rows]
        assert max(savings) > 0.0

    def test_energy_decreases_with_slack(self):
        _, rows = dvfs_frontier_study(n_a9=4, n_k10=2)
        energies = [r[2] for r in rows]
        assert energies == sorted(energies, reverse=True)

    def test_validation(self):
        with pytest.raises(ModelError):
            dvfs_frontier_study(deadline_slacks=(0.5,))
        with pytest.raises(ModelError):
            dvfs_frontier_study(idle_scale=0.0)
