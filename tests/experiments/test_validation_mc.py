"""Statistical cross-validation: analytic M/D/1 p95 vs the MC engine.

The paper's response-time claims rest on closed-form M/D/1 percentiles.
These tests check the analytic 95th percentile lands inside the Monte-Carlo
99% confidence interval — fixed seeds, derandomized hypothesis profile, so
the verdicts never flake.  The full paper grid (all workloads x all mixes x
five utilisations) is marked ``slow``; the default run covers every
workload on both pure node types across the same utilisation grid.
"""

import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import ReproError
from repro.experiments.validation_mc import (
    VALIDATION_GRID,
    VALIDATION_MIXES,
    VALIDATION_WORKLOADS,
    AgreementCell,
    run_validation,
    render_validation_report,
    validate_cell,
)
from repro.queueing.mc import ConfidenceInterval

# Grid cells are cheap-ish (~25 ms each at these settings) but there are
# many; keep default-run cells small and stable.
_JOBS, _REPS = 8_000, 25


def _pure_config(node):
    return ClusterConfiguration.mix({node: 1})


class TestAnalyticInsideSimulatedCI:
    """ISSUE S3: analytic p95 inside the MC 99% CI on a >= 5-point grid,
    for EP, memcached and x264 on both A9 and K10."""

    @pytest.mark.parametrize("node", ["A9", "K10"])
    @pytest.mark.parametrize("name", VALIDATION_WORKLOADS)
    def test_workload_grid(self, workloads, name, node):
        assert len(VALIDATION_GRID) >= 5
        workload = workloads[name]
        config = _pure_config(node)
        for u in VALIDATION_GRID:
            cell = validate_cell(
                workload, config, u, n_jobs=_JOBS, n_reps=_REPS
            )
            assert cell.agrees, (
                f"{name} on {node} at u={u}: analytic "
                f"{cell.analytic_p95_s:.6g} outside "
                f"[{cell.ci.lo:.6g}, {cell.ci.hi:.6g}]"
            )

    def test_cell_fields(self, workloads, single_a9):
        cell = validate_cell(
            workloads["EP"], single_a9, 0.5,
            n_jobs=_JOBS, n_reps=_REPS,
        )
        assert isinstance(cell, AgreementCell)
        assert isinstance(cell.ci, ConfidenceInterval)
        assert cell.config_label == "1 A9"
        assert cell.utilisation == 0.5
        assert cell.analytic_p95_s > cell.service_time_s
        assert cell.relative_gap < 0.05  # CI mean hugs the analytic value

    def test_deterministic_given_seed(self, workloads, single_k10):
        a = validate_cell(
            workloads["x264"], single_k10, 0.7,
            n_jobs=_JOBS, n_reps=_REPS, seed=5,
        )
        b = validate_cell(
            workloads["x264"], single_k10, 0.7,
            n_jobs=_JOBS, n_reps=_REPS, seed=5,
        )
        assert (a.ci.lo, a.ci.mean, a.ci.hi) == (b.ci.lo, b.ci.mean, b.ci.hi)

    def test_invalid_utilisation_rejected(self, workloads, single_a9):
        with pytest.raises(ReproError):
            validate_cell(workloads["EP"], single_a9, 1.2)


class TestRunValidation:
    def test_small_grid_report(self, workloads):
        report = run_validation(
            grid=(0.3, 0.7),
            mixes=((1, 0), (0, 1)),
            workloads=("EP",),
            n_jobs=_JOBS,
            n_reps=_REPS,
        )
        assert len(report.cells) == 4
        assert report.all_agree
        assert report.agreement_fraction == 1.0
        assert report.flagged == ()

    @pytest.mark.slow
    def test_full_paper_grid(self):
        """The complete grid the benchmark JSON summarises: every workload
        x every mix (pure and heterogeneous Pareto points) x 5
        utilisations."""
        report = run_validation(n_jobs=20_000, n_reps=40)
        expected = (
            len(VALIDATION_WORKLOADS)
            * len(VALIDATION_MIXES)
            * len(VALIDATION_GRID)
        )
        assert len(report.cells) == expected
        assert report.all_agree, [
            (c.workload_name, c.config_label, c.utilisation)
            for c in report.flagged
        ]

    def test_render_report(self, workloads):
        report = run_validation(
            grid=(0.5,),
            mixes=((1, 0),),
            workloads=("EP", "memcached"),
            n_jobs=_JOBS,
            n_reps=_REPS,
        )
        text = render_validation_report(report)
        assert "EP" in text and "memcached" in text
        assert "all cells agree" in text

    def test_render_flags_disagreement(self, workloads):
        report = run_validation(
            grid=(0.5,),
            mixes=((1, 0),),
            workloads=("EP",),
            n_jobs=_JOBS,
            n_reps=_REPS,
        )
        cell = report.cells[0]
        # Forge a disagreeing cell: shift the analytic value far outside.
        bad = AgreementCell(
            workload_name=cell.workload_name,
            config_label=cell.config_label,
            utilisation=cell.utilisation,
            service_time_s=cell.service_time_s,
            analytic_p95_s=cell.ci.hi * 10.0,
            ci=cell.ci,
            n_jobs=cell.n_jobs,
            n_reps=cell.n_reps,
        )
        forged = type(report)(cells=(bad,), level=report.level)
        assert not forged.all_agree
        assert forged.agreement_fraction == 0.0
        assert "FLAG" in render_validation_report(forged)
        assert "1 of 1 cells FLAGGED" in render_validation_report(forged)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ReproError):
            run_validation(workloads=("definitely-not-a-workload",))


class TestMM1PluginValidation:
    """The exponential-service *plug-in* against the closed-form M/M/1
    p95 — the statistical tier that brackets the processes module from
    the analytic side.  Fast 4-cell smoke by default; full grid slow."""

    def test_smoke_grid_agrees(self, workloads):
        from repro.experiments.validation_mc import run_mm1_validation

        report = run_mm1_validation(
            grid=(0.5, 0.85),
            mixes=((1, 0), (0, 1)),
            workloads=("EP",),
            n_jobs=_JOBS,
            n_reps=_REPS,
        )
        assert len(report.cells) == 4
        assert report.all_agree, [
            (c.config_label, c.utilisation, c.analytic_p95_s, c.ci)
            for c in report.flagged
        ]

    def test_mm1_p95_exceeds_md1(self, workloads, single_a9):
        # Exponential service has scv 1 vs 0: at matched utilisation the
        # M/M/1 tail must sit strictly above the M/D/1 tail.
        from repro.experiments.validation_mc import validate_mm1_cell

        md1 = validate_cell(
            workloads["EP"], single_a9, 0.7, n_jobs=_JOBS, n_reps=_REPS
        )
        mm1 = validate_mm1_cell(
            workloads["EP"], single_a9, 0.7, n_jobs=_JOBS, n_reps=_REPS
        )
        assert mm1.analytic_p95_s > md1.analytic_p95_s
        assert mm1.ci.mean > md1.ci.mean

    def test_tiers_use_decorrelated_seeds(self, workloads, single_a9):
        from repro.experiments.validation_mc import validate_mm1_cell

        md1 = validate_cell(
            workloads["EP"], single_a9, 0.5, n_jobs=_JOBS, n_reps=_REPS
        )
        mm1 = validate_mm1_cell(
            workloads["EP"], single_a9, 0.5, n_jobs=_JOBS, n_reps=_REPS
        )
        # Same grid point, same root seed, different cell streams: the
        # CI bounds must not be a scaled copy of the M/D/1 tier's.
        assert mm1.ci.mean / md1.ci.mean != pytest.approx(
            mm1.analytic_p95_s / md1.analytic_p95_s, rel=1e-12
        )

    @pytest.mark.slow
    def test_full_mm1_grid(self):
        from repro.experiments.validation_mc import run_mm1_validation

        report = run_mm1_validation(n_jobs=20_000, n_reps=40)
        expected = (
            len(VALIDATION_WORKLOADS)
            * len(VALIDATION_MIXES)
            * len(VALIDATION_GRID)
        )
        assert len(report.cells) == expected
        assert report.agreement_fraction >= 0.95, [
            (c.workload_name, c.config_label, c.utilisation)
            for c in report.flagged
        ]
