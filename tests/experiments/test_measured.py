"""Tests for measured power-vs-utilisation curves."""

import numpy as np
import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.core.proportionality import power_curve
from repro.errors import MeasurementError
from repro.experiments.measured import (
    compare_measured_vs_model,
    measure_power_curve,
)
from repro.util.rng import RngRegistry


@pytest.fixture()
def small_config():
    return ClusterConfiguration.mix({"A9": 2, "K10": 1})


class TestMeasurePowerCurve:
    def test_anchors_present(self, workloads, small_config, registry):
        curve, points = measure_power_curve(
            workloads["EP"], small_config, registry=registry,
            utilisations=(0.3, 0.7),
        )
        assert points[0].target_utilisation == 0.0
        assert points[-1].target_utilisation == 1.0
        assert curve.power_w(0.0) == pytest.approx(points[0].mean_power_w)

    def test_idle_anchor_matches_cluster_idle(self, workloads, small_config, registry):
        _, points = measure_power_curve(
            workloads["EP"], small_config, registry=registry, utilisations=(0.5,),
        )
        assert points[0].mean_power_w == pytest.approx(small_config.idle_w, rel=0.03)

    def test_power_increases_with_utilisation(self, workloads, small_config, registry):
        _, points = measure_power_curve(
            workloads["EP"], small_config, registry=registry,
            utilisations=(0.25, 0.5, 0.75),
        )
        powers = [p.mean_power_w for p in points]
        assert powers == sorted(powers)

    def test_achieved_utilisation_tracks_target(self, workloads, small_config, registry):
        _, points = measure_power_curve(
            workloads["EP"], small_config, registry=registry,
            utilisations=(0.4, 0.8), window_multiplier=40.0,
        )
        for p in points[1:-1]:
            assert p.achieved_utilisation == pytest.approx(
                p.target_utilisation, abs=0.12
            )

    def test_invalid_parameters(self, workloads, small_config, registry):
        with pytest.raises(MeasurementError):
            measure_power_curve(
                workloads["EP"], small_config, registry=registry,
                window_multiplier=1.0,
            )
        with pytest.raises(MeasurementError):
            measure_power_curve(
                workloads["EP"], small_config, registry=registry,
                utilisations=(0.0,),
            )

    def test_deterministic_given_registry(self, workloads, small_config):
        a, _ = measure_power_curve(
            workloads["EP"], small_config, registry=RngRegistry(3),
            utilisations=(0.5,),
        )
        b, _ = measure_power_curve(
            workloads["EP"], small_config, registry=RngRegistry(3),
            utilisations=(0.5,),
        )
        assert a.power_w(0.5) == b.power_w(0.5)


class TestMeasuredVsModel:
    def test_reports_agree(self, workloads, small_config, registry):
        """The empirical curve confirms the analytic one within the
        testbed's second-order effects (<10%)."""
        measured, model = compare_measured_vs_model(
            workloads["EP"], small_config, registry=registry,
        )
        assert measured.idle_w == pytest.approx(model.idle_w, rel=0.03)
        assert measured.peak_w == pytest.approx(model.peak_w, rel=0.10)
        assert measured.ipr == pytest.approx(model.ipr, abs=0.06)
        assert measured.epm == pytest.approx(model.epm, abs=0.06)

    def test_measured_curve_is_close_to_linear(self, workloads, small_config, registry):
        """The measured points do not bow far from the model's line —
        the empirical basis for the paper's linear-offset curves."""
        curve, _ = measure_power_curve(
            workloads["blackscholes"], small_config, registry=registry,
            utilisations=(0.25, 0.5, 0.75),
        )
        model = power_curve(workloads["blackscholes"], small_config)
        for u in np.linspace(0.1, 0.9, 9):
            assert curve.power_w(float(u)) == pytest.approx(
                model.power_w(float(u)), rel=0.12
            )
