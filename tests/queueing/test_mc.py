"""Tests for the vectorized Monte-Carlo queue engine.

The engine's central contract — the vectorized Lindley kernel computes the
same waits as the loop-carried recursion — is property-tested with
hypothesis over random arrival/service sequences; the statistical layer
(replications, percentiles, confidence intervals) is pinned with
hand-computable schedules and fixed seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueingError
from repro.queueing.mc import (
    TRACKED_PERCENTILES,
    ConfidenceInterval,
    MonteCarloQueue,
    ReplicatedResult,
    exponential_service,
    lindley_waits,
    scalar_lindley_waits,
    uniform_service,
    waits_agreement,
)

#: The kernels' span-normalised agreement contract.
AGREEMENT = 1e-12


def _random_queue_inputs(draw):
    """Hypothesis helper: a random arrival sequence + service times."""
    n = draw(st.integers(min_value=1, max_value=200))
    gaps = draw(
        st.lists(
            st.floats(min_value=1e-6, max_value=50.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    services = draw(
        st.lists(
            st.floats(min_value=1e-6, max_value=50.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return np.cumsum(np.asarray(gaps)), np.asarray(services)


class TestLindleyKernel:
    """The vectorized kernel against hand cases and the scalar oracle."""

    def test_no_contention(self):
        # Arrivals far apart: nobody waits.
        arrivals = np.array([0.0, 10.0, 20.0])
        assert np.all(lindley_waits(arrivals, 1.0) == 0.0)

    def test_saturated_deterministic(self):
        # Arrivals every 0.5 s, service 1 s: job n waits n * 0.5 s.
        arrivals = np.array([0.0, 0.5, 1.0, 1.5])
        np.testing.assert_allclose(
            lindley_waits(arrivals, 1.0), [0.0, 0.5, 1.0, 1.5]
        )

    def test_simultaneous_arrivals(self):
        # A batch at t=0 serialises: waits 0, s, 2s, ...
        arrivals = np.zeros(4)
        np.testing.assert_allclose(
            lindley_waits(arrivals, 0.25), [0.0, 0.25, 0.5, 0.75]
        )

    def test_variable_services_hand_case(self):
        # arrivals 0, 1, 2; services 3, 1, 1.
        # Job 0: starts 0, done 3.  Job 1: waits 2, done 4.  Job 2: waits 2.
        arrivals = np.array([0.0, 1.0, 2.0])
        services = np.array([3.0, 1.0, 1.0])
        np.testing.assert_allclose(
            lindley_waits(arrivals, services), [0.0, 2.0, 2.0]
        )

    def test_batched_2d_matches_rowwise(self):
        rng = np.random.default_rng(5)
        arrivals = np.cumsum(rng.exponential(1.0, (4, 300)), axis=1)
        services = rng.exponential(0.6, (4, 300))
        batched = lindley_waits(arrivals, services)
        for r in range(4):
            np.testing.assert_array_equal(
                batched[r], lindley_waits(arrivals[r], services[r])
            )

    def test_empty_input(self):
        assert lindley_waits(np.empty(0), 1.0).size == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(QueueingError):
            lindley_waits(np.zeros(3), np.zeros(4))

    def test_scalar_oracle_rejects_2d(self):
        with pytest.raises(QueueingError):
            scalar_lindley_waits(np.zeros((2, 3)), 1.0)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_vectorized_matches_scalar_oracle(self, data):
        """Property: on any arrival/service sequence the two kernels agree
        to 1e-12 of the simulated span."""
        arrivals, services = _random_queue_inputs(data.draw)
        vec = lindley_waits(arrivals, services)
        ora = scalar_lindley_waits(arrivals, services)
        assert waits_agreement(vec, ora, arrivals, services) <= AGREEMENT

    @given(
        n=st.integers(10, 500),
        rate=st.floats(0.1, 10.0),
        d=st.floats(0.01, 10.0),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_deterministic_service_matches_scalar_oracle(
        self, n, rate, d, seed
    ):
        """Property: the deterministic-service fast path (no service array)
        agrees with the oracle too."""
        rng = np.random.default_rng(seed)
        arrivals = np.cumsum(rng.exponential(1.0 / rate, n))
        vec = lindley_waits(arrivals, d)
        ora = scalar_lindley_waits(arrivals, d)
        assert waits_agreement(vec, ora, arrivals, d) <= AGREEMENT

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_waits_nonnegative_and_fifo_consistent(self, data):
        """Property: waits are non-negative and completions are ordered."""
        arrivals, services = _random_queue_inputs(data.draw)
        waits = lindley_waits(arrivals, services)
        assert np.all(waits >= 0.0)
        completions = arrivals + waits + services
        assert np.all(np.diff(completions) >= -1e-9 * completions[-1])


class TestMonteCarloQueue:
    def test_seed_reproducibility(self):
        q1 = MonteCarloQueue.md1(0.7, 1.0, seed=123)
        q2 = MonteCarloQueue.md1(0.7, 1.0, seed=123)
        r1, r2 = q1.run(500, 8), q2.run(500, 8)
        np.testing.assert_array_equal(
            r1.response_percentiles_s, r2.response_percentiles_s
        )
        np.testing.assert_array_equal(r1.utilisation, r2.utilisation)

    def test_different_seeds_differ(self):
        r1 = MonteCarloQueue.md1(0.7, 1.0, seed=1).run(500, 4)
        r2 = MonteCarloQueue.md1(0.7, 1.0, seed=2).run(500, 4)
        assert not np.array_equal(r1.p95_s, r2.p95_s)

    def test_replications_are_independent_streams(self):
        """Replication r's stream is a pure function of (seed, r): the
        first replications are identical regardless of how many more run."""
        q = MonteCarloQueue.md1(0.7, 1.0, seed=7)
        few = q.simulate_waits(200, 3)
        many = q.simulate_waits(200, 6)
        np.testing.assert_array_equal(few, many[:3])

    def test_engines_agree_on_identical_randomness(self):
        q = MonteCarloQueue(0.8, exponential_service(1.0), seed=11)
        vec = q.simulate_waits(2_000, 4)
        ora = q.simulate_waits(2_000, 4, engine="scalar")
        assert np.max(np.abs(vec - ora)) <= AGREEMENT * vec.max()

    def test_run_matches_simulate_waits(self):
        """run()'s on-the-fly reduction equals percentiles of the full
        wait matrix."""
        q = MonteCarloQueue.md1(0.6, 2.0, seed=3)
        n_jobs, n_reps = 1_000, 5
        result = q.run(n_jobs, n_reps)
        waits = q.simulate_waits(n_jobs, n_reps)
        measured = waits[:, result.warmup_jobs:]
        for i, pc in enumerate(TRACKED_PERCENTILES):
            np.testing.assert_allclose(
                result.response_percentiles_s[i],
                np.percentile(measured, pc, axis=1) + 2.0,
            )

    def test_utilisation_tracks_target(self):
        result = MonteCarloQueue.from_utilisation(0.5, 1.0, seed=9).run(
            20_000, 10
        )
        assert result.mean_utilisation == pytest.approx(0.5, rel=0.05)
        assert result.busy_fraction == pytest.approx(0.5, rel=0.05)

    def test_busy_idle_split_covers_span(self):
        result = MonteCarloQueue.md1(0.4, 1.0, seed=13).run(2_000, 6)
        np.testing.assert_allclose(
            result.busy_time_s + result.idle_time_s, result.span_s
        )

    def test_warmup_fraction(self):
        q = MonteCarloQueue.md1(0.5, 1.0, warmup_fraction=0.25)
        assert q.run(400, 2).warmup_jobs == 100
        q0 = MonteCarloQueue.md1(0.5, 1.0, warmup_fraction=0.0)
        assert q0.run(400, 2).warmup_jobs == 0

    def test_service_sampler_used(self):
        result = MonteCarloQueue(
            1.0, uniform_service(0.2, 0.4), seed=17
        ).run(5_000, 4)
        # Mean service 0.3 at rate 1.0: utilisation ~0.3.
        assert result.mean_utilisation == pytest.approx(0.3, rel=0.1)

    def test_from_utilisation_requires_open_interval(self):
        with pytest.raises(QueueingError):
            MonteCarloQueue.from_utilisation(1.0, 1.0)
        with pytest.raises(QueueingError):
            MonteCarloQueue.from_utilisation(0.0, 1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(QueueingError):
            MonteCarloQueue(0.0, 1.0)
        with pytest.raises(QueueingError):
            MonteCarloQueue(1.0, -1.0)
        with pytest.raises(QueueingError):
            MonteCarloQueue(1.0, 1.0, warmup_fraction=1.0)
        with pytest.raises(QueueingError):
            MonteCarloQueue(1.0, 1.0).run(0, 1)
        with pytest.raises(QueueingError):
            MonteCarloQueue(1.0, 1.0).run(10, 0)
        with pytest.raises(QueueingError):
            MonteCarloQueue(1.0, 1.0).simulate_waits(10, 2, engine="magic")

    def test_bad_sampler_shape_rejected(self):
        q = MonteCarloQueue(1.0, lambda rng, size: np.ones(size + 1))
        with pytest.raises(QueueingError):
            q.run(10, 2)

    def test_nonpositive_sampler_rejected(self):
        q = MonteCarloQueue(1.0, lambda rng, size: np.zeros(size))
        with pytest.raises(QueueingError):
            q.run(10, 2)


class TestConfidenceIntervals:
    def _result(self, n_reps=30):
        return MonteCarloQueue.md1(0.7, 1.0, seed=21).run(2_000, n_reps)

    def test_normal_ci_brackets_mean(self):
        result = self._result()
        ci = result.percentile_ci(95.0)
        assert ci.lo < ci.mean < ci.hi
        assert ci.method == "normal"
        assert ci.contains(ci.mean)
        assert not ci.contains(ci.hi + 1.0)
        assert ci.half_width == pytest.approx((ci.hi - ci.lo) / 2.0)

    def test_bootstrap_ci_close_to_normal(self):
        result = self._result(40)
        normal = result.percentile_ci(95.0, level=0.95)
        boot = result.percentile_ci(95.0, level=0.95, method="bootstrap")
        assert boot.method == "bootstrap"
        assert boot.mean == pytest.approx(normal.mean)
        # The two constructions agree on the interval scale.
        assert boot.half_width == pytest.approx(normal.half_width, rel=0.5)

    def test_bootstrap_is_deterministic(self):
        result = self._result()
        a = result.percentile_ci(95.0, method="bootstrap")
        b = result.percentile_ci(95.0, method="bootstrap")
        assert (a.lo, a.hi) == (b.lo, b.hi)

    def test_wider_level_wider_interval(self):
        result = self._result()
        assert (
            result.percentile_ci(95.0, level=0.99).half_width
            > result.percentile_ci(95.0, level=0.90).half_width
        )

    def test_mean_response_ci(self):
        result = self._result()
        ci = result.mean_response_ci()
        assert ci.contains(float(result.mean_response_s.mean()))
        boot = result.mean_response_ci(method="bootstrap")
        assert boot.mean == pytest.approx(ci.mean)

    def test_all_tracked_percentiles_accessible(self):
        result = self._result(5)
        assert np.all(result.p50_s <= result.p95_s)
        assert np.all(result.p95_s <= result.p99_s)

    def test_untracked_percentile_rejected(self):
        with pytest.raises(QueueingError):
            self._result(3).percentile_samples(42.0)

    def test_unknown_method_rejected(self):
        result = self._result(3)
        with pytest.raises(QueueingError):
            result.percentile_ci(95.0, method="magic")
        with pytest.raises(QueueingError):
            result.mean_response_ci(method="magic")

    def test_bad_level_rejected(self):
        with pytest.raises(QueueingError):
            self._result(3).percentile_ci(95.0, level=1.5)

    def test_ci_needs_replications(self):
        result = MonteCarloQueue.md1(0.5, 1.0).run(100, 1)
        with pytest.raises(QueueingError):
            result.percentile_ci(95.0)

    def test_replicated_result_shape_validated(self):
        with pytest.raises(QueueingError):
            ReplicatedResult(
                n_jobs=10,
                n_reps=2,
                warmup_jobs=1,
                arrival_rate=1.0,
                response_percentiles_s=np.zeros((2, 2)),
                mean_response_s=np.zeros(2),
                mean_wait_s=np.zeros(2),
                utilisation=np.zeros(2),
                busy_time_s=np.zeros(2),
                idle_time_s=np.zeros(2),
                span_s=np.zeros(2),
            )

    def test_confidence_interval_dataclass(self):
        ci = ConfidenceInterval(1.0, 0.5, 1.5, 0.95, "normal")
        assert ci.contains(0.5) and ci.contains(1.5)
        assert not ci.contains(1.6)


class TestServiceSamplers:
    def test_exponential_service_mean(self):
        sampler = exponential_service(2.0)
        draws = sampler(np.random.default_rng(1), 50_000)
        assert draws.mean() == pytest.approx(2.0, rel=0.05)

    def test_uniform_service_bounds(self):
        sampler = uniform_service(0.5, 1.5)
        draws = sampler(np.random.default_rng(2), 10_000)
        assert draws.min() >= 0.5 and draws.max() < 1.5

    def test_invalid_sampler_parameters(self):
        with pytest.raises(QueueingError):
            exponential_service(0.0)
        with pytest.raises(QueueingError):
            uniform_service(0.0, 1.0)
        with pytest.raises(QueueingError):
            uniform_service(2.0, 1.0)
