"""Tests for the discrete-event FIFO simulator, including the property
tests cross-validating the analytic M/D/1 results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueingError
from repro.queueing.arrivals import DeterministicArrivals, PoissonArrivals
from repro.queueing.des import QueueSimulator, SimulationResult
from repro.queueing.md1 import MD1Queue
from repro.queueing.mg1 import MM1Queue


class TestDeterministicScenarios:
    """Hand-computable schedules pin the FIFO recursion exactly."""

    def test_no_contention_no_wait(self):
        sim = QueueSimulator(DeterministicArrivals(1.0), 0.5)
        result = sim.run(10.0)
        assert np.all(result.waits == 0.0)

    def test_saturated_arrivals_queue_up(self):
        # Arrivals every 0.5 s, service 1 s: job n waits n * 0.5 s.
        sim = QueueSimulator(DeterministicArrivals(2.0), 1.0)
        result = sim.run(2.0)  # arrivals at 0, 0.5, 1.0, 1.5
        np.testing.assert_allclose(result.waits, [0.0, 0.5, 1.0, 1.5])

    def test_responses_are_wait_plus_service(self):
        sim = QueueSimulator(DeterministicArrivals(2.0), 1.0)
        result = sim.run(2.0)
        np.testing.assert_allclose(result.responses, result.waits + 1.0)

    def test_completions_sorted_fifo(self):
        sim = QueueSimulator(DeterministicArrivals(3.0), 0.7)
        result = sim.run(5.0)
        assert np.all(np.diff(result.completions) > 0)

    def test_busy_time(self):
        sim = QueueSimulator(DeterministicArrivals(1.0), 0.25)
        result = sim.run(4.0)  # 4 jobs
        assert result.busy_time_s == pytest.approx(1.0)

    def test_utilisation_never_above_one(self):
        sim = QueueSimulator(DeterministicArrivals(10.0), 1.0)  # overloaded
        result = sim.run(5.0)
        assert result.utilisation <= 1.0


class TestInterface:
    def test_empty_horizon(self, rng):
        sim = QueueSimulator(PoissonArrivals(0.001, rng), 1.0)
        result = sim.run(0.001)
        assert result.n_jobs in (0, 1)

    def test_empty_result_statistics_raise(self):
        result = SimulationResult(
            arrivals=np.empty(0), waits=np.empty(0), services=np.empty(0),
            horizon_s=1.0,
        )
        assert result.utilisation == 0.0
        with pytest.raises(QueueingError):
            result.empirical_wait_cdf(1.0)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(QueueingError):
            SimulationResult(
                arrivals=np.zeros(2), waits=np.zeros(3), services=np.zeros(2),
                horizon_s=1.0,
            )

    def test_run_jobs_exact_count(self, rng):
        sim = QueueSimulator.md1(50.0, 0.01, rng)
        result = sim.run_jobs(500)
        assert result.n_jobs == 500

    def test_run_jobs_invalid_count(self, rng):
        with pytest.raises(QueueingError):
            QueueSimulator.md1(1.0, 0.1, rng).run_jobs(0)

    def test_random_service_needs_rng(self):
        with pytest.raises(QueueingError):
            QueueSimulator(DeterministicArrivals(1.0), lambda r: 1.0, rng=None)

    def test_nonpositive_service_rejected(self):
        with pytest.raises(QueueingError):
            QueueSimulator(DeterministicArrivals(1.0), 0.0)

    def test_service_model_must_be_positive(self, rng):
        sim = QueueSimulator(
            DeterministicArrivals(1.0), lambda r: -1.0, rng=rng
        )
        with pytest.raises(QueueingError):
            sim.run(3.0)


class TestAgainstAnalytics:
    """The DES is the ground truth the analytic formulas must match."""

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.85])
    def test_md1_mean_wait(self, rho):
        d = 0.02
        q = MD1Queue.from_utilisation(rho, d)
        sim = QueueSimulator.md1(q.arrival_rate, d, np.random.default_rng(17))
        result = sim.run_jobs(40_000)
        assert result.waits.mean() == pytest.approx(q.mean_wait_s, rel=0.08)

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.85])
    def test_md1_wait_cdf(self, rho):
        d = 0.02
        q = MD1Queue.from_utilisation(rho, d)
        sim = QueueSimulator.md1(q.arrival_rate, d, np.random.default_rng(23))
        result = sim.run_jobs(40_000)
        for t in (0.0, 0.5 * d, d, 2 * d, 5 * d):
            assert result.empirical_wait_cdf(t) == pytest.approx(
                q.wait_cdf(t), abs=0.02
            )

    @pytest.mark.parametrize("rho", [0.4, 0.7])
    def test_md1_p95_response(self, rho):
        d = 0.05
        q = MD1Queue.from_utilisation(rho, d)
        sim = QueueSimulator.md1(q.arrival_rate, d, np.random.default_rng(29))
        result = sim.run_jobs(60_000)
        assert float(np.percentile(result.responses, 95)) == pytest.approx(
            q.p95_response_s(), rel=0.05
        )

    def test_mm1_mean_wait(self):
        rho, s = 0.6, 0.02
        q = MM1Queue.from_utilisation(rho, s)
        sim = QueueSimulator(
            PoissonArrivals(q.arrival_rate, np.random.default_rng(31)),
            lambda r: float(r.exponential(s)),
            rng=np.random.default_rng(37),
        )
        result = sim.run_jobs(60_000)
        assert result.waits.mean() == pytest.approx(q.mean_wait_s, rel=0.08)

    @given(rho=st.floats(0.1, 0.8))
    @settings(max_examples=10, deadline=None)
    def test_md1_cdf_property(self, rho):
        """Property: across utilisations, the empirical wait CDF tracks the
        Franx formula at several quantile anchors."""
        d = 1.0
        q = MD1Queue.from_utilisation(rho, d)
        sim = QueueSimulator.md1(q.arrival_rate, d, np.random.default_rng(41))
        result = sim.run_jobs(8_000)
        for t in (0.0, d, 3 * d):
            assert result.empirical_wait_cdf(t) == pytest.approx(
                q.wait_cdf(t), abs=0.05
            )


class _ScriptedService:
    """A stateful service model yielding a scripted sequence of times.

    Stateful on purpose: any re-sampling (e.g. a horizon retry drawing
    services twice) shifts the sequence and changes the waits, so these
    tests detect it.
    """

    def __init__(self, times):
        self._times = list(times)
        self._i = 0

    def __call__(self, rng):
        t = self._times[self._i % len(self._times)]
        self._i += 1
        return t


class TestMultiServerUtilisation:
    """S1 regression: utilisation must use per-server busy spans."""

    def test_unbalanced_servers_fully_busy(self, rng):
        # Two servers, both jobs arrive at t=0; services 1 s and 9 s.
        # Each server is 100% busy over its own span, so utilisation is
        # exactly 1.0.  The old formula divided total busy time (10 s) by
        # n_servers * last completion (2 * 9 s) and reported ~0.556.
        sim = QueueSimulator(
            DeterministicArrivals(1e9),  # arrivals at ~0, ~0: effectively a batch
            _ScriptedService([1.0, 9.0]),
            rng,
            n_servers=2,
        )
        result = sim.run_jobs(2)
        assert result.utilisation == pytest.approx(1.0)

    def test_result_exposes_server_completions(self, rng):
        sim = QueueSimulator(
            PoissonArrivals(2.0, rng),
            lambda r: float(r.exponential(0.4)),
            rng,
            n_servers=3,
        )
        result = sim.run_jobs(200)
        assert result.server_completions_s is not None
        assert result.server_completions_s.shape == (3,)

    def test_server_completions_length_validated(self):
        with pytest.raises(QueueingError):
            SimulationResult(
                arrivals=np.zeros(2), waits=np.zeros(2), services=np.ones(2),
                horizon_s=5.0, n_servers=2,
                server_completions_s=np.array([1.0]),
            )

    def test_legacy_results_fall_back(self):
        # Results built without per-server spans keep the old estimate.
        result = SimulationResult(
            arrivals=np.array([0.0, 0.0]), waits=np.array([0.0, 0.0]),
            services=np.array([1.0, 9.0]), horizon_s=1.0, n_servers=2,
        )
        assert result.utilisation == pytest.approx(10.0 / 18.0)

    def test_single_server_unchanged(self):
        sim = QueueSimulator(DeterministicArrivals(1.0), 0.25)
        result = sim.run(4.0)  # 4 jobs, busy 1 s over the 4 s horizon
        assert result.utilisation == pytest.approx(0.25)


class TestSeedDeterminism:
    """S2 regression: run_jobs randomness depends only on seeds and n."""

    @staticmethod
    def _run(horizon_hint, seed=4242):
        sim = QueueSimulator(
            PoissonArrivals(5.0, np.random.default_rng(seed)),
            _ScriptedService([0.1, 0.3, 0.05, 0.2]),
            np.random.default_rng(seed + 1),
        )
        return sim.run_jobs(300, horizon_hint_s=horizon_hint)

    def test_horizon_hint_does_not_change_randomness(self):
        # Before the fix, a too-small first horizon guess triggered retries
        # that advanced the arrival stream and re-drew services, so the
        # realised sample depended on the hint.  Now arrivals come from one
        # first_n batch and services are drawn once, post-truncation.
        base = self._run(None)
        for hint in (1e-6, 1.0, 1e9):
            other = self._run(hint)
            np.testing.assert_array_equal(base.arrivals, other.arrivals)
            np.testing.assert_array_equal(base.services, other.services)
            np.testing.assert_array_equal(base.waits, other.waits)

    def test_same_seed_same_result(self, rng):
        a = QueueSimulator.md1(
            20.0, 0.03, np.random.default_rng(77)
        ).run_jobs(1_000)
        b = QueueSimulator.md1(
            20.0, 0.03, np.random.default_rng(77)
        ).run_jobs(1_000)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)
        np.testing.assert_array_equal(a.waits, b.waits)


class TestEngineParity:
    """The vectorized fast path against the scalar oracle loop."""

    def test_invalid_engine_rejected(self):
        with pytest.raises(QueueingError):
            QueueSimulator(DeterministicArrivals(1.0), 0.5, engine="magic")

    @pytest.mark.parametrize("engine_pair", [("vectorized", "scalar")])
    def test_md1_engines_agree(self, engine_pair):
        results = [
            QueueSimulator(
                PoissonArrivals(0.7, np.random.default_rng(55)),
                1.0,
                engine=engine,
            ).run_jobs(5_000)
            for engine in engine_pair
        ]
        span = max(1.0, float(results[0].completions[-1]))
        assert (
            np.max(np.abs(results[0].waits - results[1].waits)) / span
            <= 1e-12
        )

    def test_service_model_engines_agree(self):
        results = [
            QueueSimulator(
                PoissonArrivals(2.0, np.random.default_rng(66)),
                lambda r: float(r.exponential(0.45)),
                np.random.default_rng(67),
                engine=engine,
            ).run_jobs(5_000)
            for engine in ("vectorized", "scalar")
        ]
        np.testing.assert_array_equal(
            results[0].services, results[1].services
        )
        span = max(1.0, float(results[0].completions[-1]))
        assert (
            np.max(np.abs(results[0].waits - results[1].waits)) / span
            <= 1e-12
        )
