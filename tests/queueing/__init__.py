"""Test package."""
