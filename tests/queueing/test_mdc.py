"""Tests for the analytic M/D/c queue."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueingError
from repro.queueing.arrivals import PoissonArrivals
from repro.queueing.des import QueueSimulator
from repro.queueing.md1 import MD1Queue
from repro.queueing.mdc import MDCQueue


class TestConstruction:
    def test_stability_uses_per_server_load(self):
        MDCQueue(arrival_rate=1.5, service_time_s=1.0, n_servers=2)  # rho=0.75 ok
        with pytest.raises(QueueingError):
            MDCQueue(arrival_rate=2.0, service_time_s=1.0, n_servers=2)

    def test_invalid_parameters(self):
        with pytest.raises(QueueingError):
            MDCQueue(1.0, 0.0, 2)
        with pytest.raises(QueueingError):
            MDCQueue(-1.0, 1.0, 2)
        with pytest.raises(QueueingError):
            MDCQueue(1.0, 1.0, 0)

    def test_from_utilisation(self):
        q = MDCQueue.from_utilisation(0.6, 2.0, 3)
        assert q.utilisation == pytest.approx(0.6)
        assert q.offered_load == pytest.approx(1.8)


class TestReducesToMD1:
    @pytest.mark.parametrize("rho", [0.2, 0.5, 0.8, 0.95])
    def test_wait_cdf_matches_md1(self, rho):
        mdc = MDCQueue.from_utilisation(rho, 1.0, 1)
        md1 = MD1Queue.from_utilisation(rho, 1.0)
        for t in (0.0, 0.3, 1.0, 2.5, 7.0):
            assert mdc.wait_cdf(t) == pytest.approx(md1.wait_cdf(t), abs=1e-8)

    def test_system_size_matches_md1(self):
        mdc = MDCQueue.from_utilisation(0.7, 1.0, 1)
        md1 = MD1Queue.from_utilisation(0.7, 1.0)
        for n in range(20):
            assert mdc.system_size_pmf(n) == pytest.approx(
                md1.system_size_pmf(n), abs=1e-9
            )

    def test_mean_wait_matches_md1_closed_form(self):
        mdc = MDCQueue.from_utilisation(0.6, 1.0, 1)
        md1 = MD1Queue.from_utilisation(0.6, 1.0)
        assert mdc.mean_wait_s() == pytest.approx(md1.mean_wait_s, rel=1e-4)


class TestStationaryDistribution:
    def test_pmf_sums_to_one(self):
        q = MDCQueue.from_utilisation(0.8, 1.0, 3)
        total = sum(q.system_size_pmf(n) for n in range(500))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_mean_busy_servers_is_offered_load(self):
        """E[min(N, c)] = lambda * D — servers complete work as fast as it
        arrives in steady state."""
        q = MDCQueue.from_utilisation(0.7, 1.0, 4)
        mean_busy = sum(min(n, 4) * q.system_size_pmf(n) for n in range(600))
        assert mean_busy == pytest.approx(q.offered_load, abs=1e-6)

    def test_probability_of_wait(self):
        q = MDCQueue.from_utilisation(0.6, 1.0, 2)
        assert q.probability_of_wait == pytest.approx(
            1.0 - q.system_size_cdf(1), abs=1e-12
        )

    def test_more_servers_less_waiting(self):
        """Pooled capacity at equal per-server load: P(wait) grows with c
        smaller systems... i.e. at the same rho, more servers wait less."""
        p_waits = [
            MDCQueue.from_utilisation(0.8, 1.0, c).probability_of_wait
            for c in (1, 2, 4, 8)
        ]
        assert p_waits == sorted(p_waits, reverse=True)


class TestWaitDistribution:
    def test_atom_at_zero_is_no_full_house(self):
        """P(W = 0) = P(N < c) by PASTA."""
        for rho, c in ((0.4, 2), (0.7, 3), (0.9, 5)):
            q = MDCQueue.from_utilisation(rho, 1.0, c)
            assert q.wait_cdf(0.0) == pytest.approx(
                q.system_size_cdf(c - 1), abs=1e-9
            )

    def test_cdf_monotone(self):
        q = MDCQueue.from_utilisation(0.85, 1.0, 3)
        grid = np.linspace(0, 15, 300)
        values = [q.wait_cdf(float(t)) for t in grid]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_cdf_continuous_at_slot_boundaries(self):
        q = MDCQueue.from_utilisation(0.8, 1.0, 2)
        for k in (1, 2, 5):
            assert q.wait_cdf(float(k)) == pytest.approx(
                q.wait_cdf(k - 1e-9), abs=1e-6
            )

    def test_percentile_roundtrip(self):
        q = MDCQueue.from_utilisation(0.8, 0.5, 3)
        for p in (50.0, 90.0, 95.0, 99.0):
            t = q.wait_percentile(p)
            assert q.wait_cdf(t) == pytest.approx(p / 100.0, abs=1e-6)

    def test_percentile_below_atom_is_zero(self):
        q = MDCQueue.from_utilisation(0.3, 1.0, 4)  # ample capacity
        assert q.wait_percentile(50.0) == 0.0

    def test_response_offsets_service(self):
        q = MDCQueue.from_utilisation(0.7, 0.25, 2)
        assert q.response_percentile(95) == pytest.approx(
            q.wait_percentile(95) + 0.25
        )
        assert q.p95_response_s() == q.response_percentile(95.0)

    def test_zero_load(self):
        q = MDCQueue(0.0, 1.0, 2)
        assert q.wait_cdf(0.0) == 1.0
        assert q.wait_percentile(95) == 0.0


class TestAgainstDES:
    @pytest.mark.parametrize("rho,c", [(0.5, 2), (0.8, 3)])
    def test_wait_cdf_matches_simulation(self, rho, c):
        q = MDCQueue.from_utilisation(rho, 1.0, c)
        sim = QueueSimulator(
            PoissonArrivals(q.arrival_rate, np.random.default_rng(11)),
            1.0,
            n_servers=c,
        ).run_jobs(40_000)
        for t in (0.0, 0.5, 1.0, 3.0):
            assert sim.empirical_wait_cdf(t) == pytest.approx(
                q.wait_cdf(t), abs=0.03
            )

    def test_mean_wait_matches_simulation(self):
        q = MDCQueue.from_utilisation(0.7, 1.0, 2)
        sim = QueueSimulator(
            PoissonArrivals(q.arrival_rate, np.random.default_rng(13)),
            1.0,
            n_servers=2,
        ).run_jobs(100_000)
        assert sim.waits.mean() == pytest.approx(q.mean_wait_s(), rel=0.1)

    @given(rho=st.floats(0.2, 0.85), c=st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_cdf_property_vs_des(self, rho, c):
        """Property: the Franx M/D/c CDF tracks the multi-server DES."""
        q = MDCQueue.from_utilisation(rho, 1.0, c)
        sim = QueueSimulator(
            PoissonArrivals(q.arrival_rate, np.random.default_rng(17)),
            1.0,
            n_servers=c,
        ).run_jobs(8_000)
        for t in (0.0, 1.0, 4.0):
            assert sim.empirical_wait_cdf(t) == pytest.approx(
                q.wait_cdf(t), abs=0.06
            )


class TestPooling:
    def test_pooling_beats_partitioning(self):
        """The classic result the extension exists to show: a pooled
        cluster serving jobs c times faster (M/D/1 with D/c) has lower p95
        than the same capacity split into c independent slots (M/D/c
        with D)."""
        lam = 1.6  # jobs/s
        d = 1.0
        c = 4
        pooled = MD1Queue(lam, d / c)
        partitioned = MDCQueue(lam, d, c)
        assert pooled.p95_response_s() < partitioned.p95_response_s()
