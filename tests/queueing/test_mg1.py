"""Tests for the M/M/1 and M/G/1 analytic queues."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueingError
from repro.queueing.md1 import MD1Queue
from repro.queueing.mg1 import MG1Queue, MM1Queue


class TestMM1:
    def test_mean_response_closed_form(self):
        q = MM1Queue.from_utilisation(0.5, 1.0)
        assert q.mean_response_s == pytest.approx(2.0)

    def test_mean_wait_closed_form(self):
        q = MM1Queue.from_utilisation(0.5, 1.0)
        assert q.mean_wait_s == pytest.approx(1.0)

    def test_stability_enforced(self):
        with pytest.raises(QueueingError):
            MM1Queue(arrival_rate=1.0, mean_service_time_s=1.0)
        with pytest.raises(QueueingError):
            MM1Queue.from_utilisation(1.0, 1.0)

    def test_response_is_exponential(self):
        q = MM1Queue.from_utilisation(0.5, 1.0)
        rate = 1.0 / q.mean_response_s
        for t in (0.5, 1.0, 3.0):
            assert q.response_cdf(t) == pytest.approx(1 - math.exp(-rate * t))

    def test_response_percentile_inverts_cdf(self):
        q = MM1Queue.from_utilisation(0.7, 0.2)
        t = q.response_percentile(95)
        assert q.response_cdf(t) == pytest.approx(0.95)

    def test_wait_atom_at_zero(self):
        q = MM1Queue.from_utilisation(0.6, 1.0)
        assert q.wait_cdf(0.0) == pytest.approx(0.4)
        assert q.wait_percentile(30.0) == 0.0

    def test_wait_percentile_inverts_cdf(self):
        q = MM1Queue.from_utilisation(0.6, 1.0)
        t = q.wait_percentile(90.0)
        assert q.wait_cdf(t) == pytest.approx(0.9)

    def test_negative_times(self):
        q = MM1Queue.from_utilisation(0.6, 1.0)
        assert q.wait_cdf(-1.0) == 0.0
        assert q.response_cdf(-1.0) == 0.0

    def test_invalid_percentile_rejected(self):
        q = MM1Queue.from_utilisation(0.6, 1.0)
        with pytest.raises(QueueingError):
            q.response_percentile(100.0)


class TestMG1:
    def test_scv_zero_matches_md1(self):
        mg1 = MG1Queue(arrival_rate=0.5, mean_service_time_s=1.0, scv=0.0)
        md1 = MD1Queue(arrival_rate=0.5, service_time_s=1.0)
        assert mg1.mean_wait_s == pytest.approx(md1.mean_wait_s)

    def test_scv_one_matches_mm1(self):
        mg1 = MG1Queue(arrival_rate=0.5, mean_service_time_s=1.0, scv=1.0)
        mm1 = MM1Queue(arrival_rate=0.5, mean_service_time_s=1.0)
        assert mg1.mean_wait_s == pytest.approx(mm1.mean_wait_s)

    def test_wait_grows_with_variability(self):
        waits = [
            MG1Queue(0.5, 1.0, scv).mean_wait_s for scv in (0.0, 0.5, 1.0, 4.0)
        ]
        assert waits == sorted(waits)

    def test_invalid_parameters(self):
        with pytest.raises(QueueingError):
            MG1Queue(0.5, 1.0, scv=-0.1)
        with pytest.raises(QueueingError):
            MG1Queue(1.0, 1.0, scv=0.0)
        with pytest.raises(QueueingError):
            MG1Queue(0.5, 0.0, scv=0.0)

    def test_littles_law(self):
        q = MG1Queue(0.4, 1.5, scv=2.0)
        assert q.mean_queue_length == pytest.approx(q.arrival_rate * q.mean_wait_s)

    @given(rho=st.floats(0.05, 0.9), scv=st.floats(0.0, 5.0))
    @settings(max_examples=40)
    def test_pk_formula_property(self, rho, scv):
        """Property: P-K mean wait = rho*S*(1+SCV)/(2(1-rho))."""
        s = 0.7
        q = MG1Queue(rho / s, s, scv)
        expected = rho * s * (1 + scv) / (2 * (1 - rho))
        assert q.mean_wait_s == pytest.approx(expected, rel=1e-9)


class TestOrderings:
    """Deterministic service always beats exponential at equal utilisation."""

    @given(rho=st.floats(0.05, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_md1_wait_half_of_mm1(self, rho):
        d = 0.3
        md1 = MD1Queue.from_utilisation(rho, d)
        mm1 = MM1Queue.from_utilisation(rho, d)
        assert md1.mean_wait_s == pytest.approx(mm1.mean_wait_s / 2, rel=1e-9)

    def test_md1_p95_below_mm1(self):
        for rho in (0.3, 0.6, 0.9):
            md1 = MD1Queue.from_utilisation(rho, 1.0)
            mm1 = MM1Queue.from_utilisation(rho, 1.0)
            assert md1.p95_response_s() < mm1.response_percentile(95)
