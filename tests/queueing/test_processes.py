"""Process plug-ins: bit-identity to the legacy engine, seams, validation.

The processes module's load-bearing promise is that plugging the baseline
specs (Poisson arrivals, deterministic/exponential service) into the
Monte-Carlo engine, the DES and the scheduler reproduces the legacy
float-argument results *bit-for-bit* — the plug-in layer costs nothing
and changes nothing until a non-baseline process is asked for.  These
tests pin that promise, the arrivals.py delegation seam, the
scheduler-trace unification, and the constructors' validation.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import QueueingError
from repro.queueing.arrivals import PoissonArrivals, ProcessArrivals
from repro.queueing.des import QueueSimulator
from repro.queueing.mc import MonteCarloQueue, exponential_service
from repro.queueing.processes import (
    ARRIVAL_KINDS,
    INTERVAL_ARRIVAL_KINDS,
    SERVICE_KINDS,
    DeterministicService,
    ExponentialService,
    FlashCrowd,
    LognormalService,
    MarkovModulatedPoisson,
    ParetoService,
    PoissonProcess,
    TraceDrivenArrivals,
    make_arrivals,
    make_interval_arrivals,
    make_service,
)

_MC_FIELDS = (
    "response_percentiles_s",
    "mean_response_s",
    "mean_wait_s",
    "utilisation",
    "busy_time_s",
    "idle_time_s",
    "span_s",
)


def _assert_runs_equal(a, b):
    for field in _MC_FIELDS:
        assert np.array_equal(getattr(a, field), getattr(b, field)), field


class TestLegacyBitIdentity:
    def test_md1_plugin_matches_float_engine(self):
        legacy = MonteCarloQueue(0.7, 1.3, seed=101).run(800, 5)
        plugged = MonteCarloQueue(
            PoissonProcess(0.7), DeterministicService(1.3), seed=101
        ).run(800, 5)
        _assert_runs_equal(legacy, plugged)

    def test_mm1_plugin_matches_exponential_factory(self):
        legacy = MonteCarloQueue(0.5, exponential_service(1.1), seed=77).run(
            600, 4
        )
        plugged = MonteCarloQueue(
            PoissonProcess(0.5), ExponentialService(1.1), seed=77
        ).run(600, 4)
        _assert_runs_equal(legacy, plugged)

    def test_from_utilisation_matches_plugin(self):
        a = MonteCarloQueue.from_utilisation(0.6, 2.0, seed=5).run(500, 3)
        b = MonteCarloQueue(
            PoissonProcess(0.3), DeterministicService(2.0), seed=5
        ).run(500, 3)
        _assert_runs_equal(a, b)

    def test_plugin_run_is_worker_invariant(self):
        mc = MonteCarloQueue(
            MarkovModulatedPoisson(0.6), ParetoService(1.0), seed=9
        )
        _assert_runs_equal(mc.run(400, 4), mc.run(400, 4, workers=2))


class TestArrivalsSeam:
    """queueing.arrivals delegates its sampling to the process specs."""

    def test_poisson_first_n_matches_legacy_formula(self):
        # The pre-delegation implementation: exponential gaps, cumsum.
        legacy = np.cumsum(np.random.default_rng(42).exponential(1.0 / 2.5, 64))
        delegated = PoissonArrivals(2.5, np.random.default_rng(42)).first_n(64)
        assert np.array_equal(legacy, delegated)

    def test_poisson_horizon_matches_legacy_formula(self):
        rng = np.random.default_rng(7)
        times = PoissonArrivals(4.0, rng).arrival_times(50.0)
        expected = 4.0 * 50.0
        chunk = int(expected + 6.0 * np.sqrt(expected) + 16)
        legacy = np.cumsum(
            np.random.default_rng(7).exponential(0.25, chunk)
        )
        legacy = legacy[legacy < 50.0]
        assert np.array_equal(times, legacy)

    def test_process_arrivals_first_n_is_exact(self):
        spec = FlashCrowd(3.0)
        direct = spec.sample_arrivals(np.random.default_rng(3), 100)
        wrapped = ProcessArrivals(spec, np.random.default_rng(3)).first_n(100)
        assert np.array_equal(direct, wrapped)

    def test_process_arrivals_horizon_sorted_and_bounded(self):
        wrapped = ProcessArrivals(
            MarkovModulatedPoisson(5.0), np.random.default_rng(11)
        )
        times = wrapped.arrival_times(30.0)
        assert times.size > 0
        assert float(times[-1]) < 30.0
        assert np.all(np.diff(times) >= 0.0)

    def test_process_arrivals_rejects_non_spec(self):
        with pytest.raises(QueueingError):
            ProcessArrivals(3.0, np.random.default_rng(0))


class TestSchedulerTraceSeam:
    """The diurnal trace drives arrivals through the same process protocol."""

    def test_same_seed_same_trace(self):
        from repro.extensions.dynamic import diurnal_trace
        from repro.util.rng import RngRegistry

        direct = diurnal_trace(
            n_intervals=24, rng=RngRegistry(77).stream("scheduler/trace"), noise=0.03
        )
        spec = TraceDrivenArrivals.diurnal(
            2.0,
            n_intervals=24,
            rng=RngRegistry(77).stream("scheduler/trace"),
            noise=0.03,
        )
        assert np.array_equal(np.asarray(spec.trace), np.asarray(direct))

    def test_diurnal_spec_long_run_rate_matches(self):
        spec = TraceDrivenArrivals.diurnal(2.0, n_intervals=24)
        times = spec.sample_arrivals(np.random.default_rng(1), 60_000)
        rate = times.size / float(times[-1])
        assert rate == pytest.approx(2.0, rel=0.05)


class TestDesIntegration:
    def test_spec_pair_runs_through_des(self):
        sim = QueueSimulator(
            MarkovModulatedPoisson(2.0),
            LognormalService(0.2),
            np.random.default_rng(4),
        )
        result = sim.run_jobs(500)
        assert result.n_jobs == 500
        assert np.all(result.responses > 0.0)

    def test_deterministic_spec_matches_float_service(self):
        a = QueueSimulator(
            PoissonProcess(1.5), DeterministicService(0.4), np.random.default_rng(8)
        ).run_jobs(300)
        b = QueueSimulator(
            PoissonArrivals(1.5, np.random.default_rng(8)), 0.4
        ).run_jobs(300)
        assert np.array_equal(a.responses, b.responses)

    def test_arrival_spec_requires_rng(self):
        with pytest.raises(QueueingError):
            QueueSimulator(PoissonProcess(1.0), 0.5)


class TestSpecValidation:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_make_arrivals_round_trip(self, kind):
        spec = make_arrivals(kind, 2.0)
        assert spec.label == kind
        assert spec.rate == pytest.approx(2.0)
        times = spec.sample_arrivals(np.random.default_rng(0), 50)
        assert times.shape == (50,)
        assert np.all(np.diff(times) >= 0.0)

    @pytest.mark.parametrize("kind", SERVICE_KINDS)
    def test_make_service_round_trip(self, kind):
        spec = make_service(kind, 0.8)
        assert spec.label == kind
        draws = spec(np.random.default_rng(0), 4000)
        assert draws.shape == (4000,)
        assert np.all(draws > 0.0)
        assert float(np.mean(draws)) == pytest.approx(0.8, rel=0.2)

    @pytest.mark.parametrize("kind", INTERVAL_ARRIVAL_KINDS)
    def test_make_interval_arrivals_round_trip(self, kind):
        model = make_interval_arrivals(kind)
        assert model.label == kind
        model.reset()
        times = model.sample_interval(
            np.random.default_rng(0), 5.0, 10.0, 20.0, 30.0
        )
        assert np.all((times >= 20.0) & (times <= 30.0))
        assert np.all(np.diff(times) >= 0.0)

    def test_unknown_kinds_raise(self):
        with pytest.raises(QueueingError):
            make_arrivals("weibull", 1.0)
        with pytest.raises(QueueingError):
            make_service("weibull", 1.0)
        with pytest.raises(QueueingError):
            make_interval_arrivals("weibull")

    def test_interval_default_is_poisson(self):
        assert make_interval_arrivals(None).label == "poisson"

    def test_bad_parameters_raise(self):
        with pytest.raises(QueueingError):
            PoissonProcess(0.0)
        with pytest.raises(QueueingError):
            MarkovModulatedPoisson(1.0, burstiness=0.5)
        with pytest.raises(QueueingError):
            MarkovModulatedPoisson(1.0, persistence=1.5)
        with pytest.raises(QueueingError):
            FlashCrowd(1.0, spike_fraction=1.0)
        with pytest.raises(QueueingError):
            FlashCrowd(1.0, spike_factor=0.5)
        with pytest.raises(QueueingError):
            TraceDrivenArrivals(1.0, [1.0, -2.0])
        with pytest.raises(QueueingError):
            ParetoService(1.0, tail_index=1.0)
        with pytest.raises(QueueingError):
            LognormalService(1.0, sigma=0.0)
        with pytest.raises(QueueingError):
            DeterministicService(-1.0)

    def test_scv_values(self):
        assert DeterministicService(1.0).scv == 0.0
        assert ExponentialService(1.0).scv == 1.0
        assert LognormalService(1.0, sigma=0.8).scv == pytest.approx(
            np.expm1(0.64)
        )
        assert ParetoService(1.0, tail_index=2.5).scv == pytest.approx(
            1.0 / (2.5 * 0.5)
        )
        assert ParetoService(1.0, tail_index=1.8).scv == np.inf

    def test_specs_pickle(self):
        for spec in (
            PoissonProcess(1.0),
            MarkovModulatedPoisson(1.0),
            FlashCrowd(1.0),
            TraceDrivenArrivals.diurnal(1.0),
            DeterministicService(1.0),
            ExponentialService(1.0),
            ParetoService(1.0),
            LognormalService(1.0),
        ):
            clone = pickle.loads(pickle.dumps(spec))
            assert clone.label == spec.label

    def test_mmpp_regime_rates_average_to_rate(self):
        spec = MarkovModulatedPoisson(2.0, burstiness=4.0)
        lo, hi = spec.regime_rates
        # Equal regime occupancy -> the stationary mean *gap* is the mean
        # of the per-regime gaps, so the harmonic mean of the rates is
        # the configured long-run rate.
        assert 2.0 / (1.0 / lo + 1.0 / hi) == pytest.approx(2.0)
        assert hi / lo == pytest.approx(16.0)
