"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.errors import QueueingError
from repro.queueing.arrivals import (
    BatchArrivals,
    DeterministicArrivals,
    PoissonArrivals,
)


class TestPoisson:
    def test_rate_respected(self, rng):
        times = PoissonArrivals(100.0, rng).arrival_times(100.0)
        assert len(times) == pytest.approx(10_000, rel=0.1)

    def test_sorted_and_bounded(self, rng):
        times = PoissonArrivals(50.0, rng).arrival_times(5.0)
        assert np.all(np.diff(times) > 0)
        assert times[0] >= 0.0
        assert times[-1] < 5.0

    def test_exponential_gaps(self, rng):
        rate = 200.0
        times = PoissonArrivals(rate, rng).arrival_times(200.0)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(1.0 / rate, rel=0.05)
        # Exponential: std == mean.
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.1)

    def test_invalid_parameters(self, rng):
        with pytest.raises(QueueingError):
            PoissonArrivals(0.0, rng)
        with pytest.raises(QueueingError):
            PoissonArrivals(1.0, rng).arrival_times(0.0)

    def test_deterministic_given_stream(self):
        a = PoissonArrivals(10.0, np.random.default_rng(3)).arrival_times(10.0)
        b = PoissonArrivals(10.0, np.random.default_rng(3)).arrival_times(10.0)
        np.testing.assert_array_equal(a, b)


class TestDeterministic:
    def test_even_spacing(self):
        times = DeterministicArrivals(4.0).arrival_times(1.0)
        np.testing.assert_allclose(times, [0.0, 0.25, 0.5, 0.75])

    def test_offset(self):
        times = DeterministicArrivals(2.0, offset_s=0.1).arrival_times(1.0)
        np.testing.assert_allclose(times, [0.1, 0.6])

    def test_offset_beyond_horizon(self):
        assert len(DeterministicArrivals(1.0, offset_s=5.0).arrival_times(1.0)) == 0

    def test_invalid_parameters(self):
        with pytest.raises(QueueingError):
            DeterministicArrivals(0.0)
        with pytest.raises(QueueingError):
            DeterministicArrivals(1.0, offset_s=-1.0)


class TestBatch:
    def test_jobs_repeat_per_batch(self, rng):
        batches = BatchArrivals(batch_rate=10.0, batch_size=4, rng=rng)
        times = batches.arrival_times(50.0)
        assert len(times) % 4 == 0
        # Each epoch appears exactly batch_size times.
        unique, counts = np.unique(times, return_counts=True)
        assert np.all(counts == 4)

    def test_effective_rate(self, rng):
        batches = BatchArrivals(batch_rate=10.0, batch_size=5, rng=rng)
        assert batches.rate == pytest.approx(50.0)
        assert batches.batch_size == 5

    def test_invalid_batch_size(self, rng):
        with pytest.raises(QueueingError):
            BatchArrivals(batch_rate=1.0, batch_size=0, rng=rng)
