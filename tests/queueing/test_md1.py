"""Tests for the analytic M/D/1 queue."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueingError
from repro.queueing.md1 import MD1Queue


class TestConstruction:
    def test_stability_enforced(self):
        with pytest.raises(QueueingError):
            MD1Queue(arrival_rate=10.0, service_time_s=0.1)  # rho = 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(QueueingError):
            MD1Queue(arrival_rate=-1.0, service_time_s=0.1)
        with pytest.raises(QueueingError):
            MD1Queue(arrival_rate=1.0, service_time_s=0.0)

    def test_from_utilisation(self):
        q = MD1Queue.from_utilisation(0.6, 0.05)
        assert q.utilisation == pytest.approx(0.6)
        assert q.arrival_rate == pytest.approx(12.0)

    def test_from_utilisation_range(self):
        with pytest.raises(QueueingError):
            MD1Queue.from_utilisation(1.0, 0.05)
        with pytest.raises(QueueingError):
            MD1Queue.from_utilisation(-0.1, 0.05)


class TestMoments:
    def test_mean_wait_pollaczek_khinchine(self):
        # E[W] = rho*D / (2(1-rho)).
        q = MD1Queue.from_utilisation(0.5, 1.0)
        assert q.mean_wait_s == pytest.approx(0.5)

    def test_mean_response(self):
        q = MD1Queue.from_utilisation(0.5, 1.0)
        assert q.mean_response_s == pytest.approx(1.5)

    def test_littles_law(self):
        q = MD1Queue.from_utilisation(0.7, 0.2)
        assert q.mean_queue_length == pytest.approx(q.arrival_rate * q.mean_wait_s)
        assert q.mean_number_in_system == pytest.approx(
            q.arrival_rate * q.mean_response_s
        )

    def test_zero_load_waits_nothing(self):
        q = MD1Queue(arrival_rate=0.0, service_time_s=1.0)
        assert q.mean_wait_s == 0.0
        assert q.wait_cdf(0.0) == 1.0
        assert q.wait_percentile(95) == 0.0


class TestSystemSizeDistribution:
    def test_p0_is_one_minus_rho(self):
        q = MD1Queue.from_utilisation(0.7, 1.0)
        assert q.system_size_pmf(0) == pytest.approx(0.3)

    def test_p1_closed_form(self):
        # For M/D/1: p1 = (1 - rho)(e^rho - 1).
        rho = 0.6
        q = MD1Queue.from_utilisation(rho, 1.0)
        assert q.system_size_pmf(1) == pytest.approx((1 - rho) * (math.exp(rho) - 1))

    def test_pmf_sums_to_one(self):
        q = MD1Queue.from_utilisation(0.8, 1.0)
        total = sum(q.system_size_pmf(n) for n in range(400))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_mean_matches_littles_law(self):
        q = MD1Queue.from_utilisation(0.7, 1.0)
        mean = sum(n * q.system_size_pmf(n) for n in range(400))
        assert mean == pytest.approx(q.mean_number_in_system, abs=1e-9)

    def test_cdf_monotone(self):
        q = MD1Queue.from_utilisation(0.9, 1.0)
        values = [q.system_size_cdf(n) for n in range(50)]
        assert values == sorted(values)

    def test_negative_size_rejected(self):
        q = MD1Queue.from_utilisation(0.5, 1.0)
        with pytest.raises(QueueingError):
            q.system_size_pmf(-1)
        assert q.system_size_cdf(-1) == 0.0


class TestWaitDistribution:
    def test_atom_at_zero_is_one_minus_rho(self):
        # PASTA: P(W = 0) = P(empty system) = 1 - rho.
        for rho in (0.2, 0.5, 0.8, 0.95):
            q = MD1Queue.from_utilisation(rho, 1.0)
            assert q.wait_cdf(0.0) == pytest.approx(1.0 - rho, abs=1e-12)

    def test_negative_wait_impossible(self):
        q = MD1Queue.from_utilisation(0.5, 1.0)
        assert q.wait_cdf(-1.0) == 0.0

    def test_cdf_reaches_one(self):
        q = MD1Queue.from_utilisation(0.5, 1.0)
        assert q.wait_cdf(50.0) == pytest.approx(1.0, abs=1e-9)

    def test_cdf_monotone_dense_grid(self):
        q = MD1Queue.from_utilisation(0.85, 1.0)
        grid = np.linspace(0, 20, 400)
        values = [q.wait_cdf(float(t)) for t in grid]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_cdf_continuous_at_service_multiples(self):
        """The Franx piecewise form must agree across piece boundaries."""
        q = MD1Queue.from_utilisation(0.8, 1.0)
        for k in (1, 2, 3, 7):
            below = q.wait_cdf(k - 1e-9)
            at = q.wait_cdf(float(k))
            assert at == pytest.approx(below, abs=1e-6)

    def test_mean_from_cdf_matches_closed_form(self):
        """Integrate the complementary CDF and compare with P-K."""
        q = MD1Queue.from_utilisation(0.7, 1.0)
        grid = np.linspace(0, 60, 6001)
        ccdf = np.array([1.0 - q.wait_cdf(float(t)) for t in grid])
        mean = np.trapezoid(ccdf, grid)
        assert mean == pytest.approx(q.mean_wait_s, rel=1e-3)

    def test_stable_at_high_utilisation(self):
        """The positive-term series must not blow up where the classic
        alternating Crommelin series loses all precision."""
        q = MD1Queue.from_utilisation(0.98, 1.0)
        value = q.wait_cdf(100.0)
        assert 0.0 <= value <= 1.0
        assert q.wait_cdf(400.0) > value


class TestPmfCaching:
    def test_pmf_computed_once_per_index(self, monkeypatch):
        """Regression: growing the stationary distribution must extend the
        cached Poisson pmf, not rebuild it from scratch on every call."""
        calls = []
        real = MD1Queue._poisson_pmf

        def counting(self, j):
            calls.append(j)
            return real(self, j)

        monkeypatch.setattr(MD1Queue, "_poisson_pmf", counting)
        q = MD1Queue.from_utilisation(0.95, 1.0)
        q.wait_percentile(95.0)  # many wait_cdf calls, interleaved growth
        q.wait_percentile(99.0)
        assert len(calls) == len(set(calls)), "a pmf index was recomputed"
        assert len(calls) <= len(q._pi) + 10

    def test_p95_fast_and_sane_near_saturation(self):
        """rho = 0.99 needs thousands of stationary terms; with incremental
        pmf growth the percentile is quick and sits between the mean and
        the heavy-traffic exponential bound (p95 -> ln(20) x mean)."""
        q = MD1Queue.from_utilisation(0.99, 1.0)
        p95 = q.wait_percentile(95.0)
        assert q.mean_wait_s < p95 < 4.0 * q.mean_wait_s


class TestPercentiles:
    def test_percentile_inverts_cdf(self):
        q = MD1Queue.from_utilisation(0.8, 0.5)
        for p in (50.0, 90.0, 95.0, 99.0):
            t = q.wait_percentile(p)
            assert q.wait_cdf(t) == pytest.approx(p / 100.0, abs=1e-6)

    def test_response_percentile_offsets_by_service(self):
        q = MD1Queue.from_utilisation(0.6, 0.25)
        assert q.response_percentile(95) == pytest.approx(
            q.wait_percentile(95) + 0.25
        )

    def test_p95_shorthand(self):
        q = MD1Queue.from_utilisation(0.6, 0.25)
        assert q.p95_response_s() == q.response_percentile(95.0)

    def test_percentile_below_atom_is_zero(self):
        q = MD1Queue.from_utilisation(0.3, 1.0)  # P(W=0) = 0.7
        assert q.wait_percentile(50.0) == 0.0

    def test_invalid_percentile_rejected(self):
        q = MD1Queue.from_utilisation(0.5, 1.0)
        with pytest.raises(QueueingError):
            q.wait_percentile(100.0)
        with pytest.raises(QueueingError):
            q.wait_percentile(-5.0)

    def test_percentiles_increase_with_utilisation(self):
        values = [
            MD1Queue.from_utilisation(u, 1.0).p95_response_s()
            for u in (0.3, 0.5, 0.7, 0.9)
        ]
        assert values == sorted(values)
        assert values[-1] > values[0]

    @given(
        rho=st.floats(0.05, 0.95),
        d=st.floats(1e-3, 100.0),
        p=st.floats(5.0, 99.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_percentile_cdf_roundtrip_property(self, rho, d, p):
        q = MD1Queue.from_utilisation(rho, d)
        t = q.wait_percentile(p)
        assert q.wait_cdf(t) >= p / 100.0 - 1e-6
        if t > 0:
            assert q.wait_cdf(t * 0.999) <= p / 100.0 + 1e-6


class TestScalingProperty:
    @given(rho=st.floats(0.1, 0.9), scale=st.floats(0.01, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_time_scale_invariance(self, rho, scale):
        """Property: M/D/1 is scale-free — multiplying D (and dividing
        lambda) scales every time quantile by the same factor."""
        base = MD1Queue.from_utilisation(rho, 1.0)
        scaled = MD1Queue.from_utilisation(rho, scale)
        assert scaled.p95_response_s() == pytest.approx(
            base.p95_response_s() * scale, rel=1e-6
        )
