"""Tests for the fork-join dispatch simulator."""

import numpy as np
import pytest

from repro.errors import QueueingError
from repro.queueing.forkjoin import simulate_fork_join
from repro.queueing.md1 import MD1Queue


def _run(rho=0.6, n_nodes=4, cv=0.0, n_jobs=5000, seed=9):
    q = MD1Queue.from_utilisation(rho, 1.0)
    return simulate_fork_join(
        arrival_rate=q.arrival_rate,
        chunk_time_s=1.0,
        n_nodes=n_nodes,
        cv=cv,
        n_jobs=n_jobs,
        rng=np.random.default_rng(seed),
    )


class TestReducesToMD1:
    @pytest.mark.parametrize("rho", [0.3, 0.7])
    def test_deterministic_chunks_match_md1(self, rho):
        """cv = 0: every node is an identical sample path; the join adds
        nothing and the system IS the single M/D/1 server."""
        q = MD1Queue.from_utilisation(rho, 1.0)
        result = simulate_fork_join(
            arrival_rate=q.arrival_rate,
            chunk_time_s=1.0,
            n_nodes=8,
            cv=0.0,
            n_jobs=40_000,
            rng=np.random.default_rng(3),
        )
        assert result.p95_response_s == pytest.approx(q.p95_response_s(), rel=0.05)
        assert result.responses.mean() == pytest.approx(q.mean_response_s, rel=0.05)

    def test_cv_zero_independent_of_node_count(self):
        a = _run(n_nodes=1, n_jobs=2000)
        b = _run(n_nodes=32, n_jobs=2000)
        assert a.p95_response_s == pytest.approx(b.p95_response_s, rel=1e-9)


class TestStragglerPenalty:
    def test_penalty_grows_with_node_count(self):
        p95s = [_run(cv=0.12, n_nodes=n, n_jobs=15_000).p95_response_s for n in (1, 8, 44)]
        assert p95s == sorted(p95s)
        assert p95s[-1] > p95s[0] * 1.05

    def test_penalty_grows_with_variability(self):
        p95s = [_run(cv=cv, n_nodes=16, n_jobs=15_000).p95_response_s for cv in (0.0, 0.05, 0.15)]
        assert p95s == sorted(p95s)

    def test_responses_at_least_a_chunk(self):
        result = _run(cv=0.1)
        assert (result.responses > 0).all()
        # Deterministic floor does not apply with noise, but the mean must
        # exceed the mean chunk time (queueing + join only add).
        assert result.responses.mean() > result.chunk_time_s

    def test_straggler_factor(self):
        result = _run(cv=0.0, rho=0.1, n_jobs=3000)
        # Light load, no noise: responses ~ one chunk time.
        assert result.straggler_factor == pytest.approx(1.0, rel=0.15)


class TestValidation:
    def test_instability_rejected(self):
        with pytest.raises(QueueingError):
            simulate_fork_join(
                arrival_rate=1.0, chunk_time_s=1.0, n_nodes=4, cv=0.0,
                n_jobs=10, rng=np.random.default_rng(0),
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_time_s": 0.0},
            {"n_nodes": 0},
            {"cv": -0.1},
            {"n_jobs": 0},
            {"arrival_rate": 0.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        defaults = dict(
            arrival_rate=0.5, chunk_time_s=1.0, n_nodes=2, cv=0.0, n_jobs=10,
            rng=np.random.default_rng(0),
        )
        defaults.update(kwargs)
        with pytest.raises(QueueingError):
            simulate_fork_join(**defaults)

    def test_deterministic_given_seed(self):
        a = _run(cv=0.1, seed=4)
        b = _run(cv=0.1, seed=4)
        np.testing.assert_array_equal(a.responses, b.responses)
