"""Tests for the CI benchmark-regression gate (tools/bench_compare.py)."""

from __future__ import annotations

import importlib.util
import json
import subprocess
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "bench_compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _TOOL)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


@pytest.fixture()
def git_repo(tmp_path):
    """A throwaway git repo with a committed baseline BENCH artifact."""
    subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", "commit",
         "-q", "--allow-empty", "-m", "seed"],
        cwd=tmp_path,
        check=True,
    )

    def commit(name, doc):
        (tmp_path / name).write_text(json.dumps(doc), encoding="utf-8")
        subprocess.run(["git", "add", name], cwd=tmp_path, check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", "commit",
             "-q", "-m", f"add {name}"],
            cwd=tmp_path,
            check=True,
        )

    return tmp_path, commit


class TestLookup:
    def test_dotted_paths(self):
        doc = {"a": {"b": {"c": 3}}}
        assert bench_compare.lookup(doc, "a.b.c") == 3.0

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            bench_compare.lookup({"a": 1}, "a.b")
        with pytest.raises(KeyError):
            bench_compare.lookup({}, "missing")


class TestCompare:
    def test_within_tolerance_passes(self):
        rows = bench_compare.compare(
            {"m": 80.0}, {"m": 100.0}, ["m"], tolerance=0.25
        )
        assert rows == [
            {"path": "m", "fresh": 80.0, "baseline": 100.0, "ratio": 0.8,
             "status": "ok"}
        ]

    def test_regression_flagged(self):
        (row,) = bench_compare.compare(
            {"m": 70.0}, {"m": 100.0}, ["m"], tolerance=0.25
        )
        assert row["status"] == "regression"

    def test_improvement_passes(self):
        (row,) = bench_compare.compare({"m": 500.0}, {"m": 100.0}, ["m"])
        assert row["status"] == "ok"

    def test_missing_baseline_path_skipped(self):
        (row,) = bench_compare.compare({"m": 1.0}, {}, ["m"])
        assert row["status"] == "no-baseline"

    def test_missing_fresh_path_raises(self):
        with pytest.raises(KeyError):
            bench_compare.compare({}, {"m": 1.0}, ["m"])


class TestLoadBaseline:
    def test_reads_committed_artifact(self, git_repo):
        repo, commit = git_repo
        commit("BENCH_x.json", {"v": 1})
        doc = bench_compare.load_baseline("BENCH_x.json", repo_root=repo)
        assert doc == {"v": 1}

    def test_absent_artifact_is_none(self, git_repo):
        repo, _commit = git_repo
        assert (
            bench_compare.load_baseline("BENCH_missing.json", repo_root=repo)
            is None
        )


class TestRecordWorkers:
    def test_absent_params_mean_serial(self):
        assert bench_compare.record_workers(None) == 1
        assert bench_compare.record_workers({}) == 1
        assert bench_compare.record_workers("junk") == 1

    def test_explicit_counts(self):
        assert bench_compare.record_workers({"workers": 4}) == 4
        assert bench_compare.record_workers({"workers": 1}) == 1

    def test_garbage_normalises_to_serial(self):
        assert bench_compare.record_workers({"workers": None}) == 1
        assert bench_compare.record_workers({"workers": "many"}) == 1


class TestWorkersMismatch:
    def test_git_baseline_with_other_worker_count_is_refused(
        self, git_repo, capsys
    ):
        """A serial fresh run must never gate against a 2-worker baseline:
        the parallel arm's numbers measure core count, not code."""
        repo, commit = git_repo
        commit(
            "BENCH_scheduler.json",
            {"events_per_s": 100.0, "params": {"workers": 2}},
        )
        (repo / "BENCH_scheduler.json").write_text(
            json.dumps({"events_per_s": 10.0, "params": {"workers": 1}}),
            encoding="utf-8",
        )
        # 10x slower than baseline, but incomparable -> skipped, not failed.
        assert bench_compare.main(["--dir", str(repo)]) == 0
        assert "not comparable" in capsys.readouterr().out

    def test_ledger_baseline_only_uses_matching_worker_records(
        self, monkeypatch, tmp_path
    ):
        from repro.obs.ledger import Ledger, new_record

        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "runs"))
        ledger = Ledger(tmp_path / "runs")
        path = "events_per_s"
        for workers, value in ((1, 1000.0), (2, 50.0), (2, 60.0)):
            ledger.append(
                new_record(
                    "benchmark",
                    "bench/scheduler",
                    params={"workers": workers},
                    scalars={path: value},
                )
            )
        fresh = {
            "benchmark": "scheduler",
            "params": {"workers": 2},
            path: 55.0,
        }
        baseline = bench_compare.load_ledger_baseline(
            "BENCH_scheduler.json", fresh
        )
        # Prior records: workers=1 (1000.0) and workers=2 (50.0); the
        # newest (60.0) is the fresh run itself.  Only the matching
        # workers=2 record feeds the mean.
        assert baseline == {path: 50.0}

    def test_ledger_baseline_none_when_no_matching_priors(
        self, monkeypatch, tmp_path
    ):
        from repro.obs.ledger import Ledger, new_record

        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "runs"))
        ledger = Ledger(tmp_path / "runs")
        for workers in (1, 2):
            ledger.append(
                new_record(
                    "benchmark",
                    "bench/scheduler",
                    params={"workers": workers},
                    scalars={"events_per_s": 100.0},
                )
            )
        fresh = {"benchmark": "scheduler", "params": {"workers": 4}}
        assert (
            bench_compare.load_ledger_baseline("BENCH_scheduler.json", fresh)
            is None
        )


class TestMain:
    def _floor_doc(self, value):
        return {
            "BENCH_sweep.json": {"speedup": {"batched_warm": value}},
            "BENCH_mc.json": {
                "scenarios": {
                    "md1": {"speedup": {"simulate_phase": value}},
                    "service_model": {"speedup": {"simulate_phase": value}},
                }
            },
            "BENCH_scheduler.json": {"events_per_s": value},
        }

    def _write_all(self, repo, docs):
        for name, doc in docs.items():
            (repo / name).write_text(json.dumps(doc), encoding="utf-8")

    def test_clean_pass(self, git_repo, capsys):
        repo, commit = git_repo
        for name, doc in self._floor_doc(100.0).items():
            commit(name, doc)
        self._write_all(repo, self._floor_doc(90.0))
        assert bench_compare.main(["--dir", str(repo)]) == 0
        assert "REGRESSION" not in capsys.readouterr().out

    def test_regression_fails(self, git_repo, capsys):
        repo, commit = git_repo
        for name, doc in self._floor_doc(100.0).items():
            commit(name, doc)
        fresh = self._floor_doc(90.0)
        fresh["BENCH_scheduler.json"]["events_per_s"] = 10.0
        self._write_all(repo, fresh)
        assert bench_compare.main(["--dir", str(repo)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_missing_baseline_skips(self, git_repo, capsys):
        repo, _commit = git_repo
        self._write_all(repo, self._floor_doc(90.0))
        assert bench_compare.main(["--dir", str(repo)]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_missing_fresh_skips(self, git_repo, capsys):
        repo, _commit = git_repo
        assert bench_compare.main(["--dir", str(repo)]) == 0
        assert "fresh artifact missing" in capsys.readouterr().out

    def test_fresh_without_floor_metric_is_error(self, git_repo, capsys):
        repo, commit = git_repo
        commit("BENCH_scheduler.json", {"events_per_s": 100.0})
        (repo / "BENCH_scheduler.json").write_text("{}", encoding="utf-8")
        assert bench_compare.main(["--dir", str(repo)]) == 2

    def test_bad_tolerance_rejected(self, capsys):
        assert bench_compare.main(["--tolerance", "1.5"]) == 2

    def test_repo_floor_metrics_match_committed_artifacts(self):
        """Every floor path must resolve in the committed baselines."""
        root = _TOOL.parent.parent
        for name, paths in bench_compare.FLOOR_METRICS.items():
            doc = bench_compare.load_baseline(name, repo_root=root)
            if doc is None:
                pytest.skip(f"{name} not committed at HEAD")
            for path in paths:
                assert bench_compare.lookup(doc, path) > 0
