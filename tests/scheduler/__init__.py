"""Tests for the online scheduler subsystem."""
