"""Scheduler engine with pluggable interval arrival and service models.

The engine's default behaviour (Poisson counts + uniform placement,
model service times) must be bit-identical to explicitly passing the
``"poisson"`` interval-arrival model and to a deterministic unit
service-multiplier model — the plug-in seam changes nothing until a
non-baseline process is asked for.  Bursty models must change results,
stay deterministic run-to-run (the regime chain resets at run start),
and survive sharded replay at any worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.extensions.dynamic import diurnal_trace
from repro.parallel.sharding import sharded_replay
from repro.queueing.processes import (
    DeterministicService,
    LognormalService,
    ModulatedIntervalArrivals,
    make_interval_arrivals,
)
from repro.scheduler.engine import ClusterScheduler
from repro.workloads.suite import paper_workloads

_TRACE = diurnal_trace(n_intervals=8)
_EP = paper_workloads()["EP"].with_job_size(float(2**26))


def _run(**kwargs):
    from repro.cluster.configuration import ClusterConfiguration

    return ClusterScheduler(
        _EP,
        "jsq",
        _TRACE,
        interval_s=20.0,
        config=ClusterConfiguration.mix({"A9": 6, "K10": 2}),
        seed=7,
        **kwargs,
    ).run()


def _assert_equal(a, b):
    assert a.total_energy_j == b.total_energy_j
    assert (a.p50_s, a.p95_s, a.p99_s) == (b.p50_s, b.p95_s, b.p99_s)
    assert a.jobs_arrived == b.jobs_arrived
    assert a.timeline == b.timeline


class TestBaselineBitIdentity:
    def test_default_equals_explicit_poisson(self):
        _assert_equal(_run(), _run(arrival_model="poisson"))

    def test_default_equals_poisson_instance(self):
        _assert_equal(_run(), _run(arrival_model=make_interval_arrivals("poisson")))

    def test_unit_deterministic_service_model_is_identity(self):
        # DeterministicService(1.0) multiplies every service time by 1
        # and consumes no randomness -> bit-identical to no model at all.
        _assert_equal(_run(), _run(service_model=DeterministicService(1.0)))


class TestNonBaselineModels:
    @pytest.mark.parametrize("kind", ("mmpp", "flash-crowd"))
    def test_bursty_arrivals_change_results_deterministically(self, kind):
        base = _run()
        bursty1 = _run(arrival_model=kind)
        bursty2 = _run(arrival_model=kind)
        _assert_equal(bursty1, bursty2)  # regime state resets per run
        assert bursty1.total_energy_j != base.total_energy_j

    def test_stateful_model_instance_reusable(self):
        model = ModulatedIntervalArrivals()
        _assert_equal(_run(arrival_model=model), _run(arrival_model=model))

    def test_service_model_changes_percentiles(self):
        heavy = _run(service_model=LognormalService(1.0, sigma=1.0))
        assert heavy.p95_s > _run().p95_s

    def test_unknown_arrival_model_raises(self):
        with pytest.raises(Exception):
            _run(arrival_model="weibull")

    def test_bad_service_model_rejected(self):
        with pytest.raises(ReproError):
            _run(service_model=3.0)


class TestShardedReplayWithModels:
    @pytest.mark.parametrize("workers", (1, 2))
    def test_sharded_models_worker_invariant(self, workers):
        from repro.cluster.configuration import ClusterConfiguration

        config = ClusterConfiguration.mix({"A9": 6, "K10": 2})
        runs = [
            sharded_replay(
                _EP,
                "jsq",
                _TRACE,
                n_shards=2,
                workers=w,
                config=config,
                seed=11,
                arrival_model="mmpp",
                service_model=LognormalService(1.0, sigma=0.6),
            )
            for w in (1, workers)
        ]
        a, b = runs
        assert a.timeline == b.timeline
        assert a.total_energy_j == b.total_energy_j
        assert np.array_equal(a.responses_s, b.responses_s)

    def test_sharded_model_differs_from_baseline(self):
        from repro.cluster.configuration import ClusterConfiguration

        config = ClusterConfiguration.mix({"A9": 6, "K10": 2})
        base = sharded_replay(
            _EP, "jsq", _TRACE, n_shards=2, config=config, seed=11
        )
        bursty = sharded_replay(
            _EP,
            "jsq",
            _TRACE,
            n_shards=2,
            config=config,
            seed=11,
            arrival_model="mmpp",
        )
        assert base.total_energy_j != bursty.total_energy_j
