"""Tests for the event-driven trace-replaying scheduling engine."""

import numpy as np
import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import ReproError
from repro.experiments.scheduling import light_transition_costs, scheduling_workloads
from repro.hardware.specs import get_node_spec
from repro.scheduler.autoscaler import PredictiveAutoscaler, build_ladder
from repro.scheduler.engine import ClusterScheduler
from repro.scheduler.powerstate import TransitionCosts


@pytest.fixture(scope="module")
def ep():
    return scheduling_workloads()["EP"]


def fixed_scheduler(ep, trace, policy="jsq", seed=123, **kwargs):
    kwargs.setdefault("config", ClusterConfiguration.mix({"A9": 4}))
    kwargs.setdefault("transition_costs", light_transition_costs())
    kwargs.setdefault("interval_s", 20.0)
    return ClusterScheduler(ep, policy, trace, seed=seed, **kwargs)


def autoscaled_scheduler(ep, trace, policy="jsq", seed=123, **kwargs):
    ladder = build_ladder(
        ep,
        [ClusterConfiguration.mix({"A9": n}) for n in (4, 8, 16)],
    )
    scaler = PredictiveAutoscaler(
        ladder,
        trace,
        ladder[-1].capacity_ops,
        target_utilisation=0.98,
        lookahead=0,
    )
    kwargs.setdefault("transition_costs", light_transition_costs())
    kwargs.setdefault("interval_s", 20.0)
    return ClusterScheduler(ep, policy, trace, autoscaler=scaler, seed=seed, **kwargs)


class TestValidation:
    def test_exactly_one_of_config_and_autoscaler(self, ep):
        trace = np.full(4, 0.5)
        with pytest.raises(ReproError):
            ClusterScheduler(ep, "jsq", trace)
        scheduler = autoscaled_scheduler(ep, trace)
        with pytest.raises(ReproError):
            ClusterScheduler(
                ep,
                "jsq",
                trace,
                config=ClusterConfiguration.mix({"A9": 4}),
                autoscaler=scheduler.autoscaler,
            )

    def test_trace_and_interval_validation(self, ep):
        with pytest.raises(ReproError):
            fixed_scheduler(ep, np.full(4, 0.5), interval_s=0.0)
        with pytest.raises(ReproError):
            fixed_scheduler(ep, [])
        with pytest.raises(ReproError):
            fixed_scheduler(ep, [[0.5, 0.5]])
        with pytest.raises(ReproError):
            fixed_scheduler(ep, [0.5, 0.0])
        with pytest.raises(ReproError):
            fixed_scheduler(ep, [0.5, 1.2])

    def test_park_state_validation(self, ep):
        with pytest.raises(ReproError):
            fixed_scheduler(ep, np.full(4, 0.5), park_state="hibernate")

    def test_missing_per_type_costs_rejected(self, ep):
        with pytest.raises(ReproError, match="K10"):
            fixed_scheduler(
                ep,
                np.full(4, 0.5),
                config=ClusterConfiguration.mix({"A9": 2, "K10": 1}),
                transition_costs={"A9": TransitionCosts()},
            )


class TestFixedMixRun:
    def test_deterministic_for_a_seed(self, ep):
        trace = np.full(6, 0.5)
        a = fixed_scheduler(ep, trace, seed=7).run()
        b = fixed_scheduler(ep, trace, seed=7).run()
        assert a.jobs_arrived == b.jobs_arrived
        assert a.total_energy_j == b.total_energy_j
        assert (a.p50_s, a.p95_s, a.p99_s) == (b.p50_s, b.p95_s, b.p99_s)
        assert a.timeline == b.timeline

    def test_energy_accounting(self, ep):
        trace = np.full(6, 0.5)
        r = fixed_scheduler(ep, trace).run()
        assert r.total_energy_j == pytest.approx(
            r.baseline_energy_j + r.dynamic_energy_j + r.transition_energy_j
        )
        # A fixed mix never cycles nodes: the baseline is pure idle draw.
        assert r.transition_energy_j == 0.0
        assert r.boots == 0 and r.shutdowns == 0
        assert r.baseline_energy_j > 0

    def test_demand_is_tracked(self, ep):
        trace = np.full(8, 0.5)
        r = fixed_scheduler(ep, trace).run()
        mean_u = float(np.mean([s.utilisation for s in r.timeline]))
        assert 0.35 < mean_u < 0.65
        assert r.jobs_arrived > 0
        assert r.jobs_completed <= r.jobs_arrived
        assert sum(n.jobs for n in r.node_stats) == r.jobs_arrived
        assert all(0.0 <= n.utilisation <= 1.0 for n in r.node_stats)
        assert r.rung_switches == 0
        assert r.proportionality is not None
        assert r.mean_power_w == pytest.approx(r.total_energy_j / r.horizon_s)

    def test_every_policy_replays(self, ep):
        trace = np.full(4, 0.4)
        for policy in ("round-robin", "jsq", "po2", "ppr-greedy"):
            r = fixed_scheduler(ep, trace, policy=policy).run()
            assert r.policy_name == policy
            assert r.jobs_arrived > 0


class TestAutoscaledRun:
    def test_walks_the_ladder_and_saves_energy(self, ep):
        trace = np.asarray([0.15, 0.2, 0.5, 0.9, 0.9, 0.5, 0.2, 0.15])
        auto = autoscaled_scheduler(ep, trace).run()
        static = fixed_scheduler(
            ep,
            trace,
            config=ClusterConfiguration.mix({"A9": 16}),
            reference_capacity_ops=auto.reference_capacity_ops,
        ).run()
        assert auto.rung_switches > 0
        powered = [s.n_powered for s in auto.timeline]
        assert min(powered) < max(powered)
        assert auto.total_energy_j < static.total_energy_j

    def test_timeline_telemetry(self, ep):
        trace = np.asarray([0.2, 0.8, 0.2, 0.8])
        r = autoscaled_scheduler(ep, trace).run()
        assert len(r.timeline) == trace.size
        for sample, demand in zip(r.timeline, trace):
            assert sample.demand_fraction == pytest.approx(demand)
            assert sample.n_active <= sample.n_powered <= 16
            assert sample.power_w >= 0.0


class TestOffIdleHysteresis:
    """The acceptance scenario: heavy transition costs must stop thrashing.

    With the heavyweight default costs (10 s boot, 5 s shutdown, both at
    nameplate power) a node's off/on break-even exceeds the 20 s parks a
    fast-oscillating demand produces, so the economic ``auto`` rule keeps
    released nodes IDLE — while forcing ``off`` parks boots them over and
    over and pays for it in both boot count and energy.
    """

    def run_oscillating(self, ep, park_state):
        trace = np.tile([0.9, 0.15], 6)
        heavy = TransitionCosts.scaled(get_node_spec("A9").power.nameplate_peak_w)
        return autoscaled_scheduler(
            ep, trace, seed=7, transition_costs=heavy, park_state=park_state
        ).run()

    def test_auto_prefers_idle_over_thrashing(self, ep):
        auto = self.run_oscillating(ep, "auto")
        forced_off = self.run_oscillating(ep, "off")
        assert auto.boots < forced_off.boots
        assert forced_off.boots >= 12  # every trough cycles the released nodes
        assert auto.total_energy_j < forced_off.total_energy_j
        # Identical arrivals: the comparison is purely about park choices.
        assert auto.jobs_arrived == forced_off.jobs_arrived

    def test_forced_idle_never_cycles(self, ep):
        idle = self.run_oscillating(ep, "idle")
        assert idle.boots == 0
        assert idle.shutdowns == 0
