"""Tests for the capacity ladder and the online autoscalers."""

import numpy as np
import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import ReproError
from repro.extensions.dynamic import scaled_candidates
from repro.model.batched import config_constants
from repro.scheduler.autoscaler import (
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    Rung,
    build_ladder,
)
from repro.workloads.suite import workload


@pytest.fixture(scope="module")
def ep():
    return workload("EP")


def synthetic_ladder():
    """Three rungs with round numbers: capacity n, idle n, peak 2n."""
    return tuple(
        Rung(
            config=ClusterConfiguration.mix({"A9": n}),
            capacity_ops=float(n),
            idle_w=float(n),
            dyn_w=float(n),
        )
        for n in (4, 8, 16)
    )


class TestRung:
    def test_derived_quantities(self):
        rung = Rung(
            config=ClusterConfiguration.mix({"A9": 1}),
            capacity_ops=100.0,
            idle_w=10.0,
            dyn_w=30.0,
        )
        assert rung.peak_w == pytest.approx(40.0)
        assert rung.utilisation_at(50.0) == pytest.approx(0.5)
        assert rung.utilisation_at(250.0) == 1.0  # clipped
        assert rung.power_at(50.0) == pytest.approx(25.0)
        assert rung.covers(95.0, headroom=0.95)
        assert not rung.covers(96.0, headroom=0.95)
        assert "A9" in rung.label


class TestBuildLadder:
    def test_needs_candidates(self, ep):
        with pytest.raises(ReproError):
            build_ladder(ep, [])

    def test_sorted_by_capacity(self, ep):
        ladder = build_ladder(ep, scaled_candidates(1000.0, a9_step=4, k10_step=1))
        caps = [r.capacity_ops for r in ladder]
        assert caps == sorted(caps)
        assert len(ladder) >= 2

    def test_dominance_filter_preserves_min_power_covering(self, ep):
        """The optimum-preservation argument, checked numerically.

        At every required load, the cheapest covering rung of the filtered
        ladder must match the cheapest covering candidate overall — the
        filter may only drop configurations that are never the optimum.
        """
        candidates = scaled_candidates(1000.0, a9_step=4, k10_step=1)
        all_rungs = [
            Rung(c, *config_constants(ep, c)) for c in candidates
        ]
        ladder = build_ladder(ep, candidates)
        assert len(ladder) <= len(all_rungs)
        top = max(r.capacity_ops for r in all_rungs)
        for frac in np.linspace(0.05, 1.0, 20):
            need = frac * top
            best_all = min(r.power_at(need) for r in all_rungs if r.covers(need))
            best_kept = min(r.power_at(need) for r in ladder if r.covers(need))
            assert best_kept == pytest.approx(best_all)


class TestReactiveAutoscaler:
    def test_validation(self):
        ladder = synthetic_ladder()
        with pytest.raises(ReproError):
            ReactiveAutoscaler(())
        with pytest.raises(ReproError):
            ReactiveAutoscaler(ladder, high=0.5, low=0.6)
        with pytest.raises(ReproError):
            ReactiveAutoscaler(ladder, cooldown_ticks=-1)

    def test_steps_up_on_high_utilisation(self):
        scaler = ReactiveAutoscaler(synthetic_ladder(), cooldown_ticks=0)
        assert scaler.decide(0, 0.95, 0) == 1
        assert scaler.decide(1, 0.95, 2) == 2  # already at the top

    def test_cooldown_holds_after_a_change(self):
        scaler = ReactiveAutoscaler(synthetic_ladder(), cooldown_ticks=2)
        assert scaler.decide(0, 0.95, 0) == 1
        # Two noisy samples inside the cooldown change nothing.
        assert scaler.decide(1, 0.95, 1) == 1
        assert scaler.decide(2, 0.95, 1) == 1
        assert scaler.decide(3, 0.95, 1) == 2

    def test_step_down_guarded_by_the_rung_below(self):
        scaler = ReactiveAutoscaler(
            synthetic_ladder(), high=0.85, low=0.50, cooldown_ticks=0
        )
        # u=0.45 on capacity 8 is 3.6 served ops; the rung below holds
        # 4 * 0.85 = 3.4 — stepping down would instantly re-trigger.
        assert scaler.decide(0, 0.45, 1) == 1
        # u=0.40 serves 3.2 <= 3.4, so the step down is safe.
        assert scaler.decide(1, 0.40, 1) == 0
        assert scaler.decide(2, 0.10, 0) == 0  # already at the bottom

    def test_reset_clears_cooldown(self):
        scaler = ReactiveAutoscaler(synthetic_ladder(), cooldown_ticks=3)
        scaler.decide(0, 0.95, 0)
        scaler.reset()
        assert scaler.decide(1, 0.95, 1) == 2

    def test_no_forecast(self):
        scaler = ReactiveAutoscaler(synthetic_ladder())
        assert scaler.expected_park_s(0, 0, 20.0) is None


class TestPredictiveAutoscaler:
    def test_validation(self):
        ladder = synthetic_ladder()
        with pytest.raises(ReproError):
            PredictiveAutoscaler(ladder, [], 16.0)
        with pytest.raises(ReproError):
            PredictiveAutoscaler(ladder, [0.5], 0.0)
        with pytest.raises(ReproError):
            PredictiveAutoscaler(ladder, [0.5], 16.0, target_utilisation=1.5)
        with pytest.raises(ReproError):
            PredictiveAutoscaler(ladder, [0.5], 16.0, lookahead=-1)

    def test_choose_is_min_power_covering(self):
        scaler = PredictiveAutoscaler(
            synthetic_ladder(), [0.5], 16.0, target_utilisation=1.0
        )
        assert scaler.choose(3.0) == 0
        assert scaler.choose(6.0) == 1
        assert scaler.choose(12.0) == 2
        # Demand beyond every rung falls back to the top.
        assert scaler.choose(100.0) == 2

    def test_decide_follows_the_trace_not_the_observation(self):
        trace = [0.2, 0.9, 0.2]
        scaler = PredictiveAutoscaler(
            synthetic_ladder(), trace, 16.0, target_utilisation=1.0, lookahead=0
        )
        assert scaler.decide(0, 0.99, 2) == 0  # trace says 3.2 ops
        assert scaler.decide(1, 0.0, 0) == 2  # trace says 14.4 ops

    def test_lookahead_boots_before_the_rising_edge(self):
        trace = [0.2, 0.9, 0.2]
        eager = PredictiveAutoscaler(
            synthetic_ladder(), trace, 16.0, target_utilisation=1.0, lookahead=1
        )
        assert eager.decide(0, 0.0, 0) == 2  # sees the 0.9 coming

    def test_expected_park_scans_the_trace(self):
        trace = [0.2, 0.2, 0.9, 0.2]
        scaler = PredictiveAutoscaler(
            synthetic_ladder(), trace, 16.0, target_utilisation=1.0, lookahead=0
        )
        # The bottom rung chosen at tick 0 is outgrown at tick 2.
        assert scaler.expected_park_s(0, 0, 20.0) == pytest.approx(40.0)
        # The top rung is never outgrown: parked to the end of the trace.
        assert scaler.expected_park_s(0, 2, 20.0) == pytest.approx(80.0)
