"""Tests for the per-node power-state machine and transition costs."""

import pytest

from repro.errors import ReproError
from repro.scheduler.powerstate import (
    NodePowerState,
    PowerStateMachine,
    TransitionCosts,
)

IDLE_W = 2.0
LIGHT = TransitionCosts(
    boot_latency_s=2.0,
    boot_energy_j=10.0,
    shutdown_latency_s=1.0,
    shutdown_energy_j=5.0,
)


class TestTransitionCosts:
    def test_validation(self):
        with pytest.raises(ReproError):
            TransitionCosts(boot_latency_s=-1.0)
        with pytest.raises(ReproError):
            TransitionCosts(resume_energy_j=-0.1)

    def test_scaled_charges_nameplate_power(self):
        c = TransitionCosts.scaled(5.0, boot_latency_s=4.0, shutdown_latency_s=2.0)
        assert c.boot_energy_j == pytest.approx(20.0)
        assert c.shutdown_energy_j == pytest.approx(10.0)
        assert c.resume_energy_j == 0.0
        with pytest.raises(ReproError):
            TransitionCosts.scaled(-1.0)

    def test_off_breakeven(self):
        c = TransitionCosts(boot_energy_j=10.0, shutdown_energy_j=5.0)
        assert c.off_breakeven_s(idle_w=3.0) == pytest.approx(5.0)
        # Residual off draw narrows the saving, pushing the break-even out.
        assert c.off_breakeven_s(idle_w=3.0, off_w=1.0) == pytest.approx(7.5)
        assert c.off_breakeven_s(idle_w=1.0, off_w=1.0) == float("inf")


class TestStateMachine:
    def test_constructor_validation(self):
        with pytest.raises(ReproError):
            PowerStateMachine(-1.0, LIGHT)
        with pytest.raises(ReproError):
            PowerStateMachine(1.0, LIGHT, off_w=2.0)
        with pytest.raises(ReproError):
            PowerStateMachine(IDLE_W, LIGHT, initial=NodePowerState.BOOTING)

    def test_powered_property(self):
        assert not NodePowerState.OFF.powered
        for s in (
            NodePowerState.ACTIVE,
            NodePowerState.IDLE,
            NodePowerState.BOOTING,
            NodePowerState.SHUTTING,
        ):
            assert s.powered

    def test_boot_charges_energy_and_latency(self):
        m = PowerStateMachine(IDLE_W, LIGHT, initial=NodePowerState.OFF)
        ready = m.request_active(10.0)
        assert ready == pytest.approx(12.0)
        assert m.state is NodePowerState.BOOTING
        assert m.ready_at() == pytest.approx(12.0)
        assert m.boot_count == 1
        assert m.transition_energy_j == pytest.approx(10.0)
        # A repeated request mid-boot reports the existing ready time.
        assert m.request_active(11.0) == pytest.approx(12.0)
        m.advance(12.0)
        assert m.state is NodePowerState.ACTIVE
        assert m.request_active(13.0) == pytest.approx(13.0)

    def test_idle_resume_is_free_by_default(self):
        m = PowerStateMachine(IDLE_W, LIGHT)
        m.request_idle(5.0)
        assert m.state is NodePowerState.IDLE
        m.request_idle(6.0)  # idempotent
        assert m.request_active(6.0) == pytest.approx(6.0)
        assert m.state is NodePowerState.ACTIVE
        assert m.boot_count == 0

    def test_resume_latency_goes_through_booting(self):
        costs = TransitionCosts(resume_latency_s=0.5, resume_energy_j=1.0)
        m = PowerStateMachine(IDLE_W, costs)
        m.request_idle(0.0)
        ready = m.request_active(4.0)
        assert ready == pytest.approx(4.5)
        assert m.state is NodePowerState.BOOTING
        assert m.transition_energy_j == pytest.approx(1.0)

    def test_activation_mid_shutdown_finishes_then_boots(self):
        m = PowerStateMachine(IDLE_W, LIGHT)
        t_off = m.request_off(0.0)
        assert t_off == pytest.approx(1.0)
        assert m.state is NodePowerState.SHUTTING
        assert m.request_off(0.2) == pytest.approx(1.0)  # idempotent
        ready = m.request_active(0.5)
        assert ready == pytest.approx(1.0 + LIGHT.boot_latency_s)
        assert m.shutdown_count == 1
        assert m.boot_count == 1

    def test_cannot_park_off_node_idle(self):
        m = PowerStateMachine(IDLE_W, LIGHT, initial=NodePowerState.OFF)
        with pytest.raises(ReproError):
            m.request_idle(0.0)
        assert m.request_off(0.0) == pytest.approx(0.0)  # already off

    def test_park_during_boot_waits_for_the_boot(self):
        m = PowerStateMachine(IDLE_W, LIGHT, initial=NodePowerState.OFF)
        m.request_active(0.0)
        m.request_idle(1.0)
        assert m.state is NodePowerState.IDLE
        assert m.state_at(1.5) is NodePowerState.BOOTING
        assert m.state_at(2.0) is NodePowerState.IDLE

    def test_baseline_energy_integrates_states(self):
        m = PowerStateMachine(IDLE_W, LIGHT, off_w=0.5)
        m.request_idle(10.0)
        m.request_off(20.0)
        m.advance(21.0)
        assert m.state is NodePowerState.OFF
        # 21 s powered at 2 W, the shutdown lump, then 4 s off at 0.5 W.
        assert m.baseline_energy_j(25.0) == pytest.approx(21 * 2.0 + 5.0 + 4 * 0.5)
        with pytest.raises(ReproError):
            m.baseline_energy_j(-1.0)

    def test_instant_shutdown(self):
        costs = TransitionCosts(shutdown_latency_s=0.0, shutdown_energy_j=2.0)
        m = PowerStateMachine(IDLE_W, costs)
        assert m.request_off(3.0) == pytest.approx(3.0)
        assert m.state is NodePowerState.OFF
        assert m.transition_energy_j == pytest.approx(2.0)

    def test_prescheduled_park_keeps_segments_monotone(self):
        m = PowerStateMachine(IDLE_W, LIGHT)
        # Pre-schedule a park for a future drain time, then reclaim the
        # node before that time arrives: the segment clock must not move
        # backwards.
        m.request_idle(30.0)
        m.request_active(15.0)
        starts = [t for t, _ in m.segments]
        assert starts == sorted(starts)
        assert m.state is NodePowerState.ACTIVE
        assert m.switch_count == len(m.segments) - 1
