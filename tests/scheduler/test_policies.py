"""Unit tests for the dispatch policies, on protocol-only fake nodes."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.scheduler.policies import (
    POLICY_NAMES,
    JoinShortestQueue,
    PowerOfTwoChoices,
    PPRGreedy,
    RoundRobin,
    make_policy,
)


class FakeNode:
    """Minimal stand-in implementing the policy node protocol."""

    def __init__(self, name, spec_name="A9", backlog=0.0, ppr=1.0, service=1.0):
        self.name = name
        self.spec_name = spec_name
        self.service_time_s = service
        self._backlog = float(backlog)
        self._ppr = float(ppr)

    def backlog_s(self, now):
        return self._backlog

    def queue_len(self, now):
        return int(self._backlog / self.service_time_s)

    def utilisation_estimate(self, now):
        return min(self._backlog / 5.0, 1.0)

    def ppr_at(self, u):
        return self._ppr


def nodes_named(*names, **kwargs):
    return [FakeNode(name, **kwargs) for name in names]


class TestRoundRobin:
    def test_cycles_in_order(self):
        pool = nodes_named("a", "b", "c")
        rr = RoundRobin()
        picks = [rr.select(pool, 0.0).name for _ in range(5)]
        assert picks == ["a", "b", "c", "a", "b"]

    def test_reset_rewinds_cursor(self):
        pool = nodes_named("a", "b")
        rr = RoundRobin()
        rr.select(pool, 0.0)
        rr.reset()
        assert rr.select(pool, 0.0).name == "a"

    def test_empty_pool_rejected(self):
        with pytest.raises(ReproError):
            RoundRobin().select([], 0.0)


class TestJoinShortestQueue:
    def test_least_backlog_wins(self):
        pool = [
            FakeNode("a", backlog=3.0),
            FakeNode("b", backlog=1.0),
            FakeNode("c", backlog=2.0),
        ]
        assert JoinShortestQueue().select(pool, 0.0).name == "b"

    def test_ties_break_on_name(self):
        pool = [FakeNode("b", backlog=1.0), FakeNode("a", backlog=1.0)]
        assert JoinShortestQueue().select(pool, 0.0).name == "a"


class TestPowerOfTwoChoices:
    def test_requires_rng(self):
        with pytest.raises(ReproError):
            PowerOfTwoChoices().select(nodes_named("a", "b"), 0.0, rng=None)

    def test_single_node_shortcut(self):
        pool = nodes_named("only")
        pick = PowerOfTwoChoices().select(pool, 0.0, rng=np.random.default_rng(0))
        assert pick.name == "only"

    def test_two_nodes_picks_lesser_backlog(self):
        pool = [FakeNode("a", backlog=5.0), FakeNode("b", backlog=1.0)]
        po2 = PowerOfTwoChoices()
        # With two nodes both are always sampled, so the global minimum wins.
        for seed in range(5):
            assert po2.select(pool, 0.0, rng=np.random.default_rng(seed)).name == "b"

    def test_tie_breaks_on_name(self):
        pool = [FakeNode("b", backlog=2.0), FakeNode("a", backlog=2.0)]
        pick = PowerOfTwoChoices().select(pool, 0.0, rng=np.random.default_rng(3))
        assert pick.name == "a"

    def test_deterministic_for_a_seeded_rng(self):
        pool = [FakeNode(f"n{i}", backlog=float(i)) for i in range(6)]
        picks_a = [
            PowerOfTwoChoices().select(pool, 0.0, rng=np.random.default_rng(42)).name
            for _ in range(1)
        ]
        picks_b = [
            PowerOfTwoChoices().select(pool, 0.0, rng=np.random.default_rng(42)).name
            for _ in range(1)
        ]
        assert picks_a == picks_b


class TestPPRGreedy:
    def test_validation(self):
        with pytest.raises(ReproError):
            PPRGreedy(u_cap=0.0)
        with pytest.raises(ReproError):
            PPRGreedy(u_cap=1.5)
        with pytest.raises(ReproError):
            PPRGreedy(window_s=0.0)
        with pytest.raises(ReproError):
            PPRGreedy(u_eval=0.0)

    def test_routes_to_best_ppr_type(self):
        pool = [
            FakeNode("a0", spec_name="A9", backlog=0.0, ppr=2.0),
            FakeNode("a1", spec_name="A9", backlog=0.0, ppr=2.0),
            FakeNode("k0", spec_name="K10", backlog=0.5, ppr=5.0),
        ]
        # K10 wins on PPR even though an A9 has the shorter queue.
        assert PPRGreedy().select(pool, 0.0).name == "k0"

    def test_jsq_within_the_winning_type(self):
        pool = [
            FakeNode("k0", spec_name="K10", backlog=3.0, ppr=5.0),
            FakeNode("k1", spec_name="K10", backlog=1.0, ppr=5.0),
            FakeNode("a0", spec_name="A9", backlog=0.0, ppr=2.0),
        ]
        assert PPRGreedy().select(pool, 0.0).name == "k1"

    def test_saturated_type_is_closed(self):
        # One K10 with window_s=5 has a 5 s horizon; backlog 4.9 puts it at
        # u = 0.98 >= u_cap, so jobs overflow to the A9 group.
        pool = [
            FakeNode("k0", spec_name="K10", backlog=4.9, ppr=5.0),
            FakeNode("a0", spec_name="A9", backlog=0.2, ppr=2.0),
        ]
        assert PPRGreedy(u_cap=0.9, window_s=5.0).select(pool, 0.0).name == "a0"

    def test_all_types_closed_degrades_to_global_jsq(self):
        pool = [
            FakeNode("k0", spec_name="K10", backlog=5.0, ppr=5.0),
            FakeNode("a0", spec_name="A9", backlog=4.8, ppr=2.0),
        ]
        pick = PPRGreedy(u_cap=0.9, window_s=5.0).select(pool, 0.0)
        assert pick.name == "a0"  # smallest backlog overall


class TestMakePolicy:
    def test_every_name_constructs(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_kwargs_reach_ppr_greedy(self):
        policy = make_policy("ppr-greedy", u_cap=0.5, u_eval=0.8)
        assert policy.u_cap == 0.5
        assert policy.u_eval == 0.8

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            make_policy("fifo")
