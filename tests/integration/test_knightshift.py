"""Tests for the KnightShift server-level heterogeneity baseline."""

import pytest

from repro.core.metrics import analyze_curve
from repro.errors import ModelError
from repro.extensions.knightshift import (
    KnightShiftCluster,
    KnightShiftCurve,
    compare_with_internode,
    knightshift_node,
)


def _curve(**overrides):
    params = dict(
        primary_idle_w=45.0,
        primary_peak_w=69.0,
        knight_idle_w=1.8,
        knight_peak_w=2.4,
        knight_capability=0.15,
        primary_sleep_w=0.5,
    )
    params.update(overrides)
    return KnightShiftCurve(**params)


class TestKnightShiftCurve:
    def test_idle_is_knight_plus_sleep(self):
        c = _curve()
        assert c.idle_w == pytest.approx(2.3)

    def test_peak_is_primary_plus_knight_idle(self):
        c = _curve()
        assert c.peak_w == pytest.approx(70.8)

    def test_knight_regime_power(self):
        c = _curve()
        # At half the knight's capability: halfway up the knight's range.
        p = c.power_w(0.075)
        assert p == pytest.approx(0.5 + 1.8 + 0.5 * (2.4 - 1.8))

    def test_primary_regime_power(self):
        c = _curve()
        p = c.power_w(0.5)
        assert p == pytest.approx(1.8 + 45.0 + 0.5 * (69.0 - 45.0))

    def test_discontinuity_at_handoff(self):
        """Waking the primary costs a power step — the KnightShift papers'
        hand-off penalty."""
        c = _curve()
        below = c.power_w(c.knight_capability)
        above = c.power_w(c.knight_capability + 1e-9)
        assert above > below + 40.0

    def test_far_more_proportional_than_linear_offset(self):
        c = _curve()
        report = analyze_curve(c)
        # The knight regime slashes low-utilisation power: EPM well above
        # the linear-offset server's 1 - IPR = 1 - 45/69 = 0.35.
        assert report.epm > 0.45

    def test_validation(self):
        with pytest.raises(ModelError):
            _curve(knight_capability=0.0)
        with pytest.raises(ModelError):
            _curve(knight_capability=1.0)
        with pytest.raises(ModelError):
            _curve(primary_peak_w=10.0)  # below idle


class TestKnightShiftNode:
    def test_built_from_calibrated_workload(self, workloads):
        curve = knightshift_node(workloads["EP"])
        # Capability = A9 rate / K10 rate for EP (~15%).
        assert 0.05 < curve.knight_capability < 0.35
        assert curve.primary_idle_w == pytest.approx(45.0)
        assert curve.knight_idle_w == pytest.approx(1.8)

    def test_knight_must_be_slower(self, workloads):
        with pytest.raises(ModelError):
            knightshift_node(workloads["EP"], primary="A9", knight="K10")


class TestCluster:
    def test_report_matches_curve(self, workloads):
        curve = knightshift_node(workloads["EP"])
        fleet = KnightShiftCluster(
            curve=curve, n_servers=10, peak_throughput_per_server=1e6
        )
        assert fleet.report().epm == pytest.approx(analyze_curve(curve).epm)

    def test_power_scales_with_servers(self, workloads):
        curve = knightshift_node(workloads["EP"])
        fleet = KnightShiftCluster(
            curve=curve, n_servers=10, peak_throughput_per_server=1e6
        )
        assert fleet.power_w(0.5) == pytest.approx(10 * curve.power_w(0.5))

    def test_validation(self, workloads):
        curve = knightshift_node(workloads["EP"])
        with pytest.raises(ModelError):
            KnightShiftCluster(curve=curve, n_servers=0, peak_throughput_per_server=1e6)


class TestComparison:
    def test_related_work_tension(self, workloads):
        """KnightShift wins proportionality; inter-node wins PPR at high
        utilisation for an A9-favouring workload."""
        result = compare_with_internode(workloads["EP"])
        assert result["knightshift"]["epm"] > result["internode"]["epm"]
        assert result["internode"]["ppr@100%"] > result["knightshift"]["ppr@100%"]

    def test_knight_regime_ppr_spike(self, workloads):
        """At 10% utilisation the knight serves alone at A9-class
        efficiency — KnightShift's entire point."""
        result = compare_with_internode(workloads["EP"])
        assert result["knightshift"]["ppr@10%"] > result["internode"]["ppr@10%"]

    def test_budget_too_small(self, workloads):
        with pytest.raises(ModelError):
            compare_with_internode(workloads["EP"], budget_w=10.0)
