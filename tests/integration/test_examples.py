"""Smoke tests: every example script must run clean end to end.

Examples are part of the public deliverable; a refactor that breaks one
should fail the suite, not a user.  Each runs in a subprocess with the
repository's source tree on the path.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str, timeout: float = 300.0):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Energy-proportionality metrics" in result.stdout
        assert "95th-percentile response time" in result.stdout

    def test_quickstart_other_workload(self):
        result = _run("quickstart.py", "x264")
        assert result.returncode == 0, result.stderr
        assert "x264" in result.stdout

    def test_quickstart_rejects_unknown(self):
        result = _run("quickstart.py", "doom")
        assert result.returncode != 0

    def test_capacity_planning(self):
        result = _run("capacity_planning.py")
        assert result.returncode == 0, result.stderr
        assert "sweet spot" in result.stdout
        assert "Recommendation" in result.stdout

    def test_latency_sla_explorer(self):
        result = _run("latency_sla_explorer.py")
        assert result.returncode == 0, result.stderr
        assert "SLA" in result.stdout
        assert "simulated p95" in result.stdout

    def test_custom_node_type(self):
        result = _run("custom_node_type.py")
        assert result.returncode == 0, result.stderr
        assert "MyA15" in result.stdout

    def test_memcached_request_latency(self):
        result = _run("memcached_request_latency.py")
        assert result.returncode == 0, result.stderr
        assert "requests/s per W" in result.stdout

    def test_proportionality_survey_skips_validation(self, tmp_path):
        result = _run("proportionality_survey.py", "--skip-validation")
        assert result.returncode == 0, result.stderr
        assert "Table 7" in result.stdout
        assert "Figure 9" in result.stdout
        assert "exported under" in result.stdout
