"""End-to-end tests of the paper's headline claims.

Each test corresponds to a sentence in the paper's abstract, introduction or
conclusion, exercised through the public API exactly as a user would.
"""

import numpy as np
import pytest

import repro


class TestClaimProportionalityVsEfficiency:
    """'Energy proportionality need not necessarily imply energy efficiency,
    specifically when comparing nodes with diverse peak power usage.'"""

    def test_k10_more_proportional_but_a9_more_efficient_for_ep(self):
        ep = repro.workload("EP")
        a9 = repro.ClusterConfiguration.mix({"A9": 1})
        k10 = repro.ClusterConfiguration.mix({"K10": 1})
        report_a9 = repro.proportionality_report(ep, a9)
        report_k10 = repro.proportionality_report(ep, k10)
        # K10 wins every proportionality metric...
        assert report_k10.epm > report_a9.epm
        assert report_k10.dpr > report_a9.dpr
        assert report_k10.ipr < report_a9.ipr
        # ...yet A9 wins the efficiency metric (PPR), at every utilisation.
        grid = np.linspace(0.1, 1.0, 10)
        ppr_a9 = repro.ppr_curve(ep, a9).series(grid)
        ppr_k10 = repro.ppr_curve(ep, k10).series(grid)
        assert (ppr_a9 > ppr_k10).all()

    def test_cluster_level_contradiction(self):
        """Same story cluster-wide under the 1 kW budget."""
        ep = repro.workload("EP")
        mixes = repro.budget_mixes(1000.0)
        k10_cluster, a9_cluster = mixes[0], mixes[-1]
        assert (
            repro.proportionality_report(ep, k10_cluster).epm
            > repro.proportionality_report(ep, a9_cluster).epm
        )
        assert (
            repro.ppr_curve(ep, a9_cluster).peak_ppr
            > repro.ppr_curve(ep, k10_cluster).peak_ppr
        )

    def test_proportionality_and_ppr_pick_different_mixes(self):
        """Paper Section III-C: proportionality advocates 32 A9 : 12 K10
        while PPR advocates 96 A9 : 4 K10 among the heterogeneous mixes."""
        ep = repro.workload("EP")
        hetero = repro.budget_mixes(1000.0)[1:-1]  # the three mixed configs
        by_pg = min(
            hetero,
            key=lambda c: repro.proportionality_gap(
                repro.power_curve(ep, c), 0.3
            ),
        )
        by_ppr = max(hetero, key=lambda c: repro.ppr_curve(ep, c).peak_ppr)
        assert by_pg.label() == "32 A9 : 12 K10"
        assert by_ppr.label() == "96 A9 : 4 K10"


class TestClaimSublinearConfigurations:
    """'Inter-node heterogeneity has a positive effect of scaling the energy
    proportionality wall by exposing configurations with sub-linear energy
    proportionality.'"""

    def test_sublinear_configs_exist_for_every_workload(self):
        reference = repro.ClusterConfiguration.mix({"A9": 32, "K10": 12})
        small = repro.ClusterConfiguration.mix({"A9": 25, "K10": 5})
        for name in repro.PAPER_WORKLOAD_NAMES:
            w = repro.workload(name)
            ref_peak = repro.power_curve(w, reference).peak_w
            crossover = repro.sublinear_crossover(
                repro.power_curve(w, small), reference_peak_w=ref_peak
            )
            assert crossover is not None and crossover < 1.0, name

    def test_paper_example_25_7_sublinear_around_half_load(self):
        """Paper: '(25 A9, 7 K10) exhibits sub-linear proportionality for
        cluster utilization of 50%' (EP, against the 32:12 reference)."""
        ep = repro.workload("EP")
        reference = repro.ClusterConfiguration.mix({"A9": 32, "K10": 12})
        config = repro.ClusterConfiguration.mix({"A9": 25, "K10": 7})
        ref_peak = repro.power_curve(ep, reference).peak_w
        crossover = repro.sublinear_crossover(
            repro.power_curve(ep, config), reference_peak_w=ref_peak
        )
        assert crossover is not None
        assert 0.35 <= crossover <= 0.75

    def test_homogeneous_configs_never_sublinear_alone(self):
        """Without a larger reference, the linear-offset curves never dip
        below their own ideal: the wall stands for single clusters."""
        ep = repro.workload("EP")
        config = repro.ClusterConfiguration.mix({"A9": 16})
        curve = repro.power_curve(ep, config)
        grid = np.linspace(0.05, 1.0, 50)
        assert not repro.sublinear_mask(
            curve, grid, reference_peak_w=curve.peak_w
        ).any()


class TestClaimResponseTime:
    """'These sub-linear configurations have minimal impact on the 95th
    percentile response time' — for workloads where the wimpy PPR wins."""

    def test_ep_degradation_small_x264_large(self):
        full = repro.ClusterConfiguration.mix({"A9": 32, "K10": 12})
        small = repro.ClusterConfiguration.mix({"A9": 25, "K10": 5})
        u = 0.6
        ep = repro.workload("EP")
        x264 = repro.workload("x264")
        ep_delta = repro.p95_response_s(ep, small, u) - repro.p95_response_s(ep, full, u)
        x264_delta = repro.p95_response_s(x264, small, u) - repro.p95_response_s(
            x264, full, u
        )
        # EP: below a tenth of a second. x264: multiple seconds.
        assert ep_delta < 0.1
        assert x264_delta > 1.0

    def test_fig9_claim_backed_by_simulation(self):
        """The Fig. 9 deltas re-derived from simulated ground truth: the
        Monte-Carlo p95 CIs reproduce 'EP near-flat, x264 seconds-large'
        without the analytic M/D/1 formula in the loop."""
        full = repro.ClusterConfiguration.mix({"A9": 32, "K10": 12})
        small = repro.ClusterConfiguration.mix({"A9": 25, "K10": 5})
        u = 0.6
        cis = {
            (name, cfg.label()): repro.simulated_response_percentile_s(
                repro.workload(name), cfg, u, n_jobs=10_000, n_reps=25
            )
            for name in ("EP", "x264")
            for cfg in (full, small)
        }
        ep_delta = (
            cis[("EP", small.label())].mean - cis[("EP", full.label())].mean
        )
        x264_delta = (
            cis[("x264", small.label())].mean
            - cis[("x264", full.label())].mean
        )
        # Same thresholds as the analytic check above, now on simulated
        # means; the x264 gap holds even between the conservative CI edges.
        assert ep_delta < 0.1
        assert x264_delta > 1.0
        assert (
            cis[("x264", small.label())].lo - cis[("x264", full.label())].hi
            > 1.0
        )
        # And each simulated CI brackets its analytic counterpart.
        for name in ("EP", "x264"):
            for cfg in (full, small):
                analytic = repro.p95_response_s(repro.workload(name), cfg, u)
                assert cis[(name, cfg.label())].contains(analytic)

    def test_relative_degradation_worse_for_brawny_favouring_workload(self):
        """Removing K10s hurts x264 (K10-favouring) relatively more than
        EP (A9-favouring) — the PPR-based explanation of Section III-E."""
        full = repro.ClusterConfiguration.mix({"A9": 32, "K10": 12})
        small = repro.ClusterConfiguration.mix({"A9": 25, "K10": 5})
        ratios = {}
        for name in ("EP", "x264"):
            w = repro.workload(name)
            ratios[name] = repro.execution_time(w, small) / repro.execution_time(w, full)
        assert ratios["x264"] > ratios["EP"]


class TestClaimEnergySavings:
    """Sub-linear configurations 'consume less energy than ideal' — the
    point of accepting the time trade-off."""

    def test_sublinear_config_saves_window_energy(self):
        ep = repro.workload("EP")
        reference = repro.ClusterConfiguration.mix({"A9": 32, "K10": 12})
        small = repro.ClusterConfiguration.mix({"A9": 25, "K10": 5})
        ref_curve = repro.power_curve(ep, reference)
        small_curve = repro.power_curve(ep, small)
        window = 3600.0
        u = 0.8
        ideal_energy = u * ref_curve.peak_w * window
        assert repro.window_energy_j(small_curve, u, window) < ideal_energy

    def test_frontier_exposes_energy_savings(self):
        from repro.experiments.figures import compute_pareto_mixes

        frontier = compute_pareto_mixes("EP", n_a9=16, n_k10=6)
        assert len(frontier) >= 3
        cheapest = frontier[-1]
        fastest = frontier[0]
        assert cheapest.energy_j < fastest.energy_j
        assert cheapest.tp_s > fastest.tp_s
