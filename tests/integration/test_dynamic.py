"""Tests for dynamic configuration adaptation over diurnal load."""

import numpy as np
import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import ModelError
from repro.extensions.dynamic import (
    diurnal_trace,
    scaled_candidates,
    simulate_adaptation,
)


class TestDiurnalTrace:
    def test_bounds(self):
        trace = diurnal_trace(low=0.2, high=0.8)
        assert trace.min() >= 0.0
        assert trace.max() <= 1.0
        assert trace.min() == pytest.approx(0.2, abs=0.01)
        assert trace.max() == pytest.approx(0.8, abs=0.01)

    def test_peak_hour(self):
        trace = diurnal_trace(n_intervals=24, peak_hour=14.0)
        assert int(np.argmax(trace)) == 14

    def test_noise_reproducible(self):
        a = diurnal_trace(rng=np.random.default_rng(1))
        b = diurnal_trace(rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ModelError):
            diurnal_trace(low=0.9, high=0.5)
        with pytest.raises(ModelError):
            diurnal_trace(n_intervals=0)

    def test_noise_never_clips_to_zero(self):
        """Regression: heavy noise at a low trough used to clip intervals
        to exactly 0, a degenerate lambda = 0 arrival process downstream."""
        from repro.extensions.dynamic import TRACE_FLOOR

        trace = diurnal_trace(
            low=0.01, high=0.2, rng=np.random.default_rng(0), noise=0.5
        )
        assert trace.min() >= TRACE_FLOOR > 0.0
        assert trace.max() <= 1.0


class TestScaledCandidates:
    def test_all_within_budget(self):
        from repro.cluster.budget import PowerBudget

        budget = PowerBudget(1000.0)
        candidates = scaled_candidates(1000.0)
        assert candidates
        for config in candidates:
            assert budget.fits(config)

    def test_includes_shrunk_clusters(self):
        labels = {c.label() for c in scaled_candidates(1000.0)}
        assert "16 A9" in labels
        assert "2 K10" in labels


class TestSimulateAdaptation:
    def test_adaptation_never_costs_energy(self, workloads):
        """The static configuration is always a candidate, so the dynamic
        policy can only save (ignoring switching costs)."""
        trace = diurnal_trace(rng=np.random.default_rng(2))
        for name in ("EP", "x264", "memcached"):
            result = simulate_adaptation(
                workloads[name], trace, candidates=scaled_candidates()
            )
            assert result.dynamic_energy_j <= result.static_energy_j + 1e-9

    def test_savings_substantial_with_shrunk_candidates(self, workloads):
        trace = diurnal_trace(rng=np.random.default_rng(2))
        result = simulate_adaptation(
            workloads["EP"], trace, candidates=scaled_candidates()
        )
        assert result.savings_fraction > 0.2

    def test_budget_mixes_alone_save_nothing_for_ep(self, workloads):
        """For EP the all-wimpy budget mix dominates at every load: without
        node power-down there is nothing to adapt between."""
        trace = diurnal_trace(rng=np.random.default_rng(2))
        result = simulate_adaptation(workloads["EP"], trace)
        assert result.savings_fraction == pytest.approx(0.0, abs=1e-9)
        assert result.switches == 0

    def test_static_provisioned_for_peak(self, workloads):
        result = simulate_adaptation(
            workloads["x264"],
            [0.2, 0.9],
            candidates=scaled_candidates(),
        )
        # The static choice is the fastest candidate (16 K10 for x264).
        assert result.static_label == "16 K10"

    def test_switching_cost_charged(self, workloads):
        trace = [0.2, 0.9, 0.2]
        free = simulate_adaptation(
            workloads["EP"], trace, candidates=scaled_candidates()
        )
        paid = simulate_adaptation(
            workloads["EP"], trace, candidates=scaled_candidates(),
            switching_energy_j=1000.0,
        )
        assert paid.dynamic_energy_j == pytest.approx(
            free.dynamic_energy_j + 1000.0 * free.switches
        )

    def test_all_intervals_covered(self, workloads):
        trace = diurnal_trace(n_intervals=12)
        result = simulate_adaptation(
            workloads["julius"], trace, candidates=scaled_candidates()
        )
        assert len(result.intervals) == 12
        for interval in result.intervals:
            assert 0.0 <= interval.utilisation <= 1.0

    def test_validation(self, workloads):
        with pytest.raises(ModelError):
            simulate_adaptation(workloads["EP"], [])
        with pytest.raises(ModelError):
            simulate_adaptation(workloads["EP"], [1.2])
        with pytest.raises(ModelError):
            simulate_adaptation(workloads["EP"], [0.5], interval_s=0.0)
        with pytest.raises(ModelError):
            simulate_adaptation(workloads["EP"], [0.5], candidates=[])


class TestAdaptationTailPercentiles:
    """The energy-only adaptation policy, audited for tail latency with the
    Monte-Carlo engine."""

    def test_every_interval_checked_and_agrees(self, workloads):
        from repro.extensions.dynamic import adaptation_tail_percentiles

        candidates = scaled_candidates()
        result = simulate_adaptation(
            workloads["EP"], [0.2, 0.6, 0.9], candidates=candidates
        )
        checks = adaptation_tail_percentiles(
            workloads["EP"], result, candidates=candidates,
            n_jobs=6_000, n_reps=20,
        )
        assert len(checks) == len(result.intervals)
        for check, interval in zip(checks, result.intervals):
            assert check.chosen_label == interval.chosen_label
            assert check.utilisation == interval.utilisation
            assert check.analytic_p95_s >= check.service_time_s
            assert check.agrees, (check.chosen_label, check.utilisation)

    def test_idle_interval_has_no_queueing(self, workloads):
        from repro.extensions.dynamic import adaptation_tail_percentiles

        candidates = scaled_candidates()
        result = simulate_adaptation(
            workloads["EP"], [0.0, 0.5], candidates=candidates
        )
        checks = adaptation_tail_percentiles(
            workloads["EP"], result, candidates=candidates,
            n_jobs=4_000, n_reps=15,
        )
        idle = checks[0]
        assert idle.utilisation == 0.0
        assert idle.analytic_p95_s == idle.service_time_s
        assert idle.agrees

    def test_foreign_candidates_rejected(self, workloads):
        from repro.extensions.dynamic import adaptation_tail_percentiles

        result = simulate_adaptation(
            workloads["EP"], [0.5], candidates=scaled_candidates()
        )
        with pytest.raises(ModelError):
            adaptation_tail_percentiles(
                workloads["EP"], result,
                candidates=[ClusterConfiguration.mix({"A9": 1})],
            )
