"""Integration tests for remaining cross-module paths."""

import numpy as np
import pytest

import repro


class TestLazyClusterExports:
    def test_pareto_names_resolve(self):
        import repro.cluster as cluster

        assert cluster.pareto_frontier is not None
        assert cluster.recommend_greedy is not None

    def test_unknown_attribute_raises(self):
        import repro.cluster as cluster

        with pytest.raises(AttributeError):
            _ = cluster.not_a_thing


class TestBatchArrivalsThroughDES:
    def test_batch_jobs_queue_behind_each_other(self, rng):
        """The paper's jobs-per-batch sweeps, driven through the simulator:
        every job of a batch after the first must wait."""
        from repro.queueing import BatchArrivals, QueueSimulator

        sim = QueueSimulator(
            BatchArrivals(batch_rate=0.5, batch_size=4, rng=rng),
            0.1,
        )
        result = sim.run_jobs(400)
        # Jobs arriving inside a batch see at least one service of queueing.
        waits = np.sort(result.waits)
        assert waits[-1] >= 0.3 - 1e-9  # 4th of a batch waits 3 services
        assert np.mean(result.waits > 0) > 0.5

    def test_batch_utilisation_matches_rate(self, rng):
        from repro.queueing import BatchArrivals, QueueSimulator

        arrivals = BatchArrivals(batch_rate=1.0, batch_size=3, rng=rng)
        sim = QueueSimulator(arrivals, 0.2)
        result = sim.run(500.0)
        assert result.utilisation == pytest.approx(
            arrivals.rate * 0.2, rel=0.1
        )


class TestFigureDriversOtherInputs:
    def test_figure7_for_every_workload(self):
        from repro.experiments.figures import figure7_cluster_proportionality

        for name in repro.PAPER_WORKLOAD_NAMES:
            fig = figure7_cluster_proportionality(name)
            assert len(fig.series) == 6

    def test_figure8_divisible_budget(self):
        from repro.experiments.figures import figure8_cluster_ppr

        fig = figure8_cluster_ppr("EP", budget_w=1920.0)  # 32 K10, 4 equal steps
        assert len(fig.series) == 5

    def test_figure8_indivisible_budget_raises(self):
        from repro.errors import ConfigurationError
        from repro.experiments.figures import figure8_cluster_ppr

        # 2 kW fits 33 K10, not divisible into 4 equal steps: the driver
        # surfaces the configuration error untouched.
        with pytest.raises(ConfigurationError):
            figure8_cluster_ppr("EP", budget_w=2000.0)

    def test_figure9_custom_mixes(self):
        from repro.experiments.figures import figure9_pareto_proportionality

        fig = figure9_pareto_proportionality(
            "blackscholes", mixes=((16, 6), (12, 3))
        )
        assert fig.require_series("12 A9: 3 K10") is not None

    def test_figure9_empty_mixes_rejected(self):
        from repro.errors import ReproError
        from repro.experiments.figures import figure9_pareto_proportionality

        with pytest.raises(ReproError):
            figure9_pareto_proportionality("EP", mixes=())


class TestPublicApiSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_errors_inherit_base(self):
        for exc in (
            repro.ConfigurationError,
            repro.CalibrationError,
            repro.ModelError,
            repro.QueueingError,
            repro.MeasurementError,
            repro.WorkloadError,
        ):
            assert issubclass(exc, repro.ReproError)
