"""Test package."""
