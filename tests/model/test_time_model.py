"""Tests for the execution-time model (paper Table 2, time half)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.configuration import ClusterConfiguration, NodeGroup
from repro.errors import WorkloadError
from repro.hardware.specs import a9, k10
from repro.model.time_model import (
    cluster_service_rate,
    execution_time,
    group_service_rate,
    job_execution,
    node_service_rate,
    op_time_breakdown,
)
from repro.workloads.base import ActivityFactors, Workload, WorkloadDemand

ACT = ActivityFactors(0.5, 0.5, 0.5, 0.5)


def _workload(core_a9=1000.0, core_k10=500.0, mem_frac=0.3, io_bytes=0.0, ops=1e6):
    """A synthetic two-type workload with controllable demands."""
    return Workload(
        name="synthetic",
        domain="test",
        unit="ops",
        ops_per_job=ops,
        demands={
            "A9": WorkloadDemand(core_a9, core_a9 * mem_frac / 4, io_bytes, ACT),
            "K10": WorkloadDemand(core_k10, core_k10 * mem_frac / 6, io_bytes, ACT),
        },
    )


class TestOpTimeBreakdown:
    def test_core_time(self):
        group = NodeGroup.of("A9", 1)
        demand = WorkloadDemand(5600.0, 0.0, 0.0, ACT)
        bd = op_time_breakdown(group, demand)
        # 5600 cycles over 4 cores at 1.4 GHz -> 1 microsecond.
        assert bd.t_core == pytest.approx(1e-6)

    def test_mem_time_single_core_scaled(self):
        group = NodeGroup.of("A9", 1)
        demand = WorkloadDemand(1.0, 1400.0, 0.0, ACT)
        bd = op_time_breakdown(group, demand)
        # 1400 stall cycles at 1.4 GHz -> 1 microsecond (not divided by cores).
        assert bd.t_mem == pytest.approx(1e-6)

    def test_io_time_from_bandwidth(self):
        group = NodeGroup.of("A9", 1)
        demand = WorkloadDemand(1.0, 0.0, 12.5e6, ACT)  # 1 s at 100 Mbps
        bd = op_time_breakdown(group, demand)
        assert bd.t_io == pytest.approx(1.0)

    def test_io_floor_binds(self):
        group = NodeGroup.of("A9", 1)
        demand = WorkloadDemand(1.0, 0.0, 1.0, ACT, io_service_floor_s=0.5)
        assert op_time_breakdown(group, demand).t_io == pytest.approx(0.5)

    def test_cpu_is_max_of_core_and_mem(self):
        group = NodeGroup.of("A9", 1)
        demand = WorkloadDemand(5600.0, 2800.0, 0.0, ACT)
        bd = op_time_breakdown(group, demand)
        assert bd.t_cpu == pytest.approx(max(bd.t_core, bd.t_mem))

    def test_stall_is_excess_memory_time(self):
        group = NodeGroup.of("A9", 1)
        demand = WorkloadDemand(1400.0, 2800.0, 0.0, ACT)
        bd = op_time_breakdown(group, demand)
        # t_core = 0.25 us (4 cores), t_mem = 2 us -> stall = 1.75 us.
        assert bd.t_stall == pytest.approx(bd.t_mem - bd.t_core)
        assert bd.t_act == bd.t_core

    def test_no_stall_when_core_dominates(self):
        group = NodeGroup.of("A9", 1)
        demand = WorkloadDemand(5600.0, 700.0, 0.0, ACT)
        assert op_time_breakdown(group, demand).t_stall == 0.0

    def test_frequency_scaling(self):
        spec = a9()
        demand = WorkloadDemand(5600.0, 1400.0, 0.0, ACT)
        fast = op_time_breakdown(NodeGroup.of(spec, 1), demand)
        slow = op_time_breakdown(
            NodeGroup.of(spec, 1, frequency_hz=spec.fmin_hz), demand
        )
        ratio = spec.fmax_hz / spec.fmin_hz
        assert slow.t_core == pytest.approx(fast.t_core * ratio)
        assert slow.t_mem == pytest.approx(fast.t_mem * ratio)


class TestServiceRates:
    def test_group_rate_scales_with_count(self):
        w = _workload()
        g1 = NodeGroup.of("A9", 1)
        g4 = NodeGroup.of("A9", 4)
        assert group_service_rate(g4, w.demand_for("A9")) == pytest.approx(
            4 * group_service_rate(g1, w.demand_for("A9"))
        )

    def test_cluster_rate_is_sum_of_groups(self):
        w = _workload()
        mixed = ClusterConfiguration.mix({"A9": 3, "K10": 2})
        only_a9 = ClusterConfiguration.mix({"A9": 3})
        only_k10 = ClusterConfiguration.mix({"K10": 2})
        assert cluster_service_rate(w, mixed) == pytest.approx(
            cluster_service_rate(w, only_a9) + cluster_service_rate(w, only_k10)
        )


class TestJobExecution:
    def test_tp_is_ops_over_rate(self):
        w = _workload()
        config = ClusterConfiguration.mix({"A9": 2, "K10": 1})
        tp = execution_time(w, config)
        assert tp == pytest.approx(w.ops_per_job / cluster_service_rate(w, config))

    def test_all_nodes_finish_together(self):
        """The equal-finish work division: every node is busy exactly T_P."""
        w = _workload()
        config = ClusterConfiguration.mix({"A9": 5, "K10": 3})
        execution = job_execution(w, config)
        for ge in execution.groups:
            assert ge.busy_time == pytest.approx(execution.tp_s)

    def test_work_shares_sum_to_one(self):
        w = _workload()
        config = ClusterConfiguration.mix({"A9": 5, "K10": 3})
        execution = job_execution(w, config)
        total = sum(execution.work_share(g.group.spec.name) for g in execution.groups)
        assert total == pytest.approx(1.0)

    def test_faster_nodes_get_more_work(self):
        w = _workload(core_a9=1000.0, core_k10=100.0)
        config = ClusterConfiguration.mix({"A9": 1, "K10": 1})
        execution = job_execution(w, config)
        a9_ops = execution.group_for("A9").ops_per_node
        k10_ops = execution.group_for("K10").ops_per_node
        assert k10_ops > a9_ops

    def test_adding_nodes_never_slows_the_job(self, workloads):
        w = workloads["EP"]
        small = ClusterConfiguration.mix({"A9": 4})
        big = ClusterConfiguration.mix({"A9": 4, "K10": 2})
        assert execution_time(w, big) < execution_time(w, small)

    def test_throughput_property(self):
        w = _workload()
        config = ClusterConfiguration.mix({"A9": 1})
        execution = job_execution(w, config)
        assert execution.throughput_ops_per_s == pytest.approx(
            cluster_service_rate(w, config)
        )

    def test_missing_demand_raises(self, workloads):
        w = Workload(
            name="partial", domain="t", unit="u", ops_per_job=10.0,
            demands={"A9": WorkloadDemand(10.0, 0.0, 0.0, ACT)},
        )
        config = ClusterConfiguration.mix({"A9": 1, "K10": 1})
        with pytest.raises(WorkloadError):
            job_execution(w, config)

    def test_unknown_group_lookup_raises(self):
        from repro.errors import ModelError

        w = _workload()
        execution = job_execution(w, ClusterConfiguration.mix({"A9": 1}))
        with pytest.raises(ModelError):
            execution.group_for("K10")

    @given(
        n_a9=st.integers(1, 30),
        n_k10=st.integers(1, 12),
        ops=st.floats(1e3, 1e9),
    )
    @settings(max_examples=40)
    def test_tp_scales_linearly_with_ops(self, n_a9, n_k10, ops):
        """Property: execution time is exactly linear in job size."""
        config = ClusterConfiguration.mix({"A9": n_a9, "K10": n_k10})
        w1 = _workload(ops=ops)
        w2 = _workload(ops=2 * ops)
        assert execution_time(w2, config) == pytest.approx(
            2 * execution_time(w1, config), rel=1e-9
        )

    @given(n=st.integers(1, 64))
    @settings(max_examples=30)
    def test_homogeneous_scaling_is_ideal(self, n):
        """Property: scale-out workloads speed up linearly in node count."""
        w = _workload()
        one = execution_time(w, ClusterConfiguration.mix({"A9": 1}))
        many = execution_time(w, ClusterConfiguration.mix({"A9": n}))
        assert many == pytest.approx(one / n, rel=1e-9)
