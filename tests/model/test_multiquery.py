"""The batched multi-query staircase vs the exhaustive-search oracle.

The serving layer answers every cached ``recommend`` query through
:func:`repro.model.batched.deadline_staircase`; these tests pin its
bit-identity contract — for any deadline (and any power-budget
feasibility mask), the staircase's winner is EXACTLY the configuration
:func:`repro.cluster.search.recommend_exhaustive` materialises, floats
and all — plus the vectorized batch path and its edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cluster.search import recommend_exhaustive
from repro.errors import ModelError
from repro.model.batched import (
    deadline_staircase,
    evaluate_space_arrays,
)


def _spaces(max_wimpy: int = 6, max_brawny: int = 3):
    return [
        repro.TypeSpace(repro.get_node_spec("A9"), n_max=max_wimpy),
        repro.TypeSpace(repro.get_node_spec("K10"), n_max=max_brawny),
    ]


@pytest.fixture(scope="module")
def ep_arrays(workloads):
    return evaluate_space_arrays(workloads["EP"], _spaces())


@pytest.fixture(scope="module")
def ep_staircase(ep_arrays):
    return deadline_staircase(ep_arrays)


def _deadline_grid(arrays):
    """Deadlines spanning infeasible through trivially-feasible, plus the
    exact execution times themselves (boundary cases)."""
    tp = np.sort(arrays.tp_s)
    quantiles = np.quantile(tp, [0.0, 0.1, 0.5, 0.9, 1.0])
    exact = tp[:: max(1, tp.shape[0] // 17)]
    return np.unique(np.concatenate((quantiles, exact, [tp[0] * 0.5, tp[-1] * 2.0])))


class TestOracleBitIdentity:
    def test_every_deadline_matches_exhaustive(self, workloads, ep_arrays, ep_staircase):
        w = workloads["EP"]
        for deadline in _deadline_grid(ep_arrays):
            idx = ep_staircase.best_index(float(deadline))
            rec = recommend_exhaustive(w, _spaces(), deadline_s=float(deadline))
            if idx < 0:
                assert rec is None
                continue
            assert rec is not None
            ev = rec.evaluation
            assert float(ep_arrays.tp_s[idx]) == ev.tp_s
            assert float(ep_arrays.energy_j[idx]) == ev.energy_j
            assert float(ep_arrays.peak_power_w[idx]) == ev.peak_power_w
            assert ep_arrays.config_at(idx).label() == ev.config.label()
            assert str(ep_arrays.config_at(idx)) == str(ev.config)

    def test_budget_mask_matches_exhaustive(self, workloads):
        w = workloads["memcached"]
        spaces = _spaces(5, 2)
        arrays = evaluate_space_arrays(w, spaces)
        budget = repro.PowerBudget(120.0)
        mask = budget.fits_mask(
            arrays.nameplate_w, arrays.counts["A9"]
        )
        stairs = deadline_staircase(arrays, mask)
        for deadline in _deadline_grid(arrays):
            idx = stairs.best_index(float(deadline))
            rec = recommend_exhaustive(
                w, spaces, deadline_s=float(deadline), budget=budget
            )
            if idx < 0:
                assert rec is None
            else:
                assert rec is not None
                assert float(arrays.energy_j[idx]) == rec.evaluation.energy_j
                assert arrays.config_at(idx).label() == rec.config.label()


class TestBatchPath:
    def test_batch_equals_scalar_loop(self, ep_arrays, ep_staircase):
        deadlines = _deadline_grid(ep_arrays)
        batch = ep_staircase.best_indices(deadlines)
        scalar = np.array([ep_staircase.best_index(float(d)) for d in deadlines])
        np.testing.assert_array_equal(batch, scalar)

    def test_infeasible_deadline_is_minus_one(self, ep_arrays, ep_staircase):
        too_tight = float(ep_arrays.tp_s.min()) * 0.25
        assert ep_staircase.best_index(too_tight) == -1

    def test_winner_energy_is_monotone_in_deadline(self, ep_arrays, ep_staircase):
        deadlines = np.sort(_deadline_grid(ep_arrays))
        idx = ep_staircase.best_indices(deadlines)
        feasible = idx[idx >= 0]
        energies = ep_arrays.energy_j[feasible]
        assert np.all(np.diff(energies) <= 0.0 + 1e-30) or np.all(
            energies[:-1] >= energies[1:]
        )

    def test_rejects_nonpositive_deadlines(self, ep_staircase):
        with pytest.raises(ModelError):
            ep_staircase.best_indices([10.0, -1.0])
        with pytest.raises(ModelError):
            ep_staircase.best_indices([0.0])

    def test_rejects_bad_mask_shape(self, ep_arrays):
        with pytest.raises(ModelError):
            deadline_staircase(ep_arrays, np.ones(3, dtype=bool))

    def test_empty_feasible_set(self, ep_arrays):
        stairs = deadline_staircase(
            ep_arrays, np.zeros(ep_arrays.n_configs, dtype=bool)
        )
        assert stairs.n_feasible == 0
        assert stairs.best_index(1e9) == -1
        np.testing.assert_array_equal(
            stairs.best_indices([1.0, 2.0]), np.array([-1, -1])
        )
