"""Test package."""
