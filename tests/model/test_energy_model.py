"""Tests for the energy model (paper Table 2, energy half)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.configuration import ClusterConfiguration, NodeGroup
from repro.hardware.specs import a9, k10
from repro.model.energy_model import (
    dynamic_power_w,
    effective_powers,
    job_energy,
    peak_power_w,
    power_draw,
)
from repro.model.time_model import job_execution
from repro.workloads.base import ActivityFactors, Workload, WorkloadDemand

ACT = ActivityFactors(0.5, 0.5, 0.5, 0.5)


def _workload(ops=1e6):
    return Workload(
        name="synthetic",
        domain="test",
        unit="ops",
        ops_per_job=ops,
        demands={
            "A9": WorkloadDemand(1000.0, 300.0, 2.0, ACT),
            "K10": WorkloadDemand(500.0, 100.0, 2.0, ACT),
        },
    )


class TestEffectivePowers:
    def test_scaling_at_max_point(self):
        spec = a9()
        group = NodeGroup.of(spec, 1)
        powers = effective_powers(group, _workload().demand_for("A9"))
        assert powers.cpu_active_w == pytest.approx(spec.power.cpu_active_w * 0.5)
        assert powers.memory_w == pytest.approx(spec.power.memory_w * 0.5)
        assert powers.idle_w == spec.power.idle_w

    def test_dvfs_scales_cpu_not_memory(self):
        spec = a9()
        slow = NodeGroup.of(spec, 1, frequency_hz=spec.fmin_hz)
        fast = NodeGroup.of(spec, 1)
        demand = _workload().demand_for("A9")
        p_slow = effective_powers(slow, demand)
        p_fast = effective_powers(fast, demand)
        assert p_slow.cpu_active_w < p_fast.cpu_active_w
        assert p_slow.memory_w == p_fast.memory_w
        assert p_slow.network_w == p_fast.network_w


class TestJobEnergy:
    def test_total_is_dynamic_plus_idle(self):
        w = _workload()
        config = ClusterConfiguration.mix({"A9": 2, "K10": 1})
        je = job_energy(w, config)
        assert je.e_total_j == pytest.approx(je.e_dynamic_j + je.e_idle_j)

    def test_idle_energy_is_cluster_idle_times_tp(self):
        w = _workload()
        config = ClusterConfiguration.mix({"A9": 2, "K10": 1})
        je = job_energy(w, config)
        assert je.e_idle_j == pytest.approx(config.idle_w * je.tp_s)

    def test_group_components_nonnegative(self):
        w = _workload()
        je = job_energy(w, ClusterConfiguration.mix({"A9": 1, "K10": 1}))
        for ge in je.groups:
            assert ge.e_cpu_act >= 0
            assert ge.e_cpu_stall >= 0
            assert ge.e_mem >= 0
            assert ge.e_io >= 0
            assert ge.e_idle > 0
            assert ge.e_total == pytest.approx(ge.e_dynamic + ge.e_idle)

    def test_energy_linear_in_ops(self):
        config = ClusterConfiguration.mix({"A9": 1, "K10": 1})
        e1 = job_energy(_workload(ops=1e6), config).e_total_j
        e2 = job_energy(_workload(ops=2e6), config).e_total_j
        assert e2 == pytest.approx(2 * e1, rel=1e-9)

    def test_peak_power_decomposition(self):
        w = _workload()
        config = ClusterConfiguration.mix({"A9": 4, "K10": 2})
        assert peak_power_w(w, config) == pytest.approx(
            dynamic_power_w(w, config) + config.idle_w
        )

    def test_unknown_group_lookup_raises(self):
        from repro.errors import ModelError

        je = job_energy(_workload(), ClusterConfiguration.mix({"A9": 1}))
        with pytest.raises(ModelError):
            je.group_for("K10")


class TestPowerDraw:
    def test_ipr_definition(self, workloads, single_a9):
        draw = power_draw(workloads["EP"], single_a9)
        assert draw.ipr == pytest.approx(draw.idle_w / draw.peak_w)

    def test_idle_equals_config_idle(self, workloads, small_mix):
        draw = power_draw(workloads["EP"], small_mix)
        assert draw.idle_w == pytest.approx(small_mix.idle_w)

    def test_dynamic_power_independent_of_job_size(self, workloads, single_k10):
        w = workloads["x264"]
        big = w.with_job_size(w.ops_per_job * 100)
        assert power_draw(w, single_k10).dynamic_w == pytest.approx(
            power_draw(big, single_k10).dynamic_w
        )

    @given(n_a9=st.integers(1, 50), n_k10=st.integers(0, 16))
    @settings(max_examples=40)
    def test_cluster_dynamic_power_is_node_weighted_sum(self, workloads, n_a9, n_k10):
        """Property: with rate-matched splits, cluster dynamic power is the
        sum of each node's single-node dynamic power (all nodes run flat
        out for the whole job)."""
        w = workloads["blackscholes"]
        config = ClusterConfiguration.mix({"A9": n_a9, "K10": n_k10})
        single = {
            name: power_draw(w, ClusterConfiguration.mix({name: 1})).dynamic_w
            for name in ("A9", "K10")
        }
        expected = n_a9 * single["A9"] + n_k10 * single["K10"]
        assert power_draw(w, config).dynamic_w == pytest.approx(expected, rel=1e-9)


class TestEnergyTimeConsistency:
    def test_dynamic_power_matches_energy_over_time(self, workloads, small_mix):
        w = workloads["julius"]
        je = job_energy(w, small_mix)
        assert je.dynamic_power_w == pytest.approx(je.e_dynamic_j / je.tp_s)

    def test_energy_of_execution_matches_job_energy(self, workloads, small_mix):
        from repro.model.energy_model import energy_of_execution

        w = workloads["EP"]
        via_exec = energy_of_execution(w, job_execution(w, small_mix))
        direct = job_energy(w, small_mix)
        assert via_exec.e_total_j == pytest.approx(direct.e_total_j)
