"""Tests for the Table 4 validation pipeline."""

import pytest

from repro.errors import ModelError
from repro.model.validation import (
    ValidationPipeline,
    ValidationRow,
    validate_workloads,
)
from repro.util.rng import RngRegistry
from repro.workloads.suite import PAPER_WORKLOAD_NAMES


@pytest.fixture(scope="module")
def validation_rows(workloads_module):
    """Validate all six workloads once per module (it is the slow path)."""
    return validate_workloads(list(workloads_module.values()), seed=2016)


@pytest.fixture(scope="module")
def workloads_module():
    from repro.workloads.suite import paper_workloads

    return paper_workloads()


class TestValidationRow:
    def test_error_definitions(self):
        row = ValidationRow(
            workload_name="w", domain="d",
            model_time_s=9.0, measured_time_s=10.0,
            model_energy_j=110.0, measured_energy_j=100.0,
        )
        assert row.time_error_pct == pytest.approx(10.0)
        assert row.energy_error_pct == pytest.approx(10.0)


class TestPipeline:
    def test_invalid_params_rejected(self):
        with pytest.raises(ModelError):
            ValidationPipeline(RngRegistry(1), n_jobs=0)
        with pytest.raises(ModelError):
            ValidationPipeline(RngRegistry(1), job_scale=0.0)

    def test_characterization_memoised(self):
        pipe = ValidationPipeline(RngRegistry(7))
        first = pipe.characterized_specs()
        second = pipe.characterized_specs()
        assert first["A9"].power.idle_w == second["A9"].power.idle_w

    def test_characterized_specs_are_measured_not_true(self):
        from repro.hardware.specs import get_node_spec

        pipe = ValidationPipeline(RngRegistry(7))
        measured = pipe.characterized_specs()["A9"]
        true = get_node_spec("A9")
        # Close (good instruments) but not bit-identical (it IS a measurement).
        assert measured.power.idle_w == pytest.approx(true.power.idle_w, rel=0.05)
        assert measured.power.idle_w != true.power.idle_w


class TestTable4Reproduction:
    """The paper reports 2-13% errors; assert the same band and ordering."""

    def test_all_rows_present(self, validation_rows):
        assert [r.workload_name for r in validation_rows] == list(PAPER_WORKLOAD_NAMES)

    def test_time_errors_in_paper_band(self, validation_rows):
        for row in validation_rows:
            assert 0.0 <= row.time_error_pct <= 15.0, row.workload_name

    def test_energy_errors_in_paper_band(self, validation_rows):
        for row in validation_rows:
            assert 0.0 <= row.energy_error_pct <= 15.0, row.workload_name

    def test_regular_kernels_have_small_time_error(self, validation_rows):
        """EP and RSA-2048 are regular; their time errors are the smallest
        (paper: 3% and 2% against 10-13% for the irregular programs)."""
        by_name = {r.workload_name: r for r in validation_rows}
        for regular in ("EP", "rsa2048"):
            for irregular in ("memcached", "x264", "julius"):
                assert (
                    by_name[regular].time_error_pct
                    < by_name[irregular].time_error_pct
                )

    def test_model_underpredicts_time(self, validation_rows):
        """Overheads, stragglers and working-set growth only ever slow the
        measured run relative to the model."""
        for row in validation_rows:
            assert row.measured_time_s > row.model_time_s

    def test_deterministic_given_seed(self, workloads_module):
        w = [workloads_module["rsa2048"]]
        a = validate_workloads(w, seed=5, n_jobs=1)[0]
        b = validate_workloads(w, seed=5, n_jobs=1)[0]
        assert a.measured_time_s == b.measured_time_s
        assert a.measured_energy_j == b.measured_energy_j

    def test_different_seeds_give_different_measurements(self, workloads_module):
        w = [workloads_module["rsa2048"]]
        a = validate_workloads(w, seed=5, n_jobs=1)[0]
        b = validate_workloads(w, seed=6, n_jobs=1)[0]
        assert a.measured_time_s != b.measured_time_s


class TestSeedRobustness:
    """The Table 4 band must hold across seeds, not for one lucky draw."""

    @pytest.mark.parametrize("seed", [7, 1234, 987654])
    def test_errors_in_band_for_any_seed(self, workloads_module, seed):
        rows = validate_workloads(
            [workloads_module["EP"], workloads_module["julius"]],
            seed=seed,
            n_jobs=1,
        )
        for row in rows:
            assert 0.0 <= row.time_error_pct <= 18.0, (seed, row.workload_name)
            assert 0.0 <= row.energy_error_pct <= 18.0, (seed, row.workload_name)
