"""Tests for the batched configuration-space engine and its constants cache.

The engine's contract: for every configuration of an enumerated space, the
batched arrays agree with the scalar oracle (``evaluate_configuration``)
to 1e-9 relative, in exact enumeration order.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.configuration import (
    TypeSpace,
    count_configurations,
    enumerate_configurations,
)
from repro.cluster.pareto import evaluate_configuration, evaluate_space, pareto_indices
from repro.errors import ModelError
from repro.hardware.specs import a9, k10
from repro.model.batched import (
    clear_constants_cache,
    constants_cache_size,
    evaluate_space_arrays,
    operating_point_constants,
)

#: Relative agreement bound between the batched engine and the scalar oracle.
_REL = 1e-9


def _full_spaces(n_a9=2, n_k10=2):
    """A small space exercising every (n, c, f) axis of both types."""
    return [TypeSpace(a9(), n_max=n_a9), TypeSpace(k10(), n_max=n_k10)]


class TestConstantsCache:
    def test_hit_returns_cached_object(self, workloads):
        clear_constants_cache()
        spec = a9()
        demand = workloads["EP"].demand_for("A9")
        first = operating_point_constants(spec, demand, 2, spec.fmax_hz)
        assert constants_cache_size() == 1
        again = operating_point_constants(spec, demand, 2, spec.fmax_hz)
        assert again is first
        assert constants_cache_size() == 1

    def test_distinct_operating_points_get_distinct_entries(self, workloads):
        clear_constants_cache()
        spec = a9()
        demand = workloads["EP"].demand_for("A9")
        operating_point_constants(spec, demand, 1, spec.fmax_hz)
        operating_point_constants(spec, demand, 2, spec.fmax_hz)
        operating_point_constants(spec, demand, 2, spec.frequencies_hz[0])
        assert constants_cache_size() == 3

    def test_modified_spec_is_not_conflated(self, workloads):
        """A spec sharing a name but differing in content (e.g. the DVFS
        study's scaled-idle variants) must get its own cache entry."""
        clear_constants_cache()
        spec = a9()
        demand = workloads["EP"].demand_for("A9")
        base = operating_point_constants(spec, demand, 1, spec.fmax_hz)
        doubled_idle = dataclasses.replace(
            spec, power=dataclasses.replace(spec.power, idle_w=2 * spec.power.idle_w)
        )
        other = operating_point_constants(doubled_idle, demand, 1, spec.fmax_hz)
        assert other.idle_w == pytest.approx(2 * base.idle_w)
        assert constants_cache_size() == 2

    def test_clear_resets(self, workloads):
        spec = a9()
        operating_point_constants(
            spec, workloads["EP"].demand_for("A9"), 1, spec.fmax_hz
        )
        assert constants_cache_size() >= 1
        clear_constants_cache()
        assert constants_cache_size() == 0


class TestAgainstScalarOracle:
    def test_full_small_space_agrees_in_enumeration_order(self, workloads):
        w = workloads["EP"]
        spaces = _full_spaces()
        arrays = evaluate_space_arrays(w, spaces)
        configs = list(enumerate_configurations(spaces))
        assert arrays.n_configs == len(configs) == count_configurations(spaces)
        for i, config in enumerate(configs):
            ev = evaluate_configuration(w, config)
            assert arrays.tp_s[i] == pytest.approx(ev.tp_s, rel=_REL)
            assert arrays.energy_j[i] == pytest.approx(ev.energy_j, rel=_REL)
            assert arrays.peak_power_w[i] == pytest.approx(ev.peak_power_w, rel=_REL)
            assert arrays.idle_w[i] == pytest.approx(ev.idle_power_w, rel=_REL)
            assert arrays.nameplate_w[i] == pytest.approx(config.nameplate_peak_w)

    def test_config_at_matches_enumeration(self, workloads):
        spaces = _full_spaces()
        arrays = evaluate_space_arrays(workloads["EP"], spaces)
        for i, config in enumerate(enumerate_configurations(spaces)):
            assert arrays.config_at(i) == config

    def test_iter_configs_matches_enumeration(self, workloads):
        spaces = _full_spaces()
        arrays = evaluate_space_arrays(workloads["EP"], spaces)
        assert list(arrays.iter_configs()) == list(enumerate_configurations(spaces))

    def test_counts_match_configurations(self, workloads):
        spaces = _full_spaces()
        arrays = evaluate_space_arrays(workloads["EP"], spaces)
        for i, config in enumerate(enumerate_configurations(spaces)):
            assert arrays.counts["A9"][i] == config.count_of("A9")
            assert arrays.counts["K10"][i] == config.count_of("K10")

    def test_materialised_space_preserves_order(self, workloads):
        spaces = _full_spaces()
        evals = evaluate_space(workloads["EP"], spaces)
        assert [ev.config for ev in evals] == list(enumerate_configurations(spaces))

    def test_config_at_rejects_out_of_range(self, workloads):
        arrays = evaluate_space_arrays(workloads["EP"], _full_spaces())
        with pytest.raises(ModelError):
            arrays.config_at(arrays.n_configs)
        with pytest.raises(ModelError):
            arrays.config_at(-1)

    def test_empty_spaces_rejected(self, workloads):
        with pytest.raises(ModelError):
            evaluate_space_arrays(workloads["EP"], [])

    def test_duplicate_type_names_rejected(self, workloads):
        with pytest.raises(ModelError):
            evaluate_space_arrays(
                workloads["EP"], [TypeSpace(a9(), 1), TypeSpace(a9(), 2)]
            )

    @given(
        workload_name=st.sampled_from(["EP", "x264", "memcached"]),
        n_a9=st.integers(1, 3),
        n_k10=st.integers(1, 2),
        c_a9=st.integers(1, 4),
        c_k10=st.integers(1, 6),
        f_a9=st.integers(1, 2 ** 5 - 1),  # non-empty subset of 5 DVFS points
        f_k10=st.integers(1, 2 ** 3 - 1),  # non-empty subset of 3 DVFS points
    )
    @settings(max_examples=25, deadline=None)
    def test_random_spaces_agree_property(
        self, workloads, workload_name, n_a9, n_k10, c_a9, c_k10, f_a9, f_k10
    ):
        """Property: batched == scalar oracle on arbitrary sub-spaces."""
        w = workloads[workload_name]
        freqs_a9 = tuple(
            f for i, f in enumerate(a9().frequencies_hz) if f_a9 >> i & 1
        )
        freqs_k10 = tuple(
            f for i, f in enumerate(k10().frequencies_hz) if f_k10 >> i & 1
        )
        spaces = [
            TypeSpace(a9(), n_a9, c_a9, freqs_a9),
            TypeSpace(k10(), n_k10, c_k10, freqs_k10),
        ]
        arrays = evaluate_space_arrays(w, spaces)
        configs = list(enumerate_configurations(spaces))
        assert arrays.n_configs == len(configs)
        for i, config in enumerate(configs):
            ev = evaluate_configuration(w, config)
            assert arrays.tp_s[i] == pytest.approx(ev.tp_s, rel=_REL)
            assert arrays.energy_j[i] == pytest.approx(ev.energy_j, rel=_REL)
            assert arrays.peak_power_w[i] == pytest.approx(ev.peak_power_w, rel=_REL)


class TestParetoIndices:
    def _brute_force_pairs(self, tp, energy):
        points = list(zip(tp, energy))

        def dominates(p, q):
            return p[0] <= q[0] and p[1] <= q[1] and p != q

        return {p for p in points if not any(dominates(q, p) for q in points)}

    def test_matches_brute_force_on_random_grids(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 40))
            tp = rng.integers(1, 25, size=n).astype(float)
            energy = rng.integers(1, 25, size=n).astype(float)
            kept = pareto_indices(tp, energy)
            got = {(tp[i], energy[i]) for i in kept}
            assert got == self._brute_force_pairs(tp, energy)

    def test_result_sorted_by_time(self, rng):
        tp = rng.integers(1, 50, size=30).astype(float)
        energy = rng.integers(1, 50, size=30).astype(float)
        kept = pareto_indices(tp, energy)
        assert list(tp[kept]) == sorted(tp[kept])

    def test_empty(self):
        assert pareto_indices(np.array([]), np.array([])).size == 0
