"""Tests for the vectorised mix-grid evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.configuration import ClusterConfiguration
from repro.cluster.pareto import evaluate_configuration
from repro.errors import ModelError
from repro.model.vectorized import evaluate_mix_grid, per_node_constants


class TestPerNodeConstants:
    def test_matches_table6_calibration(self, workloads):
        from repro.workloads.suite import PAPER_IPR, PAPER_PPR

        rates, idles, dyns = per_node_constants(workloads["EP"], ["A9", "K10"])
        assert idles[0] == pytest.approx(1.8)
        assert idles[1] == pytest.approx(45.0)
        assert rates[0] / (idles[0] + dyns[0]) == pytest.approx(
            PAPER_PPR["EP"]["A9"], rel=1e-6
        )


class TestGridAgainstScalar:
    @given(a=st.integers(0, 40), k=st.integers(0, 16))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_scalar_model(self, workloads, a, k):
        if a == 0 and k == 0:
            a = 1
        w = workloads["blackscholes"]
        grid = evaluate_mix_grid(w, {"A9": np.array([a]), "K10": np.array([k])})
        scalar = evaluate_configuration(
            w, ClusterConfiguration.mix({"A9": a, "K10": k})
        )
        assert grid.tp_s[0] == pytest.approx(scalar.tp_s, rel=1e-9)
        assert grid.energy_j[0] == pytest.approx(scalar.energy_j, rel=1e-9)
        assert grid.peak_w[0] == pytest.approx(scalar.peak_power_w, rel=1e-9)

    def test_full_grid_shapes(self, workloads):
        a, k = np.meshgrid(np.arange(1, 33), np.arange(0, 13))
        grid = evaluate_mix_grid(workloads["EP"], {"A9": a, "K10": k})
        assert grid.tp_s.shape == (13, 32)
        assert grid.energy_j.shape == (13, 32)
        assert np.all(grid.tp_s > 0)

    def test_broadcasting(self, workloads):
        grid = evaluate_mix_grid(
            workloads["EP"],
            {"A9": np.arange(1, 5)[:, None], "K10": np.arange(0, 3)[None, :]},
        )
        assert grid.tp_s.shape == (4, 3)

    def test_power_and_ppr_helpers(self, workloads):
        from repro.core.proportionality import power_curve, ppr_curve

        w = workloads["EP"]
        grid = evaluate_mix_grid(w, {"A9": np.array([25]), "K10": np.array([7])})
        config = ClusterConfiguration.mix({"A9": 25, "K10": 7})
        curve = power_curve(w, config)
        assert grid.power_at(0.5)[0] == pytest.approx(curve.power_w(0.5), rel=1e-9)
        assert grid.ipr[0] == pytest.approx(curve.idle_w / curve.peak_w, rel=1e-9)
        assert grid.ppr_at(1.0)[0] == pytest.approx(
            ppr_curve(w, config).peak_ppr, rel=1e-9
        )

    def test_validation(self, workloads):
        with pytest.raises(ModelError):
            evaluate_mix_grid(workloads["EP"], {})
        with pytest.raises(ModelError):
            evaluate_mix_grid(workloads["EP"], {"A9": np.array([-1])})
        with pytest.raises(ModelError):
            evaluate_mix_grid(
                workloads["EP"], {"A9": np.array([0]), "K10": np.array([0])}
            )
        grid = evaluate_mix_grid(workloads["EP"], {"A9": np.array([1])})
        with pytest.raises(ModelError):
            grid.power_at(1.5)
        with pytest.raises(ModelError):
            grid.ppr_at(0.0)


class TestGridPerformance:
    def test_large_grid_is_fast(self, workloads):
        """A quarter-million mixes evaluate in well under a second."""
        import time

        a, k = np.meshgrid(np.arange(1, 513), np.arange(0, 513))
        start = time.perf_counter()
        grid = evaluate_mix_grid(workloads["EP"], {"A9": a, "K10": k})
        elapsed = time.perf_counter() - start
        assert grid.tp_s.size == 512 * 513
        assert elapsed < 1.0
