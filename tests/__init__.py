"""Test package."""
