"""Property tests: invariants of the time-energy model over random
configurations and workloads."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.configuration import ClusterConfiguration, NodeGroup
from repro.hardware.specs import a9, k10
from repro.model.energy_model import job_energy, power_draw
from repro.model.time_model import execution_time, job_execution
from repro.workloads.base import ActivityFactors, Workload, WorkloadDemand

_A9 = a9()
_K10 = k10()


@st.composite
def configurations(draw):
    """Random heterogeneous configurations over all (n, c, f) choices."""
    groups = []
    if draw(st.booleans()):
        groups.append(
            NodeGroup(
                _A9,
                draw(st.integers(1, 40)),
                draw(st.integers(1, _A9.cores)),
                draw(st.sampled_from(_A9.frequencies_hz)),
            )
        )
    groups.append(
        NodeGroup(
            _K10,
            draw(st.integers(1, 16)),
            draw(st.integers(1, _K10.cores)),
            draw(st.sampled_from(_K10.frequencies_hz)),
        )
    )
    return ClusterConfiguration(groups=tuple(groups))


@st.composite
def workloads_strategy(draw):
    """Random two-type workloads with non-degenerate demands."""
    act = ActivityFactors(
        draw(st.floats(0.05, 1.0)),
        draw(st.floats(0.05, 1.0)),
        draw(st.floats(0.0, 1.0)),
        draw(st.floats(0.0, 1.0)),
    )

    def demand():
        return WorkloadDemand(
            core_cycles_per_op=draw(st.floats(10.0, 1e6)),
            mem_cycles_per_op=draw(st.floats(0.0, 1e5)),
            io_bytes_per_op=draw(st.floats(0.0, 1e3)),
            activity=act,
        )

    return Workload(
        name="prop",
        domain="t",
        unit="ops",
        ops_per_job=draw(st.floats(1e3, 1e9)),
        demands={"A9": demand(), "K10": demand()},
    )


class TestTimeModelInvariants:
    @given(config=configurations(), workload=workloads_strategy())
    @settings(max_examples=80, deadline=None)
    def test_equal_finish_division(self, config, workload):
        """Every node is busy exactly T_P and shares sum to one."""
        execution = job_execution(workload, config)
        total_share = 0.0
        for ge in execution.groups:
            assert ge.busy_time == pytest.approx(execution.tp_s, rel=1e-9)
            total_share += ge.ops_per_node * ge.group.count
        assert total_share == pytest.approx(workload.ops_per_job, rel=1e-9)

    @given(config=configurations(), workload=workloads_strategy())
    @settings(max_examples=60, deadline=None)
    def test_adding_a_node_never_slows(self, config, workload):
        bigger_groups = []
        for g in config.groups:
            bigger_groups.append(
                NodeGroup(g.spec, g.count + 1, g.cores, g.frequency_hz)
            )
        bigger = ClusterConfiguration(groups=tuple(bigger_groups))
        assert execution_time(workload, bigger) < execution_time(workload, config)

    @given(config=configurations(), workload=workloads_strategy())
    @settings(max_examples=60, deadline=None)
    def test_time_positive_and_finite(self, config, workload):
        tp = execution_time(workload, config)
        assert 0.0 < tp < float("inf")


class TestEnergyModelInvariants:
    @given(config=configurations(), workload=workloads_strategy())
    @settings(max_examples=80, deadline=None)
    def test_energy_at_least_idle_baseline(self, config, workload):
        je = job_energy(workload, config)
        assert je.e_total_j >= config.idle_w * je.tp_s - 1e-9

    @given(config=configurations(), workload=workloads_strategy())
    @settings(max_examples=60, deadline=None)
    def test_peak_at_least_idle(self, config, workload):
        draw = power_draw(workload, config)
        assert draw.peak_w >= draw.idle_w
        assert 0.0 < draw.ipr <= 1.0

    @given(config=configurations(), workload=workloads_strategy())
    @settings(max_examples=60, deadline=None)
    def test_dynamic_power_within_component_ceiling(self, config, workload):
        """Dynamic power can never exceed the sum of every node's fully
        active component envelope."""
        draw = power_draw(workload, config)
        ceiling = sum(
            g.count * g.spec.power.dynamic_ceiling_w for g in config.groups
        )
        assert draw.dynamic_w <= ceiling + 1e-9

    @given(
        config=configurations(),
        workload=workloads_strategy(),
        k=st.floats(1.5, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_and_time_linear_in_job_size(self, config, workload, k):
        je1 = job_energy(workload, config)
        je2 = job_energy(workload.with_job_size(workload.ops_per_job * k), config)
        assert je2.tp_s == pytest.approx(k * je1.tp_s, rel=1e-9)
        assert je2.e_total_j == pytest.approx(k * je1.e_total_j, rel=1e-9)
