"""Property tests: worker count never changes a single bit of any result.

The parallel layer's one contract — decomposition is simulation
semantics, worker count is execution placement — as hypothesis
properties: ``run(workers=k)`` must equal ``run(workers=1)`` bit-for-bit
for k in {1, 2, 4}, on Monte-Carlo replications and on sharded scheduler
telemetry, across random shapes, loads and seeds.  Example counts are
deliberately small: every parallel example forks a process pool.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.configuration import ClusterConfiguration
from repro.extensions.dynamic import diurnal_trace
from repro.parallel.sharding import sharded_replay
from repro.queueing.mc import MonteCarloQueue
from repro.workloads.suite import paper_workloads

_WORKERS = st.sampled_from([1, 2, 4])
_TRACE = diurnal_trace(n_intervals=8)
_EP = paper_workloads()["EP"]

_MC_FIELDS = (
    "response_percentiles_s",
    "mean_response_s",
    "mean_wait_s",
    "utilisation",
    "busy_time_s",
    "idle_time_s",
    "span_s",
)


class TestMonteCarloWorkerInvariance:
    @given(
        workers=_WORKERS,
        rho=st.floats(0.2, 0.9),
        n_reps=st.integers(2, 7),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=8, deadline=None)
    def test_replications_bit_identical(self, workers, rho, n_reps, seed):
        mc = MonteCarloQueue.from_utilisation(rho, 1.0, seed=seed)
        serial = mc.run(400, n_reps)
        parallel = mc.run(400, n_reps, workers=workers)
        for field in _MC_FIELDS:
            assert np.array_equal(
                getattr(serial, field), getattr(parallel, field)
            ), field


class TestShardedReplayWorkerInvariance:
    @given(
        workers=_WORKERS,
        n_shards=st.integers(2, 3),
        a9=st.integers(2, 8),
        k10=st.integers(0, 3),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=6, deadline=None)
    def test_telemetry_bit_identical(self, workers, n_shards, a9, k10, seed):
        config = ClusterConfiguration.mix(
            {name: n for name, n in (("A9", a9), ("K10", k10)) if n > 0}
        )
        runs = [
            sharded_replay(
                _EP,
                "jsq",
                _TRACE,
                n_shards=n_shards,
                workers=w,
                config=config,
                seed=seed,
            )
            for w in (1, workers)
        ]
        a, b = runs
        assert a.timeline == b.timeline
        assert a.total_energy_j == b.total_energy_j
        assert (a.p50_s, a.p95_s, a.p99_s) == (b.p50_s, b.p95_s, b.p99_s)
        assert a.boots == b.boots and a.shutdowns == b.shutdowns
        assert np.array_equal(a.responses_s, b.responses_s)
        assert a.node_stats == b.node_stats
