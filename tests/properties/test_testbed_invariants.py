"""Property tests: invariants of the simulated testbed."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.configuration import ClusterConfiguration
from repro.hardware.testbed import Testbed
from repro.model.energy_model import job_energy
from repro.model.time_model import job_execution, node_service_rate
from repro.util.rng import RngRegistry
from repro.workloads.suite import PAPER_WORKLOAD_NAMES, paper_workloads


def _split(workload, config):
    rates = {
        g.spec.name: node_service_rate(g, workload.demand_for(g.spec.name))
        for g in config.groups
    }
    total = sum(rates[g.spec.name] * g.count for g in config.groups)
    return {name: r / total for name, r in rates.items()}


@st.composite
def small_mixes(draw):
    a = draw(st.integers(0, 4))
    k = draw(st.integers(0, 2))
    if a == 0 and k == 0:
        a = 1
    return ClusterConfiguration.mix({"A9": a, "K10": k})


class TestTestbedInvariants:
    @given(
        config=small_mixes(),
        name=st.sampled_from(PAPER_WORKLOAD_NAMES),
        seed=st.integers(0, 2**31),
        scale=st.sampled_from([8.0, 32.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_measurement_brackets_model(self, config, name, seed, scale):
        """Measured time stays inside the model's noise envelope.

        Overheads, working-set growth and stragglers push the measured run
        above the model; symmetric per-phase noise can pull a *single-node*
        run marginally below it (no straggler max to break the symmetry),
        so the lower bound allows a small noise margin rather than strict
        dominance.  Measured energy is at least the idle baseline.
        """
        w = paper_workloads()[name].with_job_size(
            paper_workloads()[name].ops_per_job * scale
        )
        testbed = Testbed(config, RngRegistry(seed))
        measured = testbed.run_job(w, work_split=_split(w, config))
        model_time = job_execution(w, config).tp_s
        assert measured.makespan_s > model_time * 0.97
        assert measured.makespan_s < model_time * 1.6
        idle_floor = config.idle_w * measured.makespan_s
        assert measured.energy_j > idle_floor * 0.95

    @given(
        config=small_mixes(),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, config, seed):
        """Identical seeds reproduce measurements bit-for-bit."""
        w = paper_workloads()["EP"]
        split = _split(w, config)
        a = Testbed(config, RngRegistry(seed)).run_job(w, work_split=split)
        b = Testbed(config, RngRegistry(seed)).run_job(w, work_split=split)
        assert a.makespan_s == b.makespan_s
        assert a.energy_j == b.energy_j

    @given(duration=st.floats(1.0, 100.0), seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_idle_measurement_tracks_idle_power(self, duration, seed):
        config = ClusterConfiguration.mix({"A9": 2, "K10": 1})
        testbed = Testbed(config, RngRegistry(seed))
        energy = testbed.measure_idle(duration)
        assert energy == pytest.approx(config.idle_w * duration, rel=0.05)
