"""Property tests: stochastic-ordering invariants of the queueing models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.md1 import MD1Queue
from repro.queueing.mdc import MDCQueue
from repro.queueing.mg1 import MG1Queue, MM1Queue


class TestStochasticOrderings:
    @given(rho=st.floats(0.05, 0.95), t=st.floats(0.0, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_service_stochastically_smaller(self, rho, t):
        """M/D/1 waits are stochastically below M/M/1's at equal load:
        F_MD1(t) >= F_MM1(t) for every t."""
        md1 = MD1Queue.from_utilisation(rho, 1.0)
        mm1 = MM1Queue.from_utilisation(rho, 1.0)
        assert md1.wait_cdf(t) >= mm1.wait_cdf(t) - 1e-9

    @given(
        rho_lo=st.floats(0.05, 0.5),
        extra=st.floats(0.05, 0.45),
        t=st.floats(0.0, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_wait_cdf_decreases_with_load(self, rho_lo, extra, t):
        lighter = MD1Queue.from_utilisation(rho_lo, 1.0)
        heavier = MD1Queue.from_utilisation(rho_lo + extra, 1.0)
        assert lighter.wait_cdf(t) >= heavier.wait_cdf(t) - 1e-9

    @given(rho=st.floats(0.1, 0.9), c=st.integers(1, 4), t=st.floats(0.0, 8.0))
    @settings(max_examples=40, deadline=None)
    def test_extra_server_only_helps(self, rho, c, t):
        """At fixed arrival rate and service time, adding a server can only
        raise the wait CDF."""
        base = MDCQueue.from_utilisation(rho, 1.0, c)
        lam = base.arrival_rate
        more = MDCQueue(lam, 1.0, c + 1)
        assert more.wait_cdf(t) >= base.wait_cdf(t) - 1e-6

    @given(rho=st.floats(0.05, 0.9), scv=st.floats(0.0, 4.0))
    @settings(max_examples=60)
    def test_pk_mean_interpolates(self, rho, scv):
        """M/G/1 mean wait is exactly (1 + SCV)/2 of the M/M/1 wait."""
        mm1 = MM1Queue.from_utilisation(rho, 1.0)
        mg1 = MG1Queue(mm1.arrival_rate, 1.0, scv)
        assert mg1.mean_wait_s == pytest.approx(
            mm1.mean_wait_s * (1 + scv) / 2.0, rel=1e-9
        )


class TestDistributionConsistency:
    @given(rho=st.floats(0.05, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_wait_atom_matches_system_size(self, rho):
        """PASTA: P(W = 0) equals P(system empty) for M/D/1."""
        q = MD1Queue.from_utilisation(rho, 1.0)
        assert q.wait_cdf(0.0) == pytest.approx(q.system_size_pmf(0), abs=1e-10)

    @given(rho=st.floats(0.05, 0.9), n=st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_cdf_pmf_consistency(self, rho, n):
        q = MD1Queue.from_utilisation(rho, 1.0)
        direct = sum(q.system_size_pmf(i) for i in range(n + 1))
        assert q.system_size_cdf(n) == pytest.approx(direct, abs=1e-12)

    @given(rho=st.floats(0.05, 0.85), c=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_mdc_mean_busy_servers(self, rho, c):
        """Work conservation: E[min(N, c)] = offered load."""
        q = MDCQueue.from_utilisation(rho, 1.0, c)
        mean_busy = sum(min(n, c) * q.system_size_pmf(n) for n in range(800))
        assert mean_busy == pytest.approx(q.offered_load, abs=1e-6)
