"""Property tests: invariants of the proportionality metrics over random
power curves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    LinearPowerCurve,
    PPRCurve,
    QuadraticPowerCurve,
    SampledPowerCurve,
    analyze_curve,
    epm,
    ipr,
    ldr_strict,
    proportionality_gap,
)
from repro.core.proportionality import sublinear_crossover


@st.composite
def sampled_curves(draw):
    """Random valid sampled power curves on [0, 1]."""
    n = draw(st.integers(3, 12))
    u = np.sort(draw(
        st.lists(
            st.floats(0.01, 0.99), min_size=n - 2, max_size=n - 2, unique=True
        )
    ))
    powers = draw(
        st.lists(st.floats(0.1, 1000.0), min_size=n, max_size=n)
    )
    return SampledPowerCurve(np.concatenate([[0.0], u, [1.0]]), powers)


@st.composite
def quadratic_curves(draw):
    idle = draw(st.floats(0.0, 50.0))
    peak = idle + draw(st.floats(0.1, 100.0))
    curvature = draw(st.floats(-1.0, 1.0))
    return QuadraticPowerCurve(idle, peak, curvature=curvature)


class TestMetricBounds:
    @given(curve=quadratic_curves())
    @settings(max_examples=80)
    def test_ipr_in_unit_interval(self, curve):
        assert 0.0 <= ipr(curve) <= 1.0

    @given(curve=quadratic_curves())
    @settings(max_examples=80)
    def test_report_consistency(self, curve):
        report = analyze_curve(curve)
        assert report.dpr == pytest.approx(100.0 * (1.0 - report.ipr))
        assert report.ldr_paper == pytest.approx(1.0 - report.ipr)
        assert report.idle_w == curve.idle_w
        assert report.peak_w == curve.peak_w

    @given(curve=quadratic_curves())
    @settings(max_examples=80)
    def test_ldr_sign_tracks_curvature(self, curve):
        value = ldr_strict(curve)
        if curve.curvature > 1e-6:
            assert value <= 0.0
        elif curve.curvature < -1e-6:
            assert value >= 0.0

    @given(curve=quadratic_curves())
    @settings(max_examples=60)
    def test_pg_vanishes_at_full_load(self, curve):
        assert proportionality_gap(curve, 1.0) == pytest.approx(0.0, abs=1e-12)

    @given(curve=sampled_curves())
    @settings(max_examples=60)
    def test_epm_defined_for_any_sampled_curve(self, curve):
        value = epm(curve)
        assert np.isfinite(value)

    @given(curve=quadratic_curves())
    @settings(max_examples=60)
    def test_epm_at_most_one_for_nonnegative_curves(self, curve):
        """A curve that never dips below zero power has EPM <= 1 + IPR-ish
        bound; for curves above the ideal line EPM <= 1 exactly."""
        grid = np.linspace(0.0, 1.0, 101)
        above_ideal = np.all(curve.power_series(grid) >= grid * curve.peak_w - 1e-9)
        if above_ideal:
            assert epm(curve) <= 1.0 + 1e-9


class TestPPRInvariants:
    @given(
        curve=quadratic_curves(),
        throughput=st.floats(1.0, 1e9),
        u=st.floats(0.01, 1.0),
    )
    @settings(max_examples=80)
    def test_ppr_positive_and_bounded_by_ideal(self, curve, throughput, u):
        ppr_curve = PPRCurve(throughput, curve)
        value = ppr_curve.ppr_at(u)
        assert value > 0.0
        if curve.idle_w > 0:
            # Idle power only hurts: PPR is below the idle-free bound.
            ideal = throughput / curve.peak_w if u == 1.0 else None
        assert np.isfinite(value)

    @given(curve=quadratic_curves(), throughput=st.floats(1.0, 1e9))
    @settings(max_examples=60)
    def test_peak_ppr_is_throughput_over_peak(self, curve, throughput):
        ppr_curve = PPRCurve(throughput, curve)
        assert ppr_curve.peak_ppr == pytest.approx(throughput / curve.peak_w)


class TestSublinearityInvariants:
    @given(
        idle=st.floats(0.1, 50.0),
        dyn=st.floats(0.1, 100.0),
        ref_scale=st.floats(1.01, 10.0),
    )
    @settings(max_examples=80)
    def test_crossover_exact(self, idle, dyn, ref_scale):
        """Whenever a crossover exists, the curve equals the reference
        ideal exactly there."""
        curve = LinearPowerCurve(idle, idle + dyn)
        reference = ref_scale * (idle + dyn)
        u_star = sublinear_crossover(curve, reference_peak_w=reference)
        if u_star is not None:
            assert curve.power_w(u_star) == pytest.approx(
                u_star * reference, rel=1e-9
            )

    @given(idle=st.floats(0.1, 50.0), dyn=st.floats(0.1, 100.0))
    @settings(max_examples=60)
    def test_no_crossover_against_own_peak(self, idle, dyn):
        curve = LinearPowerCurve(idle, idle + dyn)
        assert sublinear_crossover(curve, reference_peak_w=curve.peak_w) is None
