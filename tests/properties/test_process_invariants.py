"""Property tests for the stochastic-process plug-ins.

Three families of hypotheses over random rates, means and seeds:

* **Mean matching** — every arrival spec's empirical long-run rate and
  every service spec's empirical mean land within a CI-scaled tolerance
  of the configured value; the non-Poisson processes trade *variance*,
  never *mean*, so energy accounting stays comparable across the grid.
* **Tail shape** — the Hill estimator recovers Pareto's configured tail
  index (heavy tail confirmed) and rejects a comparably-heavy reading
  for the exponential and deterministic services (light tails stay
  light).
* **Worker invariance** — the Monte-Carlo engine's results are
  bit-identical at any worker count for *every* process pair, because
  replication r always consumes spawned stream r regardless of which
  process executes it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.mc import MonteCarloQueue
from repro.queueing.processes import (
    ARRIVAL_KINDS,
    SERVICE_KINDS,
    ParetoService,
    make_arrivals,
    make_service,
)
from repro.util.stats import hill_tail_index

_RATES = st.floats(0.5, 8.0)
_MEANS = st.floats(0.1, 5.0)
_SEEDS = st.integers(0, 2**31 - 1)


class TestMeanMatching:
    @given(kind=st.sampled_from(ARRIVAL_KINDS), rate=_RATES, seed=_SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_arrival_rate_within_ci(self, kind, rate, seed):
        spec = make_arrivals(kind, rate)
        n = 40_000
        times = spec.sample_arrivals(np.random.default_rng(seed), n)
        # The empirical rate over n arrivals; the bursty/flash processes
        # have heavier gap variance than Poisson, so the tolerance is a
        # generous multiple of the Poisson CLT half-width.
        empirical = n / float(times[-1])
        assert empirical == pytest.approx(rate, rel=0.15)

    @given(kind=st.sampled_from(SERVICE_KINDS), mean=_MEANS, seed=_SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_service_mean_within_ci(self, kind, mean, seed):
        spec = make_service(kind, mean)
        draws = spec(np.random.default_rng(seed), 60_000)
        # Pareto at the default tail index has infinite-ish sample
        # variance; 15% relative tolerance absorbs its slow CLT.
        assert float(np.mean(draws)) == pytest.approx(mean, rel=0.15)

    @given(kind=st.sampled_from(ARRIVAL_KINDS), rate=_RATES, seed=_SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_arrivals_sorted_nonnegative(self, kind, rate, seed):
        spec = make_arrivals(kind, rate)
        times = spec.sample_arrivals(np.random.default_rng(seed), 512)
        assert times.shape == (512,)
        assert float(times[0]) >= 0.0
        assert np.all(np.diff(times) >= 0.0)


class TestTailShape:
    @given(
        tail=st.floats(1.6, 3.0),
        mean=_MEANS,
        seed=_SEEDS,
    )
    @settings(max_examples=15, deadline=None)
    def test_hill_recovers_pareto_index(self, tail, mean, seed):
        draws = ParetoService(mean, tail_index=tail)(
            np.random.default_rng(seed), 150_000
        )
        estimate = hill_tail_index(draws, k=2000)
        assert estimate == pytest.approx(tail, rel=0.2)

    @given(mean=_MEANS, seed=_SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_exponential_reads_lighter_than_pareto(self, mean, seed):
        rng = np.random.default_rng(seed)
        heavy = hill_tail_index(
            ParetoService(mean, tail_index=2.2)(rng, 100_000), k=1500
        )
        light = hill_tail_index(
            make_service("exponential", mean)(rng, 100_000), k=1500
        )
        # A larger Hill index means a lighter tail; exponential must sit
        # clearly above the configured Pareto index.
        assert light > heavy
        assert light > 3.5

    @given(mean=_MEANS, seed=_SEEDS)
    @settings(max_examples=5, deadline=None)
    def test_deterministic_tail_is_degenerate(self, mean, seed):
        draws = make_service("deterministic", mean)(
            np.random.default_rng(seed), 1000
        )
        with pytest.raises(ValueError):
            hill_tail_index(draws, k=100)


class TestProcessWorkerInvariance:
    _MC_FIELDS = (
        "response_percentiles_s",
        "mean_response_s",
        "mean_wait_s",
        "utilisation",
        "busy_time_s",
        "idle_time_s",
        "span_s",
    )

    @given(
        arrival=st.sampled_from(ARRIVAL_KINDS),
        service=st.sampled_from(SERVICE_KINDS),
        workers=st.sampled_from([1, 2, 4]),
        seed=_SEEDS,
    )
    @settings(max_examples=8, deadline=None)
    def test_every_process_pair_bit_identical(
        self, arrival, service, workers, seed
    ):
        mc = MonteCarloQueue(
            make_arrivals(arrival, 0.7),
            make_service(service, 1.0),
            seed=seed,
        )
        serial = mc.run(300, 5)
        parallel = mc.run(300, 5, workers=workers)
        for field in self._MC_FIELDS:
            assert np.array_equal(
                getattr(serial, field), getattr(parallel, field)
            ), field
