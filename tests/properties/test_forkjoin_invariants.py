"""Property tests: the fork-join simulator against its analytic anchors.

Two families of invariants:

* ``cv = 0`` collapses fork-join to M/D/1 — exactly on the sample path
  (every chunk takes the same time, the join adds nothing, so responses
  are the scalar Lindley waits plus the service), and statistically
  against the analytic M/D/1 percentile;
* the straggler penalty is monotone: widening the chunk-time noise or the
  fan-out can only lengthen the tail.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueingError
from repro.queueing.forkjoin import simulate_fork_join
from repro.queueing.mc import scalar_lindley_waits
from repro.queueing.md1 import MD1Queue


class TestDeterministicChunksAreMD1:
    @given(
        rho=st.floats(0.1, 0.85),
        n_nodes=st.integers(1, 8),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_sample_path_equals_scalar_lindley(self, rho, n_nodes, seed):
        """With cv=0 every node sees the same arrivals and the same
        deterministic service, so the join is a no-op and the response of
        each job is exactly its single-queue Lindley wait plus service."""
        chunk = 1.0
        result = simulate_fork_join(
            arrival_rate=rho / chunk,
            chunk_time_s=chunk,
            n_nodes=n_nodes,
            cv=0.0,
            n_jobs=400,
            rng=np.random.default_rng(seed),
        )
        waits = scalar_lindley_waits(result.arrivals, chunk)
        np.testing.assert_allclose(result.responses, waits + chunk, rtol=1e-12)

    @given(rho=st.floats(0.15, 0.7), seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_p95_matches_the_analytic_md1(self, rho, seed):
        chunk = 1.0
        result = simulate_fork_join(
            arrival_rate=rho / chunk,
            chunk_time_s=chunk,
            n_nodes=4,
            cv=0.0,
            n_jobs=8_000,
            rng=np.random.default_rng(seed),
        )
        analytic = MD1Queue.from_utilisation(rho, chunk).p95_response_s()
        assert result.p95_response_s == pytest.approx(analytic, rel=0.15)


class TestStragglerMonotonicity:
    @given(
        cv_lo=st.floats(0.0, 0.4),
        cv_step=st.floats(0.3, 1.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_penalty_grows_with_chunk_noise(self, cv_lo, cv_step, seed):
        def p95(cv):
            return simulate_fork_join(
                arrival_rate=0.5,
                chunk_time_s=1.0,
                n_nodes=6,
                cv=cv,
                n_jobs=6_000,
                rng=np.random.default_rng(seed),
            ).p95_response_s

        # 2% slack absorbs sampling noise; the effect itself is much larger.
        assert p95(cv_lo + cv_step) >= p95(cv_lo) * 0.98

    @given(
        n_lo=st.integers(1, 6),
        n_step=st.integers(2, 8),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_penalty_grows_with_fan_out(self, n_lo, n_step, seed):
        def p95(n_nodes):
            return simulate_fork_join(
                arrival_rate=0.5,
                chunk_time_s=1.0,
                n_nodes=n_nodes,
                cv=0.5,
                n_jobs=6_000,
                rng=np.random.default_rng(seed),
            ).p95_response_s

        assert p95(n_lo + n_step) >= p95(n_lo) * 0.98

    @given(cv=st.floats(0.0, 1.0), seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_straggler_factor_at_least_one(self, cv, seed):
        result = simulate_fork_join(
            arrival_rate=0.3,
            chunk_time_s=1.0,
            n_nodes=4,
            cv=cv,
            n_jobs=3_000,
            rng=np.random.default_rng(seed),
        )
        # Responses include a full chunk service, so the mean can only sit
        # above the noise-free chunk time (small slack for lognormal skew).
        assert result.straggler_factor >= 0.95


class TestStability:
    @given(rho=st.floats(1.0, 3.0))
    @settings(max_examples=10, deadline=None)
    def test_overloaded_system_rejected(self, rho):
        with pytest.raises(QueueingError):
            simulate_fork_join(
                arrival_rate=rho,
                chunk_time_s=1.0,
                n_nodes=2,
                n_jobs=10,
                rng=np.random.default_rng(0),
            )
