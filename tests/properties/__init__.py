"""Cross-cutting hypothesis property tests."""
