"""Load-generator contracts: seeded plans, both loop modes, the envelope."""

import asyncio

import pytest

from repro.errors import ReproError
from repro.serve.loadgen import (
    LOADGEN_SCHEMA,
    loadgen_envelope,
    loadgen_scalars,
    run_loadgen,
    selfhosted_loadgen,
)
from repro.serve.service import ServeConfig

SPACE = {"max_wimpy": 2, "max_brawny": 1}


def _small_run(**overrides):
    kwargs = dict(
        mode="closed",
        clients=2,
        total_requests=12,
        workloads=("EP",),
        space=SPACE,
        seed=123,
    )
    kwargs.update(overrides)
    return selfhosted_loadgen(ServeConfig(precompute=()), **kwargs)


class TestClosedLoop:
    def test_every_request_completes(self):
        result, summary = _small_run()
        assert result.mode == "closed"
        assert result.attempted == 12
        assert result.completed == 12
        assert result.errors == 0
        assert len(result.latencies_s) == 12
        assert result.throughput_rps > 0
        assert result.p95_s >= result.p50_s > 0
        # The service summary covers the priming pass plus the window.
        assert summary["requests_total"] >= 13.0

    def test_same_seed_same_plan(self):
        a, _ = _small_run(collect_responses=True)
        b, _ = _small_run(collect_responses=True)
        assert [body for body, _doc in a.responses] == [
            body for body, _doc in b.responses
        ]

    def test_collect_responses_keeps_pairs(self):
        result, _ = _small_run(collect_responses=True)
        assert len(result.responses) == 12
        body, doc = result.responses[0]
        assert body["workload"] == "EP"
        assert doc["endpoint"] == "recommend"

    def test_responses_dropped_by_default(self):
        result, _ = _small_run()
        assert result.responses == ()


class TestOpenLoop:
    def test_open_mode_dispatches_by_arrival_process(self):
        result, _ = _small_run(
            mode="open", arrival="poisson", rate_rps=500.0, total_requests=10
        )
        assert result.mode == "open"
        assert result.attempted == 10
        assert result.completed + result.shed + result.errors == 10
        assert result.errors == 0


class TestEnvelope:
    def test_envelope_and_scalars_shape(self):
        result, _ = _small_run()
        envelope = loadgen_envelope(result, {"clients": 2})
        assert envelope["schema"] == LOADGEN_SCHEMA
        assert envelope["requests"]["completed"] == 12
        assert set(envelope["latency_s"]) == {"p50", "p95", "p99", "mean"}
        assert envelope["server"] is not None
        scalars = loadgen_scalars(result)
        assert scalars["completed"] == 12.0
        assert scalars["throughput_rps"] == pytest.approx(
            result.throughput_rps
        )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "sideways"},
            {"clients": 0},
            {"total_requests": 0},
            {"workloads": ()},
        ],
    )
    def test_bad_arguments_raise(self, kwargs):
        with pytest.raises(ReproError):
            _small_run(**kwargs)

    def test_unreachable_service_raises(self):
        async def scenario():
            await run_loadgen("127.0.0.1", 9, total_requests=1)

        with pytest.raises(OSError):
            asyncio.run(scenario())
