"""CLI-level serve/loadgen contracts: flags, records, and the envelope.

The ledger contract under test is the satellite one: a ``repro serve``
run appends exactly ONE ``cli/serve`` summary record — the thousands of
queries the service answers internally never touch the ledger — and
``--no-ledger`` suppresses even that.
"""

import json

from repro.cli import main
from repro.obs.ledger import default_ledger
from repro.serve.loadgen import LOADGEN_SCHEMA

LOADGEN_ARGS = [
    "--requests",
    "6",
    "--clients",
    "2",
    "--workloads",
    "EP",
    "--max-wimpy",
    "2",
    "--max-brawny",
    "1",
]


class TestServeCommand:
    def test_bounded_run_prints_summary_and_one_record(self, capsys):
        assert main(["serve", "--duration", "0.2", "--precompute", ""]) == 0
        out = capsys.readouterr().out
        assert "[serve] listening on http://127.0.0.1:" in out
        assert "Serve summary" in out
        records = default_ledger().records()
        assert [r.name for r in records] == ["cli/serve"]
        assert records[0].scalars["requests_total"] == 0.0

    def test_precompute_queries_stay_out_of_the_ledger(self, capsys):
        # Warming the cache runs a real sweep through the service's own
        # compute path; none of it may generate per-query records.
        assert main(["serve", "--duration", "0.2", "--precompute", "EP"]) == 0
        records = default_ledger().records()
        assert [r.name for r in records] == ["cli/serve"]
        assert records[0].scalars["cache_misses"] >= 1.0


class TestLoadgenCommand:
    def test_json_envelope_and_experiment_record(self, capsys):
        assert main(["loadgen", *LOADGEN_ARGS, "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["schema"] == LOADGEN_SCHEMA
        assert envelope["requests"]["completed"] == 6
        assert envelope["requests"]["errors"] == 0
        # Self-hosted runs fold the server's own counters into the envelope.
        assert envelope["serve_summary"]["requests_total"] >= 7.0
        names = [r.name for r in default_ledger().records()]
        assert names.count("cli/loadgen") == 1
        assert names.count("experiment/serve-loadgen") == 1

    def test_summary_table_output(self, capsys):
        assert main(["loadgen", *LOADGEN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "Loadgen against /recommend" in out
        assert "throughput [req/s]" in out

    def test_no_ledger_suppresses_every_record(self, capsys):
        assert main(["--no-ledger", "loadgen", *LOADGEN_ARGS]) == 0
        assert default_ledger().records() == []
