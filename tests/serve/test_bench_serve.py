"""Smoke contracts for the serving benchmark driver.

The full floor-gated run lives in ``benchmarks/bench_serve.py``; these
tests pin the driver's envelope shape and CLI plumbing on a small space
so a refactor that breaks the benchmark fails in tier-1, not in CI's
benchmark job.
"""

import json

from repro.benchmarks.serve import main, run_benchmark
from repro.obs.timer import BENCH_SCHEMA


def test_run_benchmark_envelope_shape():
    result = run_benchmark(
        workloads=("EP",),
        served_requests=16,
        resweep_requests=4,
        clients=2,
        max_wimpy=2,
        max_brawny=1,
    )
    assert result["schema"] == BENCH_SCHEMA
    assert result["resweep"]["requests"] == 4
    assert result["resweep"]["p95_latency_s"] >= result["resweep"]["p50_latency_s"]
    assert result["served"]["completed"] == 16.0
    assert result["served"]["errors"] == 0.0
    assert result["served"]["server"]["cache_hit_fraction"] > 0.5
    assert result["speedup"]["batched_vs_resweep"] > 0.0


def test_main_writes_envelope_and_sidecar(tmp_path, capsys):
    out = tmp_path / "BENCH_serve.json"
    rc = main(
        [
            "--workloads",
            "EP",
            "--requests",
            "16",
            "--resweep-requests",
            "4",
            "--clients",
            "2",
            "--output",
            str(out),
        ]
    )
    assert rc == 0
    envelope = json.loads(out.read_text())
    assert envelope["benchmark"] == "serve"
    assert envelope["params"]["workloads"] == ["EP"]
    assert (tmp_path / "BENCH_serve.metrics.json").exists()
    assert "speedup" in capsys.readouterr().out


def test_unknown_workload_is_an_error(tmp_path, capsys):
    rc = main(["--workloads", "nope", "--output", str(tmp_path / "x.json")])
    assert rc == 1
    assert "unknown paper workload" in capsys.readouterr().err
