"""End-to-end request observability over real HTTP round trips.

The wiring contracts of :mod:`repro.obs.request` through the serving
stack: trace propagation leaves answers bit-identical, the request-id
header round-trips, injected overload fires the burn-rate alert and
writes a parseable flight dump whose slowest trace accounts for the
request's wall time, and the load generator's envelope carries the
client-side join keys.
"""

import asyncio

import pytest

import repro
from repro.cluster.search import recommend_exhaustive
from repro.obs.request import (
    list_flight_dumps,
    load_flight_dump,
    span_coverage,
)
from repro.serve.loadgen import (
    _build_plan,
    _HttpClient,
    loadgen_envelope,
    run_loadgen,
)
from repro.serve.service import ReproService, ServeConfig

#: A deliberately small space so each cold sweep is milliseconds.
SPACE = {"max_wimpy": 2, "max_brawny": 1}


def _spaces():
    return [
        repro.TypeSpace(repro.get_node_spec("A9"), n_max=SPACE["max_wimpy"]),
        repro.TypeSpace(repro.get_node_spec("K10"), n_max=SPACE["max_brawny"]),
    ]


def run_with_service(scenario, **config_kwargs):
    """Boot a service, run ``scenario(service, client)``, tear both down."""

    async def main():
        service = ReproService(ServeConfig(**config_kwargs))
        await service.start()
        client = _HttpClient(service.host, service.port)
        await client.connect()
        try:
            return await scenario(service, client)
        finally:
            await client.aclose()
            await service.close()

    return asyncio.run(main())


class TestTracePropagation:
    def test_full_sampling_keeps_answers_bit_identical(self, workloads):
        # The layer's prime rule: tracing every request must not perturb
        # a single bit of the served answer.
        async def scenario(service, client):
            status, frontier = await client.request(
                "POST", "/frontier", {"workload": "EP", **SPACE}
            )
            assert status == 200
            tps = [p["tp_s"] for p in frontier["points"]]
            deadline = (min(tps) + max(tps)) / 2.0
            status, doc = await client.request(
                "POST",
                "/recommend",
                {"workload": "EP", "deadline_s": deadline, **SPACE},
            )
            assert status == 200
            return deadline, doc

        deadline, doc = run_with_service(scenario, trace_sample=1.0)
        rec = recommend_exhaustive(
            workloads["EP"], _spaces(), deadline_s=deadline
        )
        assert rec is not None
        assert doc["mix"] == rec.config.label()
        assert doc["tp_s"] == rec.evaluation.tp_s
        assert doc["energy_j"] == rec.evaluation.energy_j
        assert doc["peak_power_w"] == rec.evaluation.peak_power_w

    def test_cold_request_trace_spans_the_compute_path(self):
        async def scenario(service, client):
            status, _ = await client.request(
                "POST",
                "/recommend",
                {"workload": "EP", "deadline_s": 50.0, **SPACE},
            )
            assert status == 200
            traces = service.recorder.flight.traces()
            assert traces, "full sampling must keep the request"
            return traces[-1].to_dict()

        trace = run_with_service(scenario, trace_sample=1.0)
        names = {s["name"] for s in trace["stages"]}
        # The cold path: every stage of the pipeline plus the batcher's
        # cross-task queue/compute attribution nested under `cache`.
        assert {
            "parse",
            "validate",
            "admission",
            "cache",
            "batch.queue",
            "batch.compute",
            "lookup",
            "render",
        } <= names
        by_name = {s["name"]: s for s in trace["stages"]}
        assert by_name["batch.queue"]["path"] == ["cache", "batch.queue"]
        assert by_name["batch.compute"]["path"] == ["cache", "batch.compute"]
        assert by_name["cache"]["attrs"]["hit"] is False
        assert by_name["admission"]["attrs"]["admitted"] is True
        assert trace["outcome"] == "ok"
        assert span_coverage(trace) >= 0.95

    def test_warm_hit_trace_has_no_compute_stages(self):
        async def scenario(service, client):
            body = {"workload": "EP", "deadline_s": 50.0, **SPACE}
            await client.request("POST", "/recommend", body)
            await client.request("POST", "/recommend", body)
            return service.recorder.flight.traces()[-1].to_dict()

        trace = run_with_service(scenario, trace_sample=1.0)
        by_name = {s["name"]: s for s in trace["stages"]}
        assert by_name["cache"]["attrs"]["hit"] is True
        assert "batch.compute" not in by_name
        assert trace["cache_hit"] is True

    def test_tracing_disabled_records_no_stages(self):
        async def scenario(service, client):
            status, _ = await client.request(
                "POST",
                "/recommend",
                {"workload": "EP", "deadline_s": 50.0, **SPACE},
            )
            assert status == 200
            return service.recorder

        recorder = run_with_service(scenario, request_tracing=False)
        assert recorder.sampler.decided == 0
        assert len(recorder.flight) == 0
        # Burn accounting stays on even with tracing off.
        assert recorder.burn.good + recorder.burn.bad == 1

    def test_stats_exposes_slo_and_tracing_sections(self):
        async def scenario(service, client):
            await client.request(
                "POST",
                "/recommend",
                {"workload": "EP", "deadline_s": 50.0, **SPACE},
            )
            status, stats = await client.request("GET", "/stats")
            assert status == 200
            return stats

        stats = run_with_service(scenario, trace_sample=1.0)
        assert {"slo", "tracing"} <= set(stats)
        assert stats["slo"]["alert_active"] is False
        assert stats["tracing"]["enabled"] is True
        assert "cache" in stats["tracing"]["stages"]


class TestRequestIdEcho:
    def test_client_id_round_trips_in_the_header(self):
        async def scenario(service, client):
            status, _ = await client.request(
                "GET", "/healthz", headers={"X-Repro-Request-Id": "my-id-42"}
            )
            assert status == 200
            return client.last_headers

        headers = run_with_service(scenario)
        assert headers["x-repro-request-id"] == "my-id-42"

    def test_server_generates_an_id_when_none_sent(self):
        async def scenario(service, client):
            await client.request("GET", "/healthz")
            return client.last_headers

        headers = run_with_service(scenario)
        assert headers["x-repro-request-id"].startswith("req-")

    def test_shed_responses_echo_the_id_too(self):
        from repro.serve.admission import AdmissionDecision

        async def scenario(service, client):
            service.admission.decide = lambda depth: AdmissionDecision(
                admitted=False,
                depth=depth,
                depth_limit=0,
                service_time_estimate_s=1e-3,
            )
            status, _ = await client.request(
                "POST",
                "/recommend",
                {"workload": "EP", "deadline_s": 1.0, **SPACE},
                headers={"X-Repro-Request-Id": "shed-join-key"},
            )
            return status, client.last_headers

        status, headers = run_with_service(scenario)
        assert status == 503
        assert headers["x-repro-request-id"] == "shed-join-key"


class TestOverload:
    def test_overload_fires_alert_and_writes_coverage_complete_dump(
        self, tmp_path, workloads
    ):
        # The acceptance scenario: cold-digest overload against an
        # unmeetable SLO must raise the burn alert and leave a parseable
        # post-mortem whose slowest trace accounts for >= 95% of that
        # request's wall across the pipeline stages.
        flight_dir = tmp_path / "flight"

        async def main():
            service = ReproService(
                ServeConfig(
                    precompute=("EP",),
                    slo_p95_s=1e-4,  # everything is an SLO miss
                    trace_sample=1.0,
                    flight_dir=str(flight_dir),
                )
            )
            await service.start()
            try:
                result = await run_loadgen(
                    service.host,
                    service.port,
                    mode="open",
                    clients=8,
                    total_requests=60,
                    rate_rps=500.0,
                    workloads=("EP",),
                    space=SPACE,
                    seed=4242,
                    cold_fraction=1.0,
                )
                return result, service.recorder
            finally:
                await service.close()

        result, recorder = asyncio.run(main())
        assert len(recorder.burn.alerts) >= 1
        assert recorder.burn.alerts[0].fast_burn >= recorder.burn.threshold

        dumps = [load_flight_dump(p) for p in list_flight_dumps(flight_dir)]
        assert dumps, "the burn alert must have dumped the flight ring"
        doc = next(d for d in dumps if d["reason"] == "slo-burn")
        assert doc["alert"]["fast_burn"] >= doc["alert"]["threshold"]
        assert doc["service"] is not None  # /stats state embedded

        # Trace completeness on the slowest captured request.
        slowest = doc["slowest"]
        assert slowest["coverage"] >= 0.95
        target = next(
            r
            for r in doc["requests"]
            if r["request_id"] == slowest["request_id"]
        )
        assert span_coverage(target) == pytest.approx(slowest["coverage"])
        # Client-generated ids survive into the dump (the join contract).
        assert any(
            r["request_id"].startswith("lg-") for r in doc["requests"]
        )

    def test_cold_fraction_forces_unique_digests_without_reseeding(self):
        from repro.util.rng import RngRegistry

        ranges = {"EP": (10.0, 100.0)}
        base = _build_plan(
            RngRegistry(7).stream("serve/loadgen"),
            20,
            ["EP"],
            ranges,
            SPACE,
        )
        cold = _build_plan(
            RngRegistry(7).stream("serve/loadgen"),
            20,
            ["EP"],
            ranges,
            SPACE,
            cold_fraction=1.0,
        )
        # The base draws are bit-identical (cold draws happen after).
        assert [b["deadline_s"] for b in base] == [
            c["deadline_s"] for c in cold
        ]
        budgets = [c["budget_w"] for c in cold]
        assert len(set(budgets)) == len(budgets)
        assert all("budget_w" not in b for b in base)


class TestLoadgenEnvelope:
    def test_request_ids_section_and_full_echo(self):
        async def main():
            service = ReproService(ServeConfig(precompute=("EP",)))
            await service.start()
            try:
                return await run_loadgen(
                    service.host,
                    service.port,
                    mode="closed",
                    clients=4,
                    total_requests=24,
                    workloads=("EP",),
                    space=SPACE,
                    seed=99,
                )
            finally:
                await service.close()

        result = asyncio.run(main())
        assert result.completed == result.attempted
        assert result.id_echoes == result.attempted

        envelope = loadgen_envelope(result, {"clients": 4})
        ids = envelope["request_ids"]
        assert ids["echoed_fraction"] == 1.0
        assert ids["shed"] == [] and ids["errors"] == []
        assert len(ids["slowest"]) == 5
        assert all(
            entry["request_id"].startswith("lg-00000063-")
            for entry in ids["slowest"]
        )
        # The existing envelope shape is intact (ledger consumers pin it).
        assert set(envelope["latency_s"]) == {"p50", "p95", "p99", "mean"}


class TestOutcomeLabels:
    def test_latency_histogram_labelled_by_endpoint_and_outcome(self):
        from repro.obs import get_registry

        registry = get_registry()
        registry.enable()
        try:

            async def scenario(service, client):
                await client.request(
                    "POST",
                    "/recommend",
                    {"workload": "EP", "deadline_s": 50.0, **SPACE},
                )
                await client.request("GET", "/healthz")
                return None

            run_with_service(scenario)
            snap = registry.snapshot()
            series = snap["repro_serve_request_latency_s"]["series"]
            labels = {
                (s["labels"]["endpoint"], s["labels"]["outcome"])
                for s in series
            }
            assert ("/recommend", "ok") in labels
            assert ("/healthz", "ok") in labels
        finally:
            registry.disable()
            registry.reset(clear=True)
