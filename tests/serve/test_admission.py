"""Model-informed admission control: M/D/1 derivation and the controller."""

import math

import pytest

from repro.errors import ReproError
from repro.queueing.md1 import MD1Queue
from repro.serve.admission import AdmissionController, derive_occupancy_limit


class TestDeriveOccupancyLimit:
    def test_limit_meets_the_slo_by_construction(self):
        limit = derive_occupancy_limit(0.001, 0.25)
        assert 0.0 < limit.rho_star < 1.0
        assert limit.depth >= 1
        assert limit.p95_at_limit_s <= 0.25

    def test_tighter_slo_means_lower_occupancy(self):
        loose = derive_occupancy_limit(0.001, 0.5)
        tight = derive_occupancy_limit(0.001, 0.01)
        assert tight.rho_star <= loose.rho_star
        assert tight.depth <= loose.depth

    def test_slower_service_means_lower_occupancy(self):
        fast = derive_occupancy_limit(0.001, 0.25)
        slow = derive_occupancy_limit(0.05, 0.25)
        assert slow.rho_star < fast.rho_star
        assert slow.depth <= fast.depth

    def test_matches_the_md1_model_at_the_limit(self):
        limit = derive_occupancy_limit(0.002, 0.1)
        queue = MD1Queue.from_utilisation(limit.rho_star, 0.002)
        assert limit.p95_at_limit_s == pytest.approx(queue.p95_response_s())
        # Just past the limit the model misses the SLO — rho* is maximal.
        beyond = MD1Queue.from_utilisation(
            min(limit.rho_star + 0.01, 0.999), 0.002
        )
        assert beyond.p95_response_s() > 0.1

    def test_service_time_exceeding_slo_admits_one_at_a_time(self):
        # D alone blows the SLO: the queue cannot comply at any occupancy,
        # so the service degrades to serial admission instead of shedding
        # everything.
        limit = derive_occupancy_limit(0.5, 0.1)
        assert limit.depth == 1
        assert limit.p95_at_limit_s > 0.1

    def test_invalid_inputs_raise(self):
        with pytest.raises(ReproError):
            derive_occupancy_limit(0.0, 0.25)
        with pytest.raises(ReproError):
            derive_occupancy_limit(0.001, -1.0)


class TestAdmissionController:
    def test_admits_below_and_sheds_at_the_depth_limit(self):
        ctrl = AdmissionController(slo_p95_s=0.25)
        depth_limit = ctrl.limit.depth
        assert ctrl.admit(0) is True
        assert ctrl.admit(depth_limit - 1) is True
        assert ctrl.admit(depth_limit) is False
        assert ctrl.admitted_total == 2
        assert ctrl.shed_total == 1

    def test_observe_rederives_on_sustained_drift(self):
        ctrl = AdmissionController(
            slo_p95_s=0.25, initial_service_time_s=0.001
        )
        fast_depth = ctrl.limit.depth
        for _ in range(30):  # EWMA converges onto the 50 ms reality
            ctrl.observe(0.05)
        assert ctrl.rederivations >= 1
        assert ctrl.service_time_estimate_s == pytest.approx(0.05, rel=0.05)
        assert ctrl.limit.depth <= fast_depth

    def test_observe_ignores_garbage_samples(self):
        ctrl = AdmissionController(slo_p95_s=0.25)
        before = ctrl.service_time_estimate_s
        ctrl.observe(-1.0)
        ctrl.observe(0.0)
        ctrl.observe(math.nan)
        assert ctrl.service_time_estimate_s == before
        assert ctrl.rederivations == 0

    def test_stats_document_shape(self):
        ctrl = AdmissionController(slo_p95_s=0.25)
        stats = ctrl.stats()
        assert set(stats) == {
            "depth_limit",
            "rho_star",
            "service_time_estimate_s",
            "slo_p95_s",
            "admitted",
            "shed",
            "rederivations",
        }

    def test_invalid_controller_settings_raise(self):
        with pytest.raises(ReproError):
            AdmissionController(slo_p95_s=0.25, ewma_alpha=0.0)
        with pytest.raises(ReproError):
            AdmissionController(slo_p95_s=0.25, rederive_rel=0.0)
