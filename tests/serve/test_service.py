"""End-to-end service contracts over real HTTP round trips.

Every test boots a :class:`ReproService` on an ephemeral loopback port
inside one ``asyncio.run``, drives it with the load generator's raw
keep-alive client, and tears it down — no sockets survive a test.
"""

import asyncio

import pytest

import repro
from repro.cluster.search import recommend_exhaustive
from repro.serve.loadgen import _HttpClient
from repro.serve.service import ReproService, ServeConfig

#: A deliberately small space so each cold sweep is milliseconds.
SPACE = {"max_wimpy": 2, "max_brawny": 1}


def _spaces():
    return [
        repro.TypeSpace(repro.get_node_spec("A9"), n_max=SPACE["max_wimpy"]),
        repro.TypeSpace(repro.get_node_spec("K10"), n_max=SPACE["max_brawny"]),
    ]


def run_with_service(scenario, **config_kwargs):
    """Boot a service, run ``scenario(service, client)``, tear both down."""

    async def main():
        service = ReproService(ServeConfig(**config_kwargs))
        await service.start()
        client = _HttpClient(service.host, service.port)
        await client.connect()
        try:
            return await scenario(service, client)
        finally:
            await client.aclose()
            await service.close()

    return asyncio.run(main())


class TestRecommendEndpoint:
    def test_served_answer_bit_identical_to_offline_sweep(self, workloads):
        async def scenario(service, client):
            status, frontier = await client.request(
                "POST", "/frontier", {"workload": "EP", **SPACE}
            )
            assert status == 200
            tps = [p["tp_s"] for p in frontier["points"]]
            deadline = (min(tps) + max(tps)) / 2.0
            status, doc = await client.request(
                "POST",
                "/recommend",
                {"workload": "EP", "deadline_s": deadline, **SPACE},
            )
            assert status == 200
            return deadline, doc

        deadline, doc = run_with_service(scenario)
        rec = recommend_exhaustive(
            workloads["EP"], _spaces(), deadline_s=deadline
        )
        assert rec is not None
        assert doc["feasible"] is True
        # Bit-identical, not approximately equal: the staircase answers
        # with the exact floats the offline sweep materialises.
        assert doc["mix"] == rec.config.label()
        assert doc["operating_point"] == str(rec.config)
        assert doc["tp_s"] == rec.evaluation.tp_s
        assert doc["energy_j"] == rec.evaluation.energy_j
        assert doc["peak_power_w"] == rec.evaluation.peak_power_w
        assert doc["strategy"] == "exhaustive"

    def test_infeasible_deadline_matches_offline_none(self, workloads):
        async def scenario(service, client):
            status, doc = await client.request(
                "POST",
                "/recommend",
                {"workload": "EP", "deadline_s": 1e-9, **SPACE},
            )
            assert status == 200
            return doc

        doc = run_with_service(scenario)
        assert doc["feasible"] is False
        assert (
            recommend_exhaustive(
                repro.workload("EP"), _spaces(), deadline_s=1e-9
            )
            is None
        )

    def test_placement_and_type_noise_hit_the_same_entry(self):
        # The satellite regression: a request differing only in placement
        # keys (`workers`) and JSON numeric types (2.0 vs 2) must be a
        # cache HIT on the same digest, not a second sweep.
        async def scenario(service, client):
            base = {"workload": "EP", "deadline_s": 50.0, **SPACE}
            status, first = await client.request("POST", "/recommend", base)
            assert status == 200
            noisy = {
                "workload": "EP",
                "deadline_s": 50.0,
                "max_wimpy": float(SPACE["max_wimpy"]),
                "max_brawny": SPACE["max_brawny"],
                "workers": 8,
            }
            status, second = await client.request("POST", "/recommend", noisy)
            assert status == 200
            return first, second

        first, second = run_with_service(scenario)
        assert second["digest"] == first["digest"]
        assert second["cache_hit"] is True

    def test_unknown_parameter_is_a_400(self):
        async def scenario(service, client):
            status, doc = await client.request(
                "POST",
                "/recommend",
                {"workload": "EP", "deadline_s": 1.0, "max_wimp": 2},
            )
            return status, doc

        status, doc = run_with_service(scenario)
        assert status == 400
        assert "max_wimp" in doc["error"]

    def test_nonpositive_deadline_is_a_400(self):
        async def scenario(service, client):
            status, doc = await client.request(
                "POST", "/recommend", {"workload": "EP", "deadline_s": -1.0}
            )
            return status, doc

        status, doc = run_with_service(scenario)
        assert status == 400

    def test_budgeted_answer_matches_offline_budgeted_sweep(self, workloads):
        async def scenario(service, client):
            status, doc = await client.request(
                "POST",
                "/recommend",
                {"workload": "EP", "deadline_s": 50.0, "budget_w": 150.0, **SPACE},
            )
            assert status == 200
            return doc

        doc = run_with_service(scenario)
        rec = recommend_exhaustive(
            workloads["EP"],
            _spaces(),
            deadline_s=50.0,
            budget=repro.PowerBudget(150.0),
        )
        if rec is None:
            assert doc["feasible"] is False
        else:
            assert doc["mix"] == rec.config.label()
            assert doc["energy_j"] == rec.evaluation.energy_j

    def test_shed_when_admission_rejects_cold_work(self):
        from repro.serve.admission import AdmissionDecision

        async def scenario(service, client):
            # Force a full queue: the service asks decide() on cold digests.
            service.admission.decide = lambda depth: AdmissionDecision(
                admitted=False,
                depth=depth,
                depth_limit=0,
                service_time_estimate_s=1e-3,
            )
            status, doc = await client.request(
                "POST",
                "/recommend",
                {"workload": "EP", "deadline_s": 1.0, **SPACE},
            )
            return status, doc

        status, doc = run_with_service(scenario)
        assert status == 503
        assert doc["error"] == "shed"
        assert doc["retry_after_s"] > 0


class TestServicePlumbing:
    def test_healthz_stats_and_metrics(self):
        async def scenario(service, client):
            health = await client.request("GET", "/healthz")
            await client.request(
                "POST", "/frontier", {"workload": "EP", **SPACE}
            )
            stats = await client.request("GET", "/stats")
            metrics = await client.request("GET", "/metrics")
            return health, stats, metrics

        health, stats, metrics = run_with_service(scenario)
        assert health[0] == 200 and health[1]["status"] == "ok"
        assert stats[0] == 200
        assert {"service", "cache", "admission", "batching"} <= set(stats[1])
        assert stats[1]["cache"]["entries"] >= 1.0
        assert metrics[0] == 200

    def test_unknown_route_is_a_404(self):
        async def scenario(service, client):
            return await client.request("GET", "/nope")

        status, _doc = run_with_service(scenario)
        assert status == 404

    def test_precompute_warms_the_cache(self):
        async def scenario(service, client):
            return service.cache.keys()

        # Precompute uses the service's default space, not SPACE.
        keys = run_with_service(scenario, precompute=("EP",))
        assert len(keys) == 1

    def test_max_requests_stops_the_service(self):
        async def scenario(service, client):
            await client.request("GET", "/healthz")
            await client.request("GET", "/healthz")
            await asyncio.wait_for(service.run_until_stopped(), timeout=5.0)
            return service.stats_counters.total

        total = run_with_service(scenario, max_requests=2)
        assert total == 2

    def test_schedule_endpoint_caches_replays(self):
        async def scenario(service, client):
            body = {"workload": "EP", "intervals": 4, "demand": 0.4}
            status, first = await client.request("POST", "/schedule", body)
            assert status == 200
            status, second = await client.request("POST", "/schedule", body)
            assert status == 200
            return first, second

        first, second = run_with_service(scenario)
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True
        assert second["digest"] == first["digest"]
        assert "scalars" in second
        assert "telemetry" not in second  # serving response, not the firehose

    def test_summary_scalars_shape(self):
        async def scenario(service, client):
            await client.request(
                "POST", "/frontier", {"workload": "EP", **SPACE}
            )
            return service.summary_scalars()

        scalars = run_with_service(scenario)
        assert scalars["requests_total"] == 1.0
        assert scalars["cache_misses"] == 1.0
