"""Frontier-cache contracts: digests, LRU, invalidation, single-flight."""

import asyncio

import pytest

from repro.errors import ReproError
from repro.obs.ledger import config_digest
from repro.serve.cache import FrontierCache, FrontierEntry, request_digest


def _entry(digest: str, payload: object = "payload") -> FrontierEntry:
    return FrontierEntry(digest=digest, params={"d": digest}, payload=payload)


class TestRequestDigest:
    def test_placement_keys_never_fragment_the_cache(self):
        # The satellite contract: a `workers` (or any other placement-only
        # key from repro.cli._NON_CONFIG_KEYS) in a request body must map
        # to the SAME cache entry as the bare configuration.
        base = {"workload": "EP", "max_wimpy": 6, "max_brawny": 3, "budget_w": None}
        noisy = dict(
            base,
            workers=8,
            ledger_dir="/tmp/elsewhere",
            no_ledger=True,
            metrics_out="metrics.json",
            trace_out="trace.json",
        )
        assert request_digest(noisy) == request_digest(base)

    def test_equals_the_ledger_config_digest(self):
        # Serve-side digests must be the exact digests the run ledger
        # stamps, so a cache key can be joined against offline records.
        params = {"workload": "EP", "max_wimpy": 6, "max_brawny": 3}
        assert request_digest(params) == config_digest(params)

    def test_configuration_params_do_fragment(self):
        base = {"workload": "EP", "max_wimpy": 6}
        assert request_digest(base) != request_digest({**base, "max_wimpy": 7})
        assert request_digest(base) != request_digest({**base, "workload": "x264"})

    def test_nested_mapping_values_digest_order_independently(self):
        a = {"workload": "EP", "grid": {"b": 1, "a": 2}}
        b = {"workload": "EP", "grid": {"a": 2, "b": 1}}
        assert request_digest(a) == request_digest(b)


class TestLru:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            FrontierCache(capacity=0)

    def test_eviction_follows_recency(self):
        cache = FrontierCache(capacity=2)
        cache.put(_entry("a"))
        cache.put(_entry("b"))
        assert cache.get("a") is not None  # refresh "a": now LRU is "b"
        cache.put(_entry("c"))
        assert cache.keys() == ["a", "c"]
        assert "b" not in cache
        assert cache.evictions == 1

    def test_invalidate_drops_one_entry(self):
        cache = FrontierCache(capacity=4)
        cache.put(_entry("a"))
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert len(cache) == 0

    def test_stats_track_hits_and_misses(self):
        cache = FrontierCache(capacity=4)
        cache.put(_entry("a"))
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1.0
        assert stats["misses"] == 1.0
        assert stats["hit_fraction"] == 0.5


class TestGetOrCompute:
    def test_param_mutation_recomputes_under_new_digest(self):
        # Invalidation is digest-driven: change a config param and the
        # next request computes a fresh entry instead of reusing a stale one.
        cache = FrontierCache(capacity=8)
        calls = []

        async def scenario():
            p1 = {"workload": "EP", "max_wimpy": 2}
            p2 = {"workload": "EP", "max_wimpy": 3}
            for params in (p1, p1, p2):
                digest = request_digest(params)
                entry, was_hit = await cache.get_or_compute(
                    digest, params, lambda d=digest: calls.append(d) or d
                )
                yield_hit = was_hit
            return yield_hit

        asyncio.run(scenario())
        assert len(calls) == 2  # p1 computed once, p2 once
        assert calls[0] != calls[1]

    def test_explicit_invalidation_forces_recompute(self):
        cache = FrontierCache(capacity=8)
        calls = []

        async def scenario():
            digest = "fixed"
            await cache.get_or_compute(digest, {}, lambda: calls.append(1) or "v1")
            cache.invalidate(digest)
            entry, was_hit = await cache.get_or_compute(
                digest, {}, lambda: calls.append(2) or "v2"
            )
            assert was_hit is False
            assert entry.payload == "v2"

        asyncio.run(scenario())
        assert calls == [1, 2]

    def test_single_flight_computes_concurrent_cold_key_once(self):
        cache = FrontierCache(capacity=8)
        computes = []

        async def factory():
            computes.append(1)
            await asyncio.sleep(0.02)
            return "answer"

        async def scenario():
            results = await asyncio.gather(
                *(cache.get_or_compute("cold", {}, factory) for _ in range(5))
            )
            return results

        results = asyncio.run(scenario())
        assert len(computes) == 1
        entries = {id(entry) for entry, _ in results}
        assert len(entries) == 1  # everyone got the same entry object
        # Nobody was answered from memory — the key was cold for all of them.
        assert all(was_hit is False for _, was_hit in results)
        assert cache.computes == 1

    def test_failed_compute_propagates_and_caches_nothing(self):
        cache = FrontierCache(capacity=8)

        async def failing():
            await asyncio.sleep(0.01)
            raise ValueError("sweep exploded")

        async def scenario():
            results = await asyncio.gather(
                *(cache.get_or_compute("bad", {}, failing) for _ in range(3)),
                return_exceptions=True,
            )
            assert all(isinstance(r, ValueError) for r in results)
            assert "bad" not in cache
            # The next attempt retries cleanly and can succeed.
            entry, was_hit = await cache.get_or_compute("bad", {}, lambda: "ok")
            assert entry.payload == "ok"
            assert was_hit is False

        asyncio.run(scenario())
