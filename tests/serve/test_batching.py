"""Micro-batcher contracts: coalescing, ordering, deadlines, shutdown."""

import asyncio
import time

import pytest

from repro.errors import ReproError
from repro.serve.batching import BatchQuery, BatchTimeout, MicroBatcher


def test_constructor_validation():
    with pytest.raises(ReproError):
        MicroBatcher(lambda p: p, tick_s=-1.0)
    with pytest.raises(ReproError):
        MicroBatcher(lambda p: p, max_batch=0)


def test_submit_before_start_raises():
    async def scenario():
        batcher = MicroBatcher(lambda payloads: payloads)
        with pytest.raises(ReproError):
            await batcher.submit("x")

    asyncio.run(scenario())


def test_concurrent_submits_coalesce_into_one_batch():
    sizes = []

    def compute(payloads):
        sizes.append(len(payloads))
        return [p * 2 for p in payloads]

    async def scenario():
        batcher = MicroBatcher(compute, tick_s=0.02)
        batcher.start()
        try:
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(8))
            )
        finally:
            await batcher.close()
        return results

    results = asyncio.run(scenario())
    assert results == [i * 2 for i in range(8)]  # order preserved
    assert sizes == [8]  # one vectorized evaluation, not eight


def test_per_query_exception_hits_only_that_query():
    def compute(payloads):
        return [
            ValueError("bad query") if p == "bad" else p.upper()
            for p in payloads
        ]

    async def scenario():
        batcher = MicroBatcher(compute, tick_s=0.01)
        batcher.start()
        try:
            good, bad = await asyncio.gather(
                batcher.submit("ok"),
                batcher.submit("bad"),
                return_exceptions=True,
            )
        finally:
            await batcher.close()
        return good, bad

    good, bad = asyncio.run(scenario())
    assert good == "OK"
    assert isinstance(bad, ValueError)


def test_whole_batch_failure_fails_every_query():
    def compute(payloads):
        raise RuntimeError("the sweep died")

    async def scenario():
        batcher = MicroBatcher(compute, tick_s=0.01)
        batcher.start()
        try:
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(3)), return_exceptions=True
            )
        finally:
            await batcher.close()
        return results

    results = asyncio.run(scenario())
    assert all(isinstance(r, RuntimeError) for r in results)


def test_timeout_mid_compute_raises_batch_timeout():
    def compute(payloads):
        time.sleep(0.2)  # worker thread; the loop keeps running
        return payloads

    async def scenario():
        batcher = MicroBatcher(compute, tick_s=0.0)
        batcher.start()
        try:
            with pytest.raises(BatchTimeout):
                await batcher.submit("x", timeout_s=0.05)
        finally:
            await batcher.close()

    asyncio.run(scenario())


def test_expired_query_is_failed_without_compute():
    computed = []

    def compute(payloads):
        computed.extend(payloads)
        return payloads

    async def scenario():
        batcher = MicroBatcher(compute, tick_s=0.0)
        batcher.start()
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        # A query whose deadline already passed when the drain picks it up:
        # it must be failed, counted, and never handed to the compute path.
        batcher._queue.put_nowait(
            BatchQuery(payload="stale", future=future, deadline=loop.time() - 1.0)
        )
        try:
            with pytest.raises(BatchTimeout):
                await future
        finally:
            await batcher.close()

    asyncio.run(scenario())
    assert computed == []


def test_close_fails_pending_queries():
    async def scenario():
        batcher = MicroBatcher(lambda p: p, tick_s=5.0)  # tick outlives the test
        batcher.start()
        first = asyncio.create_task(batcher.submit("in-drain"))
        second = asyncio.create_task(batcher.submit("queued"))
        await asyncio.sleep(0.05)  # drain grabbed "in-drain", sleeps the tick
        await batcher.close()
        results = await asyncio.gather(first, second, return_exceptions=True)
        assert all(isinstance(r, BatchTimeout) for r in results)

    asyncio.run(scenario())


def test_stats_counters():
    async def scenario():
        batcher = MicroBatcher(lambda p: [x + 1 for x in p], tick_s=0.01)
        batcher.start()
        try:
            await asyncio.gather(*(batcher.submit(i) for i in range(4)))
        finally:
            await batcher.close()
        return batcher.stats()

    stats = asyncio.run(scenario())
    assert stats["batches"] == 1.0
    assert stats["batched_queries"] == 4.0
    assert stats["mean_batch_size"] == 4.0
    assert stats["depth"] == 0.0
