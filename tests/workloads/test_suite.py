"""Tests pinning the calibrated workload suite to the paper's numbers."""

import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import WorkloadError
from repro.model.energy_model import power_draw
from repro.model.time_model import cluster_service_rate
from repro.workloads.suite import (
    BOTTLENECK_PROFILES,
    PAPER_IPR,
    PAPER_PPR,
    PAPER_WORKLOAD_NAMES,
    build_workload,
    paper_workloads,
    workload,
)


class TestSuiteStructure:
    def test_six_workloads(self):
        assert len(PAPER_WORKLOAD_NAMES) == 6
        assert set(paper_workloads()) == set(PAPER_WORKLOAD_NAMES)

    def test_every_workload_characterized_for_both_nodes(self, workloads):
        for w in workloads.values():
            assert w.node_types() == ("A9", "K10")

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            workload("doom")
        with pytest.raises(WorkloadError):
            build_workload("doom")

    def test_memoised_accessor(self):
        assert workload("EP") is workload("EP")

    def test_build_workload_fresh(self):
        assert build_workload("EP") is not build_workload("EP")

    def test_calibration_tables_cover_all_workloads(self):
        for name in PAPER_WORKLOAD_NAMES:
            assert set(PAPER_PPR[name]) == {"A9", "K10"}
            assert set(PAPER_IPR[name]) == {"A9", "K10"}
            assert set(BOTTLENECK_PROFILES[name]) == {"A9", "K10"}


class TestPaperTable6:
    """Peak PPR at the maximal operating point must match Table 6 exactly."""

    @pytest.mark.parametrize("name", PAPER_WORKLOAD_NAMES)
    @pytest.mark.parametrize("node", ["A9", "K10"])
    def test_ppr_matches_paper(self, workloads, name, node):
        w = workloads[name]
        config = ClusterConfiguration.mix({node: 1})
        draw = power_draw(w, config)
        ppr = cluster_service_rate(w, config) / draw.peak_w
        assert ppr == pytest.approx(PAPER_PPR[name][node], rel=1e-6)


class TestPaperTable7:
    """Single-node IPR must match Table 7 exactly."""

    @pytest.mark.parametrize("name", PAPER_WORKLOAD_NAMES)
    @pytest.mark.parametrize("node", ["A9", "K10"])
    def test_ipr_matches_paper(self, workloads, name, node):
        w = workloads[name]
        draw = power_draw(w, ClusterConfiguration.mix({node: 1}))
        assert draw.ipr == pytest.approx(PAPER_IPR[name][node], rel=1e-6)


class TestQualitativeCharacterization:
    """Section III-A's qualitative claims about the workloads."""

    def test_a9_ppr_better_except_x264_and_rsa(self, workloads):
        # "A9 has a better PPR than K10, but with two notable exceptions"
        for name in PAPER_WORKLOAD_NAMES:
            a9_ppr = PAPER_PPR[name]["A9"]
            k10_ppr = PAPER_PPR[name]["K10"]
            if name in ("x264", "rsa2048"):
                assert k10_ppr > a9_ppr
            else:
                assert a9_ppr > k10_ppr

    def test_k10_raw_performance_always_better(self, workloads):
        # "A9 has a better PPR but lower overall performance."
        for name in PAPER_WORKLOAD_NAMES:
            w = workloads[name]
            rate_a9 = cluster_service_rate(w, ClusterConfiguration.mix({"A9": 1}))
            rate_k10 = cluster_service_rate(w, ClusterConfiguration.mix({"K10": 1}))
            assert rate_k10 > rate_a9

    def test_memcached_is_network_bound_on_a9(self, workloads):
        from repro.model.time_model import op_time_breakdown
        from repro.cluster.configuration import NodeGroup

        w = workloads["memcached"]
        group = NodeGroup.of("A9", 1)
        assert op_time_breakdown(group, w.demand_for("A9")).bottleneck == "io"

    def test_x264_is_memory_bound(self, workloads):
        from repro.model.time_model import op_time_breakdown
        from repro.cluster.configuration import NodeGroup

        w = workloads["x264"]
        for node in ("A9", "K10"):
            group = NodeGroup.of(node, 1)
            assert op_time_breakdown(group, w.demand_for(node)).bottleneck == "mem"

    def test_compute_kernels_are_core_bound(self, workloads):
        from repro.model.time_model import op_time_breakdown
        from repro.cluster.configuration import NodeGroup

        for name in ("EP", "blackscholes", "rsa2048", "julius"):
            for node in ("A9", "K10"):
                group = NodeGroup.of(node, 1)
                demand = workloads[name].demand_for(node)
                assert op_time_breakdown(group, demand).bottleneck == "core"

    def test_a9_idle_at_least_25x_lower(self, workloads):
        # Section III-B: "idle power of A9 is at least 25 times lower".
        a9_draw = power_draw(workloads["EP"], ClusterConfiguration.mix({"A9": 1}))
        k10_draw = power_draw(workloads["EP"], ClusterConfiguration.mix({"K10": 1}))
        assert k10_draw.idle_w / a9_draw.idle_w >= 25.0
