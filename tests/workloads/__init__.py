"""Test package."""
