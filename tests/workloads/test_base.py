"""Tests for workload demand abstractions."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import ActivityFactors, Workload, WorkloadDemand

ACT = ActivityFactors(0.5, 0.5, 0.5, 0.5)


def _demand(core=100.0, mem=10.0, io=0.0):
    return WorkloadDemand(
        core_cycles_per_op=core,
        mem_cycles_per_op=mem,
        io_bytes_per_op=io,
        activity=ACT,
    )


class TestActivityFactors:
    def test_valid(self):
        ActivityFactors(0.0, 1.0, 0.5, 0.25)

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(WorkloadError):
            ActivityFactors(bad, 0.5, 0.5, 0.5)
        with pytest.raises(WorkloadError):
            ActivityFactors(0.5, 0.5, 0.5, bad)


class TestWorkloadDemand:
    def test_negative_cycles_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadDemand(-1.0, 0.0, 0.0, ACT)

    def test_empty_demand_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadDemand(0.0, 0.0, 0.0, ACT)

    def test_negative_io_floor_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadDemand(1.0, 0.0, 0.0, ACT, io_service_floor_s=-1.0)

    def test_scaled(self):
        scaled = _demand(core=100, mem=10, io=4).scaled(2.0)
        assert scaled.core_cycles_per_op == 200
        assert scaled.mem_cycles_per_op == 20
        assert scaled.io_bytes_per_op == 8
        assert scaled.activity == ACT

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            _demand().scaled(0.0)


class TestWorkload:
    def _workload(self):
        return Workload(
            name="w",
            domain="test",
            unit="ops",
            ops_per_job=100.0,
            demands={"A9": _demand()},
        )

    def test_demand_lookup_by_name(self):
        w = self._workload()
        assert w.demand_for("A9").core_cycles_per_op == 100.0

    def test_demand_lookup_by_spec(self):
        from repro.hardware.specs import a9

        w = self._workload()
        assert w.demand_for(a9()) is w.demand_for("A9")

    def test_missing_demand_rejected(self):
        with pytest.raises(WorkloadError):
            self._workload().demand_for("K10")

    def test_supports(self):
        w = self._workload()
        assert w.supports("A9")
        assert not w.supports("K10")

    def test_node_types_sorted(self):
        w = Workload(
            name="w", domain="d", unit="u", ops_per_job=1.0,
            demands={"K10": _demand(), "A9": _demand()},
        )
        assert w.node_types() == ("A9", "K10")

    def test_zero_ops_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="w", domain="d", unit="u", ops_per_job=0.0, demands={"A9": _demand()})

    def test_empty_demands_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="w", domain="d", unit="u", ops_per_job=1.0, demands={})

    def test_with_job_size(self):
        w = self._workload().with_job_size(500.0)
        assert w.ops_per_job == 500.0
        assert w.name == "w"

    def test_small_input(self):
        w = self._workload()
        assert w.small_input_ops() == pytest.approx(100.0 / 16.0)

    def test_invalid_small_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(
                name="w", domain="d", unit="u", ops_per_job=1.0,
                demands={"A9": _demand()}, small_input_fraction=0.0,
            )

    def test_str(self):
        assert "w" in str(self._workload())
