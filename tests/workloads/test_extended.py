"""Tests for the extended (degree-3+) workload and node catalog."""

import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import WorkloadError
from repro.hardware.catalog import CATALOG_NAMES, a15, register_catalog, xeond
from repro.model.energy_model import power_draw
from repro.model.time_model import cluster_service_rate, execution_time, job_execution
from repro.workloads.extended import EXTENDED_IPR, EXTENDED_PPR, extended_workload


@pytest.fixture(scope="module", autouse=True)
def _register():
    register_catalog(overwrite=True)


class TestCatalog:
    def test_catalog_names(self):
        assert CATALOG_NAMES == ("A15", "XEOND")

    def test_a15_between_a9_and_k10_in_power(self):
        assert 1.8 < a15().power.idle_w < 45.0
        assert 5.0 < a15().power.nameplate_peak_w < 60.0

    def test_xeond_specs(self):
        spec = xeond()
        assert spec.cores == 8
        assert spec.isa == "x86_64"

    def test_register_idempotent_with_overwrite(self):
        register_catalog(overwrite=True)
        register_catalog(overwrite=True)

    def test_register_without_overwrite_raises_on_existing(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            register_catalog(overwrite=False)


class TestExtendedWorkload:
    def test_covers_four_node_types(self):
        w = extended_workload("EP")
        assert w.node_types() == ("A15", "A9", "K10", "XEOND")

    def test_base_demands_untouched(self, workloads):
        w = extended_workload("EP")
        assert w.demand_for("A9") == workloads["EP"].demand_for("A9")

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            extended_workload("doom")

    @pytest.mark.parametrize("name", ["EP", "x264", "rsa2048"])
    @pytest.mark.parametrize("node", ["A15", "XEOND"])
    def test_extension_targets_roundtrip(self, name, node):
        w = extended_workload(name)
        config = ClusterConfiguration.mix({node: 1})
        draw = power_draw(w, config)
        ppr = cluster_service_rate(w, config) / draw.peak_w
        assert draw.ipr == pytest.approx(EXTENDED_IPR[name][node], rel=1e-6)
        assert ppr == pytest.approx(EXTENDED_PPR[name][node], rel=1e-6)

    def test_a15_throughput_between_a9_and_k10(self):
        w = extended_workload("EP")
        rates = {
            node: cluster_service_rate(w, ClusterConfiguration.mix({node: 1}))
            for node in ("A9", "A15", "K10")
        }
        assert rates["A9"] < rates["A15"] < rates["K10"]


class TestDegreeThreeAnalysis:
    def test_three_type_execution(self):
        w = extended_workload("blackscholes")
        config = ClusterConfiguration.mix({"A9": 8, "A15": 4, "K10": 2})
        assert config.degree_of_heterogeneity == 3
        execution = job_execution(w, config)
        shares = [execution.work_share(n) for n in ("A9", "A15", "K10")]
        assert sum(shares) == pytest.approx(1.0)
        for ge in execution.groups:
            assert ge.busy_time == pytest.approx(execution.tp_s)

    def test_four_type_execution(self):
        w = extended_workload("EP")
        config = ClusterConfiguration.mix(
            {"A9": 4, "A15": 2, "K10": 1, "XEOND": 2}
        )
        assert config.degree_of_heterogeneity == 4
        assert execution_time(w, config) > 0

    def test_adding_third_type_speeds_up(self):
        w = extended_workload("julius")
        two = ClusterConfiguration.mix({"A9": 8, "K10": 2})
        three = ClusterConfiguration.mix({"A9": 8, "K10": 2, "A15": 4})
        assert execution_time(w, three) < execution_time(w, two)

    def test_proportionality_report_d3(self):
        from repro.core.proportionality import proportionality_report

        w = extended_workload("EP")
        config = ClusterConfiguration.mix({"A9": 16, "A15": 8, "K10": 2})
        report = proportionality_report(w, config)
        assert 0.0 < report.ipr < 1.0
        assert report.epm == pytest.approx(1 - report.ipr, abs=1e-9)
