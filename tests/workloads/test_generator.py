"""Tests for job-trace generation and the memslap-style request source."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.generator import (
    SIZE_SENSITIVITY,
    JobTrace,
    KeyValueRequest,
    RequestGenerator,
    TracePhase,
    generate_trace,
)


class TestTraceStructures:
    def test_phase_validation(self):
        with pytest.raises(WorkloadError):
            TracePhase(ops=0.0, core_cycles=1.0, mem_cycles=0.0, io_bytes=0.0)
        with pytest.raises(WorkloadError):
            TracePhase(ops=1.0, core_cycles=-1.0, mem_cycles=0.0, io_bytes=0.0)

    def test_trace_ops_must_sum(self):
        phase = TracePhase(ops=1.0, core_cycles=1.0, mem_cycles=0.0, io_bytes=0.0)
        with pytest.raises(WorkloadError):
            JobTrace(workload_name="w", node_type="A9", ops_total=5.0, phases=(phase,))

    def test_trace_needs_phases(self):
        with pytest.raises(WorkloadError):
            JobTrace(workload_name="w", node_type="A9", ops_total=1.0, phases=())

    def test_totals(self):
        phases = tuple(
            TracePhase(ops=1.0, core_cycles=10.0, mem_cycles=5.0, io_bytes=2.0)
            for _ in range(3)
        )
        trace = JobTrace(workload_name="w", node_type="A9", ops_total=3.0, phases=phases)
        assert trace.total_core_cycles == 30.0
        assert trace.total_mem_cycles == 15.0
        assert trace.total_io_bytes == 6.0


class TestGenerateTrace:
    def test_noiseless_trace_matches_demand(self, workloads, rng):
        w = workloads["EP"]
        ops = w.small_input_ops()  # at/below the small input: factor = 1
        trace = generate_trace(w, "A9", ops, rng, variability=0.0)
        demand = w.demand_for("A9")
        assert trace.total_core_cycles == pytest.approx(ops * demand.core_cycles_per_op)
        assert trace.total_mem_cycles == pytest.approx(ops * demand.mem_cycles_per_op)

    def test_phase_count(self, workloads, rng):
        trace = generate_trace(workloads["EP"], "A9", 1000.0, rng, n_phases=7)
        assert len(trace.phases) == 7

    def test_noise_preserves_mean_roughly(self, workloads, rng):
        w = workloads["EP"]
        ops = w.small_input_ops()
        demand = w.demand_for("A9")
        totals = [
            generate_trace(w, "A9", ops, rng, variability=0.1).total_core_cycles
            for _ in range(100)
        ]
        assert np.mean(totals) == pytest.approx(ops * demand.core_cycles_per_op, rel=0.02)

    def test_size_inflation_saturates(self, workloads, rng):
        w = workloads["julius"]
        small = w.small_input_ops()
        demand = w.demand_for("A9")
        s = SIZE_SENSITIVITY["julius"]

        def per_op_cycles(ops):
            trace = generate_trace(w, "A9", ops, rng, variability=0.0)
            return trace.total_core_cycles / ops

        base = demand.core_cycles_per_op
        assert per_op_cycles(small) == pytest.approx(base)
        assert per_op_cycles(16 * small) == pytest.approx(base * (1 + s))
        # Saturation: 256x the small input inflates no further than 16x.
        assert per_op_cycles(256 * small) == pytest.approx(base * (1 + s))

    def test_size_reference_override(self, workloads, rng):
        w = workloads["julius"]
        small = w.small_input_ops()
        trace = generate_trace(
            w, "A9", 100 * small, rng, variability=0.0, size_reference_ops=small
        )
        demand = w.demand_for("A9")
        assert trace.total_core_cycles / trace.ops_total == pytest.approx(
            demand.core_cycles_per_op
        )

    def test_determinism_per_stream(self, workloads):
        w = workloads["x264"]
        a = generate_trace(w, "K10", 100.0, np.random.default_rng(5))
        b = generate_trace(w, "K10", 100.0, np.random.default_rng(5))
        assert a.total_core_cycles == b.total_core_cycles

    def test_invalid_args_rejected(self, workloads, rng):
        w = workloads["EP"]
        with pytest.raises(WorkloadError):
            generate_trace(w, "A9", 0.0, rng)
        with pytest.raises(WorkloadError):
            generate_trace(w, "A9", 1.0, rng, n_phases=0)
        with pytest.raises(WorkloadError):
            generate_trace(w, "A9", 1.0, rng, variability=-0.5)
        with pytest.raises(WorkloadError):
            generate_trace(w, "A9", 1.0, rng, size_reference_ops=0.0)


class TestRequestGenerator:
    def _gen(self, rng, **kwargs):
        defaults = dict(rate_rps=1000.0, rng=rng)
        defaults.update(kwargs)
        return RequestGenerator(**defaults)

    def test_rate_is_respected(self, rng):
        gen = self._gen(rng)
        requests = gen.generate(10.0)
        assert len(requests) == pytest.approx(10_000, rel=0.1)

    def test_arrivals_sorted_and_bounded(self, rng):
        requests = self._gen(rng).generate(2.0)
        times = [r.arrival_s for r in requests]
        assert times == sorted(times)
        assert all(0 <= t < 2.0 for t in times)

    def test_fixed_sizes(self, rng):
        requests = self._gen(rng, key_bytes=16, value_bytes=512).generate(0.5)
        assert all(r.key_bytes == 16 and r.value_bytes == 512 for r in requests)
        assert all(r.wire_bytes == 528 for r in requests)

    def test_uniform_popularity(self, rng):
        gen = self._gen(rng, n_keys=10)
        requests = gen.generate(20.0)
        counts = np.bincount([r.key for r in requests], minlength=10)
        # Uniform popularity: no key dominates.
        assert counts.min() > 0.5 * counts.mean()

    def test_get_fraction(self, rng):
        requests = self._gen(rng, get_fraction=0.9).generate(20.0)
        frac = np.mean([r.is_get for r in requests])
        assert frac == pytest.approx(0.9, abs=0.02)

    def test_trace_ops_conversion(self, rng):
        gen = self._gen(rng, key_bytes=10, value_bytes=90)
        requests = gen.generate(1.0)
        assert gen.to_trace_ops(requests) == pytest.approx(100.0 * len(requests))

    def test_invalid_args_rejected(self, rng):
        with pytest.raises(WorkloadError):
            self._gen(rng, rate_rps=0.0)
        with pytest.raises(WorkloadError):
            self._gen(rng, n_keys=0)
        with pytest.raises(WorkloadError):
            self._gen(rng, get_fraction=1.5)
        with pytest.raises(WorkloadError):
            self._gen(rng).generate(0.0)
