"""Tests for the calibration solver (paper targets -> demand vectors)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CalibrationError
from repro.hardware.specs import a9, k10
from repro.workloads.calibration import (
    BottleneckProfile,
    dynamic_power_target,
    peak_power_target,
    solve_demand,
)

CORE_BOUND = BottleneckProfile(
    rho_core=1.0, rho_mem=0.3, rho_io=0.0, mem_factor=0.4, net_factor=0.0
)


class TestPowerTargets:
    def test_peak_power_from_ipr(self):
        assert peak_power_target(a9(), 0.74) == pytest.approx(1.8 / 0.74)

    def test_dynamic_power_from_ipr(self):
        assert dynamic_power_target(a9(), 0.5) == pytest.approx(1.8)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_ipr_rejected(self, bad):
        with pytest.raises(CalibrationError):
            peak_power_target(a9(), bad)


class TestBottleneckProfile:
    def test_bottleneck_identification(self):
        assert CORE_BOUND.bottleneck == "core"
        mem = BottleneckProfile(0.5, 1.0, 0.1, 0.8, 0.1)
        assert mem.bottleneck == "mem"
        io = BottleneckProfile(0.5, 0.3, 1.0, 0.3, 0.8)
        assert io.bottleneck == "io"

    def test_no_saturated_resource_rejected(self):
        with pytest.raises(CalibrationError):
            BottleneckProfile(0.5, 0.5, 0.5, 0.4, 0.4)

    def test_out_of_range_rejected(self):
        with pytest.raises(CalibrationError):
            BottleneckProfile(1.2, 0.5, 0.5, 0.4, 0.4)

    def test_floor_cannot_exceed_transfer(self):
        with pytest.raises(CalibrationError):
            BottleneckProfile(1.0, 0.2, 0.1, 0.4, 0.4, io_service_floor_frac=0.5)


class TestSolveDemand:
    def test_roundtrip_throughput(self):
        spec = a9()
        demand = solve_demand(spec, ppr_target=1000.0, ipr_target=0.7, profile=CORE_BOUND)
        # At (cmax, fmax): t_op = cycles_core/(c*fmax); throughput must be
        # PPR * Ppeak.
        t_op = demand.core_cycles_per_op / (spec.cores * spec.fmax_hz)
        throughput = 1.0 / t_op
        assert throughput == pytest.approx(1000.0 * 1.8 / 0.7)

    def test_roundtrip_dynamic_power(self):
        spec = k10()
        demand = solve_demand(spec, ppr_target=500.0, ipr_target=0.65, profile=CORE_BOUND)
        t_op = demand.core_cycles_per_op / (spec.cores * spec.fmax_hz)
        t_mem = demand.mem_cycles_per_op / spec.fmax_hz
        e_dyn = (
            spec.power.cpu_active_w * demand.activity.cpu_active * t_op
            + spec.power.memory_w * demand.activity.memory * t_mem
        )
        assert e_dyn / t_op == pytest.approx(dynamic_power_target(spec, 0.65), rel=1e-9)

    def test_io_bound_profile_fills_nic(self):
        spec = a9()
        profile = BottleneckProfile(0.8, 0.4, 1.0, 0.3, 0.6)
        demand = solve_demand(spec, ppr_target=2e6, ipr_target=0.83, profile=profile)
        t_io = demand.io_bytes_per_op / (spec.nic_bps / 8.0)
        t_op = 1.0 / (2e6 * 1.8 / 0.83)
        assert t_io == pytest.approx(t_op)

    def test_io_floor_propagates(self):
        spec = a9()
        profile = BottleneckProfile(0.8, 0.4, 1.0, 0.3, 0.6, io_service_floor_frac=0.5)
        demand = solve_demand(spec, ppr_target=2e6, ipr_target=0.83, profile=profile)
        assert demand.io_service_floor_s > 0

    def test_infeasible_power_target_rejected(self):
        # IPR 0.05 implies a dynamic power far above the A9's envelope.
        with pytest.raises(CalibrationError):
            solve_demand(a9(), ppr_target=1000.0, ipr_target=0.05, profile=CORE_BOUND)

    def test_overcommitted_fixed_power_rejected(self):
        # Huge memory/net activity already exceeds a tiny dynamic target.
        profile = BottleneckProfile(0.05, 1.0, 0.0, 1.0, 0.0)
        with pytest.raises(CalibrationError):
            solve_demand(a9(), ppr_target=1000.0, ipr_target=0.95, profile=profile)

    def test_nonpositive_ppr_rejected(self):
        with pytest.raises(CalibrationError):
            solve_demand(a9(), ppr_target=0.0, ipr_target=0.7, profile=CORE_BOUND)

    @given(
        ipr=st.floats(0.55, 0.9),
        ppr=st.floats(100.0, 1e7),
        rho_mem=st.floats(0.0, 0.9),
    )
    @settings(max_examples=60)
    def test_solver_roundtrips_any_feasible_target(self, ipr, ppr, rho_mem):
        """Property: for feasible targets the solved demand reproduces both
        the PPR and IPR at the maximal operating point."""
        spec = a9()
        profile = BottleneckProfile(1.0, rho_mem, 0.0, 0.3, 0.0)
        demand = solve_demand(spec, ppr_target=ppr, ipr_target=ipr, profile=profile)
        t_op = demand.core_cycles_per_op / (spec.cores * spec.fmax_hz)
        t_mem = demand.mem_cycles_per_op / spec.fmax_hz
        p_dyn = (
            spec.power.cpu_active_w * demand.activity.cpu_active
            + spec.power.memory_w * demand.activity.memory * (t_mem / t_op)
        )
        peak = spec.power.idle_w + p_dyn
        assert spec.power.idle_w / peak == pytest.approx(ipr, rel=1e-6)
        assert (1.0 / t_op) / peak == pytest.approx(ppr, rel=1e-6)
