"""Tests for measurement-driven workload characterization."""

import pytest

from repro.errors import MeasurementError
from repro.hardware.counters import PerfReader
from repro.hardware.microbench import characterize_node_power
from repro.hardware.node import SimulatedNode
from repro.hardware.powermeter import PowerMeter
from repro.hardware.specs import a9, k10
from repro.workloads.characterize import characterize_demand, characterize_workload


@pytest.fixture()
def a9_node(registry):
    return SimulatedNode(a9(), registry.stream("node/A9"))


@pytest.fixture()
def k10_node(registry):
    return SimulatedNode(k10(), registry.stream("node/K10"))


@pytest.fixture()
def meter(registry):
    return PowerMeter(registry.stream("meter"))


@pytest.fixture()
def perf(registry):
    return PerfReader(registry.stream("perf"))


class TestCharacterizeDemand:
    @pytest.mark.parametrize("name", ["EP", "x264", "memcached"])
    def test_recovers_demand_within_measurement_error(
        self, workloads, a9_node, meter, perf, registry, name
    ):
        w = workloads[name]
        true = w.demand_for("A9")
        record = characterize_demand(
            w, a9_node, meter, perf, registry.stream("trace")
        )
        got = record.demand
        assert got.core_cycles_per_op == pytest.approx(true.core_cycles_per_op, rel=0.1)
        assert got.mem_cycles_per_op == pytest.approx(true.mem_cycles_per_op, rel=0.15)
        if true.io_bytes_per_op:
            assert got.io_bytes_per_op == pytest.approx(true.io_bytes_per_op, rel=0.1)

    def test_recovers_activity_factor(self, workloads, k10_node, meter, perf, registry):
        w = workloads["blackscholes"]
        true = w.demand_for("K10")
        record = characterize_demand(w, k10_node, meter, perf, registry.stream("t"))
        assert record.demand.activity.cpu_active == pytest.approx(
            true.activity.cpu_active, rel=0.1
        )

    def test_run_is_long_enough_to_measure(self, workloads, a9_node, meter, perf, registry):
        # rsa2048's small input lasts ~50 ms on an A9; the characterization
        # must loop it into a measurable window.
        w = workloads["rsa2048"]
        record = characterize_demand(
            w, a9_node, meter, perf, registry.stream("t"), min_duration_s=10.0
        )
        assert record.counters.elapsed_s >= 10.0
        assert record.ops_measured > w.small_input_ops()

    def test_mismatched_spec_rejected(self, workloads, a9_node, meter, perf, registry):
        with pytest.raises(MeasurementError):
            characterize_demand(
                workloads["EP"], a9_node, meter, perf, registry.stream("t"),
                characterized_spec=k10(),
            )

    def test_invalid_duration_rejected(self, workloads, a9_node, meter, perf, registry):
        with pytest.raises(MeasurementError):
            characterize_demand(
                workloads["EP"], a9_node, meter, perf, registry.stream("t"),
                min_duration_s=0.0,
            )

    def test_uses_characterized_spec_powers(
        self, workloads, a9_node, meter, perf, registry
    ):
        """The activity fit must be made against the measured envelope."""
        w = workloads["EP"]
        char_spec = characterize_node_power(a9_node, meter)
        record = characterize_demand(
            w, a9_node, meter, perf, registry.stream("t"), characterized_spec=char_spec,
        )
        assert record.node_type == "A9"
        assert 0.0 < record.demand.activity.cpu_active <= 1.0


class TestCharacterizeWorkload:
    def test_produces_workload_for_all_types(
        self, workloads, a9_node, k10_node, meter, perf, registry
    ):
        w = workloads["EP"]
        measured, records = characterize_workload(
            w,
            {"A9": a9_node, "K10": k10_node},
            {"A9": meter, "K10": meter},
            perf,
            registry,
        )
        assert measured.node_types() == ("A9", "K10")
        assert set(records) == {"A9", "K10"}
        assert measured.ops_per_job == w.ops_per_job
        assert measured.name == w.name

    def test_measured_workload_differs_from_truth(
        self, workloads, a9_node, k10_node, meter, perf, registry
    ):
        """Characterization is a measurement: close, but never exact."""
        w = workloads["julius"]
        measured, _ = characterize_workload(
            w,
            {"A9": a9_node, "K10": k10_node},
            {"A9": meter, "K10": meter},
            perf,
            registry,
        )
        true = w.demand_for("A9")
        got = measured.demand_for("A9")
        assert got.core_cycles_per_op != true.core_cycles_per_op
        assert got.core_cycles_per_op == pytest.approx(true.core_cycles_per_op, rel=0.15)
