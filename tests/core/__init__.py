"""Test package."""
