"""Tests for the batch-arrival response model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.configuration import ClusterConfiguration
from repro.core.batch import (
    BatchWindow,
    batch_response_percentile_s,
    batch_response_sweep,
)
from repro.errors import QueueingError
from repro.model.time_model import execution_time


class TestBatchWindow:
    def test_for_utilisation_job_count(self):
        w = BatchWindow.for_utilisation(0.5, service_time_s=1.0, window_s=10.0)
        assert w.n_jobs == 5
        assert w.utilisation == pytest.approx(0.5)

    def test_zero_utilisation_empty_batch(self):
        w = BatchWindow.for_utilisation(0.0, 1.0, 10.0)
        assert w.n_jobs == 0
        assert w.response_percentile(95) == 0.0

    def test_full_utilisation_fills_window(self):
        w = BatchWindow.for_utilisation(1.0, 1.0, 10.0)
        assert w.n_jobs == 10

    def test_fifo_responses(self):
        w = BatchWindow(service_time_s=2.0, window_s=10.0, n_jobs=3)
        np.testing.assert_allclose(w.response_times(), [2.0, 4.0, 6.0])

    def test_percentile_is_quantised(self):
        w = BatchWindow(service_time_s=1.0, window_s=100.0, n_jobs=10)
        # ceil(0.95 * 10) = 10th job -> 10 s.
        assert w.response_percentile(95) == pytest.approx(10.0)
        # ceil(0.5 * 10) = 5th job.
        assert w.response_percentile(50) == pytest.approx(5.0)

    def test_overfull_batch_rejected(self):
        with pytest.raises(QueueingError):
            BatchWindow(service_time_s=1.0, window_s=5.0, n_jobs=6)

    def test_invalid_parameters(self):
        with pytest.raises(QueueingError):
            BatchWindow(service_time_s=0.0, window_s=1.0, n_jobs=1)
        with pytest.raises(QueueingError):
            BatchWindow.for_utilisation(1.5, 1.0, 10.0)
        with pytest.raises(QueueingError):
            BatchWindow(1.0, 10.0, 2).response_percentile(101.0)

    @given(
        u=st.floats(0.0, 1.0),
        tp=st.floats(0.01, 10.0),
        mult=st.floats(2.0, 100.0),
    )
    @settings(max_examples=60)
    def test_p95_close_to_095_uT_property(self, u, tp, mult):
        """Property: the batch p95 is 0.95*u*T up to one service-time of
        quantisation (the observation driving the spread analysis)."""
        window = mult * tp
        w = BatchWindow.for_utilisation(u, tp, window)
        p95 = w.response_percentile(95)
        assert abs(p95 - 0.95 * w.utilisation * window) <= tp + 1e-9


class TestBatchResponseIntegration:
    def test_quantisation_scale_spread(self, workloads):
        """Across Pareto mixes the batch p95 differs by at most one of the
        LARGEST service times — the quantisation bound."""
        w = workloads["EP"]
        configs = [
            ClusterConfiguration.mix({"A9": 32, "K10": 12}),
            ClusterConfiguration.mix({"A9": 25, "K10": 5}),
        ]
        window = 20 * execution_time(w, configs[0])
        values = [
            batch_response_percentile_s(w, c, 0.6, window_s=window) for c in configs
        ]
        max_tp = max(execution_time(w, c) for c in configs)
        assert abs(values[0] - values[1]) <= max_tp + 1e-9

    def test_sweep_structure(self, workloads, small_mix):
        w = workloads["EP"]
        window = 50 * execution_time(w, small_mix)
        s = batch_response_sweep(
            w, small_mix, np.linspace(0.2, 0.9, 8), window_s=window
        )
        assert len(s.p95_s) == 8
        assert (np.diff(s.p95_s) >= 0).all()

    def test_empty_grid_rejected(self, workloads, small_mix):
        with pytest.raises(QueueingError):
            batch_response_sweep(workloads["EP"], small_mix, [], window_s=10.0)
