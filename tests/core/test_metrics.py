"""Tests for the energy-proportionality metrics (paper Table 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    LinearPowerCurve,
    PPRCurve,
    QuadraticPowerCurve,
    SampledPowerCurve,
    analyze_curve,
    dpr,
    epm,
    ipr,
    ldr_paper,
    ldr_strict,
    ppr,
    proportionality_gap,
)
from repro.errors import ModelError


class TestPowerCurves:
    def test_linear_endpoints(self):
        c = LinearPowerCurve(2.0, 10.0)
        assert c.power_w(0.0) == 2.0
        assert c.power_w(1.0) == 10.0
        assert c.power_w(0.5) == 6.0

    def test_linear_validation(self):
        with pytest.raises(ModelError):
            LinearPowerCurve(-1.0, 5.0)
        with pytest.raises(ModelError):
            LinearPowerCurve(10.0, 5.0)

    def test_utilisation_domain(self):
        c = LinearPowerCurve(1.0, 2.0)
        with pytest.raises(ModelError):
            c.power_w(1.5)
        with pytest.raises(ModelError):
            c.power_w(-0.1)

    def test_quadratic_reduces_to_linear(self):
        lin = LinearPowerCurve(2.0, 10.0)
        quad = QuadraticPowerCurve(2.0, 10.0, curvature=0.0)
        for u in (0.0, 0.3, 0.7, 1.0):
            assert quad.power_w(u) == pytest.approx(lin.power_w(u))

    def test_quadratic_curvature_direction(self):
        sub = QuadraticPowerCurve(0.0, 10.0, curvature=0.8)
        sup = QuadraticPowerCurve(0.0, 10.0, curvature=-0.8)
        assert sub.power_w(0.5) < 5.0 < sup.power_w(0.5)

    def test_quadratic_endpoints_fixed(self):
        c = QuadraticPowerCurve(3.0, 9.0, curvature=0.5)
        assert c.power_w(0.0) == pytest.approx(3.0)
        assert c.power_w(1.0) == pytest.approx(9.0)

    def test_quadratic_curvature_bounds(self):
        with pytest.raises(ModelError):
            QuadraticPowerCurve(1.0, 2.0, curvature=1.5)

    def test_sampled_interpolates(self):
        c = SampledPowerCurve([0.0, 0.5, 1.0], [1.0, 4.0, 5.0])
        assert c.power_w(0.25) == pytest.approx(2.5)
        assert c.idle_w == 1.0
        assert c.peak_w == 5.0

    def test_sampled_validation(self):
        with pytest.raises(ModelError):
            SampledPowerCurve([0.0, 1.0], [1.0])  # shape mismatch
        with pytest.raises(ModelError):
            SampledPowerCurve([0.1, 1.0], [1.0, 2.0])  # misses u=0
        with pytest.raises(ModelError):
            SampledPowerCurve([0.0, 0.0, 1.0], [1.0, 1.0, 2.0])  # not increasing
        with pytest.raises(ModelError):
            SampledPowerCurve([0.0, 1.0], [-1.0, 2.0])  # negative power

    def test_normalized_against_reference(self):
        c = LinearPowerCurve(2.0, 10.0)
        assert c.normalized(1.0) == pytest.approx(1.0)
        assert c.normalized(1.0, reference_peak_w=20.0) == pytest.approx(0.5)
        with pytest.raises(ModelError):
            c.normalized(0.5, reference_peak_w=0.0)


class TestScalarMetrics:
    def test_ipr_dpr_relationship(self):
        c = LinearPowerCurve(3.0, 10.0)
        assert ipr(c) == pytest.approx(0.3)
        assert dpr(c) == pytest.approx(70.0)

    def test_epm_of_linear_curve_is_one_minus_ipr(self):
        """The paper's observation: on the model's linear-offset curves,
        EPM collapses to 1 - IPR."""
        for idle in (0.0, 1.8, 45.0):
            c = LinearPowerCurve(idle, 60.0)
            assert epm(c) == pytest.approx(1.0 - ipr(c), abs=1e-9)

    def test_epm_of_ideal_curve_is_one(self):
        assert epm(LinearPowerCurve(0.0, 10.0)) == pytest.approx(1.0)

    def test_epm_of_flat_curve_is_zero(self):
        assert epm(LinearPowerCurve(10.0, 10.0)) == pytest.approx(0.0)

    def test_ldr_strict_zero_for_linear(self):
        assert ldr_strict(LinearPowerCurve(2.0, 10.0)) == pytest.approx(0.0)

    def test_ldr_strict_sign_convention(self):
        # Positive curvature bows BELOW the chord -> negative (sub-linear).
        sub = QuadraticPowerCurve(2.0, 10.0, curvature=0.8)
        sup = QuadraticPowerCurve(2.0, 10.0, curvature=-0.8)
        assert ldr_strict(sub) < 0
        assert ldr_strict(sup) > 0

    def test_ldr_paper_is_one_minus_ipr(self):
        c = LinearPowerCurve(1.8, 2.43)
        assert ldr_paper(c) == pytest.approx(1.0 - ipr(c))

    def test_pg_positive_for_offset_curves(self):
        c = LinearPowerCurve(2.0, 10.0)
        for u in (0.1, 0.5, 0.9):
            assert proportionality_gap(c, u) > 0

    def test_pg_zero_at_full_load(self):
        c = LinearPowerCurve(2.0, 10.0)
        assert proportionality_gap(c, 1.0) == pytest.approx(0.0)

    def test_pg_decreases_with_utilisation(self):
        c = LinearPowerCurve(2.0, 10.0)
        gaps = [proportionality_gap(c, u) for u in (0.1, 0.3, 0.5, 0.9)]
        assert gaps == sorted(gaps, reverse=True)

    def test_pg_closed_form(self):
        # For the linear-offset curve: PG(u) = IPR*(1-u)/u.
        c = LinearPowerCurve(2.0, 10.0)
        for u in (0.2, 0.5, 0.8):
            assert proportionality_gap(c, u) == pytest.approx(0.2 * (1 - u) / u)

    def test_pg_with_reference_can_be_negative(self):
        # A small config against a big reference: sub-linear.
        c = LinearPowerCurve(1.0, 5.0)
        assert proportionality_gap(c, 0.9, reference_peak_w=20.0) < 0

    def test_pg_domain(self):
        c = LinearPowerCurve(2.0, 10.0)
        with pytest.raises(ModelError):
            proportionality_gap(c, 0.0)

    @given(idle=st.floats(0.0, 49.0), peak=st.floats(50.0, 500.0))
    @settings(max_examples=50)
    def test_metric_identities_property(self, idle, peak):
        """Property: for ANY linear-offset curve the paper's degeneracy
        holds — DPR = 100*(1-IPR) = 100*EPM = 100*LDR_paper."""
        c = LinearPowerCurve(idle, peak)
        assert dpr(c) == pytest.approx(100 * (1 - ipr(c)))
        assert epm(c) == pytest.approx(1 - ipr(c), abs=1e-9)
        assert ldr_paper(c) == pytest.approx(1 - ipr(c))
        assert abs(ldr_strict(c)) < 1e-9

    @given(curv=st.floats(-1.0, 1.0))
    @settings(max_examples=50)
    def test_epm_ordering_with_curvature(self, curv):
        """Property: bowing a curve below the chord can only raise EPM."""
        base = QuadraticPowerCurve(2.0, 10.0, curvature=0.0)
        bowed = QuadraticPowerCurve(2.0, 10.0, curvature=curv)
        if curv > 0:
            assert epm(bowed) >= epm(base) - 1e-9
        elif curv < 0:
            assert epm(bowed) <= epm(base) + 1e-9


class TestPPR:
    def test_scalar_ppr(self):
        assert ppr(1000.0, 10.0) == pytest.approx(100.0)
        with pytest.raises(ModelError):
            ppr(1000.0, 0.0)
        with pytest.raises(ModelError):
            ppr(-1.0, 10.0)

    def test_ppr_curve_peak(self):
        curve = PPRCurve(1000.0, LinearPowerCurve(2.0, 10.0))
        assert curve.peak_ppr == pytest.approx(100.0)

    def test_ppr_increases_with_utilisation_for_offset_curves(self):
        """Idle power amortises better at high load."""
        curve = PPRCurve(1000.0, LinearPowerCurve(2.0, 10.0))
        grid = np.linspace(0.1, 1.0, 10)
        values = curve.series(grid)
        assert np.all(np.diff(values) > 0)

    def test_ppr_constant_for_ideal_curve(self):
        curve = PPRCurve(1000.0, LinearPowerCurve(0.0, 10.0))
        assert curve.ppr_at(0.2) == pytest.approx(curve.ppr_at(0.9))

    def test_ppr_domain(self):
        curve = PPRCurve(1000.0, LinearPowerCurve(2.0, 10.0))
        with pytest.raises(ModelError):
            curve.ppr_at(0.0)
        with pytest.raises(ModelError):
            PPRCurve(0.0, LinearPowerCurve(2.0, 10.0))


class TestReport:
    def test_report_fields(self):
        c = LinearPowerCurve(3.0, 10.0)
        report = analyze_curve(c)
        assert report.idle_w == 3.0
        assert report.peak_w == 10.0
        assert report.ipr == pytest.approx(0.3)
        assert report.dpr == pytest.approx(70.0)
        assert report.as_row() == pytest.approx((70.0, 0.3, 0.7, 0.7))
