"""Tests for response-time analysis of configurations."""

import numpy as np
import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.core.response import p95_response_s, response_percentile_s, response_sweep
from repro.errors import QueueingError
from repro.model.time_model import execution_time
from repro.queueing.md1 import MD1Queue


class TestResponsePercentile:
    def test_matches_md1_directly(self, workloads, small_mix):
        w = workloads["EP"]
        tp = execution_time(w, small_mix)
        direct = MD1Queue.from_utilisation(0.7, tp).response_percentile(95)
        assert p95_response_s(w, small_mix, 0.7) == pytest.approx(direct)

    def test_low_utilisation_close_to_service_time(self, workloads, small_mix):
        w = workloads["EP"]
        tp = execution_time(w, small_mix)
        assert response_percentile_s(w, small_mix, 0.05) == pytest.approx(tp, rel=0.25)

    def test_increases_with_utilisation(self, workloads, small_mix):
        w = workloads["x264"]
        values = [p95_response_s(w, small_mix, u) for u in (0.2, 0.5, 0.8, 0.95)]
        assert values == sorted(values)

    def test_full_load_is_finite(self, workloads, small_mix):
        """u = 1.0 is evaluated at the saturation cap, not at divergence."""
        value = p95_response_s(workloads["EP"], small_mix, 1.0)
        assert np.isfinite(value)

    def test_invalid_utilisation_rejected(self, workloads, small_mix):
        with pytest.raises(QueueingError):
            p95_response_s(workloads["EP"], small_mix, 0.0)
        with pytest.raises(QueueingError):
            p95_response_s(workloads["EP"], small_mix, 1.2)

    def test_other_percentiles(self, workloads, small_mix):
        w = workloads["EP"]
        p50 = response_percentile_s(w, small_mix, 0.8, percentile=50)
        p99 = response_percentile_s(w, small_mix, 0.8, percentile=99)
        assert p50 < p99


class TestResponseSweep:
    def test_sweep_structure(self, workloads, small_mix):
        grid = np.linspace(0.2, 0.9, 8)
        s = response_sweep(workloads["EP"], small_mix, grid)
        assert len(s.p95_s) == 8
        assert s.service_time_s == pytest.approx(
            execution_time(workloads["EP"], small_mix)
        )

    def test_degradation_factor_at_least_one(self, workloads, small_mix):
        s = response_sweep(workloads["EP"], small_mix, np.linspace(0.2, 0.9, 8))
        assert (s.degradation_factor >= 1.0).all()

    def test_empty_grid_rejected(self, workloads, small_mix):
        with pytest.raises(QueueingError):
            response_sweep(workloads["EP"], small_mix, [])

    def test_bigger_cluster_lower_response(self, workloads):
        """More nodes -> shorter jobs -> lower p95 at equal utilisation."""
        w = workloads["EP"]
        small = ClusterConfiguration.mix({"A9": 25, "K10": 5})
        big = ClusterConfiguration.mix({"A9": 32, "K10": 12})
        grid = np.linspace(0.2, 0.9, 8)
        s_small = response_sweep(w, small, grid)
        s_big = response_sweep(w, big, grid)
        assert (s_big.p95_s < s_small.p95_s).all()
