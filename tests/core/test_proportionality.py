"""Tests for proportionality analysis of (workload, configuration) pairs."""

import numpy as np
import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.core.metrics import LinearPowerCurve
from repro.core.proportionality import (
    power_curve,
    ppr_curve,
    proportionality_report,
    sublinear_crossover,
    sublinear_mask,
    sweep,
    window_energy_j,
)
from repro.errors import ModelError
from repro.model.energy_model import power_draw
from repro.model.time_model import cluster_service_rate


class TestPowerCurve:
    def test_endpoints_match_power_draw(self, workloads, small_mix):
        w = workloads["EP"]
        curve = power_curve(w, small_mix)
        draw = power_draw(w, small_mix)
        assert curve.idle_w == pytest.approx(draw.idle_w)
        assert curve.peak_w == pytest.approx(draw.peak_w)

    def test_linear_in_utilisation(self, workloads, single_a9):
        curve = power_curve(workloads["x264"], single_a9)
        mid = curve.power_w(0.5)
        assert mid == pytest.approx((curve.idle_w + curve.peak_w) / 2)


class TestPPRCurveIntegration:
    def test_peak_matches_table6(self, workloads, single_a9):
        from repro.workloads.suite import PAPER_PPR

        curve = ppr_curve(workloads["EP"], single_a9)
        assert curve.peak_ppr == pytest.approx(PAPER_PPR["EP"]["A9"], rel=1e-6)

    def test_throughput_is_cluster_rate(self, workloads, small_mix):
        w = workloads["julius"]
        curve = ppr_curve(w, small_mix)
        assert curve.peak_throughput_ops_per_s == pytest.approx(
            cluster_service_rate(w, small_mix)
        )


class TestReportIntegration:
    def test_report_matches_table7(self, workloads, single_k10):
        from repro.workloads.suite import PAPER_IPR

        report = proportionality_report(workloads["rsa2048"], single_k10)
        assert report.ipr == pytest.approx(PAPER_IPR["rsa2048"]["K10"], rel=1e-6)
        assert report.epm == pytest.approx(1 - report.ipr, abs=1e-9)


class TestWindowEnergy:
    def test_idle_window(self):
        curve = LinearPowerCurve(2.0, 10.0)
        assert window_energy_j(curve, 0.0, 100.0) == pytest.approx(200.0)

    def test_full_window(self):
        curve = LinearPowerCurve(2.0, 10.0)
        assert window_energy_j(curve, 1.0, 100.0) == pytest.approx(1000.0)

    def test_invalid_window(self):
        with pytest.raises(ModelError):
            window_energy_j(LinearPowerCurve(1.0, 2.0), 0.5, 0.0)


class TestSublinearity:
    def test_mask_against_larger_reference(self):
        curve = LinearPowerCurve(1.0, 5.0)
        grid = np.array([0.1, 0.5, 0.9])
        mask = sublinear_mask(curve, grid, reference_peak_w=20.0)
        # At u=0.1: P=1.4 vs ideal 2.0 -> sub-linear already.
        assert mask.tolist() == [True, True, True]

    def test_mask_against_own_peak_never_sublinear(self):
        curve = LinearPowerCurve(1.0, 5.0)
        grid = np.linspace(0.01, 1.0, 50)
        mask = sublinear_mask(curve, grid, reference_peak_w=curve.peak_w)
        assert not mask.any()

    def test_crossover_closed_form(self):
        curve = LinearPowerCurve(1.0, 5.0)  # dyn = 4
        # u* = idle / (ref - dyn) = 1 / (20 - 4).
        assert sublinear_crossover(curve, reference_peak_w=20.0) == pytest.approx(
            1.0 / 16.0
        )

    def test_crossover_none_when_reference_too_small(self):
        curve = LinearPowerCurve(1.0, 5.0)
        assert sublinear_crossover(curve, reference_peak_w=4.0) is None

    def test_crossover_none_when_beyond_full_load(self):
        curve = LinearPowerCurve(10.0, 12.0)
        # u* = 10/(13-2) = 0.909 < 1 -> exists; with ref=11.5: 10/9.5 > 1.
        assert sublinear_crossover(curve, reference_peak_w=11.5) is None

    def test_crossover_consistent_with_mask(self, workloads):
        """The closed-form crossover agrees with the sampled mask."""
        w = workloads["EP"]
        reference = power_curve(w, ClusterConfiguration.mix({"A9": 32, "K10": 12}))
        small = power_curve(w, ClusterConfiguration.mix({"A9": 25, "K10": 5}))
        u_star = sublinear_crossover(small, reference_peak_w=reference.peak_w)
        assert u_star is not None
        grid = np.linspace(0.05, 1.0, 100)
        mask = sublinear_mask(small, grid, reference_peak_w=reference.peak_w)
        assert not mask[grid < u_star - 0.02].any()
        assert mask[grid > u_star + 0.02].all()

    def test_invalid_reference(self):
        curve = LinearPowerCurve(1.0, 5.0)
        with pytest.raises(ModelError):
            sublinear_mask(curve, [0.5], reference_peak_w=0.0)
        with pytest.raises(ModelError):
            sublinear_crossover(curve, reference_peak_w=-1.0)


class TestSweep:
    def test_series_lengths(self, workloads, small_mix):
        grid = np.linspace(0.1, 1.0, 10)
        s = sweep(workloads["EP"], small_mix, grid)
        assert len(s.power_w) == 10
        assert len(s.ppr) == 10

    def test_normalisation_default_own_peak(self, workloads, small_mix):
        s = sweep(workloads["EP"], small_mix, np.linspace(0.1, 1.0, 10))
        assert s.pct_of_reference_peak[-1] == pytest.approx(100.0)

    def test_reference_peak_normalisation(self, workloads, small_mix):
        curve = power_curve(workloads["EP"], small_mix)
        s = sweep(
            workloads["EP"], small_mix, np.linspace(0.1, 1.0, 10),
            reference_peak_w=2 * curve.peak_w,
        )
        assert s.pct_of_reference_peak[-1] == pytest.approx(50.0)

    def test_gap_and_sublinear_consistent(self, workloads, small_mix):
        s = sweep(workloads["EP"], small_mix, np.linspace(0.1, 1.0, 10))
        assert ((s.proportionality_gap < 0) == s.sublinear).all()

    def test_custom_label(self, workloads, small_mix):
        s = sweep(workloads["EP"], small_mix, [0.5], label="mine")
        assert s.label == "mine"

    def test_default_label_is_mix(self, workloads, small_mix):
        s = sweep(workloads["EP"], small_mix, [0.5])
        assert s.label == small_mix.label()

    def test_grid_validation(self, workloads, small_mix):
        with pytest.raises(ModelError):
            sweep(workloads["EP"], small_mix, [])
        with pytest.raises(ModelError):
            sweep(workloads["EP"], small_mix, [0.0, 0.5])
        with pytest.raises(ModelError):
            sweep(workloads["EP"], small_mix, [0.5, 1.5])
