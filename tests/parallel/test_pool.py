"""Tests for the process-pool core: chunking, worker resolution, task runs."""

from __future__ import annotations

import os

import pytest

from repro.errors import ReproError
from repro.obs import get_registry
from repro.parallel.pool import (
    DEFAULT_CHUNKS_PER_WORKER,
    chunk_ranges,
    default_chunks,
    resolve_workers,
    run_tasks,
)


def _square(x):
    return x * x


def _counting_task(n):
    get_registry().counter("pool_test_items_total").inc(n)
    return n


def _worker_pid(_):
    return os.getpid()


class TestResolveWorkers:
    def test_none_and_one_mean_in_process(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0) == max(1, os.cpu_count() or 1)

    def test_literal_counts(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            resolve_workers(-1)


class TestChunkRanges:
    def test_exact_cover_no_overlap(self):
        ranges = chunk_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        covered = [i for a, b in ranges for i in range(a, b)]
        assert covered == list(range(10))

    def test_sizes_differ_by_at_most_one_earlier_larger(self):
        for n in range(1, 40):
            for chunks in range(1, 12):
                widths = [b - a for a, b in chunk_ranges(n, chunks)]
                assert sum(widths) == n
                assert max(widths) - min(widths) <= 1
                assert widths == sorted(widths, reverse=True)

    def test_more_chunks_than_items_collapses(self):
        assert chunk_ranges(2, 8) == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert chunk_ranges(0, 4) == []

    def test_invalid(self):
        with pytest.raises(ReproError):
            chunk_ranges(-1, 2)
        with pytest.raises(ReproError):
            chunk_ranges(5, 0)

    def test_deterministic_in_inputs_alone(self):
        assert chunk_ranges(17, 5) == chunk_ranges(17, 5)

    def test_default_chunks(self):
        assert default_chunks(100, 2) == 2 * DEFAULT_CHUNKS_PER_WORKER
        assert default_chunks(3, 2) == 3
        assert default_chunks(0, 2) == 1


class TestRunTasks:
    def test_empty(self):
        assert run_tasks([]) == []

    def test_in_process_results_in_submission_order(self):
        results = run_tasks([(_square, (i,)) for i in range(6)])
        assert results == [0, 1, 4, 9, 16, 25]

    def test_pool_results_in_submission_order(self):
        results = run_tasks([(_square, (i,)) for i in range(9)], workers=2)
        assert results == [i * i for i in range(9)]

    def test_pool_actually_crosses_process_boundary(self):
        pids = run_tasks([(_worker_pid, (i,)) for i in range(4)], workers=2)
        assert all(pid != os.getpid() for pid in pids)

    def test_worker_counters_merge_into_parent(self):
        registry = get_registry()
        registry.enable()
        run_tasks([(_counting_task, (n,)) for n in (3, 4, 5)], workers=2)
        assert registry.counter("pool_test_items_total").value == 12.0

    def test_uninstrumented_run_merges_nothing(self):
        registry = get_registry()
        assert not registry.enabled
        run_tasks([(_counting_task, (7,)) for _ in range(2)], workers=2)
        assert len(registry) == 0
