"""Tests for the sharded scheduler replay: plans, merges, worker invariance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import ReproError
from repro.extensions.dynamic import diurnal_trace, scaled_candidates
from repro.parallel.sharding import (
    _replay_shard,
    merge_shard_results,
    shard_config,
    shard_counts,
    shard_seed,
    sharded_replay,
)

_TRACE = diurnal_trace(n_intervals=12)


def _fixed_mix():
    return ClusterConfiguration.mix({"A9": 16, "K10": 6})


class TestShardPlan:
    def test_counts_conserve_nodes(self):
        for count in range(0, 30):
            for n_shards in range(1, 9):
                counts = shard_counts(count, n_shards)
                assert sum(counts) == count
                assert len(counts) == n_shards
                assert max(counts) - min(counts) <= 1

    def test_counts_invalid(self):
        with pytest.raises(ReproError):
            shard_counts(-1, 2)
        with pytest.raises(ReproError):
            shard_counts(4, 0)

    def test_config_slices_conserve_every_group(self):
        config = _fixed_mix()
        n_shards = 3
        slices = [shard_config(config, i, n_shards) for i in range(n_shards)]
        for spec_name, total in (("A9", 16), ("K10", 6)):
            sliced = sum(
                g.count
                for s in slices
                if s is not None
                for g in s.groups
                if g.spec.name == spec_name
            )
            assert sliced == total

    def test_config_empty_shard_is_none(self):
        tiny = ClusterConfiguration.mix({"A9": 1})
        assert shard_config(tiny, 0, 4) is not None
        assert shard_config(tiny, 3, 4) is None

    def test_config_index_out_of_range(self):
        with pytest.raises(ReproError):
            shard_config(_fixed_mix(), 2, 2)

    def test_seeds_differ_by_index_and_plan(self):
        seeds = {shard_seed(1, i, 4) for i in range(4)}
        assert len(seeds) == 4
        assert shard_seed(1, 0, 4) != shard_seed(1, 0, 8)
        assert shard_seed(1, 2, 4) == shard_seed(1, 2, 4)


class TestWorkerInvariance:
    def test_fixed_config_bit_identical_across_workers(self, workloads):
        runs = [
            sharded_replay(
                workloads["EP"],
                "ppr-greedy",
                _TRACE,
                n_shards=3,
                workers=w,
                config=_fixed_mix(),
                seed=11,
            )
            for w in (1, 2)
        ]
        a, b = runs
        assert a.total_energy_j == b.total_energy_j
        assert (a.p50_s, a.p95_s, a.p99_s) == (b.p50_s, b.p95_s, b.p99_s)
        assert a.timeline == b.timeline
        assert np.array_equal(a.responses_s, b.responses_s)
        assert a.node_stats == b.node_stats

    def test_autoscaled_bit_identical_across_workers(self, workloads):
        candidates = scaled_candidates(1000.0, a9_step=16, k10_step=2)
        runs = [
            sharded_replay(
                workloads["EP"],
                "ppr-greedy",
                _TRACE,
                n_shards=2,
                workers=w,
                candidates=candidates,
                seed=11,
            )
            for w in (1, 2)
        ]
        a, b = runs
        assert a.total_energy_j == b.total_energy_j
        assert a.timeline == b.timeline
        assert np.array_equal(a.responses_s, b.responses_s)


class TestMergeArithmetic:
    def test_merge_is_additive_over_shards(self, workloads):
        """The merged telemetry equals the per-shard sums — no double
        counting, nothing dropped."""
        config = _fixed_mix()
        n_shards = 3
        shards = [
            _replay_shard(
                workloads["EP"],
                "ppr-greedy",
                _TRACE,
                30.0,
                shard_config(config, i, n_shards),
                None,
                None,
                "auto",
                shard_seed(11, i, n_shards),
            )
            for i in range(n_shards)
        ]
        merged = merge_shard_results(shards, interval_s=30.0)
        assert merged.jobs_arrived == sum(s.jobs_arrived for s in shards)
        assert merged.total_energy_j == pytest.approx(
            sum(s.total_energy_j for s in shards)
        )
        assert merged.boots == sum(s.boots for s in shards)
        assert merged.shutdowns == sum(s.shutdowns for s in shards)
        assert merged.reference_peak_w == pytest.approx(
            sum(s.reference_peak_w for s in shards)
        )
        for k, sample in enumerate(merged.timeline):
            assert sample.arrivals == sum(s.timeline[k].arrivals for s in shards)
            assert sample.power_w == pytest.approx(
                sum(s.timeline[k].power_w for s in shards)
            )
        assert merged.responses_s.size == sum(s.responses_s.size for s in shards)

    def test_merged_percentiles_are_exact_pooled_percentiles(self, workloads):
        config = _fixed_mix()
        shards = [
            _replay_shard(
                workloads["EP"],
                "jsq",
                _TRACE,
                30.0,
                shard_config(config, i, 2),
                None,
                None,
                "auto",
                shard_seed(3, i, 2),
            )
            for i in range(2)
        ]
        merged = merge_shard_results(shards, interval_s=30.0)
        pooled = np.concatenate([s.responses_s for s in shards])
        assert merged.p95_s == float(np.percentile(pooled, 95.0))

    def test_merge_rejects_empty_and_mismatched(self, workloads):
        with pytest.raises(ReproError):
            merge_shard_results([], interval_s=30.0)
        shard = _replay_shard(
            workloads["EP"], "jsq", _TRACE, 30.0,
            _fixed_mix(), None, None, "auto", 1,
        )
        import dataclasses

        stripped = dataclasses.replace(shard, responses_s=None)
        with pytest.raises(ReproError):
            merge_shard_results([stripped], interval_s=30.0)


class TestValidation:
    def test_exactly_one_of_config_or_candidates(self, workloads):
        with pytest.raises(ReproError):
            sharded_replay(workloads["EP"], "jsq", _TRACE, n_shards=2)
        with pytest.raises(ReproError):
            sharded_replay(
                workloads["EP"],
                "jsq",
                _TRACE,
                n_shards=2,
                config=_fixed_mix(),
                candidates=[_fixed_mix()],
            )

    def test_more_shards_than_nodes_skips_empty_shards(self, workloads):
        tiny = ClusterConfiguration.mix({"A9": 2})
        result = sharded_replay(
            workloads["EP"], "jsq", _TRACE, n_shards=4, config=tiny, seed=2
        )
        assert result.jobs_arrived > 0
