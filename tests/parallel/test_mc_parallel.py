"""Bit-identity of parallel Monte-Carlo replications at any worker count."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import QueueingError
from repro.obs import get_registry
from repro.parallel.mc import run_parallel
from repro.queueing.mc import (
    MonteCarloQueue,
    exponential_service,
    uniform_service,
)

_RESULT_ARRAYS = (
    "response_percentiles_s",
    "mean_response_s",
    "mean_wait_s",
    "utilisation",
    "busy_time_s",
    "idle_time_s",
    "span_s",
)


def _assert_identical(a, b):
    assert a.n_jobs == b.n_jobs
    assert a.n_reps == b.n_reps
    assert a.warmup_jobs == b.warmup_jobs
    assert a.arrival_rate == b.arrival_rate
    for field in _RESULT_ARRAYS:
        assert np.array_equal(getattr(a, field), getattr(b, field)), field


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_deterministic_service(self, workers):
        mc = MonteCarloQueue.from_utilisation(0.7, 1.0, seed=123)
        serial = mc.run(2_000, 10)
        parallel = mc.run(2_000, 10, workers=workers)
        _assert_identical(serial, parallel)

    def test_exponential_service(self):
        mc = MonteCarloQueue(0.6, exponential_service(1.0), seed=7)
        _assert_identical(mc.run(1_500, 8), mc.run(1_500, 8, workers=2))

    def test_chunking_never_affects_the_result(self):
        mc = MonteCarloQueue.from_utilisation(0.5, 1.0, seed=42)
        serial = mc.run(1_000, 9)
        for chunks in (1, 2, 9):
            _assert_identical(
                serial, run_parallel(mc, 1_000, 9, workers=2, chunks=chunks)
            )

    def test_workers_one_takes_the_serial_path(self):
        mc = MonteCarloQueue.from_utilisation(0.7, 1.0, seed=5)
        _assert_identical(mc.run(800, 6), mc.run(800, 6, workers=1))


class TestMetricsRoundTrip:
    def test_parallel_run_reports_serial_counter_totals(self):
        """The worker-increments-dropped bug: a parallel run must report
        the same jobs/replications totals as a serial one."""
        registry = get_registry()
        mc = MonteCarloQueue.from_utilisation(0.7, 1.0, seed=99)

        registry.enable()
        mc.run(2_000, 8)
        serial_jobs = registry.counter("repro_mc_jobs_simulated_total").value
        serial_reps = registry.counter("repro_mc_replications_total").value
        registry.reset(clear=True)

        registry.enable()
        mc.run(2_000, 8, workers=2)
        assert registry.counter("repro_mc_jobs_simulated_total").value == serial_jobs
        assert registry.counter("repro_mc_replications_total").value == serial_reps
        assert serial_jobs == 2_000 * 8


class TestSamplerPicklability:
    def test_service_samplers_cross_the_process_boundary(self):
        for sampler in (exponential_service(1.5), uniform_service(0.5, 2.5)):
            clone = pickle.loads(pickle.dumps(sampler))
            rng_a = np.random.default_rng(3)
            rng_b = np.random.default_rng(3)
            assert np.array_equal(sampler(rng_a, 16), clone(rng_b, 16))


class TestValidation:
    def test_bad_shapes_rejected(self):
        mc = MonteCarloQueue.from_utilisation(0.7, 1.0, seed=1)
        with pytest.raises(QueueingError):
            run_parallel(mc, 0, 4, workers=2)
        with pytest.raises(QueueingError):
            run_parallel(mc, 100, 0, workers=2)
