"""Tests for the parallel exhaustive search: partition and winner fold."""

from __future__ import annotations

import pytest

from repro.cluster.budget import PowerBudget
from repro.cluster.configuration import TypeSpace, count_configurations
from repro.cluster.search import recommend_exhaustive
from repro.errors import ModelError
from repro.hardware.specs import get_node_spec
from repro.parallel.search import partition_spaces, recommend_parallel


def _spaces(n_a9=4, n_k10=2):
    return [
        TypeSpace(get_node_spec("A9"), n_max=n_a9),
        TypeSpace(get_node_spec("K10"), n_max=n_k10),
    ]


class TestPartition:
    def test_one_chunk_per_first_type_frequency(self):
        spaces = _spaces()
        chunks = partition_spaces(spaces)
        assert len(chunks) == len(spaces[0].frequencies_hz)
        for chunk, f in zip(chunks, spaces[0].frequencies_hz):
            assert chunk[0].frequencies_hz == (f,)
            assert chunk[1:] == list(spaces[1:])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            partition_spaces([])


class TestParallelSearch:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_matches_serial_exhaustive(self, workloads, workers):
        spaces = _spaces()
        serial = recommend_exhaustive(workloads["EP"], spaces, deadline_s=500.0)
        parallel = recommend_parallel(
            workloads["EP"], spaces, deadline_s=500.0, workers=workers
        )
        assert parallel is not None and serial is not None
        assert parallel.config == serial.config
        assert parallel.evaluation == serial.evaluation
        assert parallel.evaluated_configs == serial.evaluated_configs
        assert parallel.evaluated_configs == count_configurations(spaces)
        assert parallel.strategy == "exhaustive"

    def test_matches_serial_under_budget(self, workloads):
        spaces = _spaces()
        budget = PowerBudget(40.0)
        serial = recommend_exhaustive(
            workloads["EP"], spaces, deadline_s=500.0, budget=budget
        )
        parallel = recommend_parallel(
            workloads["EP"], spaces, deadline_s=500.0, budget=budget, workers=2
        )
        assert serial is not None and parallel is not None
        assert parallel.config == serial.config
        assert parallel.evaluation == serial.evaluation

    def test_infeasible_deadline_returns_none(self, workloads):
        assert (
            recommend_parallel(
                workloads["EP"], _spaces(2, 1), deadline_s=1e-6, workers=2
            )
            is None
        )

    def test_invalid_deadline(self, workloads):
        with pytest.raises(ModelError):
            recommend_parallel(workloads["EP"], _spaces(), deadline_s=0.0)
