"""Fixtures for the parallel-layer suite.

The metrics registry is a process-wide singleton and ``run_tasks`` merges
worker snapshots into it; every test here runs against a clean, disabled
registry and leaves it that way.
"""

from __future__ import annotations

import pytest

from repro.obs import get_registry, get_tracer


@pytest.fixture(autouse=True)
def _clean_obs_singletons():
    registry = get_registry()
    tracer = get_tracer()
    registry.disable()
    registry.reset(clear=True)
    tracer.disable()
    tracer.reset()
    yield
    registry.disable()
    registry.reset(clear=True)
    tracer.disable()
    tracer.reset()
