"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.cluster.configuration import ClusterConfiguration
from repro.util.rng import RngRegistry
from repro.workloads.suite import paper_workloads

# Hypothesis profiles: "ci" (default) derandomizes so every run replays the
# same example sequence — statistical property tests must not flake in CI —
# while "dev" keeps random exploration for local bug-hunting.  Select with
# HYPOTHESIS_PROFILE=dev.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a per-test tmp dir.

    Every CLI subcommand appends a ``repro-run/1`` record by default
    (:mod:`repro.obs.ledger`); without this redirect, tests that call
    ``main()`` would grow a real ``.repro/runs`` store inside the repo.
    """
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    # Same hygiene for flight-recorder dumps: a test that trips an SLO
    # alert or a 5xx must not grow a real .repro/flight inside the repo.
    monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path / "flight"))


@pytest.fixture(scope="session")
def workloads():
    """The six calibrated paper workloads (session-cached; treat as
    read-only)."""
    return paper_workloads()


@pytest.fixture()
def registry():
    """A fresh deterministic RNG registry per test."""
    return RngRegistry(seed=1234)


@pytest.fixture()
def rng():
    """A plain seeded generator for tests that need one stream."""
    return np.random.default_rng(99)


@pytest.fixture()
def single_a9():
    """A single wimpy node at full throttle."""
    return ClusterConfiguration.mix({"A9": 1})


@pytest.fixture()
def single_k10():
    """A single brawny node at full throttle."""
    return ClusterConfiguration.mix({"K10": 1})


@pytest.fixture()
def small_mix():
    """A small heterogeneous mix at full throttle."""
    return ClusterConfiguration.mix({"A9": 4, "K10": 1})
