"""Tests for the ``repro obs`` family and the CLI's run-ledger recording.

The ledger store is isolated per test by the autouse ``_isolated_ledger``
fixture in ``tests/conftest.py`` (it points ``REPRO_LEDGER_DIR`` at a tmp
dir), so ``default_ledger()`` here reads exactly what the command under
test wrote.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.ledger import default_ledger
from repro.obs.monitors import Band, ClaimMonitor


def _bench_envelope(speedup=800.0):
    return {
        "schema": "repro-bench/1",
        "benchmark": "sweep",
        "params": {"seed": 7, "n_a9": 32},
        "timings_s": {"batched_warm": 0.5},
        "speedup": {"batched_warm": speedup},
    }


@pytest.fixture()
def fake_monitor(monkeypatch):
    """Replace the (seconds-long) real monitors with one instant fake."""

    def install(value=1.0):
        fake = ClaimMonitor(
            name="fake",
            claim="fake claim",
            derive=lambda seed: {"metric": value},
            bands={"metric": Band(0.5, 1.5)},
        )
        monkeypatch.setattr("repro.obs.monitors.MONITORS", {"fake": fake})
        return fake

    return install


class TestCliRecording:
    def test_every_subcommand_appends_a_record(self, capsys):
        assert main(["table", "7"]) == 0
        (rec,) = default_ledger().records()
        assert rec.name == "cli/table"
        assert rec.kind == "cli"
        assert rec.exit_code == 0
        assert rec.params["number"] == 7
        assert rec.wall_s > 0

    def test_no_ledger_flag_skips_recording(self, capsys):
        assert main(["--no-ledger", "table", "7"]) == 0
        assert len(default_ledger()) == 0

    def test_env_disable_skips_recording(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert main(["table", "7"]) == 0
        assert len(default_ledger()) == 0

    def test_ledger_dir_flag_overrides_env(self, capsys, tmp_path):
        target = tmp_path / "explicit"
        assert main(["--ledger-dir", str(target), "table", "7"]) == 0
        assert len(default_ledger()) == 0  # env-pointed store untouched
        assert (target / "runs.jsonl").exists()

    def test_obs_family_never_appends_cli_records(self, capsys):
        assert main(["obs", "report"]) == 0
        assert len(default_ledger()) == 0

    def test_same_seed_and_config_reproduce_scalars(self, capsys):
        args = ["schedule", "--intervals", "4", "--seed", "42"]
        assert main(args) == 0
        assert main(args) == 0
        first, second = default_ledger().records(name="cli/schedule")
        assert first.config_digest == second.config_digest
        assert first.scalars == second.scalars
        assert first.scalars  # non-empty: the replay exported its results


class TestObsRecord:
    def test_manual_record(self, capsys):
        rc = main(
            ["obs", "record", "--name", "exp/custom", "--scalar", "x=1.5",
             "--scalar", "y=2", "--seed", "9"]
        )
        assert rc == 0
        (rec,) = default_ledger().records()
        assert rec.name == "exp/custom"
        assert rec.kind == "experiment"
        assert rec.scalars == {"x": 1.5, "y": 2.0}
        assert rec.seed == 9
        assert "recorded exp/custom" in capsys.readouterr().out

    def test_bench_ingestion(self, capsys, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        path.write_text(json.dumps(_bench_envelope()), encoding="utf-8")
        assert main(["obs", "record", "--bench", str(path)]) == 0
        (rec,) = default_ledger().records()
        assert rec.name == "bench/sweep"
        assert rec.scalars["speedup.batched_warm"] == 800.0
        assert rec.seed == 7

    def test_needs_bench_or_name(self, capsys):
        assert main(["obs", "record"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_scalar_pair(self, capsys):
        assert main(["obs", "record", "--name", "x", "--scalar", "oops"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unreadable_envelope(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["obs", "record", "--bench", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsReport:
    def test_empty_ledger_hint(self, capsys):
        assert main(["obs", "report"]) == 0
        assert "run ledger is empty" in capsys.readouterr().out

    def test_dashboard_over_recorded_runs(self, capsys):
        main(["obs", "record", "--name", "exp/a", "--scalar", "v=1"])
        main(["obs", "record", "--name", "exp/a", "--scalar", "v=2"])
        capsys.readouterr()
        assert main(["obs", "report"]) == 0
        out = capsys.readouterr().out
        assert "Run ledger dashboard" in out
        assert "exp/a" in out


class TestObsDiff:
    def test_injected_regression_exits_nonzero(self, capsys, tmp_path):
        # The acceptance scenario: record a benchmark run, then ingest a
        # copy with a >= 25% slower floor metric; the diff must flag it
        # and exit 1.
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_bench_envelope(800.0)), encoding="utf-8")
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(_bench_envelope(480.0)), encoding="utf-8")
        main(["obs", "record", "--bench", str(good)])
        main(["obs", "record", "--bench", str(bad)])
        capsys.readouterr()
        assert main(["obs", "diff", "--names", "bench/sweep"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "-40.0%" in out

    def test_stable_history_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(_bench_envelope()), encoding="utf-8")
        main(["obs", "record", "--bench", str(path)])
        main(["obs", "record", "--bench", str(path)])
        capsys.readouterr()
        assert main(["obs", "diff"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_improvement_exits_zero(self, capsys, tmp_path):
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(_bench_envelope(400.0)), encoding="utf-8")
        fast = tmp_path / "fast.json"
        fast.write_text(json.dumps(_bench_envelope(800.0)), encoding="utf-8")
        main(["obs", "record", "--bench", str(slow)])
        main(["obs", "record", "--bench", str(fast)])
        capsys.readouterr()
        assert main(["obs", "diff", "--scalars", "speedup.batched_warm"]) == 0
        assert "improved" in capsys.readouterr().out

    def test_empty_ledger_is_clean(self, capsys):
        assert main(["obs", "diff"]) == 0
        assert "nothing to diff" in capsys.readouterr().out


class TestObsCheck:
    def test_green_monitors_exit_zero_and_record(self, capsys, fake_monitor):
        fake_monitor(1.0)
        assert main(["obs", "check"]) == 0
        out = capsys.readouterr().out
        assert "all green" in out
        (rec,) = default_ledger().records()
        assert rec.name == "monitor/fake"
        assert rec.exit_code == 0

    def test_red_monitor_exits_one(self, capsys, fake_monitor):
        fake_monitor(9.0)
        assert main(["obs", "check"]) == 1
        assert "FAIL" in capsys.readouterr().out
        assert default_ledger().records()[0].exit_code == 1

    def test_no_record_flag(self, capsys, fake_monitor):
        fake_monitor(1.0)
        assert main(["obs", "check", "--no-record"]) == 0
        assert len(default_ledger()) == 0

    def test_unknown_monitor_is_an_error(self, capsys):
        assert main(["obs", "check", "--monitors", "nope"]) == 1
        assert "unknown monitors" in capsys.readouterr().err


class TestObsWatchAndCompact:
    def test_watch_bounded_iterations(self, capsys):
        main(["obs", "record", "--name", "exp/a", "--scalar", "v=1"])
        capsys.readouterr()
        assert main(["obs", "watch", "--iterations", "2", "--interval", "0"]) == 0
        out = capsys.readouterr().out
        assert out.count("Run ledger dashboard") == 2

    def test_watch_validates_arguments(self, capsys):
        assert main(["obs", "watch", "--interval", "-1"]) == 1
        assert main(["obs", "watch", "--iterations", "0"]) == 1

    def test_compact_moves_surplus_to_archive(self, capsys):
        for v in ("1", "2", "3"):
            main(["obs", "record", "--name", "exp/a", "--scalar", f"v={v}"])
        capsys.readouterr()
        assert main(["obs", "compact", "--keep", "1"]) == 0
        assert "archived 2 record(s)" in capsys.readouterr().out
        ledger = default_ledger()
        assert len(ledger.records(name="exp/a")) == 1
        assert len(ledger.records(name="exp/a", include_archive=True)) == 3


def _write_flight_dump(directory):
    """One real dump via the recorder, returned as its JSON path."""
    from time import perf_counter

    from repro.obs.request import FlightRecorder, RequestContext

    ctx = RequestContext("lg-test-000001", "/recommend", origin_s=perf_counter())
    with ctx.stage("cache") as st:
        st.set(hit=False)
    ctx.finish(200, 0.02)
    flight = FlightRecorder(8, directory=directory)
    flight.record(ctx)
    return flight.dump("slo-burn")


class TestObsFlight:
    def test_empty_directory_lists_nothing(self, capsys, tmp_path):
        assert main(["obs", "flight", "--dir", str(tmp_path)]) == 0
        assert "no flight dumps" in capsys.readouterr().out

    def test_last_with_no_dumps_exits_one(self, capsys, tmp_path):
        assert main(["obs", "flight", "--dir", str(tmp_path), "--last"]) == 1

    def test_list_and_detail_views(self, capsys, tmp_path):
        path = _write_flight_dump(tmp_path)
        assert main(["obs", "flight", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert path.name in out and "[slo-burn]" in out

        assert main(["obs", "flight", "--dir", str(tmp_path), "--last"]) == 0
        out = capsys.readouterr().out
        assert "lg-test-000001" in out
        assert "stage tree" in out and "cache" in out

    def test_json_emits_the_document_verbatim(self, capsys, tmp_path):
        path = _write_flight_dump(tmp_path)
        assert main(["obs", "flight", "--dump", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-flight/1"
        assert doc["requests"][0]["request_id"] == "lg-test-000001"

    def test_unreadable_dump_is_an_error(self, capsys, tmp_path):
        bogus = tmp_path / "flight-x.json"
        bogus.write_text("{}", encoding="utf-8")
        assert main(["obs", "flight", "--dump", str(bogus)]) == 1


class TestObsWatchServe:
    def test_polls_stats_and_renders_the_live_view(self, capsys, monkeypatch):
        stats = {
            "service": {"uptime_s": 12.0, "total": 40, "statuses": {"200": 40}},
            "slo": {
                "slo_p95_s": 0.25,
                "fast_burn": 3.5,
                "slow_burn": 2.1,
                "threshold": 2.0,
                "alert_active": True,
                "alerts": 1,
                "good": 30,
                "bad": 10,
            },
            "tracing": {
                "sampler": {"decided": 40, "kept_by_reason": {"slow": 2}},
                "flight": {"entries": 2, "capacity": 64, "dumps": 1},
                "stages": {
                    "cache": {"count": 40, "total_s": 0.4, "mean_s": 0.01}
                },
            },
            "admission": {"shed": 0, "depth_limit": 9},
            "cache": {"hit_fraction": 0.95},
            "batching": {},
        }
        monkeypatch.setattr(
            "repro.cli._fetch_serve_stats", lambda url: stats
        )
        assert (
            main(
                [
                    "obs",
                    "watch",
                    "--serve",
                    "http://127.0.0.1:1",
                    "--iterations",
                    "2",
                    "--interval",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("Serve watch") == 2
        assert "[ALERT]" in out
        assert "cache" in out

    def test_unreachable_service_is_an_error(self, capsys):
        assert (
            main(
                [
                    "obs",
                    "watch",
                    "--serve",
                    "http://127.0.0.1:1",
                    "--iterations",
                    "1",
                ]
            )
            == 1
        )
        assert "cannot fetch" in capsys.readouterr().err


class TestArtifactParentDirs:
    def test_trace_out_creates_parents(self, capsys, tmp_path):
        out = tmp_path / "deep" / "traces" / "t.json"
        assert main(["table", "7", "--trace-out", str(out)]) == 0
        assert "traceEvents" in json.loads(out.read_text(encoding="utf-8"))

    def test_metrics_out_creates_parents(self, capsys, tmp_path):
        out = tmp_path / "deep" / "metrics" / "m.json"
        assert main(["table", "7", "--metrics-out", str(out)]) == 0
        json.loads(out.read_text(encoding="utf-8"))  # valid JSON snapshot

    def test_existing_artifact_is_overwritten(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        out.write_text("stale", encoding="utf-8")
        assert main(["table", "7", "--trace-out", str(out)]) == 0
        assert "traceEvents" in out.read_text(encoding="utf-8")
