"""Tests for the configuration recommendation search."""

import pytest

import repro.cluster.search as search_module
from repro.cluster.budget import PowerBudget
from repro.cluster.configuration import ClusterConfiguration, NodeGroup, TypeSpace
from repro.cluster.search import _neighbours, recommend_exhaustive, recommend_greedy
from repro.errors import ModelError
from repro.hardware.specs import a9, k10


def _small_spaces(n_a9=3, n_k10=2):
    return [TypeSpace(a9(), n_max=n_a9), TypeSpace(k10(), n_max=n_k10)]


@pytest.fixture()
def deadline(workloads):
    """A deadline twice the maximal small-space configuration's time."""
    from repro.cluster.configuration import ClusterConfiguration
    from repro.model.time_model import execution_time

    config = ClusterConfiguration.mix({"A9": 3, "K10": 2})
    return 2.0 * execution_time(workloads["blackscholes"], config)


class TestExhaustive:
    def test_meets_deadline(self, workloads, deadline):
        rec = recommend_exhaustive(
            workloads["blackscholes"], _small_spaces(), deadline_s=deadline
        )
        assert rec is not None
        assert rec.meets_deadline
        assert rec.strategy == "exhaustive"

    def test_minimality(self, workloads, deadline):
        """No feasible configuration is cheaper."""
        from repro.cluster.configuration import enumerate_configurations
        from repro.cluster.pareto import evaluate_configuration

        w = workloads["blackscholes"]
        rec = recommend_exhaustive(w, _small_spaces(), deadline_s=deadline)
        assert rec is not None
        for config in enumerate_configurations(_small_spaces()):
            ev = evaluate_configuration(w, config)
            if ev.tp_s <= deadline:
                assert ev.energy_j >= rec.evaluation.energy_j - 1e-12

    def test_impossible_deadline(self, workloads):
        rec = recommend_exhaustive(
            workloads["blackscholes"], _small_spaces(), deadline_s=1e-9
        )
        assert rec is None

    def test_budget_constraint(self, workloads, deadline):
        w = workloads["blackscholes"]
        tight = PowerBudget(30.0)  # fits a few A9 but no K10
        rec = recommend_exhaustive(
            w, _small_spaces(), deadline_s=deadline * 50, budget=tight
        )
        assert rec is not None
        assert rec.config.count_of("K10") == 0

    def test_invalid_deadline(self, workloads):
        with pytest.raises(ModelError):
            recommend_exhaustive(workloads["EP"], _small_spaces(), deadline_s=0.0)

    def test_counts_whole_space(self, workloads, deadline):
        from repro.cluster.configuration import count_configurations

        rec = recommend_exhaustive(
            workloads["blackscholes"], _small_spaces(), deadline_s=deadline
        )
        assert rec.evaluated_configs == count_configurations(_small_spaces())


class TestGreedy:
    def test_matches_exhaustive_on_small_space(self, workloads, deadline):
        """The greedy heuristic finds the exhaustive optimum on the small
        space (the model's monotone structure makes descent exact here)."""
        w = workloads["blackscholes"]
        exact = recommend_exhaustive(w, _small_spaces(), deadline_s=deadline)
        greedy = recommend_greedy(w, _small_spaces(), deadline_s=deadline)
        assert greedy is not None and exact is not None
        assert greedy.evaluation.energy_j == pytest.approx(
            exact.evaluation.energy_j, rel=0.02
        )

    def test_evaluates_far_fewer_configs(self, workloads):
        from repro.cluster.configuration import ClusterConfiguration
        from repro.model.time_model import execution_time

        w = workloads["blackscholes"]
        spaces = [TypeSpace(a9(), n_max=8), TypeSpace(k10(), n_max=3)]
        config = ClusterConfiguration.mix({"A9": 8, "K10": 3})
        deadline = 3.0 * execution_time(w, config)
        exact = recommend_exhaustive(w, spaces, deadline_s=deadline)
        greedy = recommend_greedy(w, spaces, deadline_s=deadline)
        assert greedy is not None
        assert greedy.evaluated_configs < exact.evaluated_configs / 3

    def test_impossible_deadline_returns_none(self, workloads):
        assert (
            recommend_greedy(workloads["EP"], _small_spaces(), deadline_s=1e-9)
            is None
        )

    def test_budget_infeasible_start_recovers(self, workloads, deadline):
        """When the maximal configuration busts the budget, the greedy
        search must still find a feasible downsized start."""
        w = workloads["blackscholes"]
        budget = PowerBudget(70.0)  # one K10 + switch-less A9s only
        rec = recommend_greedy(
            w, _small_spaces(), deadline_s=deadline * 50, budget=budget
        )
        assert rec is not None
        assert budget.fits(rec.config)

    def test_solution_meets_deadline(self, workloads, deadline):
        rec = recommend_greedy(
            workloads["blackscholes"], _small_spaces(), deadline_s=deadline
        )
        assert rec is not None
        assert rec.evaluation.tp_s <= deadline

    def test_matches_exhaustive_under_power_budget(self, workloads, deadline):
        """With a binding power budget the greedy descent still lands on
        (or within 2% of) the exhaustive optimum."""
        w = workloads["blackscholes"]
        budget = PowerBudget(100.0)  # forces the budget-recovery path
        exact = recommend_exhaustive(
            w, _small_spaces(), deadline_s=deadline * 50, budget=budget
        )
        greedy = recommend_greedy(
            w, _small_spaces(), deadline_s=deadline * 50, budget=budget
        )
        assert exact is not None and greedy is not None
        assert budget.fits(greedy.config)
        assert greedy.evaluation.energy_j == pytest.approx(
            exact.evaluation.energy_j, rel=0.02
        )

    def test_never_evaluates_a_configuration_twice(self, workloads, monkeypatch):
        """Regression: configurations rejected during budget recovery must
        hit the memo when the descent meets them again, and
        ``evaluated_configs`` reports distinct configurations."""
        from repro.model.time_model import execution_time

        w = workloads["blackscholes"]
        spaces = _small_spaces()
        maximal = ClusterConfiguration.mix({"A9": 3, "K10": 2})
        deadline = 3.0 * execution_time(w, maximal)
        seen = []
        real = search_module.evaluate_configuration_cached

        def counting(workload, config):
            seen.append(config)
            return real(workload, config)

        monkeypatch.setattr(
            search_module, "evaluate_configuration_cached", counting
        )
        rec = recommend_greedy(
            w, spaces, deadline_s=deadline, budget=PowerBudget(60.0)
        )
        assert rec is not None
        assert len(seen) == len(set(seen)), "a configuration was re-evaluated"
        assert rec.evaluated_configs == len(seen)


class TestNeighbourMoves:
    def test_dvfs_step_survives_float_jitter(self, workloads):
        """Regression: the DVFS shrink move must not require the group's
        frequency to be bit-identical to the space's table entry."""
        spaces = _small_spaces()
        freqs = spaces[0].frequencies_hz
        jittered = freqs[-1] * (1.0 + 1e-12)  # passes the spec's 1e-9 check
        config = ClusterConfiguration(
            groups=(NodeGroup(a9(), 2, a9().cores, jittered),)
        )
        moves = _neighbours(config, spaces)
        stepped = [
            m
            for m in moves
            if m.groups[0].frequency_hz == freqs[-2]
            and m.groups[0].count == 2
            and m.groups[0].cores == a9().cores
        ]
        assert stepped, "no DVFS down-step offered for a jittered frequency"
