"""Tests for cluster configurations and the configuration space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.configuration import (
    ClusterConfiguration,
    NodeGroup,
    TypeSpace,
    count_configurations,
    enumerate_configurations,
)
from repro.errors import ConfigurationError
from repro.hardware.specs import a9, get_node_spec, k10


class TestNodeGroup:
    def test_defaults_to_full_throttle(self):
        g = NodeGroup.of("A9", 3)
        assert g.cores == 4
        assert g.frequency_hz == a9().fmax_hz

    def test_custom_operating_point(self):
        spec = k10()
        g = NodeGroup.of(spec, 2, cores=3, frequency_hz=spec.fmin_hz)
        assert g.cores == 3
        assert g.frequency_hz == spec.fmin_hz

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeGroup.of("A9", 0)

    def test_invalid_operating_point_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeGroup.of("A9", 1, cores=5)
        with pytest.raises(ConfigurationError):
            NodeGroup.of("A9", 1, frequency_hz=3e9)

    def test_group_powers(self):
        g = NodeGroup.of("K10", 4)
        assert g.nameplate_peak_w == pytest.approx(240.0)
        assert g.idle_w == pytest.approx(180.0)

    def test_str(self):
        assert "2 A9" in str(NodeGroup.of("A9", 2))


class TestClusterConfiguration:
    def test_mix_constructor(self):
        c = ClusterConfiguration.mix({"A9": 64, "K10": 8})
        assert c.count_of("A9") == 64
        assert c.count_of("K10") == 8
        assert c.total_nodes == 72

    def test_mix_drops_zero_counts(self):
        c = ClusterConfiguration.mix({"A9": 128, "K10": 0})
        assert c.is_homogeneous
        assert c.count_of("K10") == 0

    def test_empty_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfiguration.of()
        with pytest.raises(ConfigurationError):
            ClusterConfiguration.mix({})

    def test_duplicate_type_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfiguration.of(NodeGroup.of("A9", 1), NodeGroup.of("A9", 2))

    def test_groups_sorted_for_equality(self):
        c1 = ClusterConfiguration.of(NodeGroup.of("A9", 1), NodeGroup.of("K10", 2))
        c2 = ClusterConfiguration.of(NodeGroup.of("K10", 2), NodeGroup.of("A9", 1))
        assert c1 == c2

    def test_degree_of_heterogeneity(self):
        hetero = ClusterConfiguration.mix({"A9": 1, "K10": 1})
        assert hetero.degree_of_heterogeneity == 2
        assert not hetero.is_homogeneous

    def test_idle_power_matches_paper_quotes(self):
        """720 W for 16 K10, ~3x lower for 128 A9 (Section III-C)."""
        k10_cluster = ClusterConfiguration.mix({"K10": 16})
        a9_cluster = ClusterConfiguration.mix({"A9": 128})
        assert k10_cluster.idle_w == pytest.approx(720.0)
        assert a9_cluster.idle_w == pytest.approx(230.4)
        assert k10_cluster.idle_w / a9_cluster.idle_w == pytest.approx(3.125)

    def test_label(self):
        c = ClusterConfiguration.mix({"A9": 32, "K10": 12})
        assert c.label() == "32 A9 : 12 K10"

    def test_group_lookup(self):
        c = ClusterConfiguration.mix({"A9": 4})
        assert c.group_for("A9").count == 4
        with pytest.raises(ConfigurationError):
            c.group_for("K10")


class TestTypeSpace:
    def test_choices_count(self):
        space = TypeSpace(a9(), n_max=10)
        assert space.choices == 10 * 4 * 5  # n * cores * freqs

    def test_restricted_space(self):
        spec = a9()
        space = TypeSpace(spec, n_max=3, c_max=2, frequencies_hz=(spec.fmax_hz,))
        assert space.choices == 3 * 2 * 1

    def test_groups_enumeration_size(self):
        space = TypeSpace(a9(), n_max=2, c_max=2)
        assert len(list(space.groups())) == 2 * 2 * 5

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            TypeSpace(a9(), n_max=0)
        with pytest.raises(ConfigurationError):
            TypeSpace(a9(), n_max=1, c_max=5)
        with pytest.raises(ConfigurationError):
            TypeSpace(a9(), n_max=1, frequencies_hz=(123.0,))


class TestConfigurationSpace:
    def test_paper_footnote4_count(self):
        """The paper's example: 10 ARM + 10 AMD -> 36,380 configurations."""
        spaces = [TypeSpace(a9(), n_max=10), TypeSpace(k10(), n_max=10)]
        assert count_configurations(spaces) == 36_380

    def test_paper_footnote4_subcounts(self):
        arm_only = count_configurations([TypeSpace(a9(), n_max=10)])
        amd_only = count_configurations([TypeSpace(k10(), n_max=10)])
        assert arm_only == 200
        assert amd_only == 180

    def test_enumeration_matches_closed_form_small(self):
        spaces = [
            TypeSpace(a9(), n_max=2, c_max=2),
            TypeSpace(k10(), n_max=2, c_max=3),
        ]
        configs = list(enumerate_configurations(spaces))
        assert len(configs) == count_configurations(spaces)

    def test_enumeration_unique(self):
        spaces = [
            TypeSpace(a9(), n_max=2, c_max=2),
            TypeSpace(k10(), n_max=1, c_max=2),
        ]
        configs = list(enumerate_configurations(spaces))
        assert len(set(configs)) == len(configs)

    def test_enumeration_covers_subsets(self):
        spaces = [
            TypeSpace(a9(), n_max=1, c_max=1, frequencies_hz=(a9().fmax_hz,)),
            TypeSpace(k10(), n_max=1, c_max=1, frequencies_hz=(k10().fmax_hz,)),
        ]
        configs = list(enumerate_configurations(spaces))
        kinds = {tuple(g.spec.name for g in c.groups) for c in configs}
        assert kinds == {("A9",), ("K10",), ("A9", "K10")}

    def test_empty_spaces_rejected(self):
        with pytest.raises(ConfigurationError):
            count_configurations([])
        with pytest.raises(ConfigurationError):
            list(enumerate_configurations([]))

    def test_duplicate_types_rejected(self):
        with pytest.raises(ConfigurationError):
            list(
                enumerate_configurations(
                    [TypeSpace(a9(), n_max=1), TypeSpace(a9(), n_max=1)]
                )
            )

    @given(
        n1=st.integers(1, 4),
        c1=st.integers(1, 4),
        n2=st.integers(1, 4),
        c2=st.integers(1, 6),
    )
    @settings(max_examples=15, deadline=None)
    def test_count_formula_property(self, n1, c1, n2, c2):
        """Property: enumeration size always equals the closed form."""
        spaces = [
            TypeSpace(a9(), n_max=n1, c_max=c1),
            TypeSpace(k10(), n_max=n2, c_max=c2),
        ]
        assert sum(1 for _ in enumerate_configurations(spaces)) == count_configurations(spaces)
