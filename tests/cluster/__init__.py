"""Test package."""
