"""Tests for power-budget arithmetic and the paper's cluster mixes."""

import pytest

from repro.cluster.budget import (
    PowerBudget,
    budget_mixes,
    substitution_ratio,
    switch_power_w,
)
from repro.cluster.configuration import ClusterConfiguration
from repro.errors import ConfigurationError


class TestSwitchPower:
    def test_zero_nodes_no_switch(self):
        assert switch_power_w(0) == 0.0

    def test_one_switch_per_eight(self):
        assert switch_power_w(8) == 20.0
        assert switch_power_w(9) == 40.0
        assert switch_power_w(128) == 320.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            switch_power_w(-1)
        with pytest.raises(ConfigurationError):
            switch_power_w(8, nodes_per_switch=0)


class TestSubstitutionRatio:
    def test_paper_ratio_is_eight(self):
        """Footnote 3: 60 W / (5 W + 20 W / 8) = 8."""
        assert substitution_ratio() == pytest.approx(8.0)

    def test_without_switch_is_twelve(self):
        """Footnote 3's first step: 60 W / 5 W = 12 A9 per K10."""
        assert substitution_ratio(switch_w=0.0) == pytest.approx(12.0)


class TestPowerBudget:
    def test_max_brawny_nodes(self):
        assert PowerBudget(1000.0).max_nodes("K10") == 16

    def test_max_wimpy_with_switch(self):
        # 1000 / (5 + 2.5) = 133.3 -> 133.
        assert PowerBudget(1000.0).max_nodes("A9", with_switch=True) == 133

    def test_fits(self):
        budget = PowerBudget(1000.0)
        assert budget.fits(ClusterConfiguration.mix({"A9": 128}))
        assert not budget.fits(ClusterConfiguration.mix({"K10": 17}))

    def test_provisioned_peak_includes_switches(self):
        budget = PowerBudget(1000.0)
        config = ClusterConfiguration.mix({"A9": 64, "K10": 8})
        assert budget.provisioned_peak_w(config) == pytest.approx(
            64 * 5 + 8 * 60 + 160.0
        )

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerBudget(0.0)


class TestBudgetMixes:
    def test_paper_mixes(self):
        """The exact five mixes of Figures 7/8."""
        labels = [c.label() for c in budget_mixes(1000.0)]
        assert labels == [
            "16 K10",
            "32 A9 : 12 K10",
            "64 A9 : 8 K10",
            "96 A9 : 4 K10",
            "128 A9",
        ]

    def test_all_mixes_within_budget(self):
        budget = PowerBudget(1000.0)
        for config in budget_mixes(1000.0):
            assert budget.fits(config)

    def test_equal_provisioned_peak(self):
        """Every mix trades at exactly the substitution ratio: equal
        provisioned peak (960 W for the paper's 1 kW budget)."""
        budget = PowerBudget(1000.0)
        for config in budget_mixes(1000.0):
            assert budget.provisioned_peak_w(config) == pytest.approx(960.0)

    def test_custom_step_count(self):
        mixes = budget_mixes(1000.0, steps=3)
        assert [c.count_of("K10") for c in mixes] == [16, 8, 0]

    def test_indivisible_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            budget_mixes(1000.0, steps=4)  # 16 not divisible by 3

    def test_too_small_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            budget_mixes(50.0)  # cannot fit one K10

    def test_minimum_steps(self):
        with pytest.raises(ConfigurationError):
            budget_mixes(1000.0, steps=1)

    def test_larger_budget_scales(self):
        mixes = budget_mixes(2000.0, steps=4)  # k_max = 33, 3 equal steps
        assert [c.count_of("K10") for c in mixes] == [33, 22, 11, 0]
        assert mixes[-1].count_of("A9") == 8 * 33
