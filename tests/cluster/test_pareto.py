"""Tests for the energy-deadline Pareto frontier and the sweet region."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.configuration import ClusterConfiguration, TypeSpace
from repro.cluster.pareto import (
    TIME_TIE_REL,
    ConfigEvaluation,
    evaluate_configuration,
    evaluate_space,
    pareto_frontier,
    sweet_region,
    sweet_spot,
)
from repro.errors import ModelError
from repro.hardware.specs import a9, k10


def _eval(tp, energy):
    return ConfigEvaluation(
        config=ClusterConfiguration.mix({"A9": 1}),
        workload_name="w",
        tp_s=tp,
        energy_j=energy,
        peak_power_w=1.0,
        idle_power_w=1.0,
    )


class TestDominance:
    def test_strictly_better_dominates(self):
        assert _eval(1.0, 1.0).dominates(_eval(2.0, 2.0))

    def test_equal_does_not_dominate(self):
        assert not _eval(1.0, 1.0).dominates(_eval(1.0, 1.0))

    def test_tradeoff_does_not_dominate(self):
        assert not _eval(1.0, 3.0).dominates(_eval(2.0, 2.0))
        assert not _eval(3.0, 1.0).dominates(_eval(2.0, 2.0))

    def test_better_on_one_axis_dominates(self):
        assert _eval(1.0, 2.0).dominates(_eval(1.0, 3.0))

    def test_edp(self):
        assert _eval(2.0, 3.0).edp == pytest.approx(6.0)


class TestParetoFrontier:
    def test_removes_dominated(self):
        evals = [_eval(1.0, 5.0), _eval(2.0, 3.0), _eval(2.5, 4.0), _eval(3.0, 1.0)]
        frontier = pareto_frontier(evals)
        assert [(e.tp_s, e.energy_j) for e in frontier] == [
            (1.0, 5.0), (2.0, 3.0), (3.0, 1.0),
        ]

    def test_time_ties_keep_cheapest(self):
        frontier = pareto_frontier([_eval(1.0, 5.0), _eval(1.0, 4.0)])
        assert len(frontier) == 1
        assert frontier[0].energy_j == 4.0

    def test_time_ties_tolerate_float_jitter(self):
        """Regression: equal-time detection must not use exact equality.

        Two configurations whose times differ only by round-off (well below
        TIME_TIE_REL) are the same operating point; the frontier must keep
        only the cheaper one instead of listing the slower-and-pricier twin.
        """
        jittered = 1.0 * (1.0 + 1e-13)
        frontier = pareto_frontier([_eval(1.0, 5.0), _eval(jittered, 4.0)])
        assert len(frontier) == 1
        assert frontier[0].energy_j == 4.0

    def test_time_gaps_above_tolerance_survive(self):
        """Distinct times just above the tie tolerance remain separate."""
        apart = 1.0 * (1.0 + 1e-6)
        frontier = pareto_frontier([_eval(1.0, 5.0), _eval(apart, 4.0)])
        assert len(frontier) == 2

    def test_empty_input(self):
        assert pareto_frontier([]) == []

    def test_energy_strictly_decreasing_along_frontier(self):
        evals = [_eval(float(i), 10.0 - i + (i % 2)) for i in range(1, 10)]
        frontier = pareto_frontier(evals)
        energies = [e.energy_j for e in frontier]
        assert energies == sorted(energies, reverse=True)
        assert len(set(energies)) == len(energies)

    def test_no_frontier_point_dominated(self):
        evals = [_eval(t, e) for t, e in [(1, 9), (2, 7), (3, 8), (4, 3), (5, 5)]]
        frontier = pareto_frontier(evals)
        for a in frontier:
            assert not any(b.dominates(a) for b in evals)

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100.0), st.floats(0.1, 100.0)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_frontier_property(self, points):
        """Property: every input is dominated by or on the frontier, and no
        frontier point dominates another."""
        evals = [_eval(t, e) for t, e in points]
        frontier = pareto_frontier(evals)
        assert frontier
        for ev in evals:
            # A frontier point covers ev when it dominates it outright or
            # sits at the same time (within the tie tolerance) at no more
            # energy — tolerance-collapsed near-ties count as covered.
            assert any(
                f.dominates(ev)
                or (
                    math.isclose(f.tp_s, ev.tp_s, rel_tol=TIME_TIE_REL, abs_tol=0.0)
                    and f.energy_j <= ev.energy_j
                )
                for f in frontier
            )
        for i, f1 in enumerate(frontier):
            for f2 in frontier[i + 1:]:
                assert not f1.dominates(f2)
                assert not f2.dominates(f1)


class TestSweetRegion:
    def test_region_respects_deadline(self):
        evals = [_eval(1.0, 5.0), _eval(2.0, 3.0), _eval(3.0, 1.0)]
        region = sweet_region(evals, deadline_s=2.5)
        assert [e.tp_s for e in region] == [1.0, 2.0]

    def test_sweet_spot_is_min_energy_in_deadline(self):
        evals = [_eval(1.0, 5.0), _eval(2.0, 3.0), _eval(3.0, 1.0)]
        spot = sweet_spot(evals, deadline_s=2.5)
        assert spot is not None
        assert spot.energy_j == 3.0

    def test_no_feasible_configuration(self):
        evals = [_eval(5.0, 1.0)]
        assert sweet_region(evals, deadline_s=1.0) == []
        assert sweet_spot(evals, deadline_s=1.0) is None

    def test_invalid_deadline(self):
        with pytest.raises(ModelError):
            sweet_region([_eval(1.0, 1.0)], deadline_s=0.0)


class TestModelIntegration:
    def test_evaluate_configuration_consistent(self, workloads, small_mix):
        from repro.model.energy_model import job_energy
        from repro.model.time_model import execution_time

        w = workloads["EP"]
        ev = evaluate_configuration(w, small_mix)
        assert ev.tp_s == pytest.approx(execution_time(w, small_mix))
        assert ev.energy_j == pytest.approx(job_energy(w, small_mix).e_total_j)
        assert ev.idle_power_w == pytest.approx(small_mix.idle_w)

    def test_evaluate_space_covers_enumeration(self, workloads):
        spaces = [
            TypeSpace(a9(), n_max=2, c_max=1, frequencies_hz=(a9().fmax_hz,)),
            TypeSpace(k10(), n_max=2, c_max=1, frequencies_hz=(k10().fmax_hz,)),
        ]
        evals = evaluate_space(workloads["EP"], spaces)
        assert len(evals) == 8  # 2*2 mixes + 2 + 2 homogeneous

    def test_frontier_of_real_space_nonempty(self, workloads):
        spaces = [
            TypeSpace(a9(), n_max=4), TypeSpace(k10(), n_max=2),
        ]
        evals = evaluate_space(workloads["blackscholes"], spaces)
        frontier = pareto_frontier(evals)
        assert 1 <= len(frontier) < len(evals)

    def test_paper_sublinear_mixes_trade_time_for_energy(self, workloads):
        """Fewer K10s: slower but cheaper (the Figure 9 story)."""
        w = workloads["EP"]
        big = evaluate_configuration(w, ClusterConfiguration.mix({"A9": 25, "K10": 10}))
        small = evaluate_configuration(w, ClusterConfiguration.mix({"A9": 25, "K10": 5}))
        assert small.tp_s > big.tp_s
        assert small.energy_j < big.energy_j
