"""Tests for figure data containers and exports."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.viz.series import Figure, Series


class TestSeries:
    def test_construction(self):
        s = Series("a", [1, 2, 3], [4, 5, 6])
        assert len(s) == 3
        np.testing.assert_array_equal(s.x, [1, 2, 3])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            Series("a", [1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            Series("a", [], [])


class TestFigure:
    def _figure(self):
        fig = Figure(title="T", xlabel="x", ylabel="y")
        fig.add("one", [1, 2, 3], [10, 20, 30])
        fig.add("two", [1, 2], [5, 6])
        return fig

    def test_add_chains(self):
        fig = Figure(title="T", xlabel="x", ylabel="y")
        assert fig.add("s", [1], [2]) is fig

    def test_require_series(self):
        fig = self._figure()
        assert fig.require_series("one").label == "one"
        with pytest.raises(ReproError):
            fig.require_series("three")

    def test_csv_layout(self):
        csv = self._figure().to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == '"one [x]","one [y]","two [x]","two [y]"'
        assert lines[1].split(",") == ["1", "10", "1", "5"]
        # Shorter series pads with empties.
        assert lines[3].split(",") == ["3", "30", "", ""]

    def test_csv_requires_series(self):
        with pytest.raises(ReproError):
            Figure(title="T", xlabel="x", ylabel="y").to_csv()

    def test_gnuplot_script(self):
        gp = self._figure().to_gnuplot("data.csv")
        assert "set title 'T'" in gp
        assert "using 1:2" in gp
        assert "using 3:4" in gp
        assert "'data.csv'" in gp

    def test_gnuplot_log_axes(self):
        fig = Figure(title="T", xlabel="x", ylabel="y", logx=True, logy=True)
        fig.add("s", [1], [1])
        gp = fig.to_gnuplot()
        assert "set logscale x" in gp
        assert "set logscale y" in gp

    def test_save_writes_files(self, tmp_path):
        csv_path, gp_path = self._figure().save(tmp_path, "fig1")
        assert csv_path.exists()
        assert gp_path.exists()
        assert "one [x]" in csv_path.read_text()
        assert csv_path.name in gp_path.read_text()
