"""Tests for ASCII chart rendering."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.viz.ascii import render_figure
from repro.viz.series import Figure


def _figure(logy=False, logx=False):
    fig = Figure(title="Demo", xlabel="u", ylabel="p", logx=logx, logy=logy)
    x = np.linspace(1, 10, 10)
    fig.add("line", x, 2 * x)
    fig.add("flat", x, np.full(10, 5.0))
    return fig


class TestRenderFigure:
    def test_contains_title_and_legend(self):
        out = render_figure(_figure())
        assert "Demo" in out
        assert "* line" in out
        assert "o flat" in out

    def test_axis_labels_present(self):
        out = render_figure(_figure())
        assert "x: u" in out
        assert "y: p" in out

    def test_dimensions_respected(self):
        out = render_figure(_figure(), width=40, height=10)
        body = [l for l in out.splitlines() if "|" in l]
        assert len(body) == 10

    def test_log_axes_render(self):
        out = render_figure(_figure(logy=True, logx=True))
        assert "Demo" in out

    def test_log_axis_rejects_nonpositive(self):
        fig = Figure(title="T", xlabel="x", ylabel="y", logy=True)
        fig.add("s", [1, 2], [0.0, 1.0])
        with pytest.raises(ReproError):
            render_figure(fig)

    def test_empty_figure_rejected(self):
        with pytest.raises(ReproError):
            render_figure(Figure(title="T", xlabel="x", ylabel="y"))

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ReproError):
            render_figure(_figure(), width=5, height=3)

    def test_constant_series_renders(self):
        fig = Figure(title="T", xlabel="x", ylabel="y")
        fig.add("c", [1, 2, 3], [5, 5, 5])
        out = render_figure(fig)
        assert "c" in out

    def test_single_point_series(self):
        fig = Figure(title="T", xlabel="x", ylabel="y")
        fig.add("p", [1], [1])
        assert "p" in render_figure(fig)

    def test_markers_cycle_beyond_ten_series(self):
        fig = Figure(title="T", xlabel="x", ylabel="y")
        for i in range(12):
            fig.add(f"s{i}", [0, 1], [i, i + 1])
        out = render_figure(fig)
        assert "s11" in out


class TestRenderSparkline:
    def test_monotone_series_rises_left_to_right(self):
        from repro.viz.ascii import render_sparkline

        out = render_sparkline([0, 1, 2, 3, 4])
        assert len(out) == 5
        assert out[0] == " " and out[-1] == "@"

    def test_flat_series_uses_mid_ramp(self):
        from repro.viz.ascii import render_sparkline

        out = render_sparkline([7.0, 7.0, 7.0])
        assert len(set(out)) == 1 and out[0] not in (" ", "@")

    def test_keeps_newest_width_points(self):
        from repro.viz.ascii import render_sparkline

        # Oldest points (the high plateau) fall off the left edge.
        out = render_sparkline([9, 9, 9, 0, 1, 2], width=3)
        assert len(out) == 3
        assert out[0] == " " and out[-1] == "@"

    def test_nan_draws_as_question_mark(self):
        from repro.viz.ascii import render_sparkline

        out = render_sparkline([0.0, float("nan"), 1.0])
        assert out[1] == "?"
        assert out[0] == " " and out[2] == "@"

    def test_all_nan_is_all_question_marks(self):
        from repro.viz.ascii import render_sparkline

        assert render_sparkline([float("nan")] * 4) == "????"

    def test_invalid_inputs(self):
        from repro.viz.ascii import render_sparkline

        with pytest.raises(ReproError):
            render_sparkline([])
        with pytest.raises(ReproError):
            render_sparkline([1.0], width=0)
        with pytest.raises(ReproError):
            render_sparkline([[1.0, 2.0]])
