"""Test package."""
