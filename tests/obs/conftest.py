"""Fixtures for the observability suite.

The metrics registry and tracer are process-wide singletons; every test
here runs against a clean, disabled pair and is guaranteed to leave them
that way, so obs tests cannot bleed state into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.obs import get_registry, get_tracer


@pytest.fixture(autouse=True)
def _clean_obs_singletons():
    registry = get_registry()
    tracer = get_tracer()
    registry.disable()
    registry.reset(clear=True)
    tracer.disable()
    tracer.reset()
    yield
    registry.disable()
    registry.reset(clear=True)
    tracer.disable()
    tracer.reset()
