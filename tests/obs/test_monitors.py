"""Tests for the claim monitors: bands, evaluation, recording, report."""

from __future__ import annotations

import math

import pytest

from repro.errors import ReproError
from repro.obs.ledger import Ledger
from repro.obs.monitors import (
    MONITORS,
    Band,
    ClaimMonitor,
    monitor_names,
    render_monitor_report,
    run_monitors,
)


class TestBand:
    def test_closed_interval(self):
        band = Band(0.0, 0.5)
        assert band.contains(0.0)
        assert band.contains(0.5)
        assert not band.contains(0.51)
        assert not band.contains(-0.01)

    def test_nan_never_passes(self):
        assert not Band(-math.inf, math.inf).contains(math.nan)

    def test_str_forms(self):
        assert str(Band(1.0, 1.0)) == "== 1"
        assert str(Band(-math.inf, 0.05)) == "<= 0.05"
        assert str(Band(0.9, math.inf)) == ">= 0.9"
        assert str(Band(0.9, 1.3)) == "[0.9, 1.3]"


def _fake(name="fake", scalars=None, bands=None):
    return ClaimMonitor(
        name=name,
        claim="a fake claim for the framework tests",
        derive=lambda seed: dict(scalars or {"metric": 1.0}),
        bands=dict(bands or {"metric": Band(0.5, 1.5)}),
    )


class TestEvaluate:
    def test_passing_monitor(self):
        result = _fake().evaluate(seed=1)
        assert result.passed
        assert result.failed_checks == ()
        assert result.scalars == {"metric": 1.0}
        assert result.seed == 1

    def test_failing_monitor_reports_the_check(self):
        result = _fake(scalars={"metric": 9.0}).evaluate()
        assert not result.passed
        (failed,) = result.failed_checks
        assert failed.scalar == "metric"
        assert failed.value == 9.0

    def test_missing_banded_scalar_fails_as_nan(self):
        # A derivation that stops computing its number must go red, not
        # silently green.
        result = _fake(scalars={"other": 1.0}).evaluate()
        assert not result.passed
        (failed,) = result.failed_checks
        assert math.isnan(failed.value)


class TestRegistry:
    def test_the_eight_claims_are_registered(self):
        assert monitor_names() == (
            "md1-mc-agreement",
            "table6-ppr-winners",
            "fig9-mix-contrast",
            "pareto-sublinearity",
            "scheduler-oracle-gap",
            "robustness-heavytail-gap",
            "robustness-bursty-contrast",
            "serving-slo",
        )

    def test_every_monitor_has_bands_and_claim(self):
        for monitor in MONITORS.values():
            assert monitor.bands
            assert monitor.claim


class TestRunMonitors:
    @pytest.fixture()
    def fake_registry(self, monkeypatch):
        fake = _fake()
        monkeypatch.setattr(
            "repro.obs.monitors.MONITORS", {fake.name: fake}
        )
        return fake

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            run_monitors(["no-such-monitor"], record=False)

    def test_records_to_the_ledger(self, fake_registry, tmp_path):
        ledger = Ledger(tmp_path / "runs")
        (result,) = run_monitors(ledger=ledger)
        assert result.passed
        (rec,) = ledger.records()
        assert rec.name == "monitor/fake"
        assert rec.kind == "monitor"
        assert rec.scalars == {"metric": 1.0}
        assert rec.exit_code == 0

    def test_failed_monitor_records_exit_code_1(self, monkeypatch, tmp_path):
        fake = _fake(scalars={"metric": 9.0})
        monkeypatch.setattr("repro.obs.monitors.MONITORS", {fake.name: fake})
        ledger = Ledger(tmp_path / "runs")
        run_monitors(ledger=ledger)
        assert ledger.records()[0].exit_code == 1

    def test_record_false_skips_the_ledger(self, fake_registry, tmp_path):
        ledger = Ledger(tmp_path / "runs")
        run_monitors(ledger=ledger, record=False)
        assert len(ledger) == 0

    def test_disable_switch_skips_the_ledger(
        self, fake_registry, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        ledger = Ledger(tmp_path / "runs")
        run_monitors(ledger=ledger)
        assert len(ledger) == 0


class TestRenderReport:
    def test_green_report(self):
        text = render_monitor_report([_fake().evaluate()])
        assert "ok" in text
        assert "all green" in text
        assert "metric=1 in [0.5, 1.5]" in text

    def test_red_report_names_the_claim(self):
        text = render_monitor_report([_fake(scalars={"metric": 9.0}).evaluate()])
        assert "FAIL" in text
        assert "1 RED" in text
        assert "claim:" in text


class TestPaperClaims:
    """The cheap deterministic monitors, evaluated for real.

    The full five-monitor sweep (including the Monte-Carlo and scheduler
    replays) runs as ``repro obs check`` in CI; here we pin the two
    sub-second derivations so a model change that flips a claim fails
    close to its source.
    """

    def test_table6_ppr_winners_green(self):
        result = MONITORS["table6-ppr-winners"].evaluate()
        assert result.passed
        assert result.scalars["match_fraction"] == 1.0
        assert result.scalars["n_workloads"] == 6.0

    def test_pareto_sublinearity_green(self):
        result = MONITORS["pareto-sublinearity"].evaluate()
        assert result.passed
        assert result.scalars["monotone"] == 1.0
        # The crossover ordering the claim rests on.
        assert (
            result.scalars["crossover_25_5"]
            < result.scalars["crossover_25_7"]
            < result.scalars["crossover_25_8"]
            < result.scalars["crossover_25_10"]
        )

    def test_serving_slo_green(self):
        result = MONITORS["serving-slo"].evaluate()
        assert result.passed
        assert result.scalars["completed_fraction"] == 1.0
        # Every cache-hit answer re-derived offline and compared float
        # for float — the serving bit-identity contract.
        assert result.scalars["bit_identical_fraction"] == 1.0
        assert result.scalars["checked"] > 0.0
        assert result.scalars["p95_latency_s"] <= 0.25
