"""Tests for the shared benchmark timer and the BENCH envelope."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.obs.timer import (
    BENCH_SCHEMA,
    Timing,
    bench_envelope,
    measure,
    metrics_sidecar_path,
    timed,
    write_bench_json,
)


class TestMeasure:
    def test_runs_warmup_plus_repeats(self):
        calls = []
        result, timing = measure(
            lambda: calls.append(1) or len(calls), repeats=3, warmup=2
        )
        assert len(calls) == 5
        assert result == 5  # last run's return value
        assert timing.repeats == 3
        assert timing.warmup == 2

    def test_best_and_mean(self):
        t = Timing(times_s=(3.0, 1.0, 2.0), warmup=0)
        assert t.best_s == 1.0
        assert t.mean_s == pytest.approx(2.0)
        assert t.repeats == 3

    def test_timings_are_positive(self):
        _, timing = measure(lambda: sum(range(100)), repeats=2, warmup=0)
        assert all(t >= 0 for t in timing.times_s)

    def test_validation(self):
        with pytest.raises(ReproError):
            measure(lambda: None, repeats=0)
        with pytest.raises(ReproError):
            measure(lambda: None, warmup=-1)


class TestTimed:
    def test_elapsed_freezes_after_the_block(self):
        with timed() as elapsed:
            sum(range(1000))
            inside = elapsed()
        frozen = elapsed()
        assert inside >= 0
        assert frozen >= inside
        assert elapsed() == frozen

    def test_elapsed_survives_exceptions(self):
        with pytest.raises(ValueError):
            with timed() as elapsed:
                raise ValueError
        assert elapsed() >= 0


class TestEnvelope:
    def test_shape(self):
        env = bench_envelope(
            "demo", {"n": 3}, {"total": 1.5}, extra={"k": "v"}
        )
        assert env == {
            "schema": BENCH_SCHEMA,
            "benchmark": "demo",
            "params": {"n": 3},
            "timings_s": {"total": 1.5},
            "extra": {"k": "v"},
        }

    def test_empty_name_rejected(self):
        with pytest.raises(ReproError):
            bench_envelope("", {}, {})

    def test_sidecar_path(self):
        assert metrics_sidecar_path("BENCH_mc.json") == Path(
            "BENCH_mc.metrics.json"
        )
        assert metrics_sidecar_path(Path("/x/BENCH_a.json")) == Path(
            "/x/BENCH_a.metrics.json"
        )


class TestWriteBenchJson:
    def test_metrics_split_into_sidecar(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        env = bench_envelope(
            "demo", {}, {"total": 1.0}, metrics={"c": {"kind": "counter"}}
        )
        sidecar = write_bench_json(path, env)
        main_doc = json.loads(path.read_text(encoding="utf-8"))
        assert "metrics" not in main_doc
        assert main_doc["schema"] == BENCH_SCHEMA
        assert sidecar == tmp_path / "BENCH_demo.metrics.json"
        assert json.loads(sidecar.read_text(encoding="utf-8")) == {
            "c": {"kind": "counter"}
        }
        # The caller's dict is not mutated.
        assert "metrics" in env

    def test_no_metrics_no_sidecar(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        assert write_bench_json(path, bench_envelope("demo", {}, {})) is None
        assert not (tmp_path / "BENCH_demo.metrics.json").exists()
