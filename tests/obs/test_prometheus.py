"""Prometheus text exposition-format compliance of ``to_prometheus``.

The exposition format (Prometheus docs, "text-based format") requires:

* every metric family is announced by ``# HELP <name> <help>`` and
  ``# TYPE <name> <type>`` lines before its samples;
* HELP text escapes backslash (``\\`` -> ``\\\\``) and line feed
  (LF -> ``\\n``);
* label *values* escape backslash, double quote and line feed; label
  names and metric names are never escaped.

These rules matter the moment a scrape target carries user-controlled
strings — a workload name with a quote, a path with backslashes — so the
escaping is pinned here character by character.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry


def _lines(registry: MetricsRegistry):
    return registry.to_prometheus().splitlines()


class TestFamilyHeaders:
    def test_help_and_type_precede_samples(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("jobs_total", help="jobs dispatched").inc(3)
        lines = _lines(reg)
        assert lines[0] == "# HELP jobs_total jobs dispatched"
        assert lines[1] == "# TYPE jobs_total counter"
        assert lines[2] == "jobs_total 3"

    def test_help_emitted_even_when_empty(self):
        # The spec allows empty help but the family announcement itself
        # must still be present for every exposed metric name.
        reg = MetricsRegistry(enabled=True)
        reg.gauge("queue_depth").set(5)
        lines = _lines(reg)
        assert lines[0] == "# HELP queue_depth "
        assert lines[1] == "# TYPE queue_depth gauge"

    def test_headers_once_per_family_across_label_series(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("hits_total", help="h", labels={"node": "A9"}).inc()
        reg.counter("hits_total", help="h", labels={"node": "K10"}).inc()
        text = reg.to_prometheus()
        assert text.count("# HELP hits_total") == 1
        assert text.count("# TYPE hits_total") == 1

    def test_histogram_family_type(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat_s", buckets=(0.1, 1.0), help="latency")
        h.observe(0.05)
        lines = _lines(reg)
        assert "# TYPE lat_s histogram" in lines
        # Samples use the _bucket/_sum/_count suffixes, not bare name.
        assert any(line.startswith("lat_s_bucket{") for line in lines)
        assert any(line.startswith("lat_s_sum") for line in lines)
        assert any(line.startswith("lat_s_count") for line in lines)

    def test_empty_registry_exposes_nothing(self):
        assert MetricsRegistry(enabled=True).to_prometheus() == ""


class TestHelpEscaping:
    def test_backslash_and_newline(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g", help="path C:\\tmp\nsecond line").set(1)
        lines = _lines(reg)
        assert lines[0] == "# HELP g path C:\\\\tmp\\nsecond line"
        # The physical line count proves the LF never leaked through.
        assert len(lines) == 3

    def test_quotes_not_escaped_in_help(self):
        # Per the spec only backslash and LF are escaped in HELP text.
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g", help='say "hi"').set(1)
        assert _lines(reg)[0] == '# HELP g say "hi"'


class TestLabelValueEscaping:
    def test_double_quote(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g", labels={"w": 'x"y'}).set(1)
        assert 'g{w="x\\"y"} 1' in _lines(reg)

    def test_backslash(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g", labels={"w": "a\\b"}).set(1)
        assert 'g{w="a\\\\b"} 1' in _lines(reg)

    def test_line_feed(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g", labels={"w": "a\nb"}).set(1)
        assert 'g{w="a\\nb"} 1' in _lines(reg)

    def test_backslash_escaped_before_quote(self):
        # The dangerous composition: a literal backslash followed by a
        # quote must render \\\" (escaped backslash, escaped quote), not
        # \\" which would terminate the label value early.
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g", labels={"w": 'a\\"'}).set(1)
        assert 'g{w="a\\\\\\""} 1' in _lines(reg)

    def test_histogram_le_label_coexists_with_escaped_labels(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat_s", buckets=(1.0,), labels={"p": 'q"r'})
        h.observe(0.5)
        text = reg.to_prometheus()
        assert 'lat_s_bucket{p="q\\"r",le="1"} 1' in text
        assert 'lat_s_bucket{p="q\\"r",le="+Inf"} 1' in text


class TestParseability:
    def test_every_sample_line_parses(self):
        # A scrape-shaped smoke test: each non-comment line must split
        # into <name-and-labels> <value> with a float-parseable value.
        reg = MetricsRegistry(enabled=True)
        reg.counter("c_total", help="things\nwith\\escapes").inc(2)
        reg.gauge("g", labels={"a": 'v"\\\n'}).set(-1.5)
        reg.histogram("h_s", buckets=(0.5, 1.5)).observe_many([0.1, 2.0])
        for line in _lines(reg):
            if line.startswith("#"):
                continue
            body, value = line.rsplit(" ", 1)
            assert body
            float(value)  # must not raise
