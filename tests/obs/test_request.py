"""Unit contracts for the request-level observability layer.

Covers :mod:`repro.obs.request` in isolation — context/stage nesting,
outcome classification, tail-based sampling, multi-window burn-rate
alerting, the flight-recorder ring and its dump documents — without
booting a service (the end-to-end wiring lives in
``tests/serve/test_request_obs.py``).
"""

from __future__ import annotations

import json
from time import perf_counter

import pytest

from repro.obs.request import (
    FLIGHT_SCHEMA,
    AlertEvent,
    BurnRateMonitor,
    FlightRecorder,
    RequestContext,
    RequestRecorder,
    TailSampler,
    classify_outcome,
    flight_chrome_trace,
    flight_document,
    list_flight_dumps,
    load_flight_dump,
    span_coverage,
)


def _ctx(rid="r-1", endpoint="/recommend", traced=True):
    return RequestContext(rid, endpoint, origin_s=perf_counter(), traced=traced)


def _finished_ctx(wall_s=0.01, status=200, **kwargs):
    ctx = _ctx(**kwargs)
    ctx.finish(status, wall_s)
    return ctx


class TestClassifyOutcome:
    @pytest.mark.parametrize(
        "status,outcome",
        [
            (200, "ok"),
            (204, "ok"),
            (301, "ok"),
            (400, "error"),
            (404, "error"),
            (500, "error"),
            (503, "shed"),
            (504, "expired"),
        ],
    )
    def test_vocabulary(self, status, outcome):
        assert classify_outcome(status) == outcome


class TestRequestContext:
    def test_stages_nest_via_path(self):
        ctx = _ctx()
        with ctx.stage("cache"):
            with ctx.stage("inner"):
                pass
        ctx.finish(200, 0.01)
        by_name = {s.name: s for s in ctx.stages}
        assert by_name["inner"].path == ("cache", "inner")
        assert by_name["cache"].path == ("cache",)

    def test_add_stage_parents_under_open_stage(self):
        # The cross-task contract: the batcher attributes queue/compute
        # time while the request coroutine awaits inside `cache`.
        ctx = _ctx()
        with ctx.stage("cache"):
            t = perf_counter()
            ctx.add_stage("batch.queue", start_s=t, wall_s=0.002)
        assert ctx.stages[0].path == ("cache", "batch.queue")

    def test_stage_set_attaches_attrs(self):
        ctx = _ctx()
        with ctx.stage("admission") as st:
            st.set(admitted=False, depth=3)
        assert ctx.stages[0].attrs == {"admitted": False, "depth": 3}

    def test_exception_annotates_the_stage(self):
        ctx = _ctx()
        with pytest.raises(ValueError):
            with ctx.stage("validate"):
                raise ValueError("boom")
        assert ctx.stages[0].attrs["error"] == "ValueError"

    def test_untraced_context_records_nothing(self):
        ctx = _ctx(traced=False)
        with ctx.stage("cache") as st:
            st.set(hit=True)  # no-op stage still accepts set()
        ctx.add_stage("batch.queue", start_s=perf_counter(), wall_s=0.1)
        assert ctx.stages == []

    def test_add_stage_after_finish_is_ignored(self):
        # A late client-side timeout must not mutate a trace already in
        # the flight ring.
        ctx = _finished_ctx()
        ctx.add_stage("batch.compute", start_s=perf_counter(), wall_s=0.1)
        assert ctx.stages == []
        assert isinstance(ctx.stage("late").__enter__(), object)

    def test_finish_seals_status_and_outcome(self):
        ctx = _finished_ctx(wall_s=0.25, status=503)
        assert (ctx.status, ctx.outcome, ctx.wall_s) == (503, "shed", 0.25)

    def test_to_dict_round_trips_through_json(self):
        ctx = _ctx()
        with ctx.stage("lookup"):
            pass
        ctx.finish(200, 0.003)
        doc = json.loads(json.dumps(ctx.to_dict()))
        assert doc["request_id"] == "r-1"
        assert doc["stages"][0]["path"] == ["lookup"]


class TestSpanCoverage:
    def test_counts_only_top_level_stages(self):
        ctx = _ctx()
        with ctx.stage("cache"):
            ctx.add_stage("batch.queue", start_s=perf_counter(), wall_s=5.0)
        ctx.finish(200, 1.0)
        doc = ctx.to_dict()
        # Force a known top-level wall: overwrite the recorded cache wall.
        doc["stages"] = [
            {"name": "cache", "path": ["cache"], "wall_s": 0.9, "t0_s": 0.0},
            {
                "name": "batch.queue",
                "path": ["cache", "batch.queue"],
                "wall_s": 5.0,
                "t0_s": 0.0,
            },
        ]
        assert span_coverage(doc) == pytest.approx(0.9)

    def test_zero_wall_is_zero_coverage(self):
        assert span_coverage({"wall_s": 0.0, "stages": []}) == 0.0


class TestTailSampler:
    def test_non_ok_outcomes_always_kept(self):
        sampler = TailSampler(0.0)
        for status, reason in ((503, "shed"), (504, "expired"), (500, "error")):
            keep, why = sampler.decide(_finished_ctx(status=status))
            assert keep and why == reason

    def test_routine_requests_sampled_at_rate(self):
        # min_window above the deque bound keeps the p99 threshold
        # unprimed, isolating the deterministic 1-in-10 routine count
        # (identical walls would otherwise all tie the p99 and be kept
        # as "slow").
        sampler = TailSampler(0.1, window=8, min_window=9)
        kept = sum(
            sampler.decide(_finished_ctx(wall_s=0.001))[0] for _ in range(100)
        )
        assert kept == 10  # deterministic 1-in-10, not a coin flip
        assert sampler.kept_by_reason == {"sampled": 10}

    def test_rate_zero_keeps_only_always_keep_classes(self):
        sampler = TailSampler(0.0)
        assert sampler.decide(_finished_ctx(wall_s=0.001)) == (False, None)
        assert sampler.decide(_finished_ctx(status=503))[0] is True

    def test_slow_tail_kept_once_threshold_primes(self):
        sampler = TailSampler(0.0, refresh_every=16, min_window=16)
        for _ in range(64):
            sampler.decide(_finished_ctx(wall_s=0.001))
        assert sampler.slow_threshold_s <= 0.001
        keep, reason = sampler.decide(_finished_ctx(wall_s=1.0))
        assert keep and reason == "slow"

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            TailSampler(1.5)


class TestBurnRateMonitor:
    def _flood(self, burn, n, t0=0.0, good=False, dt=0.01):
        alerts = []
        for i in range(n):
            event = burn.observe(t0 + i * dt, good)
            if event is not None:
                alerts.append(event)
        return alerts

    def test_all_bad_traffic_fires_once_on_rising_edge(self):
        burn = BurnRateMonitor(0.1, min_requests=20)
        alerts = self._flood(burn, 100)
        assert len(alerts) == 1
        assert burn.alert_active is True
        # burn = (bad/total)/budget = 1.0/0.05 = 20x
        assert alerts[0].fast_burn == pytest.approx(20.0)
        assert alerts[0].slo_p95_s == 0.1

    def test_no_alert_below_min_requests(self):
        burn = BurnRateMonitor(0.1, min_requests=20)
        assert self._flood(burn, 19) == []

    def test_good_traffic_never_alerts(self):
        burn = BurnRateMonitor(0.1, min_requests=20)
        assert self._flood(burn, 200, good=True) == []
        assert burn.burn_rate(burn.fast_window_s) == 0.0

    def test_alert_rearms_after_recovery(self):
        burn = BurnRateMonitor(0.1, fast_window_s=1.0, slow_window_s=2.0)
        assert len(self._flood(burn, 50, t0=0.0)) == 1
        # A quiet spell longer than the fast window drains it below
        # threshold; the next sustained burn is a new rising edge.
        self._flood(burn, 200, t0=10.0, good=True)
        assert burn.alert_active is False
        assert len(self._flood(burn, 50, t0=20.0)) == 1
        assert len(burn.alerts) == 2

    def test_mixed_traffic_burn_math(self):
        # 1 bad in 10 over a 5% budget is burn 2.0 exactly.
        burn = BurnRateMonitor(0.1)
        for i in range(10):
            burn.observe(i * 0.01, good=(i != 0))
        assert burn.burn_rate(burn.fast_window_s) == pytest.approx(2.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            BurnRateMonitor(0.1, fast_window_s=10.0, slow_window_s=5.0)
        with pytest.raises(ValueError):
            BurnRateMonitor(0.1, budget_fraction=0.0)


class TestFlightRecorder:
    def test_ring_is_bounded_and_slowest_wins(self):
        flight = FlightRecorder(4)
        for i in range(10):
            flight.record(_finished_ctx(wall_s=0.001 * i, rid=f"r-{i}"))
        assert len(flight) == 4
        slowest = flight.slowest()
        assert slowest is not None and slowest.request_id == "r-9"

    def test_dump_writes_parseable_json_and_chrome_trace(self, tmp_path):
        flight = FlightRecorder(8, directory=tmp_path)
        ctx = _ctx()
        with ctx.stage("cache"):
            pass
        ctx.finish(200, 0.01)
        flight.record(ctx)
        path = flight.dump("slo-burn", state={"note": 1})
        doc = load_flight_dump(path)
        assert doc["reason"] == "slo-burn"
        assert doc["schema"] == FLIGHT_SCHEMA
        assert doc["service"] == {"note": 1}
        assert doc["slowest"]["request_id"] == "r-1"
        trace_path = path.with_suffix("").with_suffix(".trace.json")
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        names = {e["name"] for e in trace["traceEvents"]}
        assert "cache" in names

    def test_maybe_dump_rate_limits_per_reason(self, tmp_path):
        flight = FlightRecorder(8, directory=tmp_path, min_dump_interval_s=60.0)
        flight.record(_finished_ctx())
        assert flight.maybe_dump("slo-burn") is not None
        assert flight.maybe_dump("slo-burn") is None  # same reason, limited
        assert flight.maybe_dump("http-500") is not None  # new reason passes

    def test_maybe_dump_skips_an_empty_ring(self, tmp_path):
        flight = FlightRecorder(8, directory=tmp_path)
        assert flight.maybe_dump("slo-burn") is None
        assert list_flight_dumps(tmp_path) == []

    def test_dump_appends_a_ledger_record(self, tmp_path):
        from repro.obs.ledger import default_ledger

        flight = FlightRecorder(8, directory=tmp_path)
        flight.record(_finished_ctx())
        flight.dump("http-504")
        records = default_ledger().records(name="serve/flight-dump")
        assert len(records) == 1
        assert records[0].params["reason"] == "http-504"
        assert records[0].scalars["requests"] == 1.0

    def test_list_flight_dumps_excludes_trace_sidecars(self, tmp_path):
        flight = FlightRecorder(8, directory=tmp_path)
        flight.record(_finished_ctx())
        flight.dump("slo-burn")
        dumps = list_flight_dumps(tmp_path)
        assert len(dumps) == 1
        assert not dumps[0].name.endswith(".trace.json")

    def test_load_rejects_foreign_schema(self, tmp_path):
        bogus = tmp_path / "flight-x.json"
        bogus.write_text('{"schema": "other/1"}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_flight_dump(bogus)


class TestFlightDocument:
    def test_chrome_trace_covers_requests_and_stages(self):
        ctx = _ctx()
        with ctx.stage("lookup"):
            pass
        ctx.finish(200, 0.01)
        doc = flight_document([ctx], reason="test")
        trace = flight_chrome_trace(doc)
        cats = sorted({e["cat"] for e in trace["traceEvents"]})
        assert cats == ["request", "stage"]
        assert all(e["ph"] == "X" for e in trace["traceEvents"])

    def test_alert_is_embedded(self):
        event = AlertEvent(
            kind="slo-burn-rate",
            t_s=1.0,
            fast_burn=20.0,
            slow_burn=20.0,
            fast_window_s=5.0,
            slow_window_s=30.0,
            threshold=2.0,
            slo_p95_s=0.1,
        )
        doc = flight_document([], reason="slo-burn", alert=event)
        assert doc["alert"]["fast_burn"] == 20.0
        assert doc["slowest"] is None


class TestRequestRecorder:
    def _recorder(self, tmp_path, **kwargs):
        kwargs.setdefault("slo_p95_s", 0.1)
        kwargs.setdefault("flight_dir", tmp_path)
        return RequestRecorder(**kwargs)

    def test_generated_ids_are_unique(self, tmp_path):
        rec = self._recorder(tmp_path)
        a = rec.start_request("/recommend")
        b = rec.start_request("/recommend")
        assert a.request_id != b.request_id

    def test_client_supplied_id_wins(self, tmp_path):
        rec = self._recorder(tmp_path)
        ctx = rec.start_request("/recommend", request_id="lg-feed-000001")
        assert ctx.request_id == "lg-feed-000001"

    def test_sustained_bad_traffic_alerts_and_dumps(self, tmp_path):
        rec = self._recorder(tmp_path, sample_rate=1.0)
        alerts = []
        for _ in range(50):
            ctx = rec.start_request("/recommend")
            alert = rec.finish_request(ctx, 503, 0.001)
            if alert is not None:
                alerts.append(alert)
        assert len(alerts) == 1
        dumps = list_flight_dumps(tmp_path)
        assert len(dumps) == 1
        assert load_flight_dump(dumps[0])["reason"] == "slo-burn"

    def test_5xx_dumps_but_503_does_not(self, tmp_path):
        rec = self._recorder(tmp_path, sample_rate=1.0)
        ctx = rec.start_request("/recommend")
        rec.finish_request(ctx, 503, 0.001)
        assert list_flight_dumps(tmp_path) == []
        ctx = rec.start_request("/recommend")
        rec.finish_request(ctx, 500, 0.001)
        dumps = list_flight_dumps(tmp_path)
        assert len(dumps) == 1
        assert load_flight_dump(dumps[0])["reason"] == "http-500"

    def test_shutdown_dump_only_with_active_alert(self, tmp_path):
        rec = self._recorder(tmp_path, sample_rate=1.0)
        assert rec.on_shutdown() is None
        for _ in range(50):
            rec.finish_request(rec.start_request("/x"), 503, 0.001)
        # The slo-burn dump already fired; shutdown adds its own reason.
        assert rec.on_shutdown() is not None
        reasons = {load_flight_dump(p)["reason"] for p in list_flight_dumps(tmp_path)}
        assert reasons == {"slo-burn", "shutdown-with-alert"}

    def test_disabled_recorder_still_burns_but_keeps_nothing(self, tmp_path):
        rec = self._recorder(tmp_path, enabled=False, sample_rate=1.0)
        for _ in range(50):
            ctx = rec.start_request("/x")
            assert ctx.traced is False
            rec.finish_request(ctx, 503, 0.001)
        assert len(rec.burn.alerts) == 1  # burn accounting is always on
        assert rec.sampler.decided == 0
        assert len(rec.flight) == 0

    def test_stage_breakdown_aggregates_top_level_only(self, tmp_path):
        rec = self._recorder(tmp_path, sample_rate=0.0)
        ctx = rec.start_request("/recommend")
        with ctx.stage("cache"):
            ctx.add_stage("batch.queue", start_s=perf_counter(), wall_s=0.5)
        rec.finish_request(ctx, 200, 0.01)
        breakdown = rec.stage_breakdown()
        assert set(breakdown) == {"cache"}
        assert breakdown["cache"]["count"] == 1.0

    def test_burn_gauges_exported_when_registry_enabled(self, tmp_path):
        from repro.obs import get_registry

        registry = get_registry()
        registry.enable()
        rec = self._recorder(tmp_path, sample_rate=1.0)
        for _ in range(30):
            rec.finish_request(rec.start_request("/x"), 503, 0.001)
        snap = registry.snapshot()
        assert snap["repro_serve_slo_burn_rate"]["kind"] == "gauge"
        windows = {
            s["labels"]["window"]
            for s in snap["repro_serve_slo_burn_rate"]["series"]
        }
        assert windows == {"fast", "slow"}
        assert snap["repro_serve_slo_alerts_total"]["series"][0]["value"] == 1.0
        assert "repro_serve_traces_kept_total" in snap

    def test_summary_scalars_shape(self, tmp_path):
        rec = self._recorder(tmp_path)
        assert set(rec.summary_scalars()) == {
            "slo_alerts",
            "traces_kept",
            "flight_dumps",
        }
