"""Tests for MetricsRegistry.merge: the worker-snapshot fold semantics."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry


def _worker(fill) -> dict:
    reg = MetricsRegistry(enabled=True)
    fill(reg)
    return reg.snapshot()


class TestCounterMerge:
    def test_counters_accumulate(self):
        parent = MetricsRegistry(enabled=True)
        parent.counter("jobs_total").inc(5)
        parent.merge(_worker(lambda r: r.counter("jobs_total").inc(7)))
        assert parent.counter("jobs_total").value == 12.0

    def test_unknown_counter_is_created(self):
        parent = MetricsRegistry(enabled=True)
        parent.merge(_worker(lambda r: r.counter("fresh_total").inc(3)))
        assert parent.counter("fresh_total").value == 3.0

    def test_labelled_series_merge_independently(self):
        def fill(r):
            r.counter("dispatch_total", labels={"policy": "jsq"}).inc(2)
            r.counter("dispatch_total", labels={"policy": "po2"}).inc(9)

        parent = MetricsRegistry(enabled=True)
        parent.counter("dispatch_total", labels={"policy": "jsq"}).inc(1)
        parent.merge(_worker(fill))
        assert parent.counter("dispatch_total", labels={"policy": "jsq"}).value == 3.0
        assert parent.counter("dispatch_total", labels={"policy": "po2"}).value == 9.0


class TestGaugeMerge:
    def test_gauges_keep_the_maximum(self):
        parent = MetricsRegistry(enabled=True)
        parent.gauge("queue_depth").set(4)
        parent.merge(_worker(lambda r: r.gauge("queue_depth").set(9)))
        assert parent.gauge("queue_depth").value == 9.0
        parent.merge(_worker(lambda r: r.gauge("queue_depth").set(2)))
        assert parent.gauge("queue_depth").value == 9.0


class TestHistogramMerge:
    def test_counts_sum_and_count_accumulate(self):
        edges = (1.0, 2.0, 4.0)

        def fill(r):
            h = r.histogram("latency_s", buckets=edges)
            h.observe(0.5)
            h.observe(3.0)

        parent = MetricsRegistry(enabled=True)
        h = parent.histogram("latency_s", buckets=edges)
        h.observe(1.5)
        parent.merge(_worker(fill))
        snap = parent.histogram("latency_s", buckets=edges)._snapshot_value()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.0)
        assert sum(snap["counts"]) == 3

    def test_edge_mismatch_raises(self):
        parent = MetricsRegistry(enabled=True)
        parent.histogram("latency_s", buckets=(1.0, 2.0))
        snapshot = _worker(
            lambda r: r.histogram("latency_s", buckets=(1.0, 8.0)).observe(0.5)
        )
        with pytest.raises(ReproError):
            parent.merge(snapshot)


class TestMergeSemantics:
    def test_kind_conflict_raises(self):
        parent = MetricsRegistry(enabled=True)
        parent.counter("depth")
        with pytest.raises(ReproError):
            parent.merge(_worker(lambda r: r.gauge("depth").set(1)))

    def test_unknown_kind_raises(self):
        parent = MetricsRegistry(enabled=True)
        bogus = {"m": {"kind": "summary", "help": "", "series": [
            {"labels": {}, "value": 1.0}
        ]}}
        with pytest.raises(ReproError):
            parent.merge(bogus)

    def test_malformed_entry_raises(self):
        parent = MetricsRegistry(enabled=True)
        with pytest.raises(ReproError):
            parent.merge({"m": 3.0})

    def test_merge_applies_while_disabled(self):
        """Merging is bookkeeping, not measurement: the parent may be
        disabled (the default outside `instrumented()`) when worker
        snapshots arrive, and their totals must still land."""
        parent = MetricsRegistry(enabled=False)
        parent.merge(_worker(lambda r: r.counter("jobs_total").inc(4)))
        assert parent.counter("jobs_total").value == 4.0

    def test_merge_roundtrip_equals_single_registry(self):
        """Splitting increments across two registries and merging gives
        the same snapshot as one registry taking all increments."""
        combined = MetricsRegistry(enabled=True)
        combined.counter("a_total").inc(10)
        combined.gauge("g").set(7)

        parent = MetricsRegistry(enabled=True)
        parent.counter("a_total").inc(4)
        parent.gauge("g").set(7)
        parent.merge(
            _worker(lambda r: (r.counter("a_total").inc(6), r.gauge("g").set(3)))
        )
        assert parent.snapshot() == combined.snapshot()
