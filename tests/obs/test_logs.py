"""Tests for the repro logger hierarchy and CLI log configuration."""

from __future__ import annotations

import io
import logging

import pytest

from repro.errors import ReproError
from repro.obs.logs import (
    LOG_LEVELS,
    ROOT_LOGGER,
    _HANDLER_MARK,
    configure_logging,
    get_logger,
)


@pytest.fixture(autouse=True)
def _restore_root_logger():
    root = logging.getLogger(ROOT_LOGGER)
    before_handlers = list(root.handlers)
    before_level = root.level
    yield
    root.handlers[:] = before_handlers
    root.setLevel(before_level)


class TestGetLogger:
    def test_maps_names_into_the_hierarchy(self):
        assert get_logger().name == ROOT_LOGGER
        assert get_logger(ROOT_LOGGER).name == ROOT_LOGGER
        assert get_logger("repro.queueing.des").name == "repro.queueing.des"
        assert get_logger("des").name == "repro.des"

    def test_children_propagate_to_the_root(self):
        assert get_logger("repro.scheduler.engine").parent.name.startswith(
            ROOT_LOGGER
        )

    def test_unconfigured_import_is_silent(self):
        root = logging.getLogger(ROOT_LOGGER)
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestConfigureLogging:
    def test_installs_one_stderr_handler_at_level(self):
        buf = io.StringIO()
        root = configure_logging("info", stream=buf)
        get_logger("x").info("hello %d", 7)
        get_logger("x").debug("hidden")
        out = buf.getvalue()
        assert "INFO repro.x: hello 7" in out
        assert "hidden" not in out
        assert root.level == logging.INFO

    def test_reconfigure_does_not_stack_handlers(self):
        configure_logging("info", stream=io.StringIO())
        buf = io.StringIO()
        configure_logging("debug", stream=buf)
        root = logging.getLogger(ROOT_LOGGER)
        marked = [h for h in root.handlers if getattr(h, _HANDLER_MARK, False)]
        assert len(marked) == 1
        get_logger("y").debug("now visible")
        assert "now visible" in buf.getvalue()

    def test_unknown_level_rejected(self):
        with pytest.raises(ReproError):
            configure_logging("loud")

    def test_level_names_cover_the_cli_choices(self):
        for name in LOG_LEVELS:
            assert hasattr(logging, name.upper())
