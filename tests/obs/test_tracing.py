"""Tests for the span tracer: nesting, exception safety, ring, exports."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs.tracing import Tracer, get_tracer, span


@pytest.fixture()
def tracer():
    return Tracer(enabled=True)


class TestNesting:
    def test_paths_record_the_call_stack(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        paths = [r.path for r in tracer.spans()]
        # Children complete before their parent.
        assert paths == [
            ("outer", "inner"),
            ("outer", "inner"),
            ("outer",),
        ]
        assert [r.depth for r in tracer.spans()] == [1, 1, 0]

    def test_attrs_at_open_and_via_set(self, tracer):
        with tracer.span("s", policy="ppr-greedy") as sp:
            sp.set(n_jobs=42)
        (rec,) = tracer.spans()
        assert rec.attrs == {"policy": "ppr-greedy", "n_jobs": 42}

    def test_timings_are_positive_and_ordered(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        inner, outer = tracer.spans()
        assert 0 <= inner.wall_s <= outer.wall_s
        assert outer.t0_s <= inner.t0_s


class TestExceptionSafety:
    def test_span_recorded_with_error_attr(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (rec,) = tracer.spans()
        assert rec.attrs["error"] == "ValueError"

    def test_stack_unwinds_through_exceptions(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError
        # A new top-level span nests correctly afterwards.
        with tracer.span("after"):
            pass
        assert tracer.spans()[-1].path == ("after",)
        assert tracer.spans()[-1].depth == 0


class TestRingBuffer:
    def test_wraps_oldest_first(self):
        tracer = Tracer(capacity=3, enabled=True)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.spans()] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2

    def test_no_drops_below_capacity(self, tracer):
        with tracer.span("a"):
            pass
        assert tracer.dropped == 0

    def test_reset_drops_records(self, tracer):
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.spans() == []
        assert tracer.dropped == 0

    def test_invalid_capacity(self):
        with pytest.raises(ReproError):
            Tracer(capacity=0)


class TestDisabledFastPath:
    def test_disabled_returns_shared_noop(self, tracer):
        tracer.disable()
        a = tracer.span("x")
        b = tracer.span("y", k=1)
        assert a is b
        with a as sp:
            sp.set(ignored=True)
        assert tracer.spans() == []

    def test_module_level_span_nests_on_the_singleton(self):
        tracer = get_tracer()
        assert span("x") is span("y")  # disabled: shared no-op
        tracer.enable()
        try:
            with span("outer"):
                with span("inner"):
                    pass
        finally:
            tracer.disable()
        assert [r.path for r in tracer.spans()] == [
            ("outer", "inner"),
            ("outer",),
        ]


class TestExports:
    def test_chrome_trace_shape(self, tracer, tmp_path):
        with tracer.span("run", policy="rr"):
            with tracer.span("interval"):
                pass
        doc = tracer.to_chrome_trace()
        assert {e["name"] for e in doc["traceEvents"]} == {"run", "interval"}
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert {"pid", "tid", "cat", "args"} <= set(event)
        run = next(e for e in doc["traceEvents"] if e["name"] == "run")
        assert run["args"]["policy"] == "rr"
        path = tmp_path / "t.json"
        tracer.write_chrome_trace(path)
        assert json.loads(path.read_text(encoding="utf-8")) == doc

    def test_chrome_trace_stringifies_exotic_attrs(self, tracer):
        with tracer.span("s", obj=object(), ok=1):
            pass
        (event,) = tracer.to_chrome_trace()["traceEvents"]
        assert isinstance(event["args"]["obj"], str)
        assert event["args"]["ok"] == 1

    def test_flame_aggregates_and_computes_self_time(self, tracer):
        for _ in range(3):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        rows = {r.path: r for r in tracer.flame()}
        assert rows[("outer",)].calls == 3
        assert rows[("outer", "inner")].calls == 3
        outer = rows[("outer",)]
        inner = rows[("outer", "inner")]
        assert outer.self_wall_s == pytest.approx(
            outer.wall_s - inner.wall_s, abs=1e-12
        )
        assert inner.self_wall_s == pytest.approx(inner.wall_s)

    def test_flame_sorted_by_wall_descending(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        rows = tracer.flame()
        assert rows[0].path == ("outer",)

    def test_render_flame_lists_indented_paths(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        text = tracer.render_flame()
        assert "Flame summary" in text
        assert "outer" in text
        assert "  inner" in text

    def test_render_flame_empty(self, tracer):
        assert "no spans" in tracer.render_flame()


class TestExportEdgeCases:
    """Exports on an empty and on an overflowed span ring buffer."""

    def test_chrome_trace_on_empty_ring(self, tracer, tmp_path):
        doc = tracer.to_chrome_trace()
        assert doc["traceEvents"] == []
        assert doc["otherData"]["dropped_spans"] == 0
        # The writer must still produce a loadable document.
        path = tmp_path / "empty.json"
        tracer.write_chrome_trace(path)
        assert json.loads(path.read_text(encoding="utf-8")) == doc

    def test_chrome_trace_on_overflowed_ring(self, tmp_path):
        tracer = Tracer(capacity=3, enabled=True)
        for i in range(7):
            with tracer.span(f"s{i}"):
                pass
        doc = tracer.to_chrome_trace()
        # Only surviving spans export, oldest first, and the drop count
        # is surfaced so a truncated trace is never mistaken for a
        # complete one.
        assert [e["name"] for e in doc["traceEvents"]] == ["s4", "s5", "s6"]
        assert doc["otherData"]["dropped_spans"] == 4
        path = tmp_path / "wrapped.json"
        tracer.write_chrome_trace(path)
        assert json.loads(path.read_text(encoding="utf-8")) == doc

    def test_flame_on_overflowed_ring_counts_survivors_only(self):
        tracer = Tracer(capacity=4, enabled=True)
        for _ in range(6):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        rows = {r.path: r for r in tracer.flame()}
        # 12 spans total, ring keeps 4: aggregation sees the survivors.
        assert sum(r.calls for r in rows.values()) == 4
        assert set(rows) <= {("outer",), ("outer", "inner")}

    def test_render_flame_on_overflowed_ring(self):
        tracer = Tracer(capacity=2, enabled=True)
        for _ in range(5):
            with tracer.span("work"):
                pass
        text = tracer.render_flame()
        assert "Flame summary" in text
        assert "work" in text

    def test_write_chrome_trace_creates_parent_dirs(self, tracer, tmp_path):
        with tracer.span("s"):
            pass
        path = tmp_path / "deep" / "nested" / "trace.json"
        tracer.write_chrome_trace(path)
        assert json.loads(path.read_text(encoding="utf-8"))["traceEvents"]
