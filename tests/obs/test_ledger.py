"""Tests for the run ledger: schema, append-only store, index, retention."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ReproError
from repro.obs.ledger import (
    DEFAULT_LEDGER_DIR,
    RUN_SCHEMA,
    Ledger,
    RunRecord,
    config_digest,
    default_ledger,
    ledger_enabled,
    new_record,
    record_bench_result,
)


@pytest.fixture()
def ledger(tmp_path):
    return Ledger(tmp_path / "runs")


def _rec(name="cli/table", **kw):
    kw.setdefault("kind", "cli")
    kind = kw.pop("kind")
    return new_record(kind, name, **kw)


class TestRunRecord:
    def test_roundtrips_through_json(self):
        rec = _rec(
            params={"policy": "ppr-greedy", "n": 3},
            scalars={"p95_s": 1.5},
            seed=42,
            wall_s=0.25,
        )
        again = RunRecord.from_json(rec.to_json())
        assert again == rec

    def test_json_line_is_single_line(self):
        rec = _rec(params={"note": "a\nb"})
        assert "\n" not in rec.to_json()

    def test_from_json_rejects_foreign_schema(self):
        doc = json.loads(_rec().to_json())
        doc["schema"] = "other/1"
        with pytest.raises(ReproError):
            RunRecord.from_json(json.dumps(doc))

    def test_from_json_drops_unknown_fields(self):
        doc = json.loads(_rec().to_json())
        doc["future_field"] = 123
        rec = RunRecord.from_json(json.dumps(doc))
        assert rec.schema == RUN_SCHEMA

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            new_record("job", "x")

    def test_empty_name_rejected(self):
        with pytest.raises(ReproError):
            new_record("cli", "")

    def test_run_ids_are_unique(self):
        assert _rec().run_id != _rec().run_id


class TestConfigDigest:
    def test_order_insensitive(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_record_digest_matches_params(self):
        rec = _rec(params={"x": 1})
        assert rec.config_digest == config_digest({"x": 1})


class TestAppendOnly:
    def test_append_never_rewrites_existing_bytes(self, ledger):
        ledger.append(_rec("cli/a"))
        before = ledger.path.read_bytes()
        ledger.append(_rec("cli/b"))
        after = ledger.path.read_bytes()
        assert after[: len(before)] == before
        assert len(after) > len(before)

    def test_records_read_back_oldest_first(self, ledger):
        first = ledger.append(_rec("cli/a"))
        second = ledger.append(_rec("cli/b"))
        assert [r.run_id for r in ledger.records()] == [
            first.run_id,
            second.run_id,
        ]

    def test_torn_line_does_not_poison_history(self, ledger):
        ledger.append(_rec("cli/a"))
        with open(ledger.path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro-run/1", "trunc')  # no newline: torn
        ledger.append(_rec("cli/b"))
        # Torn line is skipped; the append after it still lands.
        names = [r.name for r in ledger.records()]
        assert names.count("cli/a") == 1
        assert names.count("cli/b") == 1

    def test_filters_and_limit(self, ledger):
        ledger.append(_rec("cli/a"))
        ledger.append(_rec("bench/x", kind="benchmark"))
        ledger.append(_rec("cli/a"))
        assert len(ledger.records(name="cli/a")) == 2
        assert len(ledger.records(kind="benchmark")) == 1
        assert len(ledger.records(limit=1)) == 1
        assert ledger.records(limit=1)[0].name == "cli/a"

    def test_latest_names_history(self, ledger):
        ledger.append(_rec("cli/a", scalars={"v": 1.0}))
        newest = ledger.append(_rec("cli/a", scalars={"v": 2.0}))
        assert ledger.latest("cli/a").run_id == newest.run_id
        assert ledger.latest("cli/missing") is None
        assert ledger.names() == ["cli/a"]
        assert [v for _, v in ledger.history("cli/a", "v")] == [1.0, 2.0]
        # Records lacking the scalar are skipped, not zero-filled.
        ledger.append(_rec("cli/a"))
        assert len(ledger.history("cli/a", "v")) == 2


def _hammer_worker(root: str, proc: int, n_appends: int) -> None:
    """Child-process body of the concurrency hammer: append ``n_appends``
    records into the shared store (top-level so it pickles under spawn)."""
    ledger = Ledger(root)
    for i in range(n_appends):
        ledger.append(
            new_record(
                "experiment",
                "obs/hammer",
                scalars={"proc": float(proc), "i": float(i)},
            )
        )


class TestConcurrentAppends:
    def test_multiprocess_hammer_loses_and_tears_nothing(self, ledger):
        """N processes x M appends into one store: every record must read
        back intact — the single O_APPEND write(2) per record is what
        prevents interleaving."""
        import multiprocessing

        n_procs, n_appends = 4, 25
        procs = [
            multiprocessing.Process(
                target=_hammer_worker, args=(str(ledger.root), p, n_appends)
            )
            for p in range(n_procs)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        records = ledger.records(name="obs/hammer")
        assert len(records) == n_procs * n_appends
        # Every (proc, i) pair lands exactly once — nothing torn, merged
        # into a neighbour's line, or silently dropped by the parser.
        seen = {(r.scalars["proc"], r.scalars["i"]) for r in records}
        assert len(seen) == n_procs * n_appends
        # The raw store parses line-for-line: no torn fragments at all.
        lines = [
            line
            for line in ledger.path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        assert len(lines) == n_procs * n_appends
        for line in lines:
            json.loads(line)


class TestIndex:
    def test_index_written_on_append(self, ledger):
        rec = ledger.append(_rec("cli/a"))
        doc = json.loads(ledger.index_path.read_text(encoding="utf-8"))
        assert doc["schema"] == Ledger.INDEX_SCHEMA
        assert doc["total"] == 1
        assert doc["names"]["cli/a"]["last_run_id"] == rec.run_id

    def test_index_rebuilt_when_missing(self, ledger):
        ledger.append(_rec("cli/a"))
        os.remove(ledger.index_path)
        assert ledger.index()["total"] == 1

    def test_empty_ledger_index(self, ledger):
        assert ledger.index() == {
            "schema": Ledger.INDEX_SCHEMA,
            "total": 0,
            "names": {},
        }


class TestCompaction:
    def test_moves_oldest_surplus_to_archive(self, ledger):
        for i in range(5):
            ledger.append(_rec("cli/a", scalars={"v": float(i)}))
        archived = ledger.compact(keep=2)
        assert archived == 3
        live = [r.scalars["v"] for r in ledger.records()]
        assert live == [3.0, 4.0]  # the newest two survive
        # No record was lost: archive + live = everything.
        everything = ledger.records(include_archive=True)
        assert [r.scalars["v"] for r in everything] == [0, 1, 2, 3, 4]

    def test_per_name_retention(self, ledger):
        for _ in range(3):
            ledger.append(_rec("cli/a"))
        ledger.append(_rec("cli/b"))
        assert ledger.compact(keep=2) == 1
        names = [r.name for r in ledger.records()]
        assert names.count("cli/a") == 2
        assert names.count("cli/b") == 1

    def test_noop_below_retention(self, ledger):
        ledger.append(_rec("cli/a"))
        assert ledger.compact(keep=10) == 0

    def test_invalid_keep(self, ledger):
        with pytest.raises(ReproError):
            ledger.compact(keep=0)


class TestDefaults:
    def test_env_var_relocates_default_ledger(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "elsewhere"))
        assert default_ledger().root == tmp_path / "elsewhere"

    def test_explicit_root_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "elsewhere"))
        assert default_ledger(tmp_path / "here").root == tmp_path / "here"

    def test_fallback_is_dot_repro(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        assert default_ledger().root == DEFAULT_LEDGER_DIR

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", "OFF"])
    def test_disable_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_LEDGER", value)
        assert not ledger_enabled()

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert ledger_enabled()


class TestRecordBenchResult:
    ENVELOPE = {
        "schema": "repro-bench/1",
        "benchmark": "sweep",
        "params": {"seed": 7, "n_a9": 32, "grid": [1, 2]},
        "timings_s": {"batched_warm": 0.5, "batched_cold": 1.5},
        "speedup": {"batched_warm": 800.0},
    }

    def test_records_floor_metrics_and_timings(self, ledger):
        rec = record_bench_result(self.ENVELOPE, ledger=ledger)
        assert rec is not None
        assert rec.name == "bench/sweep"
        assert rec.kind == "benchmark"
        assert rec.seed == 7
        assert rec.scalars["speedup.batched_warm"] == 800.0
        assert rec.scalars["timings_s.batched_warm"] == 0.5
        # Non-scalar params are dropped from the recorded config.
        assert "grid" not in rec.params

    def test_wall_falls_back_to_summed_timings(self, ledger):
        rec = record_bench_result(self.ENVELOPE, ledger=ledger)
        assert rec.wall_s == pytest.approx(2.0)
        explicit = record_bench_result(self.ENVELOPE, ledger=ledger, wall_s=9.0)
        assert explicit.wall_s == 9.0

    def test_respects_disable_switch(self, ledger, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert record_bench_result(self.ENVELOPE, ledger=ledger) is None
        assert len(ledger) == 0
