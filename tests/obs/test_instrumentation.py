"""Cross-stack instrumentation contracts.

Two properties the whole obs layer stands on:

1. **Zero result drift** — enabling metrics and tracing must not change a
   single bit of any seeded engine output.  Instrumentation reads clocks
   and increments counters; it never touches an RNG stream or a
   simulation float.
2. **Metrics tell the truth** — the counters collected during a run must
   equal the corresponding fields of the result they were collected
   alongside.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.scheduling import replay_day
from repro.model.batched import clear_constants_cache, evaluate_space_arrays
from repro.obs import get_registry, get_tracer, instrumented
from repro.queueing.mc import MonteCarloQueue


@pytest.fixture(scope="module")
def plain_replay():
    """An uninstrumented ``(ScheduleResult, AdaptationResult)`` pair."""
    return replay_day("x264", "ppr-greedy", n_intervals=10)


@pytest.fixture()
def instrumented_replay():
    """The same seeded day replayed under ``instrumented()``, plus the
    metrics snapshot collected alongside it."""
    with instrumented():
        pair = replay_day("x264", "ppr-greedy", n_intervals=10)
        snapshot = get_registry().snapshot()
    return pair, snapshot


class TestZeroResultDrift:
    def test_schedule_results_bit_identical(
        self, plain_replay, instrumented_replay
    ):
        """The regression test the obs layer is gated on: an instrumented
        seeded replay equals the uninstrumented one, dataclass-deep."""
        assert instrumented_replay[0] == plain_replay

    def test_mc_waits_bit_identical(self):
        queue = MonteCarloQueue.from_utilisation(0.7, 1.0, seed=99)
        plain = queue.simulate_waits(2_000, 5)
        with instrumented():
            traced = MonteCarloQueue.from_utilisation(
                0.7, 1.0, seed=99
            ).simulate_waits(2_000, 5)
        np.testing.assert_array_equal(plain, traced)

    def test_batched_model_bit_identical(self, workloads):
        from repro.benchmarks.sweep import paper_spaces

        spaces = paper_spaces(3, 3)
        clear_constants_cache()
        plain = evaluate_space_arrays(workloads["EP"], spaces)
        with instrumented():
            clear_constants_cache()
            traced = evaluate_space_arrays(workloads["EP"], spaces)
        np.testing.assert_array_equal(plain.tp_s, traced.tp_s)
        np.testing.assert_array_equal(plain.energy_j, traced.energy_j)


class TestMetricsMatchResults:
    def test_scheduler_counters_equal_result_fields(self, instrumented_replay):
        (result, _oracle), snap = instrumented_replay

        def total(name):
            return sum(s["value"] for s in snap[name]["series"])

        assert total("repro_sched_jobs_dispatched_total") == result.jobs_arrived
        assert total("repro_sched_intervals_total") == len(result.timeline)
        transitions = {
            s["labels"]["transition"]: s["value"]
            for s in snap["repro_sched_power_transitions_total"]["series"]
        }
        assert transitions["boot"] == result.boots
        assert transitions["shutdown"] == result.shutdowns

    def test_dispatch_latency_histogram_counts_every_job(
        self, instrumented_replay
    ):
        (result, _oracle), snap = instrumented_replay
        (series,) = snap["repro_sched_dispatch_latency_s"]["series"]
        assert series["labels"] == {"policy": "ppr-greedy"}
        assert series["value"]["count"] == result.jobs_arrived

    def test_mc_counters_count_replications_and_jobs(self):
        with instrumented():
            MonteCarloQueue.from_utilisation(0.7, 1.0, seed=7).run(1_000, 6)
            snap = get_registry().snapshot()
        assert snap["repro_mc_replications_total"]["series"][0]["value"] == 6
        assert (
            snap["repro_mc_jobs_simulated_total"]["series"][0]["value"] == 6_000
        )
        # First replication allocates, the other five reuse the buffer.
        assert snap["repro_mc_buffer_reuses_total"]["series"][0]["value"] == 5

    def test_model_counters_count_configs(self, workloads):
        from repro.benchmarks.sweep import paper_spaces

        spaces = paper_spaces(2, 2)
        with instrumented():
            clear_constants_cache()
            arrays = evaluate_space_arrays(workloads["EP"], spaces)
            snap = get_registry().snapshot()
        assert (
            snap["repro_model_configs_evaluated_total"]["series"][0]["value"]
            == arrays.n_configs
        )
        assert "repro_model_constants_cache_misses_total" in snap


class TestSpans:
    def test_scheduler_run_span_recorded(self):
        with instrumented():
            replay_day("x264", "round-robin", n_intervals=4)
            names = {r.name for r in get_tracer().spans()}
        assert "scheduler.run" in names

    def test_mc_spans_carry_shape_attrs(self):
        with instrumented():
            queue = MonteCarloQueue.from_utilisation(0.7, 1.0, seed=7)
            queue.run(500, 3)
            queue.simulate_waits(500, 3)
            records = {r.name: r for r in get_tracer().spans()}
        assert records["mc.run"].attrs == {"n_jobs": 500, "n_reps": 3}
        assert records["mc.simulate_waits"].attrs["engine"] == "vectorized"


class TestInstrumentedScope:
    def test_restores_prior_state(self):
        registry = get_registry()
        tracer = get_tracer()
        assert not registry.enabled and not tracer.enabled
        with instrumented():
            assert registry.enabled and tracer.enabled
        assert not registry.enabled and not tracer.enabled

    def test_reset_false_accumulates(self):
        with instrumented():
            get_registry().counter("keep").inc()
        with instrumented(reset=False):
            get_registry().counter("keep").inc()
            assert get_registry().counter("keep").value == 2

    def test_metrics_only(self):
        with instrumented(tracing=False):
            assert get_registry().enabled
            assert not get_tracer().enabled
