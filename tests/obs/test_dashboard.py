"""Tests for the ASCII ledger dashboard."""

from __future__ import annotations

import pytest

from repro.obs.dashboard import render_dashboard
from repro.obs.ledger import Ledger, new_record


@pytest.fixture()
def ledger(tmp_path):
    return Ledger(tmp_path / "runs")


def _append(ledger, name, scalars, kind="cli", seed=None):
    ledger.append(new_record(kind, name, scalars=scalars, seed=seed))


class TestRenderDashboard:
    def test_empty_ledger_renders_a_hint(self, ledger):
        text = render_dashboard(ledger)
        assert "run ledger is empty" in text
        assert str(ledger.root) in text

    def test_one_name_with_history(self, ledger):
        _append(ledger, "cli/schedule", {"p95_s": 1.0}, seed=42)
        _append(ledger, "cli/schedule", {"p95_s": 1.1}, seed=42)
        text = render_dashboard(ledger)
        assert "cli/schedule" in text
        assert "[cli]" in text
        assert "2 run(s)" in text
        assert "seed=42" in text
        assert "p95_s" in text
        assert "1.1" in text
        assert "2 record(s), 1 name(s)" in text

    def test_drift_annotation_on_regressed_scalar(self, ledger):
        _append(ledger, "bench/s", {"speedup.x": 100.0}, kind="benchmark")
        _append(ledger, "bench/s", {"speedup.x": 50.0}, kind="benchmark")
        text = render_dashboard(ledger)
        assert "<- REGRESSION" in text
        assert "1 drifted metric(s)" in text

    def test_stable_scalar_shows_relative_change(self, ledger):
        _append(ledger, "cli/a", {"v": 1.0})
        _append(ledger, "cli/a", {"v": 1.01})
        text = render_dashboard(ledger)
        assert "vs mean)" in text
        assert "no drift" in text

    def test_names_filter(self, ledger):
        _append(ledger, "cli/a", {"v": 1.0})
        _append(ledger, "cli/b", {"w": 2.0})
        text = render_dashboard(ledger, names=["cli/a"])
        assert "cli/a" in text
        assert "cli/b" not in text

    def test_record_without_scalars(self, ledger):
        _append(ledger, "cli/bare", {})
        assert "(no result scalars recorded)" in render_dashboard(ledger)

    def test_single_record_has_sparkline_but_no_drift(self, ledger):
        _append(ledger, "cli/a", {"v": 3.0})
        text = render_dashboard(ledger)
        assert "cli/a" in text
        assert "no drift" in text
