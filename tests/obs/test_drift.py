"""Tests for cross-run drift detection: stats, verdicts, ledger diffing."""

from __future__ import annotations

import math

import pytest

from repro.errors import ReproError
from repro.obs.drift import (
    CHANGEPOINT_THRESHOLD,
    MetricDrift,
    bench_scalars,
    bootstrap_mean_diff,
    changepoint,
    diff_history,
    diff_ledger,
    higher_is_better,
    lookup,
    render_drifts,
    welch_t_pvalue,
)
from repro.obs.ledger import Ledger, new_record


@pytest.fixture()
def ledger(tmp_path):
    return Ledger(tmp_path / "runs")


def _append(ledger, name, scalars, kind="cli"):
    ledger.append(new_record(kind, name, scalars=scalars))


class TestLookupAndBenchScalars:
    def test_lookup_dotted_path(self):
        assert lookup({"a": {"b": {"c": 3}}}, "a.b.c") == 3.0

    def test_lookup_missing_raises_keyerror(self):
        with pytest.raises(KeyError):
            lookup({"a": {}}, "a.b")

    def test_bench_scalars_extracts_floor_and_timings(self):
        doc = {
            "benchmark": "sweep",
            "speedup": {"batched_warm": 700.0},
            "timings_s": {"batched_warm": 0.1, "note": "text"},
        }
        scalars = bench_scalars("sweep", doc)
        assert scalars == {
            "speedup.batched_warm": 700.0,
            "timings_s.batched_warm": 0.1,
        }

    def test_bench_scalars_missing_floor_path_skipped(self):
        assert bench_scalars("sweep", {"timings_s": {}}) == {}

    def test_unknown_benchmark_keeps_timings_only(self):
        scalars = bench_scalars("custom", {"timings_s": {"run": 2.0}})
        assert scalars == {"timings_s.run": 2.0}


class TestDirectionConvention:
    def test_speedup_and_rates_are_higher_is_better(self):
        assert higher_is_better("speedup.batched_warm")
        assert higher_is_better("events_per_s")
        assert higher_is_better("agreement_fraction")

    def test_generic_scalars_are_two_sided(self):
        assert not higher_is_better("p95_s")
        assert not higher_is_better("total_energy_j")


class TestWelch:
    def test_detects_a_clear_shift(self):
        p = welch_t_pvalue([1.0, 1.1, 0.9, 1.0], [5.0, 5.1, 4.9, 5.0])
        assert p is not None and p < 0.01

    def test_same_sample_is_insignificant(self):
        p = welch_t_pvalue([1.0, 1.2, 0.8], [1.0, 1.2, 0.8])
        assert p is not None and p > 0.5

    def test_too_small_returns_none(self):
        assert welch_t_pvalue([1.0], [1.0, 2.0]) is None

    def test_degenerate_zero_variance(self):
        assert welch_t_pvalue([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert welch_t_pvalue([2.0, 2.0], [3.0, 3.0]) == 0.0


class TestBootstrap:
    def test_ci_brackets_the_true_shift(self):
        a = [1.0, 1.1, 0.9, 1.05, 0.95]
        b = [2.0, 2.1, 1.9, 2.05, 1.95]
        lo, hi = bootstrap_mean_diff(a, b, seed=3)
        assert lo <= 1.0 <= hi
        assert lo > 0.5  # a real shift excludes zero

    def test_deterministic_for_fixed_seed(self):
        a, b = [1.0, 2.0, 3.0], [2.0, 3.0, 4.0]
        assert bootstrap_mean_diff(a, b, seed=7) == bootstrap_mean_diff(
            a, b, seed=7
        )

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            bootstrap_mean_diff([], [1.0])
        with pytest.raises(ReproError):
            bootstrap_mean_diff([1.0], [1.0], level=1.0)


class TestChangepoint:
    def test_finds_a_step(self):
        values = [1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0]
        idx, score = changepoint(values)
        assert idx == 4
        assert score > CHANGEPOINT_THRESHOLD

    def test_flat_series_has_no_changepoint(self):
        assert changepoint([2.0] * 8) == (None, 0.0)

    def test_short_series_has_no_changepoint(self):
        assert changepoint([1.0, 9.0, 1.0]) == (None, 0.0)


class TestDiffHistory:
    def test_stable_within_tolerance(self):
        d = diff_history("cli/x", "p95_s", [1.0, 1.0, 1.1])
        assert d.status == "stable"
        assert not d.drifted
        assert d.latest == 1.1
        assert d.baseline_mean == 1.0

    def test_two_sided_scalar_flags_any_move(self):
        up = diff_history("cli/x", "p95_s", [1.0, 1.0, 2.0])
        down = diff_history("cli/x", "p95_s", [1.0, 1.0, 0.5])
        assert up.status == "regression"
        assert down.status == "regression"

    def test_higher_is_better_drop_is_regression_rise_improvement(self):
        drop = diff_history("bench/s", "speedup.batched_warm", [100.0, 60.0])
        rise = diff_history("bench/s", "speedup.batched_warm", [100.0, 150.0])
        assert drop.status == "regression"
        assert rise.status == "improvement"
        assert rise.drifted  # improvements are drift too, just not gating

    def test_zero_baseline(self):
        assert diff_history("n", "s", [0.0, 0.0]).rel_change == 0.0
        assert math.isinf(diff_history("n", "s", [0.0, 1.0]).rel_change)

    def test_long_history_gets_window_statistics(self):
        values = [1.0, 1.02, 0.98, 1.01, 0.99, 1.0, 5.0, 5.1, 4.9]
        d = diff_history("cli/x", "p95_s", values)
        assert d.p_value is not None and d.p_value < 0.05
        assert d.ci_low is not None and d.ci_low > 0
        assert d.changepoint_index == 6

    def test_short_history_skips_window_statistics(self):
        d = diff_history("cli/x", "p95_s", [1.0, 1.0, 1.0])
        assert d.p_value is None and d.ci_low is None and d.ci_high is None

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            diff_history("n", "s", [1.0])
        with pytest.raises(ReproError):
            diff_history("n", "s", [1.0, 2.0], tolerance=1.5)


class TestDiffLedger:
    def test_covers_every_pair_with_history(self, ledger):
        _append(ledger, "cli/a", {"v": 1.0, "w": 2.0})
        _append(ledger, "cli/a", {"v": 1.0, "w": 4.0})
        _append(ledger, "cli/b", {"x": 1.0})  # single record: skipped
        drifts = diff_ledger(ledger)
        assert {(d.name, d.scalar) for d in drifts} == {
            ("cli/a", "v"),
            ("cli/a", "w"),
        }
        by_key = {d.scalar: d for d in drifts}
        assert by_key["v"].status == "stable"
        assert by_key["w"].status == "regression"

    def test_name_and_scalar_filters(self, ledger):
        _append(ledger, "cli/a", {"v": 1.0, "w": 2.0})
        _append(ledger, "cli/a", {"v": 1.0, "w": 2.0})
        drifts = diff_ledger(ledger, names=["cli/a"], scalars=["w"])
        assert [(d.name, d.scalar) for d in drifts] == [("cli/a", "w")]

    def test_empty_ledger_is_empty_report(self, ledger):
        assert diff_ledger(ledger) == []


class TestRenderDrifts:
    def test_mentions_statuses_and_values(self):
        drifts = [
            diff_history("bench/s", "speedup.x", [100.0, 50.0]),
            diff_history("cli/a", "p95_s", [1.0, 1.0]),
        ]
        text = render_drifts(drifts)
        assert "REGRESSION" in text
        assert "ok" in text
        assert "bench/s:speedup.x" in text

    def test_empty_report_hint(self):
        assert "nothing to diff" in render_drifts([])

    def test_annotations_for_long_history(self):
        values = [1.0, 1.02, 0.98, 1.01, 0.99, 1.0, 5.0, 5.1, 4.9]
        text = render_drifts([diff_history("n", "s", values)])
        assert "welch p=" in text
        assert "shift CI" in text
        assert "changepoint @ 6/9" in text
