"""Tests for the metrics registry: instruments, buckets, exporters."""

from __future__ import annotations

import json
import tracemalloc

import numpy as np
import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    exponential_buckets,
    get_registry,
    linear_buckets,
)


@pytest.fixture()
def reg():
    return MetricsRegistry(enabled=True)


class TestBucketHelpers:
    def test_exponential(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_linear(self):
        assert linear_buckets(0.0, 0.5, 3) == (0.0, 0.5, 1.0)

    def test_invalid(self):
        with pytest.raises(ReproError):
            exponential_buckets(0.0, 2.0, 3)
        with pytest.raises(ReproError):
            exponential_buckets(1.0, 1.0, 3)
        with pytest.raises(ReproError):
            linear_buckets(0.0, -1.0, 3)

    def test_default_time_buckets_span_select_to_interval(self):
        assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_TIME_BUCKETS[-1] == pytest.approx(1e-6 * 2**19)


class TestCounter:
    def test_accumulates(self, reg):
        c = reg.counter("jobs_total")
        c.inc()
        c.inc(5)
        assert c.value == 6.0

    def test_rejects_decrease(self, reg):
        with pytest.raises(ReproError):
            reg.counter("jobs_total").inc(-1)

    def test_disabled_is_noop(self, reg):
        c = reg.counter("jobs_total")
        reg.disable()
        c.inc(100)
        assert c.value == 0.0


class TestGauge:
    def test_set_and_inc(self, reg):
        g = reg.gauge("queue_depth")
        g.set(7)
        g.inc(-2.5)
        assert g.value == 4.5

    def test_disabled_is_noop(self, reg):
        g = reg.gauge("queue_depth")
        reg.disable()
        g.set(9)
        g.inc(1)
        assert g.value == 0.0


class TestHistogramBuckets:
    """The bucket-edge contract: ``v <= edge`` lands at that edge."""

    def test_edge_exact_counts_toward_that_edge(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 4.0):
            h.observe(v)
        # 0.5 and 1.0 -> le=1; 1.5 and 2.0 -> le=2; 4.0 -> le=4.
        assert h.counts.tolist() == [2, 2, 1, 0]

    def test_overflow_bucket(self, reg):
        h = reg.histogram("lat", buckets=(1.0,))
        h.observe(1.0000001)
        h.observe(1e9)
        assert h.counts.tolist() == [0, 2]

    def test_cumulative_counts(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        assert h.cumulative_counts.tolist() == [1, 2, 3]

    def test_observe_many_matches_scalar_path(self, reg):
        edges = (0.1, 0.3, 1.0, 3.0)
        scalar = reg.histogram("scalar", buckets=edges)
        batched = reg.histogram("batched", buckets=edges)
        values = np.abs(np.random.default_rng(7).normal(0.5, 1.0, size=500))
        for v in values:
            scalar.observe(float(v))
        batched.observe_many(values)
        assert batched.counts.tolist() == scalar.counts.tolist()
        assert batched.count == scalar.count == 500
        assert batched.sum == pytest.approx(scalar.sum)

    def test_sum_count_mean(self, reg):
        h = reg.histogram("lat", buckets=(10.0,))
        h.observe(2.0)
        h.observe(4.0)
        assert h.count == 2
        assert h.sum == pytest.approx(6.0)
        assert h.mean == pytest.approx(3.0)
        assert reg.histogram("empty", buckets=(1.0,)).mean == 0.0

    def test_quantile_interpolates(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5,) * 50 + (1.5,) * 50:
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(1.0, abs=0.05)
        assert 1.0 <= h.quantile(0.9) <= 2.0
        with pytest.raises(ReproError):
            h.quantile(1.5)

    def test_invalid_edges(self, reg):
        with pytest.raises(ReproError):
            reg.histogram("bad", buckets=())
        with pytest.raises(ReproError):
            reg.histogram("bad2", buckets=(1.0, 1.0))
        with pytest.raises(ReproError):
            reg.histogram("bad3", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_is_idempotent(self, reg):
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", labels={"k": "v"}) is reg.counter(
            "a", labels={"k": "v"}
        )
        assert reg.counter("a") is not reg.counter("a", labels={"k": "v"})
        assert len(reg) == 2

    def test_label_order_is_insensitive(self, reg):
        a = reg.gauge("g", labels={"x": "1", "y": "2"})
        b = reg.gauge("g", labels={"y": "2", "x": "1"})
        assert a is b

    def test_kind_conflict_raises(self, reg):
        reg.counter("n")
        with pytest.raises(ReproError):
            reg.gauge("n")

    def test_histogram_edge_conflict_raises(self, reg):
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ReproError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_empty_name_rejected(self, reg):
        with pytest.raises(ReproError):
            reg.counter("")

    def test_reset_zeroes_but_keeps_instruments(self, reg):
        c = reg.counter("a")
        c.inc(3)
        reg.reset()
        assert c.value == 0.0
        assert reg.counter("a") is c

    def test_reset_clear_forgets(self, reg):
        c = reg.counter("a")
        reg.reset(clear=True)
        assert len(reg) == 0
        assert reg.counter("a") is not c
        # The name is free again for another kind.
        reg.reset(clear=True)
        reg.gauge("a")

    def test_instruments_sorted(self, reg):
        reg.counter("b")
        reg.counter("a", labels={"z": "1"})
        reg.counter("a")
        names = [(i.name, i.labels) for i in reg.instruments()]
        assert names == sorted(names)


class TestDisabledFastPath:
    def test_disabled_writes_allocate_nothing(self, reg):
        """The permanent-instrumentation contract: a disabled write is an
        attribute check plus return — zero new allocations."""
        c = reg.counter("a")
        g = reg.gauge("b")
        h = reg.histogram("c", buckets=(1.0,))
        reg.disable()
        # Warm up any lazy interpreter state before measuring.
        c.inc()
        g.set(1)
        h.observe(1.0)
        tracemalloc.start()
        for _ in range(100):
            c.inc()
            g.set(2)
            h.observe(0.5)
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert current == 0


class TestExporters:
    def test_snapshot_shape(self, reg):
        reg.counter("c", help="a counter").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"] == {
            "kind": "counter",
            "help": "a counter",
            "series": [{"labels": {}, "value": 2.0}],
        }
        assert snap["h"]["series"][0]["value"]["counts"] == [1, 0]

    def test_json_round_trip(self, reg, tmp_path):
        reg.counter("c", labels={"k": "v"}).inc(3)
        parsed = json.loads(reg.to_json())
        assert parsed["c"]["series"][0] == {"labels": {"k": "v"}, "value": 3.0}
        path = tmp_path / "m.json"
        reg.write_json(path)
        assert json.loads(path.read_text(encoding="utf-8")) == parsed

    def test_prometheus_counter_and_gauge(self, reg):
        reg.counter("c_total", help="things").inc(4)
        reg.gauge("g", labels={"node": "A9"}).set(2.5)
        text = reg.to_prometheus()
        assert "# HELP c_total things" in text
        assert "# TYPE c_total counter" in text
        assert "c_total 4" in text
        assert 'g{node="A9"} 2.5' in text
        assert text.endswith("\n")

    def test_prometheus_histogram_cumulative_buckets(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 11" in text
        assert "lat_count 3" in text

    def test_prometheus_escapes_label_values(self, reg):
        reg.gauge("g", labels={"k": 'a"b\\c'}).set(1)
        assert 'g{k="a\\"b\\\\c"} 1' in reg.to_prometheus()

    def test_empty_registry_exports(self, reg):
        assert reg.to_prometheus() == ""
        assert reg.snapshot() == {}


class TestSingleton:
    def test_process_wide_and_disabled_by_default(self):
        assert get_registry() is get_registry()
        assert get_registry().enabled is False
