"""Tests for the simulated node executor."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.hardware.node import NonIdealities, SimulatedNode
from repro.hardware.specs import a9, k10
from repro.workloads.base import ActivityFactors
from repro.workloads.generator import JobTrace, TracePhase

#: A node with every second-order effect disabled — behaves exactly like
#: the analytic model.
IDEAL = NonIdealities(
    dispatch_overhead_s=0.0,
    dispatch_jitter_frac=0.0,
    phase_overhead_s=0.0,
    warmup_mem_factor=0.0,
    mem_freq_invariant_frac=0.0,
)

FULL = ActivityFactors(1.0, 1.0, 1.0, 1.0)


def _trace(node_type, core=0.0, mem=0.0, io=0.0, ops=1.0, phases=1):
    return JobTrace(
        workload_name="test",
        node_type=node_type,
        ops_total=ops,
        phases=tuple(
            TracePhase(
                ops=ops / phases,
                core_cycles=core / phases,
                mem_cycles=mem / phases,
                io_bytes=io / phases,
            )
            for _ in range(phases)
        ),
    )


class TestIdealExecution:
    def test_core_bound_time(self, rng):
        spec = a9()
        node = SimulatedNode(spec, rng, IDEAL)
        cycles = spec.cores * spec.fmax_hz  # exactly one second of work
        run = node.execute(_trace("A9", core=cycles), FULL)
        assert run.elapsed_s == pytest.approx(1.0)

    def test_memory_bound_time(self, rng):
        spec = a9()
        node = SimulatedNode(spec, rng, IDEAL)
        run = node.execute(_trace("A9", mem=spec.fmax_hz * 2.0), FULL)
        assert run.elapsed_s == pytest.approx(2.0)

    def test_io_bound_time(self, rng):
        spec = a9()
        node = SimulatedNode(spec, rng, IDEAL)
        run = node.execute(_trace("A9", io=spec.nic_bps / 8.0 * 3.0), FULL)
        assert run.elapsed_s == pytest.approx(3.0)

    def test_overlap_takes_max_not_sum(self, rng):
        spec = a9()
        node = SimulatedNode(spec, rng, IDEAL)
        run = node.execute(
            _trace(
                "A9",
                core=spec.cores * spec.fmax_hz,  # 1 s
                mem=spec.fmax_hz * 0.5,  # 0.5 s, hidden by core
                io=spec.nic_bps / 8.0 * 0.25,  # 0.25 s, DMA overlapped
            ),
            FULL,
        )
        assert run.elapsed_s == pytest.approx(1.0)

    def test_io_service_floor_binds(self, rng):
        spec = a9()
        node = SimulatedNode(spec, rng, IDEAL)
        run = node.execute(
            _trace("A9", io=1.0, ops=1.0),
            FULL,
            io_service_floor_s_per_op=5.0,
        )
        assert run.elapsed_s == pytest.approx(5.0)

    def test_power_components_add_up(self, rng):
        spec = a9()
        node = SimulatedNode(spec, rng, IDEAL)
        cycles = spec.cores * spec.fmax_hz
        run = node.execute(_trace("A9", core=cycles), FULL)
        # Core-bound at full activity: idle + cpu_active power only.
        expected = spec.power.idle_w + spec.power.cpu_active_w
        assert run.mean_power_w == pytest.approx(expected)

    def test_frequency_scales_core_time(self, rng):
        spec = k10()
        node = SimulatedNode(spec, rng, IDEAL)
        cycles = spec.cores * spec.fmax_hz
        fast = node.execute(_trace("K10", core=cycles), FULL)
        slow = node.execute(
            _trace("K10", core=cycles), FULL, frequency_hz=spec.fmin_hz
        )
        assert slow.elapsed_s == pytest.approx(
            fast.elapsed_s * spec.fmax_hz / spec.fmin_hz
        )

    def test_cores_scale_core_time(self, rng):
        spec = k10()
        node = SimulatedNode(spec, rng, IDEAL)
        cycles = spec.cores * spec.fmax_hz
        full = node.execute(_trace("K10", core=cycles), FULL)
        half = node.execute(_trace("K10", core=cycles), FULL, cores=3)
        assert half.elapsed_s == pytest.approx(full.elapsed_s * 2.0)

    def test_counters_accumulate(self, rng):
        spec = a9()
        node = SimulatedNode(spec, rng, IDEAL)
        run = node.execute(_trace("A9", core=1e9, mem=2e9, io=1e6, phases=4), FULL)
        assert run.true_work_cycles == pytest.approx(1e9)
        assert run.true_mem_cycles == pytest.approx(2e9)
        assert run.true_net_bytes == pytest.approx(1e6)
        assert run.true_stall_cycles > 0  # mem exceeds core here


class TestNonIdealities:
    def test_dispatch_overhead_extends_run(self, rng):
        spec = a9()
        ni = NonIdealities(
            dispatch_overhead_s=0.5,
            dispatch_jitter_frac=0.0,
            phase_overhead_s=0.0,
            warmup_mem_factor=0.0,
            mem_freq_invariant_frac=0.0,
        )
        node = SimulatedNode(spec, rng, ni)
        run = node.execute(_trace("A9", core=spec.cores * spec.fmax_hz), FULL)
        assert run.elapsed_s == pytest.approx(1.5)

    def test_phase_overhead_scales_with_phases(self, rng):
        spec = a9()
        ni = NonIdealities(
            dispatch_overhead_s=0.0,
            dispatch_jitter_frac=0.0,
            phase_overhead_s=0.1,
            warmup_mem_factor=0.0,
            mem_freq_invariant_frac=0.0,
        )
        node = SimulatedNode(spec, rng, ni)
        run = node.execute(
            _trace("A9", core=spec.cores * spec.fmax_hz, phases=5), FULL
        )
        assert run.elapsed_s == pytest.approx(1.5)

    def test_warmup_inflates_first_phase_memory(self, rng):
        spec = a9()
        ni = NonIdealities(
            dispatch_overhead_s=0.0,
            dispatch_jitter_frac=0.0,
            phase_overhead_s=0.0,
            warmup_mem_factor=0.5,
            mem_freq_invariant_frac=0.0,
        )
        node = SimulatedNode(spec, rng, ni)
        run = node.execute(_trace("A9", mem=spec.fmax_hz, phases=2), FULL)
        # First of two phases inflated by 50%: total 1.25 s instead of 1 s.
        assert run.elapsed_s == pytest.approx(1.25)

    def test_mem_freq_invariance_helps_at_low_frequency(self, rng):
        spec = a9()
        ni = NonIdealities(
            dispatch_overhead_s=0.0,
            dispatch_jitter_frac=0.0,
            phase_overhead_s=0.0,
            warmup_mem_factor=0.0,
            mem_freq_invariant_frac=0.5,
        )
        ideal_node = SimulatedNode(spec, rng, IDEAL)
        real_node = SimulatedNode(spec, rng, ni)
        mem = spec.fmax_hz  # 1 s of memory time at fmax
        t_ideal = ideal_node.execute(
            _trace("A9", mem=mem), FULL, frequency_hz=spec.fmin_hz
        ).elapsed_s
        t_real = real_node.execute(
            _trace("A9", mem=mem), FULL, frequency_hz=spec.fmin_hz
        ).elapsed_s
        # The model (cycles/f) predicts t_ideal; DRAM latency does not slow
        # down with the core clock, so the real run is faster.
        assert t_real < t_ideal

    def test_dispatch_jitter_varies_runs(self):
        spec = a9()
        ni = NonIdealities(dispatch_overhead_s=0.1, dispatch_jitter_frac=0.5)
        node = SimulatedNode(spec, np.random.default_rng(5), ni)
        runs = {
            node.execute(_trace("A9", core=1e9), FULL).elapsed_s for _ in range(5)
        }
        assert len(runs) > 1


class TestValidationErrors:
    def test_wrong_node_type_rejected(self, rng):
        node = SimulatedNode(a9(), rng, IDEAL)
        with pytest.raises(MeasurementError):
            node.execute(_trace("K10", core=1e9), FULL)

    def test_invalid_operating_point_rejected(self, rng):
        node = SimulatedNode(a9(), rng, IDEAL)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            node.execute(_trace("A9", core=1e9), FULL, cores=9)

    def test_idle_segments(self, rng):
        node = SimulatedNode(a9(), rng, IDEAL)
        segs = node.idle_segments(10.0)
        assert len(segs) == 1
        assert segs[0].power_w == pytest.approx(1.8)
        assert node.idle_segments(0.0) == ()
        with pytest.raises(MeasurementError):
            node.idle_segments(-1.0)

    def test_nonidealities_validation(self):
        with pytest.raises(MeasurementError):
            NonIdealities(dispatch_overhead_s=-1.0)
        with pytest.raises(MeasurementError):
            NonIdealities(mem_freq_invariant_frac=1.5)

    def test_true_energy_consistency(self, rng):
        spec = a9()
        node = SimulatedNode(spec, rng, IDEAL)
        run = node.execute(_trace("A9", core=1e9), FULL)
        assert run.true_energy_j == pytest.approx(
            run.mean_power_w * run.elapsed_s
        )
