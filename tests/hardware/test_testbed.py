"""Tests for the measurable simulated testbed."""

import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import MeasurementError
from repro.hardware.testbed import Testbed, validation_testbed
from repro.model.energy_model import job_energy
from repro.model.time_model import job_execution, node_service_rate
from repro.util.rng import RngRegistry


def _split_for(workload, config):
    """Per-node work shares from the model's service rates."""
    rates = {
        g.spec.name: node_service_rate(g, workload.demand_for(g.spec.name))
        for g in config.groups
    }
    total = sum(rates[g.spec.name] * g.count for g in config.groups)
    return {name: r / total for name, r in rates.items()}


class TestConstruction:
    def test_node_count(self, registry):
        tb = validation_testbed(registry, n_wimpy=4, n_brawny=1)
        assert tb.n_nodes == 5

    def test_config_exposed(self, registry):
        tb = validation_testbed(registry)
        assert tb.config.count_of("A9") == 4
        assert tb.config.count_of("K10") == 1

    def test_node_lookup(self, registry):
        tb = validation_testbed(registry)
        assert tb.node_of_type("A9").spec.name == "A9"
        assert tb.meter_for_type("K10") is not None
        with pytest.raises(MeasurementError):
            tb.node_of_type("Xeon")
        with pytest.raises(MeasurementError):
            tb.meter_for_type("Xeon")


class TestRunJob:
    def test_measured_close_to_model(self, registry, workloads):
        """The testbed deviates from the model only by second-order effects."""
        w = workloads["EP"].with_job_size(workloads["EP"].ops_per_job * 16)
        config = ClusterConfiguration.mix({"A9": 4, "K10": 1})
        tb = Testbed(config, registry)
        measured = tb.run_job(w, work_split=_split_for(w, config))
        model_time = job_execution(w, config).tp_s
        model_energy = job_energy(w, config).e_total_j
        assert measured.makespan_s == pytest.approx(model_time, rel=0.15)
        assert measured.energy_j == pytest.approx(model_energy, rel=0.15)

    def test_measured_slower_than_model(self, registry, workloads):
        """Overheads and stragglers only ever ADD time."""
        w = workloads["julius"].with_job_size(workloads["julius"].ops_per_job * 16)
        config = ClusterConfiguration.mix({"A9": 4, "K10": 1})
        tb = Testbed(config, registry)
        measured = tb.run_job(w, work_split=_split_for(w, config))
        assert measured.makespan_s > job_execution(w, config).tp_s

    def test_bad_split_rejected(self, registry, workloads):
        config = ClusterConfiguration.mix({"A9": 4, "K10": 1})
        tb = Testbed(config, registry)
        with pytest.raises(MeasurementError):
            tb.run_job(workloads["EP"], work_split={"A9": 0.1, "K10": 0.1})

    def test_empty_split_rejected(self, registry, workloads):
        config = ClusterConfiguration.mix({"A9": 4, "K10": 1})
        tb = Testbed(config, registry)
        with pytest.raises(MeasurementError):
            tb.run_job(workloads["EP"], work_split={})

    def test_partial_split_idles_unused_type(self, registry, workloads):
        """All work on the K10; the A9s idle but still burn energy."""
        w = workloads["EP"]
        config = ClusterConfiguration.mix({"A9": 4, "K10": 1})
        tb = Testbed(config, registry)
        measured = tb.run_job(w, work_split={"K10": 1.0})
        assert len(measured.node_runs) == 1
        # Energy must include the idling A9s: more than the K10 run alone.
        k10_run = measured.node_runs[0]
        assert measured.energy_j > k10_run.true_energy_j

    def test_distinct_jobs_differ(self, registry, workloads):
        w = workloads["julius"]
        config = ClusterConfiguration.mix({"A9": 2, "K10": 1})
        tb = Testbed(config, registry)
        split = _split_for(w, config)
        a = tb.run_job(w, work_split=split, job_index=0)
        b = tb.run_job(w, work_split=split, job_index=1)
        assert a.makespan_s != b.makespan_s

    def test_mean_power_sane(self, registry, workloads):
        w = workloads["EP"]
        config = ClusterConfiguration.mix({"A9": 4, "K10": 1})
        tb = Testbed(config, registry)
        measured = tb.run_job(w, work_split=_split_for(w, config))
        # Between cluster idle (52.2 W) and a loose dynamic ceiling.
        assert config.idle_w < measured.mean_power_w < config.idle_w + 50.0
