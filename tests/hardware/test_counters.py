"""Tests for the simulated perf counters."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.hardware.counters import CounterSet, PerfReader


class TestCounterSet:
    def test_work_cycles(self):
        c = CounterSet(
            cycles=100, stall_cycles=30, instructions=105, llc_misses=1,
            net_bytes=0, elapsed_s=1.0,
        )
        assert c.work_cycles == 70

    def test_stall_fraction(self):
        c = CounterSet(
            cycles=100, stall_cycles=25, instructions=100, llc_misses=1,
            net_bytes=0, elapsed_s=1.0,
        )
        assert c.stall_fraction == pytest.approx(0.25)

    def test_ipc(self):
        c = CounterSet(
            cycles=200, stall_cycles=0, instructions=300, llc_misses=0,
            net_bytes=0, elapsed_s=1.0,
        )
        assert c.ipc == pytest.approx(1.5)

    def test_zero_cycles_fractions(self):
        c = CounterSet(
            cycles=0, stall_cycles=0, instructions=0, llc_misses=0,
            net_bytes=0, elapsed_s=1.0,
        )
        assert c.stall_fraction == 0.0
        assert c.ipc == 0.0

    def test_negative_counter_rejected(self):
        with pytest.raises(MeasurementError):
            CounterSet(
                cycles=-1, stall_cycles=0, instructions=0, llc_misses=0,
                net_bytes=0, elapsed_s=1.0,
            )

    def test_zero_elapsed_rejected(self):
        with pytest.raises(MeasurementError):
            CounterSet(
                cycles=1, stall_cycles=0, instructions=0, llc_misses=0,
                net_bytes=0, elapsed_s=0.0,
            )

    def test_mem_cycles_estimate_roundtrip(self):
        reader = PerfReader(np.random.default_rng(0), jitter_frac=0.0)
        snap = reader.read(
            work_cycles=1e9, stall_cycles=1e8, mem_cycles=5e8, net_bytes=0,
            elapsed_s=1.0,
        )
        assert snap.mem_cycles_estimate == pytest.approx(5e8)


class TestPerfReader:
    def test_zero_jitter_is_exact(self, rng):
        reader = PerfReader(rng, jitter_frac=0.0)
        snap = reader.read(
            work_cycles=1000.0, stall_cycles=200.0, mem_cycles=400.0,
            net_bytes=64.0, elapsed_s=0.5,
        )
        assert snap.work_cycles == pytest.approx(1000.0)
        assert snap.stall_cycles == pytest.approx(200.0)
        assert snap.net_bytes == pytest.approx(64.0)

    def test_jitter_is_small(self, rng):
        reader = PerfReader(rng, jitter_frac=0.003)
        snap = reader.read(
            work_cycles=1e9, stall_cycles=1e8, mem_cycles=2e8, net_bytes=1e6,
            elapsed_s=1.0,
        )
        assert snap.work_cycles == pytest.approx(1e9, rel=0.02)
        assert snap.stall_cycles == pytest.approx(1e8, rel=0.02)

    def test_zero_counters_stay_zero(self, rng):
        reader = PerfReader(rng, jitter_frac=0.01)
        snap = reader.read(
            work_cycles=0.0, stall_cycles=0.0, mem_cycles=0.0, net_bytes=0.0,
            elapsed_s=1.0,
        )
        assert snap.cycles == 0.0
        assert snap.net_bytes == 0.0

    def test_negative_jitter_rejected(self, rng):
        with pytest.raises(MeasurementError):
            PerfReader(rng, jitter_frac=-0.1)

    def test_counters_never_negative(self):
        reader = PerfReader(np.random.default_rng(3), jitter_frac=2.0)
        for _ in range(50):
            snap = reader.read(
                work_cycles=10.0, stall_cycles=10.0, mem_cycles=10.0,
                net_bytes=10.0, elapsed_s=1.0,
            )
            assert snap.cycles >= 0
            assert snap.llc_misses >= 0
