"""Tests for node specifications (paper Table 5)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.specs import (
    A9_NODES_PER_SWITCH,
    SWITCH_PEAK_W,
    DvfsPoint,
    NodeSpec,
    PowerProfile,
    a9,
    get_node_spec,
    k10,
    register_node_spec,
    registered_node_names,
)
from repro.util.units import GBPS, GHZ, MBPS


class TestPaperTable5:
    """Pin the built-in nodes to the paper's published specification."""

    def test_a9_isa_and_cores(self):
        spec = a9()
        assert spec.isa == "ARMv7-A"
        assert spec.cores == 4

    def test_a9_clock_range(self):
        spec = a9()
        assert spec.fmin_hz == pytest.approx(0.2 * GHZ)
        assert spec.fmax_hz == pytest.approx(1.4 * GHZ)

    def test_a9_has_five_frequencies(self):
        # Footnote 4 counts 5 selectable frequencies for the ARM node.
        assert len(a9().frequencies_hz) == 5

    def test_a9_io_bandwidth(self):
        assert a9().nic_bps == pytest.approx(100 * MBPS)

    def test_a9_powers(self):
        spec = a9()
        assert spec.power.idle_w == pytest.approx(1.8)
        assert spec.power.nameplate_peak_w == pytest.approx(5.0)

    def test_k10_isa_and_cores(self):
        spec = k10()
        assert spec.isa == "x86_64"
        assert spec.cores == 6

    def test_k10_clock_range(self):
        spec = k10()
        assert spec.fmin_hz == pytest.approx(0.8 * GHZ)
        assert spec.fmax_hz == pytest.approx(2.1 * GHZ)

    def test_k10_has_three_frequencies(self):
        # Footnote 4 counts 3 selectable frequencies for the AMD node.
        assert len(k10().frequencies_hz) == 3

    def test_k10_io_bandwidth(self):
        assert k10().nic_bps == pytest.approx(1 * GBPS)

    def test_k10_powers(self):
        spec = k10()
        assert spec.power.idle_w == pytest.approx(45.0)
        assert spec.power.nameplate_peak_w == pytest.approx(60.0)

    def test_k10_has_l3_a9_does_not(self):
        assert a9().l3_bytes is None
        assert k10().l3_bytes is not None

    def test_idle_ratio_at_least_25x(self):
        # Paper: "the idle power of A9 is at least 25 times lower than K10".
        assert k10().power.idle_w / a9().power.idle_w >= 25.0

    def test_switch_constants(self):
        # Footnote 3: 20 W switch, 8:1 substitution -> 8 nodes per switch.
        assert SWITCH_PEAK_W == 20.0
        assert A9_NODES_PER_SWITCH == 8


class TestDvfs:
    def test_voltage_lookup(self):
        spec = a9()
        assert spec.voltage_at(spec.fmax_hz) == spec.dvfs[-1].voltage_v

    def test_unknown_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            a9().voltage_at(0.3 * GHZ)

    def test_power_scale_is_one_at_max(self):
        spec = k10()
        assert spec.cpu_power_scale(spec.cores, spec.fmax_hz) == pytest.approx(1.0)

    def test_power_scale_decreases_with_cores(self):
        spec = k10()
        full = spec.cpu_power_scale(6, spec.fmax_hz)
        half = spec.cpu_power_scale(3, spec.fmax_hz)
        assert half == pytest.approx(full / 2)

    def test_power_scale_decreases_with_frequency(self):
        spec = a9()
        assert spec.cpu_power_scale(4, spec.fmin_hz) < spec.cpu_power_scale(4, spec.fmax_hz)

    def test_power_scale_superlinear_in_frequency(self):
        # f * V(f)^2 falls faster than f alone because voltage drops too.
        spec = a9()
        ratio_f = spec.fmin_hz / spec.fmax_hz
        assert spec.cpu_power_scale(4, spec.fmin_hz) < ratio_f

    def test_invalid_core_count_rejected(self):
        spec = a9()
        with pytest.raises(ConfigurationError):
            spec.validate_operating_point(0, spec.fmax_hz)
        with pytest.raises(ConfigurationError):
            spec.validate_operating_point(5, spec.fmax_hz)

    def test_voltages_increase_with_frequency(self):
        for spec in (a9(), k10()):
            voltages = [p.voltage_v for p in spec.dvfs]
            assert voltages == sorted(voltages)


class TestValidation:
    def test_dvfs_table_must_be_sorted(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(
                name="bad",
                isa="x",
                cores=1,
                dvfs=(DvfsPoint(2e9, 1.0), DvfsPoint(1e9, 0.9)),
                l1d_bytes_per_core=1,
                l2_bytes=1,
                l3_bytes=None,
                memory_bytes=1,
                memory_type="t",
                nic_bps=1.0,
                mem_bandwidth_bytes_per_s=1.0,
                power=PowerProfile(1, 1, 1, 1, 1, 2),
            )

    def test_stall_power_cannot_exceed_active(self):
        with pytest.raises(ConfigurationError):
            PowerProfile(
                idle_w=1, cpu_active_w=1, cpu_stall_w=2, memory_w=0, network_w=0,
                nameplate_peak_w=5,
            )

    def test_nameplate_below_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerProfile(
                idle_w=10, cpu_active_w=5, cpu_stall_w=1, memory_w=0, network_w=0,
                nameplate_peak_w=5,
            )

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerProfile(
                idle_w=-1, cpu_active_w=5, cpu_stall_w=1, memory_w=0, network_w=0,
                nameplate_peak_w=5,
            )

    def test_dvfs_point_validation(self):
        with pytest.raises(ConfigurationError):
            DvfsPoint(frequency_hz=0.0, voltage_v=1.0)
        with pytest.raises(ConfigurationError):
            DvfsPoint(frequency_hz=1e9, voltage_v=0.0)

    def test_dynamic_ceiling(self):
        p = a9().power
        assert p.dynamic_ceiling_w == pytest.approx(
            p.cpu_active_w + p.memory_w + p.network_w
        )


class TestRegistry:
    def test_builtins_registered(self):
        assert "A9" in registered_node_names()
        assert "K10" in registered_node_names()

    def test_lookup_roundtrip(self):
        assert get_node_spec("A9").name == "A9"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_node_spec("Xeon")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_node_spec(a9())

    def test_overwrite_allowed_when_requested(self):
        register_node_spec(a9(), overwrite=True)
        assert get_node_spec("A9").cores == 4

    def test_str_summary(self):
        text = str(a9())
        assert "A9" in text and "ARMv7-A" in text
