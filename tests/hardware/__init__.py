"""Test package."""
