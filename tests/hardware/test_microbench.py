"""Tests for micro-benchmarks and power characterization."""

import pytest

from repro.errors import MeasurementError
from repro.hardware.microbench import (
    cache_antagonist_trace,
    characterize_node_power,
    cpu_max_trace,
    net_blast_trace,
    run_microbenchmark,
)
from repro.hardware.node import NonIdealities, SimulatedNode
from repro.hardware.powermeter import PowerMeter
from repro.hardware.specs import a9, k10


@pytest.fixture()
def quiet_meter(registry):
    """An unbiased meter so characterization error comes from the method."""
    return PowerMeter(
        registry.stream("meter"), noise_frac=0.001, gain_error_frac=0.0,
        resolution_w=0.01,
    )


class TestBenchTraces:
    def test_cpu_max_duration(self, registry, quiet_meter):
        spec = a9()
        node = SimulatedNode(spec, registry.stream("node"))
        result, _ = run_microbenchmark(node, cpu_max_trace(spec, 5.0), quiet_meter)
        assert result.elapsed_s == pytest.approx(5.0, rel=0.05)

    def test_cpu_max_is_pure_core(self):
        trace = cpu_max_trace(a9(), 5.0)
        assert trace.total_mem_cycles == 0.0
        assert trace.total_io_bytes == 0.0
        assert trace.total_core_cycles > 0

    def test_antagonist_is_stall_dominated(self):
        spec = a9()
        trace = cache_antagonist_trace(spec, 5.0)
        # Memory time dominates core time by the antagonist ratio.
        t_core = trace.total_core_cycles / (spec.cores * spec.fmax_hz)
        t_mem = trace.total_mem_cycles / spec.fmax_hz
        assert t_mem / t_core == pytest.approx(25.0, rel=0.01)

    def test_net_blast_saturates_nic(self):
        spec = a9()
        trace = net_blast_trace(spec, 5.0)
        assert trace.total_io_bytes == pytest.approx(5.0 * spec.nic_bps / 8.0)

    def test_invalid_duration_rejected(self):
        with pytest.raises(MeasurementError):
            cpu_max_trace(a9(), 0.0)
        with pytest.raises(MeasurementError):
            cache_antagonist_trace(a9(), -1.0)
        with pytest.raises(MeasurementError):
            net_blast_trace(a9(), 0.0)


class TestPowerCharacterization:
    @pytest.mark.parametrize("make_spec", [a9, k10])
    def test_recovers_true_profile(self, registry, quiet_meter, make_spec):
        spec = make_spec()
        node = SimulatedNode(spec, registry.stream("node"))
        measured = characterize_node_power(node, quiet_meter)
        true = spec.power
        assert measured.power.idle_w == pytest.approx(true.idle_w, rel=0.02)
        assert measured.power.cpu_active_w == pytest.approx(true.cpu_active_w, rel=0.05)
        # The antagonist leaves ~4% of the stall power hidden behind its
        # small core loop; allow a slightly wider band.
        assert measured.power.cpu_stall_w == pytest.approx(true.cpu_stall_w, rel=0.12)
        assert measured.power.network_w == pytest.approx(true.network_w, rel=0.10)

    def test_memory_power_comes_from_spec_sheet(self, registry, quiet_meter):
        spec = a9()
        node = SimulatedNode(spec, registry.stream("node"))
        measured = characterize_node_power(
            node, quiet_meter, memory_power_spec_w=0.42
        )
        assert measured.power.memory_w == 0.42

    def test_returns_same_identity(self, registry, quiet_meter):
        spec = k10()
        node = SimulatedNode(spec, registry.stream("node"))
        measured = characterize_node_power(node, quiet_meter)
        assert measured.name == spec.name
        assert measured.cores == spec.cores
        assert measured.frequencies_hz == spec.frequencies_hz
        assert measured.power.nameplate_peak_w == spec.power.nameplate_peak_w

    def test_biased_meter_biases_profile(self, registry):
        spec = a9()
        node = SimulatedNode(spec, registry.stream("node"))
        import numpy as np

        # Find a seed with a visibly positive gain error.
        meter = PowerMeter(
            np.random.default_rng(11), noise_frac=0.0, gain_error_frac=0.05,
            resolution_w=0.0,
        )
        measured = characterize_node_power(node, meter)
        assert measured.power.idle_w == pytest.approx(
            spec.power.idle_w * meter.gain, rel=0.01
        )
