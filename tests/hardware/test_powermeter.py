"""Tests for the simulated power meter."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.hardware.powermeter import EnergyMeasurement, PowerMeter, PowerSegment


def _ideal_meter(rng):
    """A noiseless, unbiased, unquantised instrument."""
    return PowerMeter(rng, noise_frac=0.0, gain_error_frac=0.0, resolution_w=0.0)


class TestPowerSegment:
    def test_negative_duration_rejected(self):
        with pytest.raises(MeasurementError):
            PowerSegment(duration_s=-1.0, power_w=1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(MeasurementError):
            PowerSegment(duration_s=1.0, power_w=-1.0)


class TestIdealMeter:
    def test_constant_power_exact(self, rng):
        meter = _ideal_meter(rng)
        m = meter.measure_constant(5.0, 10.0)
        assert m.energy_j == pytest.approx(50.0)
        assert m.mean_power_w == pytest.approx(5.0)

    def test_two_equal_segments_average(self, rng):
        meter = _ideal_meter(rng)
        m = meter.measure(
            [PowerSegment(5.0, 2.0), PowerSegment(5.0, 4.0)]
        )
        assert m.mean_power_w == pytest.approx(3.0, rel=0.05)

    def test_sample_count_matches_rate(self, rng):
        meter = _ideal_meter(rng)
        m = meter.measure_constant(1.0, 10.0)
        assert m.n_samples == 100  # 10 Hz for 10 s

    def test_short_run_still_sampled(self, rng):
        meter = _ideal_meter(rng)
        m = meter.measure_constant(3.0, 0.01)
        assert m.n_samples >= 1
        assert m.energy_j == pytest.approx(0.03)

    def test_zero_duration_segments_skipped(self, rng):
        meter = _ideal_meter(rng)
        m = meter.measure(
            [PowerSegment(0.0, 100.0), PowerSegment(1.0, 2.0)]
        )
        assert m.energy_j == pytest.approx(2.0)

    def test_empty_profile_rejected(self, rng):
        with pytest.raises(MeasurementError):
            _ideal_meter(rng).measure([])

    def test_all_zero_duration_rejected(self, rng):
        with pytest.raises(MeasurementError):
            _ideal_meter(rng).measure([PowerSegment(0.0, 1.0)])


class TestRealisticMeter:
    def test_gain_is_fixed_per_instrument(self, rng):
        meter = PowerMeter(rng, gain_error_frac=0.05)
        assert meter.gain == meter.gain  # stable
        a = meter.measure_constant(10.0, 100.0)
        b = meter.measure_constant(10.0, 100.0)
        # Same instrument, same long window: measurements agree closely.
        assert a.mean_power_w == pytest.approx(b.mean_power_w, rel=0.01)

    def test_different_instruments_different_gains(self):
        g1 = PowerMeter(np.random.default_rng(1), gain_error_frac=0.05).gain
        g2 = PowerMeter(np.random.default_rng(2), gain_error_frac=0.05).gain
        assert g1 != g2

    def test_noise_averages_out_over_long_windows(self, rng):
        meter = PowerMeter(rng, noise_frac=0.05, gain_error_frac=0.0)
        m = meter.measure_constant(10.0, 1000.0)
        assert m.mean_power_w == pytest.approx(10.0, rel=0.01)

    def test_quantisation_rounds_to_resolution(self, rng):
        meter = PowerMeter(
            rng, noise_frac=0.0, gain_error_frac=0.0, resolution_w=0.5
        )
        m = meter.measure_constant(1.8, 10.0)
        # 1.8 W quantised to 0.5 W steps -> every sample reads 2.0 W.
        assert m.mean_power_w == pytest.approx(2.0)

    def test_negative_parameters_rejected(self, rng):
        with pytest.raises(MeasurementError):
            PowerMeter(rng, sample_hz=0.0)
        with pytest.raises(MeasurementError):
            PowerMeter(rng, noise_frac=-0.1)

    def test_readings_never_negative(self, rng):
        meter = PowerMeter(rng, noise_frac=3.0)  # absurd noise
        m = meter.measure_constant(0.1, 10.0)
        assert m.energy_j >= 0.0


class TestEnergyMeasurement:
    def test_mean_power(self):
        m = EnergyMeasurement(energy_j=100.0, duration_s=10.0, n_samples=100)
        assert m.mean_power_w == pytest.approx(10.0)

    def test_zero_duration_mean_rejected(self):
        m = EnergyMeasurement(energy_j=0.0, duration_s=0.0, n_samples=0)
        with pytest.raises(MeasurementError):
            _ = m.mean_power_w
