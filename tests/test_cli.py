"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_mix, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_choices(self):
        args = build_parser().parse_args(["table", "7"])
        assert args.number == 7
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_mix_parsing(self):
        assert _parse_mix("A9=64,K10=8") == {"A9": 64, "K10": 8}
        assert _parse_mix("A9=1") == {"A9": 1}

    def test_mix_parsing_errors(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_mix("A9")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_mix("A9=x")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_mix("")


class TestCommands:
    def test_table7(self, capsys):
        assert main(["table", "7"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out
        assert "0.74" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "ARMv7-A" in capsys.readouterr().out

    def test_figure(self, capsys):
        assert main(["figure", "fig9"]) == 0
        assert "Pareto" in capsys.readouterr().out

    def test_figure_csv_export(self, capsys, tmp_path):
        assert main(["figure", "fig2", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig2.csv").exists()
        assert (tmp_path / "fig2.gp").exists()

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_report(self, capsys):
        assert main(["report", "EP", "--mix", "A9=4,K10=1"]) == 0
        out = capsys.readouterr().out
        assert "4 A9 : 1 K10" in out
        assert "EPM" in out

    def test_report_unknown_workload(self, capsys):
        assert main(["report", "doom"]) == 1
        assert "error" in capsys.readouterr().err

    def test_recommend(self, capsys):
        code = main(
            [
                "recommend", "blackscholes",
                "--deadline", "0.5",
                "--max-wimpy", "4",
                "--max-brawny", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Recommendation" in out
        assert "strategy" in out

    def test_recommend_infeasible(self, capsys):
        code = main(
            [
                "recommend", "x264",
                "--deadline", "0.000001",
                "--max-wimpy", "2",
                "--max-brawny", "1",
            ]
        )
        assert code == 1
        assert "No configuration" in capsys.readouterr().err

    def test_recommend_exhaustive(self, capsys):
        code = main(
            [
                "recommend", "EP",
                "--deadline", "1.0",
                "--max-wimpy", "2",
                "--max-brawny", "1",
                "--strategy", "exhaustive",
            ]
        )
        assert code == 0
        assert "exhaustive" in capsys.readouterr().out

    def test_validate_mc_defaults(self):
        args = build_parser().parse_args(["validate-mc"])
        assert args.jobs == 20_000
        assert args.reps == 40
        assert args.level == 0.99
        assert args.workloads is None
        assert args.seed is None

    def test_validate_mc_runs(self, capsys):
        # Small but real: one workload over the full mix/utilisation grid.
        code = main(
            [
                "validate-mc",
                "--jobs", "4000",
                "--reps", "15",
                "--workloads", "EP",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all cells agree" in out
        assert "Analytic M/D/1 p95" in out

    def test_validate_mc_unknown_workload(self, capsys):
        assert main(["validate-mc", "--workloads", "doom"]) == 1
        assert "error" in capsys.readouterr().err

    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "Sensitivity" in out
        assert "crossover" in out

    def test_characterize_command(self, capsys):
        assert main(["characterize", "EP", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Characterization of EP" in out
