"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_mix, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_choices(self):
        args = build_parser().parse_args(["table", "7"])
        assert args.number == 7
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_mix_parsing(self):
        assert _parse_mix("A9=64,K10=8") == {"A9": 64, "K10": 8}
        assert _parse_mix("A9=1") == {"A9": 1}

    def test_mix_parsing_errors(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_mix("A9")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_mix("A9=x")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_mix("")


class TestCommands:
    def test_table7(self, capsys):
        assert main(["table", "7"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out
        assert "0.74" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "ARMv7-A" in capsys.readouterr().out

    def test_figure(self, capsys):
        assert main(["figure", "fig9"]) == 0
        assert "Pareto" in capsys.readouterr().out

    def test_figure_csv_export(self, capsys, tmp_path):
        assert main(["figure", "fig2", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig2.csv").exists()
        assert (tmp_path / "fig2.gp").exists()

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_report(self, capsys):
        assert main(["report", "EP", "--mix", "A9=4,K10=1"]) == 0
        out = capsys.readouterr().out
        assert "4 A9 : 1 K10" in out
        assert "EPM" in out

    def test_report_unknown_workload(self, capsys):
        assert main(["report", "doom"]) == 1
        assert "error" in capsys.readouterr().err

    def test_recommend(self, capsys):
        code = main(
            [
                "recommend", "blackscholes",
                "--deadline", "0.5",
                "--max-wimpy", "4",
                "--max-brawny", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Recommendation" in out
        assert "strategy" in out

    def test_recommend_infeasible(self, capsys):
        code = main(
            [
                "recommend", "x264",
                "--deadline", "0.000001",
                "--max-wimpy", "2",
                "--max-brawny", "1",
            ]
        )
        assert code == 1
        assert "No configuration" in capsys.readouterr().err

    def test_recommend_exhaustive(self, capsys):
        code = main(
            [
                "recommend", "EP",
                "--deadline", "1.0",
                "--max-wimpy", "2",
                "--max-brawny", "1",
                "--strategy", "exhaustive",
            ]
        )
        assert code == 0
        assert "exhaustive" in capsys.readouterr().out

    def test_validate_mc_defaults(self):
        args = build_parser().parse_args(["validate-mc"])
        assert args.jobs == 20_000
        assert args.reps == 40
        assert args.level == 0.99
        assert args.workloads is None
        assert args.seed is None

    def test_validate_mc_runs(self, capsys):
        # Small but real: one workload over the full mix/utilisation grid.
        code = main(
            [
                "validate-mc",
                "--jobs", "4000",
                "--reps", "15",
                "--workloads", "EP",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all cells agree" in out
        assert "Analytic M/D/1 p95" in out

    def test_validate_mc_unknown_workload(self, capsys):
        assert main(["validate-mc", "--workloads", "doom"]) == 1
        assert "error" in capsys.readouterr().err

    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "Sensitivity" in out
        assert "crossover" in out

    def test_characterize_command(self, capsys):
        assert main(["characterize", "EP", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Characterization of EP" in out


class TestRobustnessCommand:
    # Smallest grid the command accepts: the baseline cell plus one
    # bursty arrival and one heavy-tailed service, skipping the contrast
    # and oracle-replay parts.
    _ARGV = [
        "robustness",
        "--workloads", "EP",
        "--arrivals", "poisson,mmpp",
        "--services", "deterministic,pareto",
        "--jobs", "1500",
        "--reps", "8",
        "--skip-contrast", "--skip-replay",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["robustness"])
        assert args.jobs == 4000
        assert args.reps == 12
        assert args.slo_mult is None  # resolved to DEFAULT_SLO_MULTIPLE
        assert args.workloads is None
        assert args.seed is None

    def test_runs_and_records_ledger(self, capsys):
        from repro.obs.ledger import default_ledger

        assert main(self._ARGV) == 0
        out = capsys.readouterr().out
        assert "SLO-constrained ranking" in out
        assert "Robustness summary" in out
        (exp,) = default_ledger().records(name="experiment/robustness")
        assert exp.extra["schema"] == "repro-robustness/1"
        assert exp.scalars["baseline_match_fraction"] == 1.0
        (cli,) = default_ledger().records(name="cli/robustness")
        assert cli.scalars["n_cells"] == 4.0

    def test_json_envelope(self, capsys):
        import json as _json

        assert main(self._ARGV + ["--json"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-robustness/1"
        assert len(doc["ranking"]) == 4
        assert doc["scalars"]["baseline_match_fraction"] == 1.0

    def test_grid_without_baseline_fails_cleanly(self, capsys):
        code = main(["robustness", "--arrivals", "mmpp"])
        assert code == 1
        assert "baseline" in capsys.readouterr().err


class TestVersionAndSeed:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out

    def test_top_level_seed_survives_subcommand_parsing(self):
        args = build_parser().parse_args(["--seed", "7", "schedule"])
        assert args.seed == 7
        args = build_parser().parse_args(["--seed", "7", "schedule", "--seed", "9"])
        assert args.seed == 9
        args = build_parser().parse_args(["sensitivity"])
        assert args.seed is None

    def test_sensitivity_draws(self, capsys):
        assert main(["--seed", "3", "sensitivity", "--draws", "2"]) == 0
        out = capsys.readouterr().out
        assert "Random perturbation draws (seed 3)" in out
        assert "% of 2 draws" in out


class TestScheduleCommand:
    def test_replay_is_deterministic(self, capsys):
        argv = ["schedule", "--policy", "ppr-greedy", "--trace", "diurnal",
                "--seed", "42", "--intervals", "8"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert "gap vs oracle" in first
        assert "EP / ppr-greedy" in first

    def test_top_level_seed_matches_subcommand_seed(self, capsys):
        assert main(["--seed", "42", "schedule", "--intervals", "8"]) == 0
        top = capsys.readouterr().out
        assert main(["schedule", "--seed", "42", "--intervals", "8"]) == 0
        assert capsys.readouterr().out == top

    def test_constant_trace_and_policy_choice(self, capsys):
        argv = ["schedule", "--workload", "x264", "--policy", "jsq",
                "--trace", "constant", "--demand", "0.3", "--intervals", "6"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "x264 / jsq" in out

    def test_unknown_workload_fails_cleanly(self, capsys):
        assert main(["schedule", "--workload", "doom"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_policy_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--policy", "fifo"])


class TestObservabilityFlags:
    def test_schedule_json_telemetry_stream(self, capsys):
        import json as _json

        argv = ["schedule", "--workload", "x264", "--policy", "ppr-greedy",
                "--seed", "42", "--intervals", "6", "--json"]
        assert main(argv) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-schedule/1"
        assert doc["workload"] == "x264"
        assert doc["seed"] == 42
        assert len(doc["telemetry"]) == 6
        sample = doc["telemetry"][0]
        assert {"t_s", "demand_fraction", "power_w", "arrivals"} <= set(sample)
        assert doc["summary"]["jobs_arrived"] == sum(
            s["arrivals"] for s in doc["telemetry"]
        )
        assert "oracle" in doc and "node_stats" in doc

    def test_schedule_json_rejects_full(self, capsys):
        assert main(["schedule", "--json", "--full"]) == 1
        assert "drop --full" in capsys.readouterr().err

    def test_trace_and_metrics_out(self, capsys, tmp_path):
        import json as _json

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        argv = ["schedule", "--intervals", "4", "--seed", "1",
                "--trace-out", str(trace), "--metrics-out", str(metrics)]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert f"[trace: {trace}]" in err
        assert f"[metrics: {metrics}]" in err
        trace_doc = _json.loads(trace.read_text(encoding="utf-8"))
        names = {e["name"] for e in trace_doc["traceEvents"]}
        assert "scheduler.run" in names
        assert all(e["ph"] == "X" for e in trace_doc["traceEvents"])
        metrics_doc = _json.loads(metrics.read_text(encoding="utf-8"))
        assert "repro_sched_dispatch_latency_s" in metrics_doc
        assert "repro_sched_power_transitions_total" in metrics_doc

    def test_obs_disabled_after_instrumented_run(self, capsys, tmp_path):
        from repro.obs import get_registry, get_tracer

        argv = ["schedule", "--intervals", "4",
                "--metrics-out", str(tmp_path / "m.json")]
        assert main(argv) == 0
        assert not get_registry().enabled
        assert not get_tracer().enabled

    def test_profile_wraps_schedule(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        argv = ["profile", "schedule", "--intervals", "4", "--seed", "7",
                "--trace-out", str(trace)]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "Flame summary" in captured.out
        assert "scheduler.run" in captured.out
        assert "repro_sched_jobs_dispatched_total" in captured.out
        assert trace.exists()

    def test_profile_propagates_outer_seed(self, capsys):
        assert main(["--seed", "42", "profile", "schedule", "--intervals", "6"]) == 0
        profiled = capsys.readouterr().out
        assert main(["schedule", "--seed", "42", "--intervals", "6"]) == 0
        plain = capsys.readouterr().out
        # The wrapped run replays the same seeded day.
        assert plain.strip().splitlines()[0] in profiled

    def test_profile_cannot_wrap_itself(self, capsys):
        assert main(["profile", "profile", "schedule"]) == 1
        assert "cannot wrap itself" in capsys.readouterr().err

    def test_log_level_flag(self, capsys):
        import logging

        assert main(["--log-level", "debug", "table", "7"]) == 0
        root = logging.getLogger("repro")
        assert root.level == logging.DEBUG
        root.setLevel(logging.WARNING)

    def test_bad_log_level_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "loud", "table", "7"])
