#!/usr/bin/env python
"""Gate CI on regressions of the floor-bearing benchmark metrics.

The benchmark suite refreshes ``BENCH_*.json`` at the repository root on
every run, and every envelope write also appends a ``bench/<name>``
record to the run ledger (:mod:`repro.obs.ledger`).  The gate therefore
prefers the *ledger* baseline — the mean of the prior recorded runs of
the same benchmark, exactly the baseline :func:`repro.obs.drift.diff_history`
uses — and only falls back to the committed artifact at a git ref
(default ``HEAD``) when no ledger history exists yet (fresh clone, first
run, or recording disabled via ``REPRO_LEDGER=0``).  Either way it fails
when any *floor-bearing* metric — the handful of numbers the benchmark
floor tests actually pin — regresses by more than the tolerance
(default 25%).  Improvements and sub-tolerance wobble pass; a missing
baseline (first run of a new benchmark, or a shallow checkout without
the artifact) is reported and skipped rather than failed, so the gate
never blocks the commit that introduces a benchmark.

Usage::

    python tools/bench_compare.py [--ref HEAD] [--tolerance 0.25]
                                  [--dir REPO_ROOT]

Exit status: 0 when every comparable metric is within tolerance, 1 on
any regression, 2 on a malformed artifact.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: The metrics the benchmark floor tests pin, as dotted paths into each
#: artifact.  Higher is better for every entry (speedups and rates);
#: anything not listed here is informational and never gates.
FLOOR_METRICS: Dict[str, Sequence[str]] = {
    "BENCH_sweep.json": ("speedup.batched_warm",),
    "BENCH_mc.json": (
        "scenarios.md1.speedup.simulate_phase",
        "scenarios.service_model.speedup.simulate_phase",
    ),
    "BENCH_mc_workers2.json": (
        "scenarios.md1.speedup.with_stats_parallel",
        "scenarios.service_model.speedup.with_stats_parallel",
    ),
    "BENCH_scheduler.json": ("events_per_s",),
    "BENCH_serve.json": ("speedup.batched_vs_resweep",),
}

#: Allowed fractional drop before the gate trips.  Benchmark machines in
#: CI are noisy neighbours; the floors these metrics back already carry
#: ~2x headroom, so a >25% drop signals a real regression, not jitter.
DEFAULT_TOLERANCE = 0.25


def lookup(doc: object, dotted: str) -> float:
    """Resolve a dotted path (``a.b.c``) into a nested dict of floats."""
    node = doc
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            raise KeyError(dotted)
        node = node[key]
    return float(node)  # type: ignore[arg-type]


def load_baseline(
    name: str, *, ref: str = "HEAD", repo_root: Optional[Path] = None
) -> Optional[Dict[str, object]]:
    """The committed artifact at ``ref``, or None when absent there."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        capture_output=True,
        cwd=repo_root,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout.decode("utf-8"))


def record_workers(params: object) -> int:
    """The worker count a params mapping records (absent = serial).

    Envelopes written before the parallel layer carried no ``workers``
    key; they were serial runs, so they normalise to 1.
    """
    if not isinstance(params, dict):
        return 1
    value = params.get("workers", 1)
    try:
        return int(value) if value else 1
    except (TypeError, ValueError):
        return 1


def _set_dotted(doc: Dict[str, object], dotted: str, value: float) -> None:
    node = doc
    keys = dotted.split(".")
    for key in keys[:-1]:
        node = node.setdefault(key, {})  # type: ignore[assignment]
    node[keys[-1]] = value


def load_ledger_baseline(
    name: str, fresh: Dict[str, object]
) -> Optional[Dict[str, object]]:
    """A baseline document synthesised from the run-ledger history.

    For each floor metric of ``name``, the baseline value is the mean of
    the *prior* ledger records of ``bench/<benchmark>`` (the newest record
    is the fresh run itself, appended when the artifact was written) —
    the same baseline :func:`repro.obs.drift.diff_history` compares
    against.  Returns None when the ledger is unavailable, disabled, or
    holds no prior history, in which case the git-show baseline applies.
    """
    try:
        from repro.obs.ledger import default_ledger, ledger_enabled
    except ImportError:
        return None
    if not ledger_enabled():
        return None
    benchmark = fresh.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        return None
    try:
        records = default_ledger().records(name=f"bench/{benchmark}")
    except OSError:
        return None
    # A 2-worker run is a different experiment from a serial one: the
    # parallel arm's speedups depend on core count, not code quality, so
    # mixed-worker means would gate on hardware, not regressions.  Only
    # records matching the fresh run's worker count are comparable.
    fresh_workers = record_workers(fresh.get("params"))
    prior = [
        rec
        for rec in records[:-1]
        if record_workers(rec.params) == fresh_workers
    ]
    if not prior:
        return None
    baseline: Dict[str, object] = {}
    for path in FLOOR_METRICS.get(name, ()):
        values = [
            float(rec.scalars[path])
            for rec in prior
            if isinstance(rec.scalars.get(path), (int, float))
        ]
        if values:
            _set_dotted(baseline, path, sum(values) / len(values))
    return baseline or None


def compare(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    paths: Sequence[str],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Dict[str, object]]:
    """Compare floor-bearing metrics; one row per comparable path.

    A path missing from the *baseline* (an older artifact schema) is
    skipped with ``"status": "no-baseline"``; missing from the *fresh*
    artifact it is an error — the benchmark stopped reporting a number
    its floor test depends on.
    """
    rows: List[Dict[str, object]] = []
    for path in paths:
        fresh_v = lookup(fresh, path)
        try:
            base_v = lookup(baseline, path)
        except KeyError:
            rows.append({"path": path, "fresh": fresh_v, "status": "no-baseline"})
            continue
        floor = base_v * (1.0 - tolerance)
        rows.append(
            {
                "path": path,
                "fresh": fresh_v,
                "baseline": base_v,
                "ratio": fresh_v / base_v if base_v else float("inf"),
                "status": "ok" if fresh_v >= floor else "regression",
            }
        )
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/bench_compare.py",
        description="Diff fresh BENCH_*.json against the committed baselines.",
    )
    parser.add_argument("--ref", default="HEAD", help="baseline git ref")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop (default: %(default)s)",
    )
    parser.add_argument(
        "--dir",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="directory holding the fresh artifacts (default: repo root)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        print(f"error: tolerance must be in [0, 1), got {args.tolerance}",
              file=sys.stderr)
        return 2

    failed = False
    for name, paths in sorted(FLOOR_METRICS.items()):
        fresh_path = args.dir / name
        if not fresh_path.exists():
            print(f"{name}: fresh artifact missing, skipped")
            continue
        try:
            fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            print(f"{name}: unreadable fresh artifact ({exc})", file=sys.stderr)
            return 2
        baseline = load_ledger_baseline(name, fresh)
        source = "ledger mean"
        if baseline is None:
            baseline = load_baseline(name, ref=args.ref, repo_root=args.dir)
            source = f"git {args.ref}"
            if baseline is not None:
                fresh_workers = record_workers(fresh.get("params"))
                base_workers = record_workers(baseline.get("params"))
                if base_workers != fresh_workers:
                    print(
                        f"{name}: baseline ran with workers={base_workers}, "
                        f"fresh with workers={fresh_workers} — not "
                        f"comparable, skipped"
                    )
                    continue
        if baseline is None:
            print(f"{name}: no baseline at {args.ref}, skipped")
            continue
        try:
            rows = compare(fresh, baseline, paths, tolerance=args.tolerance)
        except KeyError as exc:
            print(f"{name}: fresh artifact lacks floor metric {exc}",
                  file=sys.stderr)
            return 2
        for row in rows:
            if row["status"] == "no-baseline":
                print(f"{name}: {row['path']} = {row['fresh']:.4g} "
                      f"(no baseline value, skipped)")
                continue
            verdict = "OK" if row["status"] == "ok" else "REGRESSION"
            print(
                f"{name}: {row['path']} = {row['fresh']:.4g} vs "
                f"{row['baseline']:.4g} [{source}] (x{row['ratio']:.2f}) "
                f"{verdict}"
            )
            if row["status"] == "regression":
                failed = True
    if failed:
        print(
            f"bench_compare: floor-bearing metric regressed by more than "
            f"{args.tolerance:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
