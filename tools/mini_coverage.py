"""Minimal line-coverage measurement without coverage.py.

The toolchain image ships neither ``coverage`` nor ``pytest-cov``, but the
repository pins a measured coverage floor in ``pyproject.toml``
(``[tool.coverage.report] fail_under``).  This script produces that number
with the standard library alone: a :func:`sys.settrace` line tracer records
every ``(filename, lineno)`` executed while the test suite runs in-process,
and the executable-line universe comes from walking each module's compiled
code objects (the same line table coverage.py uses).

Run from the repository root::

    PYTHONPATH=src python tools/mini_coverage.py [pytest args...]

Notes: tracing slows the suite roughly an order of magnitude, so prefer
``-m "not slow"``; the result matches coverage.py's line (not branch) mode
to within a fraction of a percent — close enough to pin a floor.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def executable_lines(path: Path) -> set:
    """All line numbers the compiler emits code for, incl. nested defs."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(
            line for _, _, line in obj.co_lines() if line is not None
        )
        stack.extend(
            const for const in obj.co_consts if hasattr(const, "co_lines")
        )
    return lines


def main(argv):
    sources = sorted(
        p
        for p in (SRC / "repro").rglob("*.py")
        if p.name != "__main__.py"
    )
    universe = {str(p): executable_lines(p) for p in sources}
    hit = {name: set() for name in universe}
    prefix = str(SRC / "repro")

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            # Never trace test/third-party frames: return None so the
            # interpreter skips line events for the entire subtree.
            return None
        if event == "line":
            lines = hit.get(filename)
            if lines is not None:
                lines.add(frame.f_lineno)
        return tracer

    import pytest

    sys.settrace(tracer)
    try:
        exit_code = pytest.main(argv or ["-q", "-p", "no:cacheprovider"])
    finally:
        sys.settrace(None)
    if exit_code != 0:
        print(f"warning: pytest exited {exit_code}; coverage is partial")

    total = covered = 0
    rows = []
    per_module = {}
    for name in sorted(universe):
        want = universe[name]
        got = hit[name] & want
        total += len(want)
        covered += len(got)
        pct = 100.0 * len(got) / len(want) if want else 100.0
        rel = str(Path(name).relative_to(SRC))
        per_module[rel] = pct
        rows.append((pct, name, len(got), len(want)))
    rows.sort()
    print("\nworst-covered modules:")
    for pct, name, got, want in rows[:10]:
        rel = Path(name).relative_to(SRC)
        print(f"  {pct:6.1f}%  {got:4d}/{want:<4d}  {rel}")
    overall = 100.0 * covered / total
    print(f"\nTOTAL: {covered}/{total} lines = {overall:.2f}%")
    failed = False
    floors = module_floors()
    if floors:
        print("\nmodule floors:")
    for rel, floor in floors.items():
        pct = per_module.get(rel)
        if pct is None:
            print(f"  FAIL: module floor names unknown module {rel}")
            failed = True
            continue
        verdict = "ok" if pct >= floor else "FAIL"
        print(f"  {verdict:4s}  {pct:6.2f}%  (floor {floor:g}%)  {rel}")
        if pct < floor:
            failed = True
    floor = coverage_floor()
    if overall < floor:
        print(f"FAIL: coverage {overall:.2f}% is below the pinned floor {floor}%")
        failed = True
    if failed:
        return 1
    print(f"OK: floor {floor}% held")
    return 0


def coverage_floor() -> float:
    """The ``fail_under`` value pinned in pyproject.toml (0 if absent)."""
    import tomllib

    with open(REPO / "pyproject.toml", "rb") as fh:
        config = tomllib.load(fh)
    return float(
        config.get("tool", {}).get("coverage", {}).get("report", {}).get("fail_under", 0)
    )


def module_floors() -> dict:
    """Per-module floors from ``[tool.mini_coverage] module_floors``.

    Keys are paths relative to ``src/`` (``repro/queueing/processes.py``);
    values are minimum line-coverage percentages.  Modules not listed are
    covered only by the overall ``fail_under`` floor.
    """
    import tomllib

    with open(REPO / "pyproject.toml", "rb") as fh:
        config = tomllib.load(fh)
    floors = config.get("tool", {}).get("mini_coverage", {}).get(
        "module_floors", {}
    )
    return {str(path): float(pct) for path, pct in floors.items()}


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
