#!/usr/bin/env python3
"""Extending the analysis with a user-defined node type.

The paper's model covers "most modern multicore systems ... including ARM
Cortex-A15" (Section II-D).  This example registers an A15-class node,
characterizes the EP workload for it by MEASUREMENT on the simulated
testbed (micro-benchmarks for the power envelope, a small-input run for the
demand vector — the same pipeline the built-in calibration stands in for),
then lets the new type compete in a three-way heterogeneous analysis.

Run:  python examples/custom_node_type.py
"""

from __future__ import annotations

import dataclasses

import repro
from repro.hardware.counters import PerfReader
from repro.hardware.microbench import characterize_node_power
from repro.hardware.node import SimulatedNode
from repro.hardware.powermeter import PowerMeter
from repro.hardware.specs import DvfsPoint, NodeSpec, PowerProfile
from repro.util.rng import RngRegistry
from repro.util.units import GB, GBPS, GHZ, KB, MB
from repro.workloads.base import ActivityFactors, WorkloadDemand
from repro.workloads.calibration import BottleneckProfile, solve_demand
from repro.util.tables import render_table


def a15_spec() -> NodeSpec:
    """A user-defined ARM Cortex-A15 class node.

    (Named MyA15 so it can coexist with the built-in extension catalog's
    A15; see repro.hardware.catalog for the library-provided version.)
    """
    return NodeSpec(
        name="MyA15",
        isa="ARMv7-A",
        cores=4,
        dvfs=(
            DvfsPoint(0.6 * GHZ, 0.90),
            DvfsPoint(1.0 * GHZ, 1.00),
            DvfsPoint(1.6 * GHZ, 1.15),
            DvfsPoint(2.0 * GHZ, 1.25),
        ),
        l1d_bytes_per_core=32 * KB,
        l2_bytes=2 * MB,
        l3_bytes=None,
        memory_bytes=2 * GB,
        memory_type="DDR3L",
        nic_bps=1 * GBPS,
        mem_bandwidth_bytes_per_s=6.0e9,
        power=PowerProfile(
            idle_w=3.2,
            cpu_active_w=6.5,
            cpu_stall_w=3.0,
            memory_w=1.1,
            network_w=0.8,
            nameplate_peak_w=12.0,
        ),
    )


def main() -> None:
    spec = a15_spec()
    try:
        repro.register_node_spec(spec)
    except repro.ConfigurationError:
        pass  # already registered in an interactive session

    # --- Measure the node's power envelope on the simulated testbed --------
    registry = RngRegistry(2024)
    node = SimulatedNode(spec, registry.stream("node/MyA15"))
    meter = PowerMeter(registry.stream("meter/MyA15"))
    measured_spec = characterize_node_power(node, meter)
    print("Measured MyA15 power profile (vs ground truth):")
    for field in ("idle_w", "cpu_active_w", "cpu_stall_w", "network_w"):
        print(
            f"  {field:14s} measured {getattr(measured_spec.power, field):6.3f} W"
            f"   true {getattr(spec.power, field):6.3f} W"
        )
    print()

    # --- Give the EP workload a calibrated A15 demand vector ---------------
    # (An A15 runs EP ~3x faster than an A9 per published SPEC-class data;
    # we posit an intermediate IPR and PPR and solve the demand for it.)
    ep = repro.workload("EP")
    a15_demand = solve_demand(
        spec,
        ppr_target=3_000_000.0,  # between the A9's 6.0e6 and the K10's 1.4e6
        ipr_target=0.70,
        profile=BottleneckProfile(
            rho_core=1.0, rho_mem=0.25, rho_io=0.0, mem_factor=0.4, net_factor=0.0
        ),
    )
    ep3 = dataclasses.replace(ep, demands={**ep.demands, "MyA15": a15_demand})

    # --- Three-way cluster comparison --------------------------------------
    budget = repro.PowerBudget(1000.0)
    candidates = {
        "128 A9": {"A9": 128},
        "16 K10": {"K10": 16},
        "80 MyA15": {"MyA15": 80},  # 80 x 12 W = 960 W
        "64 A9 + 5 K10 + 20 MyA15": {"A9": 64, "K10": 5, "MyA15": 20},
    }
    rows = []
    for label, mix in candidates.items():
        config = repro.ClusterConfiguration.mix(mix)
        assert config.nameplate_peak_w <= 1000.0
        report = repro.proportionality_report(ep3, config)
        ppr = repro.ppr_curve(ep3, config)
        rows.append(
            (
                label,
                round(config.nameplate_peak_w, 0),
                round(report.ipr, 3),
                round(report.epm, 3),
                f"{ppr.peak_ppr:,.0f}",
                round(repro.execution_time(ep3, config) * 1e3, 2),
            )
        )
    print(
        render_table(
            ("cluster", "peak [W]", "IPR", "EPM", "PPR [(rn/s)/W]", "T_P [ms]"),
            rows,
            title="EP under a 1 kW budget with a third node type",
        )
    )
    print()
    print(
        "The A15-class node sits between the extremes on every metric — the degree of\n"
        "heterogeneity is a free parameter of the analysis, not a constant."
    )


if __name__ == "__main__":
    main()
