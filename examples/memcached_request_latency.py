#!/usr/bin/env python3
"""Per-request memcached latency: wimpy vs brawny at the request level.

The paper treats memcached jobs as 1 MiB batches; this example drops to
the individual GET/SET level using the library's memslap-style request
generator and the discrete-event simulator:

* requests arrive Poisson at a configurable rate (fixed key/value sizes,
  uniform popularity — the paper's memslap setup),
* each node type serves a request in ``wire_bytes / service_rate`` seconds
  (its calibrated memcached byte rate), never faster than its per-request
  service floor,
* the DES yields p95 request latencies, and the calibrated power model
  prices each operating point in requests per joule.

The output shows the paper's Section III-A story at request granularity:
the A9 saturates near its 100 Mbps NIC but serves every request it can
take at ~20x the K10's efficiency.

Run:  python examples/memcached_request_latency.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.util.tables import render_table
from repro.workloads.generator import RequestGenerator


def main() -> None:
    workload = repro.workload("memcached")
    rng = np.random.default_rng(2016)

    # Per-node byte rates and request service model from the calibration.
    nodes = {}
    for node in ("A9", "K10"):
        config = repro.ClusterConfiguration.mix({node: 1})
        byte_rate = repro.cluster_service_rate(workload, config)  # bytes/s
        floor = workload.demand_for(node).io_service_floor_s
        power = repro.power_draw(workload, config)
        nodes[node] = (byte_rate, floor, power)
        print(
            f"{node}: serves {byte_rate / 1e6:.1f} MB/s "
            f"(peak power {power.peak_w:.2f} W, idle {power.idle_w:.2f} W)"
        )
    print()

    gen_probe = RequestGenerator(rate_rps=1.0, rng=rng)
    request_bytes = gen_probe.generate(2.0)[0].wire_bytes
    print(f"Request size on the wire: {request_bytes} bytes (16 B key + 1 KiB value)")
    print()

    rows = []
    for node, (byte_rate, floor, power) in nodes.items():
        max_rps = byte_rate / request_bytes
        for load in (0.3, 0.6, 0.9):
            rps = load * max_rps
            generator = RequestGenerator(
                rate_rps=rps, rng=np.random.default_rng(7)
            )
            requests = generator.generate(60.0)

            def service(r: np.random.Generator, _bytes=request_bytes) -> float:
                return max(_bytes / byte_rate, floor * _bytes)

            sim = repro.QueueSimulator(
                _FixedArrivals([req.arrival_s for req in requests]),
                service,
                rng=np.random.default_rng(8),
            ).run(60.0)
            p95_ms = float(np.percentile(sim.responses, 95)) * 1e3
            watts = power.idle_w + load * power.dynamic_w
            rows.append(
                (
                    node,
                    f"{load:.0%}",
                    int(rps),
                    round(p95_ms, 3),
                    int(rps / watts),
                )
            )
    print(
        render_table(
            ("node", "load", "requests/s", "p95 latency [ms]", "requests/s per W"),
            rows,
            title="memcached request-level latency and efficiency",
        )
    )
    print()
    a9_eff = [r[4] for r in rows if r[0] == "A9"]
    k10_eff = [r[4] for r in rows if r[0] == "K10"]
    print(
        f"The A9 serves {a9_eff[-1] / k10_eff[-1]:.0f}x more requests per watt at "
        f"90% load — the Table 6 PPR gap, observed per request."
    )


class _FixedArrivals:
    """An arrival process replaying pre-generated request times."""

    def __init__(self, times):
        self._times = np.asarray(times, dtype=float)
        self.rate = len(times) / (self._times[-1] if len(times) else 1.0)

    def arrival_times(self, horizon_s: float):
        return self._times[self._times < horizon_s]


if __name__ == "__main__":
    main()
