#!/usr/bin/env python3
"""Full proportionality survey: every paper table and figure, in one run.

Regenerates the paper's evaluation end to end — Tables 4-8 and Figures 2,
5-12 — printing tables and ASCII charts, and exporting every figure's data
as CSV + gnuplot scripts under ``examples/output/``.

This is the one-command reproduction of the paper; expect the Table 4
validation step (the full measurement-driven pipeline on the simulated
testbed) to dominate the runtime.

Run:  python examples/proportionality_survey.py [--skip-validation]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import figures as fig
from repro.experiments import report

OUTPUT = Path(__file__).parent / "output"

FIGURES = [
    ("fig2", fig.figure2_metric_relationships, ()),
    ("fig5a_ep", fig.figure5_node_proportionality, ("EP",)),
    ("fig5b_x264", fig.figure5_node_proportionality, ("x264",)),
    ("fig5c_blackscholes", fig.figure5_node_proportionality, ("blackscholes",)),
    ("fig6a_ep", fig.figure6_node_ppr, ("EP",)),
    ("fig6b_x264", fig.figure6_node_ppr, ("x264",)),
    ("fig6c_blackscholes", fig.figure6_node_ppr, ("blackscholes",)),
    ("fig7_cluster_ep", fig.figure7_cluster_proportionality, ("EP",)),
    ("fig8_cluster_ppr_ep", fig.figure8_cluster_ppr, ("EP",)),
    ("fig9_pareto_ep", fig.figure9_pareto_proportionality, ("EP",)),
    ("fig10_pareto_x264", fig.figure9_pareto_proportionality, ("x264",)),
    ("fig11_response_ep", fig.figure11_response_time, ("EP",)),
    ("fig12_response_x264", fig.figure11_response_time, ("x264",)),
]


def main() -> None:
    skip_validation = "--skip-validation" in sys.argv
    OUTPUT.mkdir(exist_ok=True)

    print(report.report_table5())
    print()
    if skip_validation:
        print("Table 4: skipped (--skip-validation)")
    else:
        print("Running the measurement-driven validation pipeline ...")
        print(report.report_table4())
    print()
    print(report.report_table6())
    print()
    print(report.report_table7())
    print()
    print(report.report_table8())

    from repro.viz.ascii import render_figure

    for stem, builder, args in FIGURES:
        figure = builder(*args)
        print()
        print(render_figure(figure))
        csv_path, gp_path = figure.save(OUTPUT, stem)
        print(f"  [data: {csv_path}  plot: {gp_path}]")

    print()
    print(f"All figure data exported under {OUTPUT}/")


if __name__ == "__main__":
    main()
