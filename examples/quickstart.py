#!/usr/bin/env python3
"""Quickstart: analyze one workload on one heterogeneous cluster.

Builds the paper's EP workload and a 64 A9 : 8 K10 cluster (one of the 1 kW
budget mixes), then walks the core API:

* the time-energy model (execution time, energy per job),
* the energy-proportionality metrics (DPR/IPR/EPM/LDR),
* the performance-to-power ratio across utilisation,
* the M/D/1 95th-percentile response time.

Run:  python examples/quickstart.py [workload]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.util.tables import render_kv


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "EP"
    if name not in repro.PAPER_WORKLOAD_NAMES:
        raise SystemExit(
            f"unknown workload {name!r}; choose from {repro.PAPER_WORKLOAD_NAMES}"
        )
    workload = repro.workload(name)
    cluster = repro.ClusterConfiguration.mix({"A9": 64, "K10": 8})

    print(f"Workload : {workload}")
    print(f"Cluster  : {cluster}")
    print()

    # --- Time-energy model ------------------------------------------------
    execution = repro.job_execution(workload, cluster)
    energy = repro.job_energy(workload, cluster)
    print(
        render_kv(
            {
                "execution time T_P [s]": execution.tp_s,
                "energy per job E_P [J]": energy.e_total_j,
                "throughput [ops/s]": execution.throughput_ops_per_s,
                "A9 work share": execution.work_share("A9"),
                "K10 work share": execution.work_share("K10"),
            },
            title="Time-energy model (paper Table 2)",
        )
    )
    print()

    # --- Energy proportionality -------------------------------------------
    report = repro.proportionality_report(workload, cluster)
    print(
        render_kv(
            {
                "idle power [W]": report.idle_w,
                "workload peak power [W]": report.peak_w,
                "DPR [%]": report.dpr,
                "IPR": report.ipr,
                "EPM": report.epm,
                "LDR (paper variant)": report.ldr_paper,
                "LDR (strict formula)": report.ldr_strict,
            },
            title="Energy-proportionality metrics (paper Table 3)",
        )
    )
    print()

    # --- PPR across utilisation --------------------------------------------
    curve = repro.ppr_curve(workload, cluster)
    print("PPR across utilisation (higher is better):")
    for u in (0.1, 0.3, 0.5, 1.0):
        print(f"  u = {u:4.0%}: {curve.ppr_at(u):16,.1f} ({workload.unit})/W")
    print()

    # --- Response time -----------------------------------------------------
    print("95th-percentile response time (M/D/1 dispatcher):")
    for u in (0.3, 0.6, 0.9):
        p95 = repro.p95_response_s(workload, cluster, u)
        print(f"  u = {u:4.0%}: {p95 * 1e3:10.2f} ms")


if __name__ == "__main__":
    main()
