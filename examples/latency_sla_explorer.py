#!/usr/bin/env python3
"""Latency SLA exploration: sub-linear mixes vs 95th-percentile response.

Reproduces the decision the paper's Section III-E informs: among the
Pareto mixes of Figures 9-12, which sub-linear (energy-saving)
configurations still meet a 95th-percentile response-time SLA across
utilisation — and how does the answer differ between an A9-favouring
workload (EP) and a K10-favouring one (x264)?

Also cross-checks the analytic M/D/1 percentile against the discrete-event
simulator at one operating point, the way the library's own tests do.

Run:  python examples/latency_sla_explorer.py [workload] [sla_multiplier]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.experiments.figures import PARETO_MIXES, pareto_mix_configs
from repro.util.tables import render_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "EP"
    sla_multiplier = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0
    workload = repro.workload(name)
    configs = pareto_mix_configs()

    reference_tp = repro.execution_time(workload, configs[0])
    sla_s = sla_multiplier * reference_tp
    print(f"Workload : {workload}")
    print(
        f"SLA      : p95 response <= {sla_s:.3f} s "
        f"({sla_multiplier:.1f}x the maximal mix's service time)"
    )
    print()

    grid = [0.3, 0.5, 0.7, 0.9]
    rows = []
    for (a, k), config in zip(PARETO_MIXES, configs):
        tp = repro.execution_time(workload, config)
        p95s = [repro.p95_response_s(workload, config, u) for u in grid]
        max_ok = max((u for u, p in zip(grid, p95s) if p <= sla_s), default=None)
        rows.append(
            (
                f"{a} A9 : {k} K10",
                round(tp, 4),
                *[round(p, 4) for p in p95s],
                f"{max_ok:.0%}" if max_ok is not None else "never",
            )
        )
    print(
        render_table(
            ("mix", "T_P [s]", *[f"p95@{u:.0%} [s]" for u in grid], "SLA up to"),
            rows,
            title="95th-percentile response time across the Pareto mixes",
        )
    )
    print()

    # Energy view: what does the smallest SLA-feasible mix save per hour at
    # 50% utilisation, relative to the maximal mix?
    u = 0.5
    window = 3600.0
    ref_curve = repro.power_curve(workload, configs[0])
    feasible = [
        (mix, config)
        for mix, config in zip(PARETO_MIXES, configs)
        if repro.p95_response_s(workload, config, u) <= sla_s
    ]
    if feasible:
        (a, k), config = feasible[-1]
        curve = repro.power_curve(workload, config)
        saved = repro.window_energy_j(ref_curve, u, window) - repro.window_energy_j(
            curve, u, window
        )
        print(
            f"At {u:.0%} utilisation, the smallest SLA-feasible mix "
            f"({a} A9 : {k} K10) saves {saved / 1e3:.1f} kJ per hour versus "
            f"the maximal mix."
        )

    # Analytic-vs-simulation cross-check at one point.
    config = configs[2]
    tp = repro.execution_time(workload, config)
    queue = repro.MD1Queue.from_utilisation(0.7, tp)
    sim = repro.QueueSimulator.md1(
        queue.arrival_rate, tp, np.random.default_rng(7)
    ).run_jobs(20_000)
    print()
    print("M/D/1 analytic vs discrete-event simulation (25 A9 : 8 K10, u = 70%):")
    print(f"  analytic  p95 = {queue.p95_response_s():.4f} s")
    print(f"  simulated p95 = {np.percentile(sim.responses, 95):.4f} s")


if __name__ == "__main__":
    main()
