#!/usr/bin/env python3
"""Capacity planning: pick a cluster for a deadline under a power budget.

The scenario the paper's introduction motivates: "for a given application
with a time deadline and energy budget, it is non-trivial to determine an
energy-proportional configuration among the large system configuration
space".  This example:

1. enumerates every configuration of up to N wimpy + M brawny nodes
   (all core-count and DVFS choices included),
2. computes the energy-deadline Pareto frontier,
3. picks the sweet spot (minimum energy meeting the deadline) within a
   1 kW provisioned-power budget,
4. compares it against the naive homogeneous alternatives.

Run:  python examples/capacity_planning.py [workload] [deadline_seconds]
"""

from __future__ import annotations

import sys

import repro
from repro.cluster.configuration import TypeSpace
from repro.util.tables import render_table
from repro.util.units import GHZ


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "blackscholes"
    workload = repro.workload(name)

    spaces = [
        TypeSpace(repro.get_node_spec("A9"), n_max=12),
        TypeSpace(repro.get_node_spec("K10"), n_max=4),
    ]
    n_configs = repro.count_configurations(spaces)
    print(f"Workload            : {workload}")
    print(f"Configuration space : {n_configs:,} configurations")

    budget = repro.PowerBudget(1000.0)
    evaluations = [
        ev
        for ev in repro.evaluate_space(workload, spaces)
        if budget.fits(ev.config)
    ]
    print(f"Within 1 kW budget  : {len(evaluations):,} configurations")

    frontier = repro.pareto_frontier(evaluations)
    print(f"Pareto frontier     : {len(frontier)} configurations")
    print()

    # Deadline: default 2x the fastest configuration's execution time.
    fastest = frontier[0]
    deadline = (
        float(sys.argv[2]) if len(sys.argv) > 2 else 2.0 * fastest.tp_s
    )
    spot = repro.sweet_spot(evaluations, deadline)
    region = repro.sweet_region(evaluations, deadline)

    print(f"Deadline            : {deadline:.3f} s")
    print(f"Sweet region        : {len(region)} Pareto-optimal configurations meet it")
    if spot is None:
        raise SystemExit("No configuration meets the deadline within the budget.")

    rows = []
    for label, ev in [
        ("fastest on frontier", fastest),
        ("sweet spot", spot),
    ]:
        rows.append(
            (
                label,
                ev.config.label(),
                f"c={ev.config.groups[0].cores}, f={ev.config.groups[0].frequency_hz / GHZ:.1f}GHz",
                round(ev.tp_s, 4),
                round(ev.energy_j, 2),
                round(ev.peak_power_w, 1),
            )
        )
    # Homogeneous comparators at full throttle, sized to the budget.
    for node in ("A9", "K10"):
        n = budget.max_nodes(node, with_switch=(node == "A9"))
        n = min(n, 12 if node == "A9" else 4)
        config = repro.ClusterConfiguration.mix({node: n})
        ev = repro.evaluate_configuration(workload, config)
        rows.append(
            (
                f"homogeneous {node}",
                config.label(),
                "full throttle",
                round(ev.tp_s, 4),
                round(ev.energy_j, 2),
                round(ev.peak_power_w, 1),
            )
        )
    print()
    print(
        render_table(
            ("choice", "mix", "operating point", "T_P [s]", "E_P [J]", "peak [W]"),
            rows,
            title="Recommendation",
        )
    )

    saving = (1.0 - spot.energy_j / fastest.energy_j) * 100.0
    slack = (spot.tp_s / fastest.tp_s - 1.0) * 100.0
    print()
    print(
        f"The sweet spot saves {saving:.1f}% energy per job versus the fastest "
        f"configuration, spending {slack:.1f}% more time — still within the deadline."
    )


if __name__ == "__main__":
    main()
