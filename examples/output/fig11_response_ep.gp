set datafile separator ','
set title 'Figure 11: 95th percentile response time of sub-linear mixes (EP)'
set xlabel 'Utilization [%]'
set ylabel '95th Percentile Response Time [ms]'
set key outside
set logscale y
plot \
  'fig11_response_ep.csv' using 1:2 with linespoints title '32 A9: 12 K10', \
  'fig11_response_ep.csv' using 3:4 with linespoints title '25 A9: 10 K10', \
  'fig11_response_ep.csv' using 5:6 with linespoints title '25 A9: 8 K10', \
  'fig11_response_ep.csv' using 7:8 with linespoints title '25 A9: 7 K10', \
  'fig11_response_ep.csv' using 9:10 with linespoints title '25 A9: 5 K10'
