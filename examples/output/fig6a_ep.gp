set datafile separator ','
set title 'Figure 6: PPR of brawny and wimpy nodes (EP)'
set xlabel 'Utilization [%]'
set ylabel 'PPR [(random no./s)/W]'
set key outside
set logscale y
plot \
  'fig6a_ep.csv' using 1:2 with linespoints title 'K10', \
  'fig6a_ep.csv' using 3:4 with linespoints title 'A9'
