set datafile separator ','
set title 'Figure 10: energy proportionality of Pareto-optimal configurations (x264)'
set xlabel 'Utilization [%]'
set ylabel 'Peak Power [%]'
set key outside
plot \
  'fig10_pareto_x264.csv' using 1:2 with linespoints title 'Ideal', \
  'fig10_pareto_x264.csv' using 3:4 with linespoints title '32 A9: 12 K10', \
  'fig10_pareto_x264.csv' using 5:6 with linespoints title '25 A9: 10 K10', \
  'fig10_pareto_x264.csv' using 7:8 with linespoints title '25 A9: 8 K10', \
  'fig10_pareto_x264.csv' using 9:10 with linespoints title '25 A9: 7 K10', \
  'fig10_pareto_x264.csv' using 11:12 with linespoints title '25 A9: 5 K10'
