set datafile separator ','
set title 'Figure 12: 95th percentile response time of sub-linear mixes (x264)'
set xlabel 'Utilization [%]'
set ylabel '95th Percentile Response Time [s]'
set key outside
set logscale y
plot \
  'fig12_response_x264.csv' using 1:2 with linespoints title '32 A9: 12 K10', \
  'fig12_response_x264.csv' using 3:4 with linespoints title '25 A9: 10 K10', \
  'fig12_response_x264.csv' using 5:6 with linespoints title '25 A9: 8 K10', \
  'fig12_response_x264.csv' using 7:8 with linespoints title '25 A9: 7 K10', \
  'fig12_response_x264.csv' using 9:10 with linespoints title '25 A9: 5 K10'
