set datafile separator ','
set title 'Figure 5: energy proportionality of brawny and wimpy nodes (blackscholes)'
set xlabel 'Utilization [%]'
set ylabel 'Peak Power [%]'
set key outside
plot \
  'fig5c_blackscholes.csv' using 1:2 with linespoints title 'Ideal', \
  'fig5c_blackscholes.csv' using 3:4 with linespoints title 'K10', \
  'fig5c_blackscholes.csv' using 5:6 with linespoints title 'A9'
