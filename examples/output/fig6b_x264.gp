set datafile separator ','
set title 'Figure 6: PPR of brawny and wimpy nodes (x264)'
set xlabel 'Utilization [%]'
set ylabel 'PPR [(frames/s)/W]'
set key outside
set logscale y
plot \
  'fig6b_x264.csv' using 1:2 with linespoints title 'K10', \
  'fig6b_x264.csv' using 3:4 with linespoints title 'A9'
