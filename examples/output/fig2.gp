set datafile separator ','
set title 'Figure 2: energy proportionality metric relationships'
set xlabel 'Utilization [%]'
set ylabel 'Peak Power [%]'
set key outside
plot \
  'fig2.csv' using 1:2 with linespoints title 'Ideal', \
  'fig2.csv' using 3:4 with linespoints title 'super-linear', \
  'fig2.csv' using 5:6 with linespoints title 'sub-linear'
