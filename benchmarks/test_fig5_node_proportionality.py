"""Benchmark: regenerate Figure 5a-c (single-node energy proportionality).

Paper shape: for EP, x264 and blackscholes, both nodes lie ABOVE the ideal
line (super-linear), the K10 curve lies below the A9 curve (K10 is more
proportional), and each curve starts near 100*IPR at low utilisation and
meets 100% at full load.
"""

import pytest

from repro.experiments.figures import figure5_node_proportionality
from repro.viz.ascii import render_figure
from repro.workloads.suite import PAPER_IPR

PANELS = {"a": "EP", "b": "x264", "c": "blackscholes"}


@pytest.mark.parametrize("panel,workload_name", sorted(PANELS.items()))
def test_fig5_node_proportionality(benchmark, emit, panel, workload_name):
    fig = benchmark(figure5_node_proportionality, workload_name)
    emit(render_figure(fig), figure=fig, stem=f"fig5{panel}_{workload_name}")

    ideal = fig.require_series("Ideal")
    a9 = fig.require_series("A9")
    k10 = fig.require_series("K10")
    # Super-linear: above the ideal everywhere.
    assert (a9.y >= ideal.y - 1e-9).all()
    assert (k10.y >= ideal.y - 1e-9).all()
    # K10 more proportional for compute/memory-intensive workloads.
    if workload_name in ("EP", "blackscholes", "x264"):
        assert (k10.y <= a9.y + 1e-9).all()
    # Endpoints: ~100*IPR + 10%-of-range at u=10%, exactly 100% at u=100%.
    for node, series in (("A9", a9), ("K10", k10)):
        ipr = PAPER_IPR[workload_name][node]
        assert series.y[0] == pytest.approx(100 * (ipr + 0.1 * (1 - ipr)), abs=1.0)
        assert series.y[-1] == pytest.approx(100.0, abs=1e-6)
