"""Benchmark: regenerate Figure 11 (95th-pct response time, EP).

Paper shape: milliseconds-scale log axis (10-100 ms); response times grow
with utilisation; mixes with fewer K10 nodes sit higher but the absolute
spread between configurations stays small for EP (the A9-favouring
workload), in contrast with Figure 12's seconds for x264.
"""

import numpy as np

from repro.experiments.figures import figure11_response_time
from repro.viz.ascii import render_figure

MIXES = ["32 A9: 12 K10", "25 A9: 10 K10", "25 A9: 8 K10", "25 A9: 7 K10", "25 A9: 5 K10"]


def test_fig11_response_ep(benchmark, emit):
    fig = benchmark(figure11_response_time, "EP")
    emit(render_figure(fig), figure=fig, stem="fig11_response_ep")

    assert "[ms]" in fig.ylabel
    curves = [fig.require_series(label) for label in MIXES]
    # Monotone in utilisation for every mix.
    for c in curves:
        assert (np.diff(c.y) > 0).all()
    # Removing K10 nodes only ever raises response time.
    for better, worse in zip(curves, curves[1:]):
        assert (worse.y >= better.y - 1e-9).all()
    # Base of the range is tens of ms, like the paper's 10-100 ms axis.
    assert 10.0 <= curves[0].y[0] <= 100.0
    # The absolute spread between mixes at mid-utilisation is small
    # (sub-0.1 s) for this A9-favouring workload.
    mid = len(curves[0].y) // 2
    assert curves[-1].y[mid] - curves[0].y[mid] < 100.0
