"""Benchmark: measured power curves vs the analytic model.

Not a paper artefact — this is the empirical check behind every
proportionality figure: drive the simulated testbed through a utilisation
sweep, integrate real (simulated) power-meter readings, and compare the
resulting Table 3 metrics against the analytic linear-offset curve.
"""

import pytest

from repro.cluster.configuration import ClusterConfiguration
from repro.experiments.measured import compare_measured_vs_model, measure_power_curve
from repro.util.rng import RngRegistry
from repro.util.tables import render_table
from repro.workloads.suite import paper_workloads


def test_measured_vs_model_curves(benchmark, emit):
    w = paper_workloads()["EP"]
    config = ClusterConfiguration.mix({"A9": 4, "K10": 1})

    def run():
        return compare_measured_vs_model(
            w, config, registry=RngRegistry(99)
        )

    measured, model = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("idle [W]", round(measured.idle_w, 2), round(model.idle_w, 2)),
        ("peak [W]", round(measured.peak_w, 2), round(model.peak_w, 2)),
        ("IPR", round(measured.ipr, 3), round(model.ipr, 3)),
        ("EPM", round(measured.epm, 3), round(model.epm, 3)),
        ("DPR [%]", round(measured.dpr, 1), round(model.dpr, 1)),
    ]
    emit(
        render_table(
            ("metric", "measured (testbed)", "model (analytic)"),
            rows,
            title="Measured vs model power curve (EP, 4 A9 + 1 K10)",
        )
    )
    assert measured.idle_w == pytest.approx(model.idle_w, rel=0.03)
    assert measured.ipr == pytest.approx(model.ipr, abs=0.06)
    assert measured.epm == pytest.approx(model.epm, abs=0.06)


def test_measured_curve_points(benchmark, emit):
    w = paper_workloads()["blackscholes"]
    config = ClusterConfiguration.mix({"A9": 2, "K10": 1})

    def run():
        return measure_power_curve(
            w, config, registry=RngRegistry(7), utilisations=(0.25, 0.5, 0.75)
        )

    curve, points = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        render_table(
            ("target u", "achieved u", "jobs", "mean power [W]"),
            [
                (p.target_utilisation, round(p.achieved_utilisation, 3), p.n_jobs, round(p.mean_power_w, 2))
                for p in points
            ],
            title="Measured utilisation sweep (blackscholes, 2 A9 + 1 K10)",
        )
    )
    powers = [p.mean_power_w for p in points]
    assert powers == sorted(powers)
