"""Benchmark: regenerate Table 4 (cluster validation errors).

Paper values (percent error, model vs measured):

    ============  =====  ======
    Program       time   energy
    ============  =====  ======
    EP              3      10
    memcached      10       8
    x264           11      10
    blackscholes    4       7
    julius         13       1
    rsa2048         2       8
    ============  =====  ======

The reproduction runs the full measurement-driven pipeline (micro-benchmark
power characterization, small-input workload characterization, model
prediction, simulated-testbed measurement) and must land every error in the
paper's 0-15% band with the same time-error ordering (regular kernels low,
irregular programs high).
"""

from repro.experiments.tables import table4_validation
from repro.util.tables import render_table
from repro.workloads.suite import PAPER_VALIDATION_ERRORS


def test_table4_validation(benchmark, emit):
    headers, rows, results = benchmark.pedantic(
        table4_validation, rounds=1, iterations=1
    )
    # Side-by-side with the paper's numbers.
    compare_rows = [
        (
            r.domain,
            r.workload_name,
            round(r.time_error_pct, 1),
            PAPER_VALIDATION_ERRORS[r.workload_name]["time"],
            round(r.energy_error_pct, 1),
            PAPER_VALIDATION_ERRORS[r.workload_name]["energy"],
        )
        for r in results
    ]
    emit(
        render_table(
            ("Domain", "Program", "time err[%]", "paper", "energy err[%]", "paper"),
            compare_rows,
            title="Table 4: Cluster validation (reproduced vs paper)",
        )
    )

    by_name = {r.workload_name: r for r in results}
    for r in results:
        assert 0.0 <= r.time_error_pct <= 15.0
        assert 0.0 <= r.energy_error_pct <= 15.0
    # Ordering: regular kernels validate better than irregular programs.
    for regular in ("EP", "rsa2048", "blackscholes"):
        for irregular in ("x264", "julius"):
            assert by_name[regular].time_error_pct < by_name[irregular].time_error_pct
