"""Benchmark: the DVFS/core-scaling frontier study.

Not a paper artefact — quantifies the configuration-tuple dimensions the
paper defines but never sweeps in its figures.  The result restates the
energy-proportionality wall: on nodes with the paper's idle powers,
race-to-idle beats every down-clocked configuration at every deadline; on
hypothetically proportional hardware (idle x 0.1), DVFS points join the
energy-deadline frontier.
"""

from repro.experiments.dvfs import dvfs_frontier_study
from repro.util.tables import render_table


def test_dvfs_frontier_study(benchmark, emit):
    headers, rows = benchmark.pedantic(
        dvfs_frontier_study, kwargs={"n_a9": 8, "n_k10": 3}, rounds=1, iterations=1
    )
    headers10, rows10 = dvfs_frontier_study(n_a9=8, n_k10=3, idle_scale=0.1)
    emit(
        render_table(headers, rows, title="DVFS study: real nodes (blackscholes)")
        + "\n\n"
        + render_table(
            headers10, rows10,
            title="DVFS study: hypothetical 10%-idle nodes (blackscholes)",
        )
    )
    # Real nodes: race-to-idle everywhere.
    assert all(row[3] == "0.0%" for row in rows)
    # Proportional hardware: DVFS starts paying.
    assert any(float(row[3].rstrip("%")) > 0.0 for row in rows10)
