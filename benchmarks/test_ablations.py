"""Benchmark: ablation studies of the modelling choices.

Not paper artefacts — these quantify the design decisions DESIGN.md calls
out: curve shape (linear vs Hsu & Poole quadratic), switch power behind the
8:1 substitution ratio, service-time variability, open-vs-batch arrivals,
and the KnightShift server-level baseline.
"""

import pytest

from repro.experiments.ablations import (
    curvature_ablation,
    knightshift_ablation,
    open_vs_batch_ablation,
    service_variability_ablation,
    switch_power_ablation,
)
from repro.util.tables import render_table


def test_ablation_curve_shape(benchmark, emit):
    headers, rows = benchmark(curvature_ablation)
    emit(render_table(headers, rows, title="Ablation: power-curve shape (EP on K10)"))
    by_curv = {r[0]: r for r in rows}
    assert by_curv[0.0][4] == pytest.approx(0.0, abs=0.01)
    assert by_curv[0.5][3] > by_curv[0.0][3]  # sub-linear bow raises EPM


def test_ablation_switch_power(benchmark, emit):
    headers, rows = benchmark(switch_power_ablation)
    emit(render_table(headers, rows, title="Ablation: switch power vs substitution ratio"))
    by_sw = {r[0]: r for r in rows}
    assert by_sw[20.0][1] == pytest.approx(8.0)  # footnote 3
    assert by_sw[0.0][1] == pytest.approx(12.0)  # no switch: 60/5


def test_ablation_service_variability(benchmark, emit):
    headers, rows = benchmark.pedantic(
        service_variability_ablation,
        kwargs={"scvs": (0.0, 0.5, 1.0, 2.0), "des_jobs": 20_000},
        rounds=1,
        iterations=1,
    )
    emit(
        render_table(
            headers, rows,
            title="Ablation: service-time variability (EP, 32 A9 : 12 K10, u = 70%)",
        )
    )
    p95s = [r[2] for r in rows]
    assert p95s == sorted(p95s)  # variability only hurts tail latency


def test_ablation_open_vs_batch(benchmark, emit):
    headers, rows = benchmark(open_vs_batch_ablation)
    emit(
        render_table(
            headers, rows,
            title="Ablation: open M/D/1 vs batch-window arrivals (EP, u = 60%)",
        )
    )
    open_spread = max(r[1] for r in rows) - min(r[1] for r in rows)
    batch_spread = max(r[2] for r in rows) - min(r[2] for r in rows)
    assert batch_spread < open_spread


def test_ablation_knightshift(benchmark, emit):
    headers, rows = benchmark(knightshift_ablation)
    emit(
        render_table(
            headers, rows,
            title="Ablation: KnightShift (server-level) vs inter-node heterogeneity (EP)",
        )
    )
    by_name = {r[0]: dict(zip(headers, r)) for r in rows}
    assert by_name["knightshift"]["EPM"] > by_name["internode"]["EPM"]
    assert by_name["internode"]["ppr@100%"] > by_name["knightshift"]["ppr@100%"]


def test_ablation_adaptation(benchmark, emit):
    from repro.experiments.ablations import adaptation_ablation

    headers, rows = benchmark.pedantic(adaptation_ablation, rounds=1, iterations=1)
    emit(
        render_table(
            headers, rows,
            title="Ablation: static vs dynamic configuration over a diurnal day",
        )
    )
    for row in rows:
        assert float(row[4].rstrip("%")) >= 0.0


def test_ablation_validation_scale(benchmark, emit):
    from repro.experiments.ablations import validation_scale_ablation

    headers, rows = benchmark.pedantic(
        validation_scale_ablation, rounds=1, iterations=1
    )
    emit(
        render_table(
            headers, rows,
            title="Ablation: validation error vs measured-run length (julius)",
        )
    )
    # Errors settle as the run outgrows the fixed overheads.
    assert rows[-1][2] <= rows[0][2]
    assert rows[-1][3] <= rows[0][3]


def test_ablation_fork_join(benchmark, emit):
    from repro.experiments.ablations import fork_join_ablation

    headers, rows = benchmark.pedantic(
        fork_join_ablation, kwargs={"n_jobs": 15_000}, rounds=1, iterations=1
    )
    emit(
        render_table(
            headers, rows,
            title="Ablation: fork-join straggler penalty (julius, 32 A9 : 12 K10, u = 70%)",
        )
    )
    p95s = [r[2] for r in rows[1:]]
    assert p95s == sorted(p95s)  # wider fork-join -> worse tail
