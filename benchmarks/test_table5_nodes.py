"""Benchmark: regenerate Table 5 (types of heterogeneous nodes)."""

from repro.experiments.tables import table5_nodes
from repro.util.tables import render_table


def test_table5_nodes(benchmark, emit):
    headers, rows = benchmark(table5_nodes)
    emit(render_table(headers, rows, title="Table 5: Types of heterogeneous nodes"))
    table = {row[0]: (row[1], row[2]) for row in rows}
    assert table["ISA"] == ("ARMv7-A", "x86_64")
    assert table["Cores/node"] == (4, 6)
    assert table["Clock Freq"] == ("0.2-1.4 GHz", "0.8-2.1 GHz")
    assert table["Memory"] == ("1GB LP-DDR2", "8GB DDR3")
    assert table["I/O bandwidth"] == ("100Mbps", "1000Mbps")
