"""Benchmark: performance of the library's hot analytic kernels.

Not paper artefacts — these keep the computational substrate honest.  The
exhaustive experiments push these kernels hard (36,380 model evaluations
for the footnote-4 space, thousands of CDF evaluations per response-time
figure), so regressions here directly slow every reproduction run.
"""

import numpy as np

from repro.cluster.configuration import ClusterConfiguration, TypeSpace
from repro.cluster.pareto import evaluate_configuration, pareto_frontier
from repro.hardware.specs import a9, k10
from repro.model.energy_model import job_energy
from repro.model.time_model import job_execution
from repro.queueing.md1 import MD1Queue
from repro.queueing.mdc import MDCQueue
from repro.workloads.suite import paper_workloads

_EP = paper_workloads()["EP"]
_MIX = ClusterConfiguration.mix({"A9": 64, "K10": 8})


def test_kernel_job_execution(benchmark):
    """One full time-model evaluation (the inner loop of every sweep)."""
    result = benchmark(job_execution, _EP, _MIX)
    assert result.tp_s > 0


def test_kernel_job_energy(benchmark):
    """One combined time+energy model evaluation."""
    result = benchmark(job_energy, _EP, _MIX)
    assert result.e_total_j > 0


def test_kernel_config_evaluation(benchmark):
    """One Pareto-space point: configuration -> (time, energy)."""
    result = benchmark(evaluate_configuration, _EP, _MIX)
    assert result.energy_j > 0


def test_kernel_md1_p95(benchmark):
    """One 95th-percentile response-time query at high utilisation."""
    queue = MD1Queue.from_utilisation(0.9, 0.02)

    def query():
        # Fresh queue per call: includes the stationary-distribution work.
        return MD1Queue.from_utilisation(0.9, 0.02).p95_response_s()

    value = benchmark(query)
    assert value > 0.02


def test_kernel_mdc_cdf(benchmark):
    """One M/D/c waiting-CDF evaluation including the fixed-point solve."""

    def query():
        return MDCQueue.from_utilisation(0.85, 1.0, 4).wait_cdf(3.0)

    value = benchmark(query)
    assert 0.0 < value < 1.0


def test_kernel_pareto_frontier(benchmark):
    """Dominance filtering of a 2,000-point evaluation cloud."""
    rng = np.random.default_rng(3)
    evals = [
        evaluate_configuration(
            _EP, ClusterConfiguration.mix({"A9": int(a), "K10": int(k)})
        )
        for a, k in zip(rng.integers(1, 64, 60), rng.integers(0, 16, 60))
    ]
    cloud = evals * 34  # ~2,000 entries with duplicates, as sweeps produce
    frontier = benchmark(pareto_frontier, cloud)
    assert frontier


def test_kernel_vectorized_mix_grid(benchmark):
    """Vectorised sweep of every mix up to 512 A9 x 512 K10."""
    from repro.model.vectorized import evaluate_mix_grid

    a, k = np.meshgrid(np.arange(1, 513), np.arange(0, 513))

    def run():
        return evaluate_mix_grid(_EP, {"A9": a, "K10": k})

    grid = benchmark(run)
    assert grid.tp_s.size == 512 * 513
