"""Benchmark: regenerate Table 6 (performance-to-power ratio).

Paper values ((work unit/s)/W at the most energy-efficient configuration):

    ============  ==========  ==========
    Program       A9 node     K10 node
    ============  ==========  ==========
    EP            6,048,057   1,414,922
    memcached     5,224,004     268,067
    x264                0.7           1
    blackscholes     11,413       2,902
    julius           69,654      21,390
    rsa2048             968       1,091
    ============  ==========  ==========

The reproduced values must match within 1% (they are calibration targets,
recovered here through a search over every single-node operating point).
"""

from repro.experiments.tables import table6_ppr
from repro.util.tables import render_table
from repro.workloads.suite import PAPER_PPR


def test_table6_ppr(benchmark, emit):
    headers, rows = benchmark.pedantic(table6_ppr, rounds=1, iterations=1)
    emit(render_table(headers, rows, title="Table 6: Performance-to-power ratio"))
    for row in rows:
        name, _, a9_ppr, k10_ppr = row
        assert a9_ppr == float(f"{PAPER_PPR[name]['A9']:.6g}") or abs(
            a9_ppr - PAPER_PPR[name]["A9"]
        ) / PAPER_PPR[name]["A9"] < 0.01
        assert abs(k10_ppr - PAPER_PPR[name]["K10"]) / PAPER_PPR[name]["K10"] < 0.01
    # The two exceptions where the brawny node wins (Section III-A).
    by_name = {row[0]: row for row in rows}
    assert by_name["x264"][3] > by_name["x264"][2]
    assert by_name["rsa2048"][3] > by_name["rsa2048"][2]
    assert by_name["EP"][2] > by_name["EP"][3]
