"""Benchmark: regenerate Table 7 (single-node energy proportionality).

Paper IPR values (DPR, EPM and LDR are all functions of IPR on the model's
linear-offset curves — the degeneracy the paper itself points out):

    ============  =====  =====
    Program       A9     K10
    ============  =====  =====
    EP            0.74   0.65
    memcached     0.83   0.89
    x264          0.64   0.62
    blackscholes  0.68   0.63
    julius        0.70   0.62
    rsa2048       0.64   0.59
    ============  =====  =====
"""

from repro.experiments.tables import table7_single_node
from repro.util.tables import render_table
from repro.workloads.suite import PAPER_IPR


def test_table7_single_node(benchmark, emit):
    headers, rows = benchmark(table7_single_node)
    emit(render_table(headers, rows, title="Table 7: Single-node energy proportionality"))
    for row in rows:
        name = row[0]
        dpr_a9, dpr_k10, ipr_a9, ipr_k10, epm_a9, epm_k10, ldr_a9, ldr_k10 = row[1:]
        assert abs(ipr_a9 - PAPER_IPR[name]["A9"]) <= 0.005
        assert abs(ipr_k10 - PAPER_IPR[name]["K10"]) <= 0.005
        # The paper's degeneracy: DPR = (1 - IPR)*100, EPM = LDR = 1 - IPR.
        assert abs(dpr_a9 - 100 * (1 - ipr_a9)) <= 0.5
        assert abs(epm_a9 - (1 - ipr_a9)) <= 0.01
        assert abs(ldr_k10 - epm_k10) <= 0.01
