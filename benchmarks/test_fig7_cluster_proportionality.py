"""Benchmark: regenerate Figure 7 (cluster-wide proportionality of EP).

Paper shape: five 1 kW-budget mixes on a log utilisation axis; every curve
is super-linear, the homogeneous K10 cluster has the least proportionality
gap and the homogeneous A9 cluster the largest, with the mixes ordered
monotonically in between by their K10 share.
"""

from repro.experiments.figures import figure7_cluster_proportionality
from repro.viz.ascii import render_figure

MIX_ORDER = ["16 K10", "32 A9 : 12 K10", "64 A9 : 8 K10", "96 A9 : 4 K10", "128 A9"]


def test_fig7_cluster_proportionality(benchmark, emit):
    fig = benchmark(figure7_cluster_proportionality, "EP")
    emit(render_figure(fig), figure=fig, stem="fig7_cluster_ep")

    ideal = fig.require_series("Ideal")
    curves = [fig.require_series(label) for label in MIX_ORDER]
    # All super-linear.
    for c in curves:
        assert (c.y >= ideal.y - 1e-9).all()
    # Monotone ordering in the K10 share: more brawny -> more proportional.
    for closer, farther in zip(curves, curves[1:]):
        assert (closer.y <= farther.y + 1e-9).all()
    # All meet 100% at full load.
    for c in curves:
        assert abs(c.y[-1] - 100.0) < 1e-6
