"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints it
(visible with ``pytest benchmarks/ --benchmark-only -s``), saves figure data
as CSV + gnuplot under ``benchmarks/output/``, and asserts the reproduction
bands documented in EXPERIMENTS.md.  ``pytest-benchmark`` times the
regeneration itself.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: Where figure CSV/gnuplot exports land.
OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    """The benchmark artefact directory (created on first use)."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def emit(output_dir, capsys):
    """Print an artefact and optionally persist a figure.

    Returns a callable ``emit(text, figure=None, stem=None)``.
    """

    def _emit(text: str, figure=None, stem: str | None = None) -> None:
        with capsys.disabled():
            print()
            print(text)
        if figure is not None and stem:
            figure.save(output_dir, stem)

    return _emit
