"""Benchmark: regenerate Table 8 (cluster-wide energy proportionality).

Paper IPR values for the 1 kW-budget clusters:

    ============  =======  =============  =======
    Program       128 A9   64 A9:8 K10    16 K10
    ============  =======  =============  =======
    EP            0.74     0.67           0.65
    memcached     0.83     0.88           0.89
    x264          0.64     0.62           0.62
    blackscholes  0.68     0.64           0.63
    julius        0.70     0.64           0.62
    rsa2048       0.64     0.60           0.59
    ============  =======  =============  =======

Homogeneous columns must equal the single-node values exactly; the mixed
column is a workload-peak-weighted blend and must match within 0.015.
"""

from repro.experiments.tables import table8_cluster
from repro.util.tables import render_table
from repro.workloads.suite import PAPER_IPR

PAPER_MIXED_IPR = {
    "EP": 0.67,
    "memcached": 0.88,
    "x264": 0.62,
    "blackscholes": 0.64,
    "julius": 0.64,
    "rsa2048": 0.60,
}


def test_table8_cluster(benchmark, emit):
    headers, rows = benchmark(table8_cluster)
    emit(render_table(headers, rows, title="Table 8: Cluster-wide energy proportionality"))
    for row in rows:
        name, metric = row[0], row[1]
        if metric != "IPR":
            continue
        wimpy, mixed, brawny = row[2], row[3], row[4]
        assert abs(wimpy - PAPER_IPR[name]["A9"]) <= 0.005
        assert abs(brawny - PAPER_IPR[name]["K10"]) <= 0.005
        assert abs(mixed - PAPER_MIXED_IPR[name]) <= 0.015
