"""Benchmark: regenerate Figure 6a-c (single-node PPR vs utilisation).

Paper shape: PPR rises with utilisation for both nodes; A9 dominates K10 for
EP and blackscholes (Figures 6a/6c) while K10 dominates for x264 (6b) — the
contradiction with the Figure 5 proportionality ranking that motivates the
paper's argument.
"""

import numpy as np
import pytest

from repro.experiments.figures import figure6_node_ppr
from repro.viz.ascii import render_figure
from repro.workloads.suite import PAPER_PPR

PANELS = {"a": "EP", "b": "x264", "c": "blackscholes"}


@pytest.mark.parametrize("panel,workload_name", sorted(PANELS.items()))
def test_fig6_node_ppr(benchmark, emit, panel, workload_name):
    fig = benchmark(figure6_node_ppr, workload_name)
    emit(render_figure(fig), figure=fig, stem=f"fig6{panel}_{workload_name}")

    a9 = fig.require_series("A9")
    k10 = fig.require_series("K10")
    # PPR grows with utilisation (idle power amortises).
    assert (np.diff(a9.y) > 0).all()
    assert (np.diff(k10.y) > 0).all()
    # Node ranking per panel.
    if workload_name == "x264":
        assert (k10.y > a9.y).all()
    else:
        assert (a9.y > k10.y).all()
    # Peak PPR (u = 100%) equals the Table 6 value.
    assert a9.y[-1] == pytest.approx(PAPER_PPR[workload_name]["A9"], rel=1e-6)
    assert k10.y[-1] == pytest.approx(PAPER_PPR[workload_name]["K10"], rel=1e-6)
