"""Benchmark: regenerate Figure 12 (95th-pct response time, x264).

Paper shape: seconds-scale log axis (1-100 s); the sub-linear mixes pay a
multi-second response-time penalty for x264 — the workload whose PPR favours
the brawny node — which is exactly the paper's Section III-E conclusion.
"""

import numpy as np

from repro.experiments.figures import figure11_response_time
from repro.viz.ascii import render_figure

MIXES = ["32 A9: 12 K10", "25 A9: 10 K10", "25 A9: 8 K10", "25 A9: 7 K10", "25 A9: 5 K10"]


def test_fig12_response_x264(benchmark, emit):
    fig = benchmark(figure11_response_time, "x264")
    emit(render_figure(fig), figure=fig, stem="fig12_response_x264")

    assert "[s]" in fig.ylabel
    curves = [fig.require_series(label) for label in MIXES]
    for c in curves:
        assert (np.diff(c.y) > 0).all()
    for better, worse in zip(curves, curves[1:]):
        assert (worse.y >= better.y - 1e-9).all()
    # Base of the range is seconds, like the paper's 1-100 s axis.
    assert 1.0 <= curves[0].y[0] <= 100.0
    # Degradation "to the order of seconds": already at mid utilisation the
    # smallest mix trails the full configuration by whole seconds.
    mid = len(curves[0].y) // 2
    assert curves[-1].y[mid] - curves[0].y[mid] > 1.0
