"""Benchmark: the configuration-space size of footnote 4.

The paper counts 36,380 configurations for 10 ARM nodes (4 cores, 5
frequencies) and 10 AMD nodes (6 cores, 3 frequencies): 36,000 mixed + 200
ARM-only + 180 AMD-only.  This benchmark times the exhaustive enumeration
of the full space and pins the count against the closed form.
"""

from repro.cluster.configuration import TypeSpace, count_configurations, enumerate_configurations
from repro.hardware.specs import a9, k10
from repro.util.tables import render_kv


def _enumerate_all():
    spaces = [TypeSpace(a9(), n_max=10), TypeSpace(k10(), n_max=10)]
    return sum(1 for _ in enumerate_configurations(spaces))


def test_config_space_footnote4(benchmark, emit):
    spaces = [TypeSpace(a9(), n_max=10), TypeSpace(k10(), n_max=10)]
    total = benchmark.pedantic(_enumerate_all, rounds=1, iterations=1)
    arm_only = count_configurations([spaces[0]])
    amd_only = count_configurations([spaces[1]])
    emit(
        render_kv(
            {
                "mixed ARM+AMD": total - arm_only - amd_only,
                "ARM only": arm_only,
                "AMD only": amd_only,
                "total": total,
                "paper footnote 4": 36_380,
            },
            title="Heterogeneous configuration space (10 ARM + 10 AMD)",
        )
    )
    assert total == 36_380
    assert arm_only == 200
    assert amd_only == 180
    assert count_configurations(spaces) == total
