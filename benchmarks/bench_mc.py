"""Benchmark: vectorized Monte-Carlo queue engine vs the scalar DES loop.

Wraps :mod:`repro.benchmarks.mc` (also runnable standalone as
``python -m repro.benchmarks.mc``) in the pytest harness: simulates the
ISSUE's 1e5 jobs x 100 replications through both engines for a
deterministic (M/D/1) and a general-service (M/M/1) scenario, writes
``BENCH_mc.json`` at the repository root, and pins the engine's contract —
span-normalised vectorized-vs-scalar agreement within 1e-12, the analytic
p95 inside the simulated 99% CI on the full validation grid, and the
speedup floors of :data:`repro.benchmarks.mc.FLOOR_SPEEDUP` (the 100x
target itself needs multi-core replication parallelism; this single-core
container caps the honest ratio — see the module docstring).
"""

from pathlib import Path

from repro.benchmarks.mc import AGREEMENT_CONTRACT, FLOOR_SPEEDUP, run_benchmark
from repro.obs.timer import BENCH_SCHEMA, write_bench_json
from repro.util.tables import render_table

_REPO_ROOT = Path(__file__).resolve().parent.parent


def test_mc_engine_speedup(benchmark, emit):
    result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    sidecar = write_bench_json(_REPO_ROOT / "BENCH_mc.json", result)
    assert result["schema"] == BENCH_SCHEMA
    assert sidecar is not None and sidecar.exists()

    rows = []
    for name, sc in result["scenarios"].items():
        t = sc["timings_s"]
        rows.append(
            (
                name,
                round(t["vectorized"], 3),
                round(t["scalar_extrapolated"], 2),
                round(sc["speedup"]["simulate_phase"], 1),
                f"{sc['agreement']['max_span_normalised']:.1e}",
            )
        )
    v = result["validation"]
    emit(
        render_table(
            ("scenario", "vec [s]", "scalar [s]", "speedup", "agreement"),
            rows,
            title=(
                f"Monte-Carlo engine, {result['params']['n_jobs']:,} jobs x "
                f"{result['params']['n_reps']} reps "
                f"(validation: {v['cells']} cells, {v['flagged']} flagged)"
            ),
        )
    )

    for name, sc in result["scenarios"].items():
        assert sc["agreement"]["max_span_normalised"] <= AGREEMENT_CONTRACT
        assert sc["speedup"]["simulate_phase"] >= FLOOR_SPEEDUP[name]
    assert v["all_agree"], f"{v['flagged']} validation cells flagged"
