"""Benchmark: regenerate Figure 8 (cluster-wide PPR of EP).

Paper shape: the PPR ranking is the exact REVERSE of Figure 7's
proportionality ranking — the homogeneous 128 A9 cluster has the best PPR
(peaking near 6x10^6 ops/W) and the 16 K10 cluster the worst — exposing the
paper's central contradiction between the two metric families.
"""

import pytest

from repro.experiments.figures import figure8_cluster_ppr
from repro.viz.ascii import render_figure
from repro.workloads.suite import PAPER_PPR

MIX_ORDER = ["16 K10", "32 A9 : 12 K10", "64 A9 : 8 K10", "96 A9 : 4 K10", "128 A9"]


def test_fig8_cluster_ppr(benchmark, emit):
    fig = benchmark(figure8_cluster_ppr, "EP")
    emit(render_figure(fig), figure=fig, stem="fig8_cluster_ppr_ep")

    curves = [fig.require_series(label) for label in MIX_ORDER]
    # Monotone: more wimpy nodes -> better PPR, at every utilisation.
    for worse, better in zip(curves, curves[1:]):
        assert (better.y >= worse.y - 1e-9).all()
    # The homogeneous A9 cluster peaks at the single-node A9 PPR (~6e6),
    # matching the paper's y-axis range of 0-6 x 10^6 ops/W.
    assert curves[-1].y[-1] == pytest.approx(PAPER_PPR["EP"]["A9"], rel=1e-6)
    assert curves[0].y[-1] == pytest.approx(PAPER_PPR["EP"]["K10"], rel=1e-6)
