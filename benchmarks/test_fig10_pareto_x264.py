"""Benchmark: regenerate Figure 10 (proportionality of Pareto configs, x264).

Paper shape: same construction as Figure 9 but for the memory-bound x264;
the paper notes "the number of sub-linear configurations for x264 is larger
compared to the EP workload" — the crossover utilisations sit lower than
EP's, so more of each curve lies below the ideal.
"""

from repro.cluster.configuration import ClusterConfiguration
from repro.core.proportionality import power_curve, sublinear_crossover
from repro.experiments.figures import figure9_pareto_proportionality
from repro.viz.ascii import render_figure
from repro.workloads.suite import paper_workloads


def _crossovers(workload_name):
    w = paper_workloads()[workload_name]
    ref_peak = power_curve(w, ClusterConfiguration.mix({"A9": 32, "K10": 12})).peak_w
    out = {}
    for k in (10, 8, 7, 5):
        curve = power_curve(w, ClusterConfiguration.mix({"A9": 25, "K10": k}))
        out[k] = sublinear_crossover(curve, reference_peak_w=ref_peak)
    return out


def test_fig10_pareto_x264(benchmark, emit):
    fig = benchmark(figure9_pareto_proportionality, "x264")
    emit(render_figure(fig), figure=fig, stem="fig10_pareto_x264")

    ideal = fig.require_series("Ideal")
    small = fig.require_series("25 A9: 5 K10")
    assert (small.y < ideal.y).any()

    x264 = _crossovers("x264")
    ep = _crossovers("EP")
    assert all(u is not None for u in x264.values())
    # More sub-linear range for x264 than EP: earlier crossovers for the
    # small mixes (the paper's "larger number of sub-linear configurations").
    assert x264[5] <= ep[5] + 0.05
    assert x264[7] <= ep[7] + 0.05
