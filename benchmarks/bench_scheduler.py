"""Benchmark: online scheduling engine event throughput.

Wraps :mod:`repro.benchmarks.scheduler` (also runnable standalone as
``python -m repro.benchmarks.scheduler``) in the pytest harness: replays
the full scheduling study (every policy over a diurnal day plus the
fixed-mix contrasts), writes ``BENCH_scheduler.json`` at the repository
root, and pins a conservative floor on the engine's event rate — the lazy
per-node event treatment must keep a whole day's replay inside a
unit-test budget.
"""

from pathlib import Path

from repro.benchmarks.scheduler import run_benchmark
from repro.obs.timer import BENCH_SCHEMA, write_bench_json
from repro.util.tables import render_kv

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Conservative floor (events/second); the engine does ~10x this on an
#: unloaded core, so trips mean an order-of-magnitude regression, not noise.
_FLOOR_EVENTS_PER_S = 2_000.0

#: The obs layer's contract is <= 5% overhead; the CI bound leaves room
#: for single-shot timing noise on a loaded container.
_MAX_OVERHEAD_RATIO = 1.15


def test_scheduler_event_rate(benchmark, emit):
    result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    sidecar = write_bench_json(_REPO_ROOT / "BENCH_scheduler.json", result)
    assert result["schema"] == BENCH_SCHEMA
    assert sidecar is not None and sidecar.exists()

    counts = result["counts"]
    overhead = result["instrumentation"]["overhead_ratio"]
    emit(
        render_kv(
            {
                "engine runs": counts["engine_runs"],
                "jobs dispatched (autoscaled)": counts["jobs_dispatched_autoscaled"],
                "control ticks": counts["control_ticks"],
                "study wall time [s]": round(result["timings_s"]["study_best"], 3),
                "events/s": round(result["events_per_s"], 0),
                "floor": _FLOOR_EVENTS_PER_S,
                "instrumented overhead": f"x{overhead:.3f}",
            },
            title="Online scheduler event throughput",
        )
    )
    assert counts["jobs_dispatched_autoscaled"] > 10_000
    assert result["events_per_s"] >= _FLOOR_EVENTS_PER_S
    assert overhead <= _MAX_OVERHEAD_RATIO
