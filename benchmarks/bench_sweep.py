"""Benchmark: batched sweep engine vs the scalar oracle, full paper space.

Wraps :mod:`repro.benchmarks.sweep` (also runnable standalone as
``python -m repro.benchmarks.sweep``) in the pytest harness: scores all
36,380 configurations of the footnote-4 space both ways, writes
``BENCH_sweep.json`` at the repository root, and pins the engine's
contract — agreement within 1e-9 relative and at least a 10x speedup.
"""

from pathlib import Path

from repro.benchmarks.sweep import run_benchmark
from repro.obs.timer import BENCH_SCHEMA, write_bench_json
from repro.util.tables import render_kv

_REPO_ROOT = Path(__file__).resolve().parent.parent


def test_sweep_engine_speedup(benchmark, emit):
    result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    sidecar = write_bench_json(_REPO_ROOT / "BENCH_sweep.json", result)
    assert result["schema"] == BENCH_SCHEMA
    assert sidecar is not None and sidecar.exists()

    timings = result["timings_s"]
    errors = result["max_rel_error"]
    emit(
        render_kv(
            {
                "configs": result["space"]["configs"],
                "scalar [s]": round(timings["scalar"], 3),
                "batched cold [s]": round(timings["batched_cold"], 4),
                "batched warm [s]": round(timings["batched_warm"], 4),
                "materialised [s]": round(timings["materialised"], 3),
                "speedup (warm)": round(result["speedup"]["batched_warm"], 1),
                "max rel err": max(errors.values()),
            },
            title="Batched sweep engine vs scalar oracle (10 A9 + 10 K10)",
        )
    )
    assert result["space"]["configs"] == 36_380
    assert max(errors.values()) <= 1e-9
    assert result["speedup"]["batched_warm"] >= 10.0
