set datafile separator ','
set title 'Figure 5: energy proportionality of brawny and wimpy nodes (EP)'
set xlabel 'Utilization [%]'
set ylabel 'Peak Power [%]'
set key outside
plot \
  'fig5a_EP.csv' using 1:2 with linespoints title 'Ideal', \
  'fig5a_EP.csv' using 3:4 with linespoints title 'K10', \
  'fig5a_EP.csv' using 5:6 with linespoints title 'A9'
