set datafile separator ','
set title 'Figure 6: PPR of brawny and wimpy nodes (blackscholes)'
set xlabel 'Utilization [%]'
set ylabel 'PPR [(options/s)/W]'
set key outside
set logscale y
plot \
  'fig6c_blackscholes.csv' using 1:2 with linespoints title 'K10', \
  'fig6c_blackscholes.csv' using 3:4 with linespoints title 'A9'
