set datafile separator ','
set title 'Figure 8: cluster-wide PPR of EP'
set xlabel 'Utilization [%]'
set ylabel 'PPR [(random no./s)/W]'
set key outside
plot \
  'fig8_cluster_ppr_ep.csv' using 1:2 with linespoints title '16 K10', \
  'fig8_cluster_ppr_ep.csv' using 3:4 with linespoints title '32 A9 : 12 K10', \
  'fig8_cluster_ppr_ep.csv' using 5:6 with linespoints title '64 A9 : 8 K10', \
  'fig8_cluster_ppr_ep.csv' using 7:8 with linespoints title '96 A9 : 4 K10', \
  'fig8_cluster_ppr_ep.csv' using 9:10 with linespoints title '128 A9'
