set datafile separator ','
set title 'Figure 9: energy proportionality of Pareto-optimal configurations (EP)'
set xlabel 'Utilization [%]'
set ylabel 'Peak Power [%]'
set key outside
plot \
  'fig9_pareto_ep.csv' using 1:2 with linespoints title 'Ideal', \
  'fig9_pareto_ep.csv' using 3:4 with linespoints title '32 A9: 12 K10', \
  'fig9_pareto_ep.csv' using 5:6 with linespoints title '25 A9: 10 K10', \
  'fig9_pareto_ep.csv' using 7:8 with linespoints title '25 A9: 8 K10', \
  'fig9_pareto_ep.csv' using 9:10 with linespoints title '25 A9: 7 K10', \
  'fig9_pareto_ep.csv' using 11:12 with linespoints title '25 A9: 5 K10'
