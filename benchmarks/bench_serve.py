"""Benchmark: batched serving vs the per-request re-sweep baseline.

Wraps :mod:`repro.benchmarks.serve` (also runnable standalone as
``python -m repro.benchmarks.serve``) in the pytest harness: boots the
always-on service in-process, drives the seeded closed-loop query plan
against it, replays the identical plan prefix through cold
``recommend_exhaustive`` re-sweeps, writes ``BENCH_serve.json`` at the
repository root, and pins the serving claim — at least a 20x throughput
advantage at an equal-or-better client-side p95 — plus the
observability claim: full trace sampling costs under 1.15x the
tracing-disabled wall on the identical warm plan.
"""

from pathlib import Path

from repro.benchmarks.serve import run_benchmark
from repro.obs.timer import BENCH_SCHEMA, write_bench_json
from repro.util.tables import render_kv

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Full tracing may not cost more than 15% wall over tracing disabled
#: (the same bound the scheduler benchmark holds its bookkeeping to).
_MAX_OVERHEAD_RATIO = 1.15


def test_batched_serving_speedup(benchmark, emit):
    result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    sidecar = write_bench_json(_REPO_ROOT / "BENCH_serve.json", result)
    assert result["schema"] == BENCH_SCHEMA
    assert sidecar is not None and sidecar.exists()

    resweep = result["resweep"]
    served = result["served"]
    emit(
        render_kv(
            {
                "re-sweep [req/s]": round(resweep["throughput_rps"], 1),
                "re-sweep p95 [ms]": round(resweep["p95_latency_s"] * 1e3, 2),
                "served [req/s]": round(served["throughput_rps"], 1),
                "served p95 [ms]": round(served["p95_latency_s"] * 1e3, 2),
                "speedup": round(result["speedup"]["batched_vs_resweep"], 1),
                "cache hit fraction": round(
                    served["server"]["cache_hit_fraction"], 4
                ),
                "tracing overhead": round(
                    result["instrumentation"]["overhead_ratio"], 3
                ),
            },
            title="Batched serving vs per-request re-sweep (footnote-4 space)",
        )
    )
    # Every planned request completed; nothing was shed or errored at the
    # benchmark's reference load.
    assert served["completed"] == served["attempted"]
    assert served["errors"] == 0.0
    # The serving claim: >= 20x the re-sweep baseline's throughput at an
    # equal-or-better p95 (the served p95 includes HTTP round trips; the
    # re-sweep p95 is pure compute, so this is conservative).
    assert served["p95_latency_s"] <= resweep["p95_latency_s"]
    assert result["speedup"]["batched_vs_resweep"] >= 20.0
    # Request-level observability is cheap enough to leave on: tracing
    # every request costs under 15% wall vs tracing disabled (best of
    # rounds on the identical warm plan).
    assert result["instrumentation"]["overhead_ratio"] <= _MAX_OVERHEAD_RATIO
