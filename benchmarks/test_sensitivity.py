"""Benchmark: calibration sensitivity of the paper's conclusions.

Not a paper artefact — quantifies how far the published-value calibration
could be off before the qualitative findings (PPR winners, the ~50%
sub-linear crossover of the (25, 7) mix) change.
"""

from repro.experiments.sensitivity import conclusion_sensitivity, crossover_sensitivity
from repro.util.tables import render_table


def test_sensitivity_crossover(benchmark, emit):
    headers, rows = benchmark.pedantic(crossover_sensitivity, rounds=1, iterations=1)
    emit(
        render_table(
            headers, rows,
            title="Sensitivity: sub-linear crossover of 25 A9 : 7 K10 (EP)",
        )
    )
    ok_values = [r[1] for r in rows if r[2] == "ok" and isinstance(r[1], float)]
    # The paper's "~50% utilisation" reading survives every perturbation.
    assert all(0.4 <= v <= 0.6 for v in ok_values)


def test_sensitivity_ppr_winners(benchmark, emit):
    headers, rows = benchmark.pedantic(conclusion_sensitivity, rounds=1, iterations=1)
    emit(
        render_table(
            headers, rows,
            title="Sensitivity: per-workload PPR winner under IPR shifts",
        )
    )
    idx = {h: i for i, h in enumerate(headers)}
    for name in ("EP", "blackscholes", "julius"):
        winners = {r[idx[name]] for r in rows} - {"infeasible"}
        assert winners == {"A9"}
    winners_x264 = {r[idx["x264"]] for r in rows} - {"infeasible"}
    assert winners_x264 == {"K10"}
