"""Benchmark: regenerate Figure 2 (metric relationship illustration).

The paper's Figure 2 is an annotated sketch relating DPR, IPR, EPM, LDR and
PG on sub- and super-linear power curves.  The regeneration plots an ideal
line plus matched sub-/super-linear curves and prints the metric values of
each, verifying the relationships the sketch encodes.
"""

from repro.core.metrics import QuadraticPowerCurve, analyze_curve, proportionality_gap
from repro.experiments.figures import figure2_metric_relationships
from repro.util.tables import render_table
from repro.viz.ascii import render_figure


def test_fig2_metric_relationships(benchmark, emit):
    fig = benchmark(figure2_metric_relationships)
    ipr0 = 0.4
    sup = QuadraticPowerCurve(ipr0 * 100, 100.0, curvature=-0.6)
    sub = QuadraticPowerCurve(ipr0 * 100, 100.0, curvature=0.6)
    rows = []
    for label, curve in (("super-linear", sup), ("sub-linear", sub)):
        r = analyze_curve(curve)
        rows.append(
            (label, round(r.dpr, 1), round(r.ipr, 2), round(r.epm, 3),
             round(r.ldr_strict, 3), round(proportionality_gap(curve, 0.3), 3))
        )
    emit(
        render_figure(fig)
        + "\n\n"
        + render_table(
            ("curve", "DPR", "IPR", "EPM", "LDR(strict)", "PG(30%)"), rows,
            title="Figure 2 metric relationships",
        ),
        figure=fig,
        stem="fig2",
    )
    # Relationships the sketch encodes:
    r_sup, r_sub = analyze_curve(sup), analyze_curve(sub)
    assert r_sup.dpr == r_sub.dpr  # DPR/IPR see only the endpoints
    assert r_sub.epm > r_sup.epm  # sub-linear curves are more proportional
    assert r_sub.ldr_strict < 0 < r_sup.ldr_strict  # LDR sign convention
    assert proportionality_gap(sup, 0.3) > proportionality_gap(sub, 0.3)
