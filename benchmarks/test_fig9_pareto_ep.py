"""Benchmark: regenerate Figure 9 (proportionality of Pareto configs, EP).

Paper shape: against the maximal 32 A9 : 12 K10 configuration's peak power,
the Pareto mixes with fewer K10 nodes drop below the ideal line — sub-linear
energy proportionality.  (25, 8) stays near/above the ideal while (25, 7)
crosses below it around 50% utilisation and (25, 5) is sub-linear over most
of the range.
"""

from repro.cluster.configuration import ClusterConfiguration
from repro.core.proportionality import power_curve, sublinear_crossover
from repro.experiments.figures import figure9_pareto_proportionality
from repro.viz.ascii import render_figure
from repro.workloads.suite import paper_workloads


def test_fig9_pareto_ep(benchmark, emit):
    fig = benchmark(figure9_pareto_proportionality, "EP")
    emit(render_figure(fig), figure=fig, stem="fig9_pareto_ep")

    ideal = fig.require_series("Ideal")
    reference = fig.require_series("32 A9: 12 K10")
    assert (reference.y >= ideal.y - 1e-9).all()

    # Sub-linearity: crossover utilisation decreases with the K10 count.
    w = paper_workloads()["EP"]
    ref_peak = power_curve(w, ClusterConfiguration.mix({"A9": 32, "K10": 12})).peak_w
    crossovers = {}
    for k in (10, 8, 7, 5):
        curve = power_curve(w, ClusterConfiguration.mix({"A9": 25, "K10": k}))
        crossovers[k] = sublinear_crossover(curve, reference_peak_w=ref_peak)
    assert all(u is not None for u in crossovers.values())
    assert crossovers[5] < crossovers[7] < crossovers[8] < crossovers[10]
    # The paper's example: (25, 7) is sub-linear at 50% utilisation.
    assert crossovers[7] <= 0.75
    # And the smallest mix is sub-linear for most of the range.
    assert crossovers[5] <= 0.5
