"""Ablation studies for the design choices DESIGN.md calls out.

Each function isolates one modelling decision and quantifies how the
paper's conclusions move when it changes:

* **Curve shape** — the paper's M/D/1 accounting makes power curves linear
  with an idle offset, which degenerates EPM = LDR = 1 - IPR (its own
  Tables 7/8).  Hsu & Poole (ICPP 2013) found real servers trend quadratic;
  the ablation shows how curvature separates the metrics again.
* **Switch power** — footnote 3's 8:1 substitution ratio bakes in a 20 W
  switch per 8 wimpy nodes; the ablation sweeps the switch power and
  reports the ratio and the budget mixes it produces.
* **Service-time variability** — the paper's jobs are deterministic
  (M/D/1); the ablation sweeps the service SCV from 0 (M/D/1) through 1
  (M/M/1) and beyond, with DES percentiles where no closed form exists.
* **Open vs batch arrivals** — Section II-B models Poisson arrivals while
  Section II-C sweeps utilisation with job batches; the ablation contrasts
  the p95 spread between Pareto mixes under both readings (the root of the
  "sub-millisecond" discussion in EXPERIMENTS.md).
* **KnightShift baseline** — server-level vs inter-node heterogeneity.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.budget import substitution_ratio
from repro.cluster.configuration import ClusterConfiguration
from repro.core.batch import batch_response_percentile_s
from repro.core.metrics import QuadraticPowerCurve, analyze_curve
from repro.core.proportionality import power_curve
from repro.core.response import response_percentile_s
from repro.errors import ModelError
from repro.experiments.figures import PARETO_MIXES, pareto_mix_configs
from repro.extensions.knightshift import compare_with_internode
from repro.model.time_model import execution_time
from repro.queueing.des import QueueSimulator
from repro.queueing.md1 import MD1Queue
from repro.queueing.mg1 import MG1Queue, MM1Queue
from repro.workloads.suite import paper_workloads

__all__ = [
    "curvature_ablation",
    "switch_power_ablation",
    "service_variability_ablation",
    "open_vs_batch_ablation",
    "pooling_ablation",
    "adaptation_ablation",
    "fork_join_ablation",
    "validation_scale_ablation",
    "knightshift_ablation",
    "sweep_engine_ablation",
]

Headers = Tuple[str, ...]
Rows = List[Tuple]


def curvature_ablation(
    workload_name: str = "EP",
    node: str = "K10",
    curvatures: Sequence[float] = (-0.5, -0.25, 0.0, 0.25, 0.5),
) -> Tuple[Headers, Rows]:
    """How curve shape breaks the EPM = LDR = 1 - IPR degeneracy.

    The idle/peak endpoints come from the calibrated workload; only the
    path between them changes.
    """
    w = paper_workloads()[workload_name]
    base = power_curve(w, ClusterConfiguration.mix({node: 1}))
    rows: Rows = []
    for curvature in curvatures:
        curve = QuadraticPowerCurve(base.idle_w, base.peak_w, curvature=curvature)
        r = analyze_curve(curve)
        rows.append(
            (
                curvature,
                round(r.ipr, 3),
                round(1 - r.ipr, 3),
                round(r.epm, 3),
                round(r.ldr_strict, 3),
            )
        )
    return ("curvature", "IPR", "1-IPR", "EPM", "LDR (strict)"), rows


def switch_power_ablation(
    switch_powers_w: Sequence[float] = (0.0, 10.0, 20.0, 40.0),
    *,
    budget_w: float = 1000.0,
) -> Tuple[Headers, Rows]:
    """Sensitivity of the substitution ratio to the switch power."""
    rows: Rows = []
    k_max = int(budget_w // 60.0)  # brawny nodes the budget fits
    for sw in switch_powers_w:
        ratio = substitution_ratio(switch_w=sw)
        # The all-wimpy end of the sweep exists only for integral ratios.
        if abs(ratio - round(ratio)) < 1e-9:
            label = f"{int(round(ratio)) * k_max} A9"
        else:
            label = "n/a (non-integral ratio)"
        rows.append((sw, round(ratio, 3), label))
    return ("switch power [W]", "A9 per K10", "all-wimpy mix at 1 kW"), rows


def service_variability_ablation(
    workload_name: str = "EP",
    mix: Dict[str, int] | None = None,
    *,
    utilisation: float = 0.7,
    scvs: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
    des_jobs: int = 30_000,
    seed: int = 424242,
) -> Tuple[Headers, Rows]:
    """Mean and p95 response versus service-time variability.

    SCV 0 and 1 have closed forms (M/D/1, M/M/1); intermediate and heavier
    variability run the DES with a gamma service distribution of the same
    mean and SCV.
    """
    if not 0.0 < utilisation < 1.0:
        raise ModelError(f"utilisation must be in (0, 1), got {utilisation}")
    w = paper_workloads()[workload_name]
    config = ClusterConfiguration.mix(mix or {"A9": 32, "K10": 12})
    tp = execution_time(w, config)
    lam = utilisation / tp
    rows: Rows = []
    for scv in scvs:
        mg1 = MG1Queue(lam, tp, scv)
        if scv == 0.0:
            p95 = MD1Queue(lam, tp).p95_response_s()
            source = "M/D/1 analytic"
        elif scv == 1.0:
            p95 = MM1Queue(lam, tp).response_percentile(95)
            source = "M/M/1 analytic"
        else:
            from repro.queueing.arrivals import PoissonArrivals

            shape = 1.0 / scv
            scale = tp / shape

            def service(r: np.random.Generator) -> float:
                return float(r.gamma(shape, scale))

            sim = QueueSimulator(
                PoissonArrivals(lam, np.random.default_rng(seed)),
                service,
                rng=np.random.default_rng(seed + 1),
            )
            p95 = float(np.percentile(sim.run_jobs(des_jobs).responses, 95))
            source = f"DES ({des_jobs} jobs)"
        rows.append(
            (scv, round(mg1.mean_response_s, 4), round(p95, 4), source)
        )
    return ("service SCV", "mean response [s]", "p95 response [s]", "source"), rows


def open_vs_batch_ablation(
    workload_name: str = "EP",
    *,
    utilisation: float = 0.6,
    window_multiplier: float = 10.0,
) -> Tuple[Headers, Rows]:
    """p95 spread between the Pareto mixes: open M/D/1 vs batch windows.

    The batch window is ``window_multiplier`` times the maximal mix's
    service time for every configuration, so utilisation means the same
    thing across mixes.
    """
    w = paper_workloads()[workload_name]
    configs = pareto_mix_configs()
    window = window_multiplier * execution_time(w, configs[0])
    rows: Rows = []
    for (a, k), config in zip(PARETO_MIXES, configs):
        open_p95 = response_percentile_s(w, config, utilisation)
        batch_p95 = batch_response_percentile_s(
            w, config, utilisation, window_s=window
        )
        rows.append(
            (f"{a} A9 : {k} K10", round(open_p95, 4), round(batch_p95, 4))
        )
    return ("mix", "open M/D/1 p95 [s]", "batch p95 [s]"), rows


def pooling_ablation(
    workload_name: str = "EP",
    mix: Dict[str, int] | None = None,
    *,
    utilisation: float = 0.7,
    slot_counts: Sequence[int] = (1, 2, 4, 8),
) -> Tuple[Headers, Rows]:
    """Pooled vs partitioned dispatch: split the cluster into c job slots.

    The paper's dispatcher runs each job across the WHOLE cluster (one fast
    M/D/1 server).  Partitioning the same capacity into ``c`` independent
    slots serves each job ``c`` times slower (M/D/c): throughput capacity
    is identical, but tail latency degrades — quantifying what the paper's
    scale-out job model buys.
    """
    from repro.queueing.mdc import MDCQueue

    if not 0.0 < utilisation < 1.0:
        raise ModelError(f"utilisation must be in (0, 1), got {utilisation}")
    w = paper_workloads()[workload_name]
    config = ClusterConfiguration.mix(mix or {"A9": 32, "K10": 12})
    tp_pooled = execution_time(w, config)
    lam = utilisation / tp_pooled
    rows: Rows = []
    for c in slot_counts:
        queue = MDCQueue(lam, tp_pooled * c, c)
        rows.append(
            (
                c,
                round(tp_pooled * c, 4),
                round(queue.mean_wait_s() + tp_pooled * c, 4),
                round(queue.p95_response_s(), 4),
            )
        )
    return ("job slots c", "T_P per slot [s]", "mean response [s]", "p95 response [s]"), rows


def fork_join_ablation(
    workload_name: str = "julius",
    mix: Dict[str, int] | None = None,
    *,
    utilisation: float = 0.7,
    node_counts: Sequence[int] = (1, 8, 16, 44),
    n_jobs: int = 20_000,
    seed: int = 515151,
) -> Tuple[Headers, Rows]:
    """Straggler penalty of explicit fork-join dispatch vs the M/D/1 view.

    The paper's single-server abstraction is exact for perfectly regular
    chunks; with the workload's phase variability the join waits for the
    slowest of n noisy chunks, and the penalty grows with the node count.
    The ablation uses each workload's calibrated ``TRACE_VARIABILITY`` as
    the chunk-time coefficient of variation.
    """
    from repro.queueing.forkjoin import simulate_fork_join
    from repro.workloads.suite import TRACE_VARIABILITY

    if not 0.0 < utilisation < 1.0:
        raise ModelError(f"utilisation must be in (0, 1), got {utilisation}")
    w = paper_workloads()[workload_name]
    config = ClusterConfiguration.mix(mix or {"A9": 32, "K10": 12})
    tp = execution_time(w, config)
    lam = utilisation / tp
    cv = TRACE_VARIABILITY[workload_name]
    analytic_p95 = MD1Queue(lam, tp).p95_response_s()
    rows: Rows = [("M/D/1 abstraction", "-", round(analytic_p95, 4), "-")]
    for n in node_counts:
        result = simulate_fork_join(
            arrival_rate=lam,
            chunk_time_s=tp,
            n_nodes=n,
            cv=cv,
            n_jobs=n_jobs,
            rng=np.random.default_rng(seed),
        )
        penalty = result.p95_response_s / analytic_p95 - 1.0
        rows.append(
            (
                f"fork-join, {n} nodes",
                cv,
                round(result.p95_response_s, 4),
                f"{penalty:+.1%}",
            )
        )
    return ("dispatch model", "chunk cv", "p95 response [s]", "vs M/D/1"), rows


def validation_scale_ablation(
    workload_name: str = "julius",
    *,
    job_scales: Sequence[float] = (1.0, 4.0, 16.0, 64.0),
    seed: int = 20160913,
) -> Tuple[Headers, Rows]:
    """Validation error versus measured-run length.

    Short runs are dominated by fixed overheads (dispatch, phase barriers)
    and power-meter quantisation, inflating the model-vs-measured errors;
    the paper validates with full program inputs for exactly this reason.
    The sweep shows the errors settling as the run grows.
    """
    from repro.model.validation import ValidationPipeline
    from repro.util.rng import RngRegistry

    w = paper_workloads()[workload_name]
    rows: Rows = []
    for scale in job_scales:
        pipeline = ValidationPipeline(
            RngRegistry(seed), n_jobs=3, job_scale=scale
        )
        row = pipeline.validate(w)
        rows.append(
            (
                scale,
                round(row.measured_time_s, 3),
                round(row.time_error_pct, 1),
                round(row.energy_error_pct, 1),
            )
        )
    return (
        "job scale",
        "measured run [s]",
        "time err [%]",
        "energy err [%]",
    ), rows


def adaptation_ablation(
    workload_names: Sequence[str] = ("EP", "x264", "memcached"),
    *,
    seed: int = 77,
    switching_energy_j: float = 5_000.0,
) -> Tuple[Headers, Rows]:
    """Static vs dynamic configuration over a diurnal day.

    Quantifies the complement the paper's introduction defers to: a policy
    that powers nodes up/down per hour against the peak-provisioned static
    cluster, over the same diurnal demand trace.
    """
    from repro.extensions.dynamic import (
        diurnal_trace,
        scaled_candidates,
        simulate_adaptation,
    )

    trace = diurnal_trace(rng=np.random.default_rng(seed))
    candidates = scaled_candidates()
    rows: Rows = []
    for name in workload_names:
        w = paper_workloads()[name]
        result = simulate_adaptation(
            w, trace, candidates=candidates, switching_energy_j=switching_energy_j
        )
        rows.append(
            (
                name,
                result.static_label,
                round(result.static_energy_j / 3.6e6, 3),
                round(result.dynamic_energy_j / 3.6e6, 3),
                f"{result.savings_fraction:.1%}",
                result.switches,
            )
        )
    return (
        "workload",
        "static (peak) cluster",
        "static [kWh/day]",
        "dynamic [kWh/day]",
        "savings",
        "switches",
    ), rows


def sweep_engine_ablation(
    workload_names: Sequence[str] = ("EP", "x264", "memcached"),
    *,
    n_a9: int = 6,
    n_k10: int = 3,
) -> Tuple[Headers, Rows]:
    """Scalar oracle vs batched sweep engine over a full DVFS space.

    The batched engine (:mod:`repro.model.batched`) scores node counts,
    active cores AND per-type DVFS frequency in one broadcasted pass; the
    scalar model remains the oracle.  This ablation enumerates a reduced
    paper space (``n_a9`` A9 + ``n_k10`` K10, all cores/frequency choices)
    both ways and reports the worst relative disagreement per workload —
    the contract is <= 1e-9 on every configuration.
    """
    from repro.cluster.configuration import TypeSpace, enumerate_configurations
    from repro.cluster.pareto import evaluate_configuration
    from repro.hardware.specs import get_node_spec
    from repro.model.batched import evaluate_space_arrays

    rows: Rows = []
    spaces = (
        TypeSpace(get_node_spec("A9"), n_a9),
        TypeSpace(get_node_spec("K10"), n_k10),
    )
    for name in workload_names:
        w = paper_workloads()[name]
        arrays = evaluate_space_arrays(w, spaces)
        tp_err = 0.0
        energy_err = 0.0
        peak_err = 0.0
        for i, config in enumerate(enumerate_configurations(spaces)):
            ev = evaluate_configuration(w, config)
            tp_err = max(tp_err, abs(arrays.tp_s[i] / ev.tp_s - 1.0))
            energy_err = max(energy_err, abs(arrays.energy_j[i] / ev.energy_j - 1.0))
            peak_err = max(
                peak_err, abs(arrays.peak_power_w[i] / ev.peak_power_w - 1.0)
            )
        rows.append(
            (
                name,
                arrays.n_configs,
                f"{tp_err:.2e}",
                f"{energy_err:.2e}",
                f"{peak_err:.2e}",
            )
        )
    return (
        "workload",
        "configs",
        "max rel err T_P",
        "max rel err E_P",
        "max rel err peak W",
    ), rows


def knightshift_ablation(
    workload_name: str = "EP", *, budget_w: float = 1000.0
) -> Tuple[Headers, Rows]:
    """Server-level (KnightShift) vs inter-node heterogeneity."""
    w = paper_workloads()[workload_name]
    comparison = compare_with_internode(w, budget_w=budget_w)
    keys = [k for k in comparison["knightshift"] if k.startswith("ppr@")]
    headers = ("approach", "servers", "EPM", *keys)
    rows: Rows = []
    for name, values in comparison.items():
        rows.append(
            (
                name,
                int(values["servers"]),
                round(values["epm"], 3),
                *[round(values[k], 1) for k in keys],
            )
        )
    return headers, rows
