"""Monte-Carlo cross-validation of the analytic percentile claims.

Every 95th-percentile response time the reproduction reports (Figures 9-12,
the deadline search, the workload reports) comes from the closed-form
M/D/1 model in :mod:`repro.queueing.md1`.  This study pins those numbers to
simulated ground truth: for each workload x configuration x utilisation
cell it runs the vectorized Monte-Carlo engine
(:class:`repro.queueing.mc.MonteCarloQueue`) for many independent
replications and checks that the analytic p95 falls inside the simulated
99% confidence interval.  Cells where it does not are *flagged* — either
the analytic model, the simulator, or the statistics is wrong, and the
agreement report says where to look.

The default grid covers the paper's latency-sensitive story: the two
single-node extremes (1 A9, 1 K10), the maximal Pareto mix (32 A9 : 12 K10)
and the most wimpy-heavy sub-linear mix (25 A9 : 5 K10), for EP, memcached
and x264, across five utilisations up to deep saturation (95%).

A second tier (:func:`run_mm1_validation`) validates the *process
plug-ins* the same way: Poisson arrivals plus the exponential
:class:`~repro.queueing.processes.ExponentialService` spec simulated
through the same engine, checked against the closed-form M/M/1 p95
(:meth:`repro.queueing.mg1.MM1Queue.response_percentile`).  A flagged
cell there implicates the plug-in seam, not the M/D/1 model — the two
tiers bracket the new processes module from both sides.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.configuration import ClusterConfiguration
from repro.core.response import _effective_utilisation
from repro.errors import QueueingError
from repro.model.time_model import execution_time
from repro.queueing.mc import ConfidenceInterval, MonteCarloQueue
from repro.queueing.md1 import MD1Queue
from repro.util.rng import DEFAULT_SEED
from repro.util.tables import render_table
from repro.workloads.base import Workload
from repro.workloads.suite import paper_workloads

__all__ = [
    "VALIDATION_GRID",
    "VALIDATION_MIXES",
    "VALIDATION_WORKLOADS",
    "AgreementCell",
    "AgreementReport",
    "validate_cell",
    "run_validation",
    "validate_mm1_cell",
    "run_mm1_validation",
    "render_validation_report",
    "report_scalars",
]

#: Utilisation grid of the agreement study (the ISSUE asks for >= 5 points;
#: 0.95 exercises deep saturation where the tail is 30x the service time).
VALIDATION_GRID: Tuple[float, ...] = (0.3, 0.5, 0.7, 0.85, 0.95)

#: (A9, K10) mixes validated: the single-node extremes plus the maximal and
#: the most sub-linear Pareto configurations of Figures 9-12.
VALIDATION_MIXES: Tuple[Tuple[int, int], ...] = (
    (1, 0),
    (0, 1),
    (32, 12),
    (25, 5),
)

#: Paper workloads covered by default: the compute-bound NPB kernel and the
#: two latency-sensitive scale-out services of the Fig. 9 claim.
VALIDATION_WORKLOADS: Tuple[str, ...] = ("EP", "memcached", "x264")


@dataclass(frozen=True)
class AgreementCell:
    """One workload x configuration x utilisation agreement check."""

    workload_name: str
    config_label: str
    utilisation: float
    service_time_s: float
    analytic_p95_s: float
    ci: ConfidenceInterval
    n_jobs: int
    n_reps: int

    @property
    def agrees(self) -> bool:
        """Whether the analytic p95 lies inside the simulated CI."""
        return self.ci.contains(self.analytic_p95_s)

    @property
    def relative_gap(self) -> float:
        """Signed gap of the analytic value from the CI mean, relative."""
        return (self.analytic_p95_s - self.ci.mean) / self.ci.mean


@dataclass(frozen=True)
class AgreementReport:
    """The full agreement study: one cell per grid point."""

    cells: Tuple[AgreementCell, ...]
    level: float

    @property
    def flagged(self) -> Tuple[AgreementCell, ...]:
        """Cells whose analytic p95 fell outside the simulated CI."""
        return tuple(c for c in self.cells if not c.agrees)

    @property
    def all_agree(self) -> bool:
        """Whether every cell agrees."""
        return not self.flagged

    @property
    def agreement_fraction(self) -> float:
        """Fraction of agreeing cells."""
        if not self.cells:
            return 1.0
        return 1.0 - len(self.flagged) / len(self.cells)


def _cell_seed(
    seed: int, workload_name: str, config_label: str, utilisation: float
) -> int:
    """A per-cell seed, derived deterministically from the root seed.

    With one shared seed every cell would see the *same* standardized
    randomness (the waits scale by T_P), so a single unlucky draw at one
    utilisation would flag every workload x mix cell at that utilisation at
    once — 99% coverage would hold per draw but the report would read as a
    grid-wide disagreement.  Hashing the cell identity into the seed makes
    each cell's check statistically independent while staying reproducible.
    """
    key = f"{seed}|{workload_name}|{config_label}|{utilisation:.9f}"
    digest = hashlib.blake2s(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def validate_cell(
    workload: Workload,
    config: ClusterConfiguration,
    utilisation: float,
    *,
    n_jobs: int = 20_000,
    n_reps: int = 40,
    level: float = 0.99,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
) -> AgreementCell:
    """Check one grid cell: analytic M/D/1 p95 vs the simulated CI.

    The configuration's execution time T_P is the deterministic service
    time; the arrival rate realising the target utilisation is
    ``U / T_P`` (the paper's ``U = T_P * lambda_job`` inverted), exactly as
    in :func:`repro.core.response.response_percentile_s`.  ``seed`` is a
    root seed: each cell derives its own independent stream from it (see
    :func:`_cell_seed`).  ``workers`` fans the cell's replications across
    a process pool; the replication streams make the cell's statistics
    bit-identical at any worker count, so the agreement verdicts never
    depend on the machine running them.
    """
    u = _effective_utilisation(utilisation)
    tp = execution_time(workload, config)
    analytic = MD1Queue.from_utilisation(u, tp).p95_response_s()
    mc = MonteCarloQueue.from_utilisation(
        u,
        tp,
        seed=_cell_seed(seed, workload.name, config.label(), utilisation),
    )
    result = mc.run(n_jobs, n_reps, workers=workers)
    ci = result.percentile_ci(95.0, level=level)
    return AgreementCell(
        workload_name=workload.name,
        config_label=config.label(),
        utilisation=float(utilisation),
        service_time_s=tp,
        analytic_p95_s=analytic,
        ci=ci,
        n_jobs=n_jobs,
        n_reps=n_reps,
    )


def run_validation(
    *,
    workloads: Sequence[str] = VALIDATION_WORKLOADS,
    mixes: Sequence[Tuple[int, int]] = VALIDATION_MIXES,
    grid: Sequence[float] = VALIDATION_GRID,
    n_jobs: int = 20_000,
    n_reps: int = 40,
    level: float = 0.99,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
) -> AgreementReport:
    """Sweep the agreement study over the full validation grid.

    ``workers`` parallelises each cell's Monte-Carlo replications
    (:meth:`repro.queueing.mc.MonteCarloQueue.run`); the report is
    bit-identical at any worker count.
    """
    if not workloads or not mixes or not grid:
        raise QueueingError("validation needs workloads, mixes and a grid")
    suite = paper_workloads()
    unknown = [name for name in workloads if name not in suite]
    if unknown:
        raise QueueingError(
            f"unknown paper workloads {unknown}; expected among {tuple(suite)}"
        )
    configs = [
        ClusterConfiguration.mix(
            {name: n for name, n in (("A9", a), ("K10", k)) if n > 0}
        )
        for a, k in mixes
    ]
    cells: List[AgreementCell] = []
    for name in workloads:
        workload = suite[name]
        for config in configs:
            for u in grid:
                cells.append(
                    validate_cell(
                        workload,
                        config,
                        float(u),
                        n_jobs=n_jobs,
                        n_reps=n_reps,
                        level=level,
                        seed=seed,
                        workers=workers,
                    )
                )
    return AgreementReport(cells=tuple(cells), level=level)


def validate_mm1_cell(
    workload: Workload,
    config: ClusterConfiguration,
    utilisation: float,
    *,
    n_jobs: int = 20_000,
    n_reps: int = 40,
    level: float = 0.99,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
) -> AgreementCell:
    """Check one M/M/1 cell: the exponential-service *plug-in* vs theory.

    The queue is built from the seeded-stream specs
    (:class:`~repro.queueing.processes.PoissonProcess` +
    :class:`~repro.queueing.processes.ExponentialService`) rather than the
    engine's native float arguments, so a disagreement here implicates the
    plug-in protocol.  The analytic target is the exact M/M/1 response
    quantile ``-ln(1 - q) / (mu - lambda)``.  Cell seeds carry an
    ``"mm1|"`` prefix so this tier never shares randomness with the M/D/1
    tier on the same grid point.
    """
    from repro.queueing.mg1 import MM1Queue
    from repro.queueing.processes import ExponentialService, PoissonProcess

    u = _effective_utilisation(utilisation)
    tp = execution_time(workload, config)
    analytic = MM1Queue.from_utilisation(u, tp).response_percentile(95.0)
    mc = MonteCarloQueue(
        PoissonProcess(u / tp),
        ExponentialService(tp),
        seed=_cell_seed(seed, "mm1|" + workload.name, config.label(), utilisation),
    )
    result = mc.run(n_jobs, n_reps, workers=workers)
    ci = result.percentile_ci(95.0, level=level)
    return AgreementCell(
        workload_name=workload.name,
        config_label=config.label(),
        utilisation=float(utilisation),
        service_time_s=tp,
        analytic_p95_s=analytic,
        ci=ci,
        n_jobs=n_jobs,
        n_reps=n_reps,
    )


def run_mm1_validation(
    *,
    workloads: Sequence[str] = VALIDATION_WORKLOADS,
    mixes: Sequence[Tuple[int, int]] = VALIDATION_MIXES,
    grid: Sequence[float] = VALIDATION_GRID,
    n_jobs: int = 20_000,
    n_reps: int = 40,
    level: float = 0.99,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
) -> AgreementReport:
    """Sweep the M/M/1 plug-in agreement study over the validation grid.

    Same grid and statistics as :func:`run_validation`, but simulating
    through the pluggable process specs and checking against the M/M/1
    closed form; bit-identical at any worker count.
    """
    if not workloads or not mixes or not grid:
        raise QueueingError("validation needs workloads, mixes and a grid")
    suite = paper_workloads()
    unknown = [name for name in workloads if name not in suite]
    if unknown:
        raise QueueingError(
            f"unknown paper workloads {unknown}; expected among {tuple(suite)}"
        )
    configs = [
        ClusterConfiguration.mix(
            {name: n for name, n in (("A9", a), ("K10", k)) if n > 0}
        )
        for a, k in mixes
    ]
    cells: List[AgreementCell] = []
    for name in workloads:
        workload = suite[name]
        for config in configs:
            for u in grid:
                cells.append(
                    validate_mm1_cell(
                        workload,
                        config,
                        float(u),
                        n_jobs=n_jobs,
                        n_reps=n_reps,
                        level=level,
                        seed=seed,
                        workers=workers,
                    )
                )
    return AgreementReport(cells=tuple(cells), level=level)


def report_scalars(report: AgreementReport) -> Dict[str, float]:
    """One agreement report's key scalars for the run ledger and monitors."""
    max_gap = max(
        (abs(c.relative_gap) for c in report.cells), default=0.0
    )
    return {
        "agreement_fraction": report.agreement_fraction,
        "n_cells": float(len(report.cells)),
        "n_flagged": float(len(report.flagged)),
        "max_abs_relative_gap": float(max_gap),
    }


def render_validation_report(report: AgreementReport) -> str:
    """Render the agreement report as an aligned text table."""
    rows = [
        (
            c.workload_name,
            c.config_label,
            round(c.utilisation, 3),
            c.analytic_p95_s,
            c.ci.lo,
            c.ci.hi,
            "ok" if c.agrees else "FLAG",
        )
        for c in report.cells
    ]
    table = render_table(
        (
            "workload",
            "configuration",
            "U",
            "analytic p95 [s]",
            "CI lo",
            "CI hi",
            "agree",
        ),
        rows,
        title=(
            f"Analytic M/D/1 p95 vs Monte-Carlo {report.level:.0%} CI "
            f"({len(report.cells)} cells)"
        ),
    )
    summary = (
        "all cells agree"
        if report.all_agree
        else f"{len(report.flagged)} of {len(report.cells)} cells FLAGGED"
    )
    return f"{table}\n{summary}"
