"""Online scheduling study: dispatch policies, autoscaling, and the oracle.

The static analysis (Tables 5-8) and the offline adaptation oracle
(:mod:`repro.extensions.dynamic`) bound what a heterogeneous cluster
*could* do; this study measures what an *online* scheduler actually
achieves against those bounds, in three parts:

1. **Autoscaled policy comparison** — every dispatch policy replays the
   same diurnal day on the 1 kW capacity ladder under the predictive
   autoscaler.  The headline number is each policy's energy gap to the
   offline oracle (perfect knowledge, free switching); the engine pays for
   boots, shutdowns, parked idle draw and discretised rungs, and still
   lands within a few percent.

2. **Fig. 9-style mix contrast** — the paper's response-time argument for
   Pareto mixes: serving the same absolute load on the reference mix
   (32 A9 : 12 K10) and on a wimpier Pareto mix (25 A9 : 5 K10) preserves
   the p95 response time for EP-like workloads (A9s saturate first on both
   mixes) but visibly degrades x264, whose demand overflows the smaller
   K10 pool onto 15-second-per-frame A9s.

3. **Heterogeneous dispatch energy** — on a fixed mixed cluster at low
   load, ``ppr-greedy`` routes x264 frames to the energy-cheaper K10s
   while ``round-robin`` spreads them evenly; identical arrivals, strictly
   less energy.  This is the dispatch-time analogue of the paper's
   per-workload PPR winners (Section III-A).

All runs share one seed and are fully deterministic; the acceptance tests
pin the oracle gap, the p95 contrast and the energy ordering.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import ReproError
from repro.extensions.dynamic import diurnal_trace, scaled_candidates, simulate_adaptation
from repro.hardware.specs import get_node_spec
from repro.model.batched import config_constants
from repro.scheduler.autoscaler import PredictiveAutoscaler, build_ladder
from repro.scheduler.engine import ClusterScheduler, ScheduleResult, TimelineSample
from repro.scheduler.policies import POLICY_NAMES
from repro.scheduler.powerstate import TransitionCosts
from repro.util.rng import DEFAULT_SEED, RngRegistry
from repro.util.tables import render_kv, render_table
from repro.viz.ascii import render_timeline
from repro.workloads.base import Workload
from repro.workloads.suite import workload

__all__ = [
    "STUDY_WORKLOADS",
    "ENERGY_POLICY",
    "scheduling_workloads",
    "light_transition_costs",
    "PolicyOutcome",
    "WorkloadComparison",
    "MixContrast",
    "HeterogeneousEnergy",
    "SchedulingStudy",
    "run_scheduling_study",
    "run_mix_contrast",
    "render_scheduling_report",
    "schedule_result_json",
    "replay_scalars",
    "study_scalars",
]

#: Workloads the study replays (one per paper domain represented at the
#: cluster level: CPU-bound HPC, memory-bound serving, the K10-favouring
#: encoder).
STUDY_WORKLOADS = ("EP", "memcached", "x264")

#: The energy-aware policy the acceptance criteria are stated against.
ENERGY_POLICY = "ppr-greedy"

#: Per-workload job chunk sizes: service times of a few seconds on an A9
#: so a 20 s control interval sees many jobs, while x264 keeps its natural
#: per-frame granularity (0.4 s on a K10, 15 s on an A9 — the asymmetry
#: the mix contrast is about).
_JOB_CHUNKS: Dict[str, float] = {
    "EP": float(2**26),
    "memcached": float(64 * 2**20),
    "x264": 30.0,
}

#: The paper's reference mix and the wimpier Pareto mix of the contrast.
_REFERENCE_MIX = {"A9": 32, "K10": 12}
_WIMPY_MIX = {"A9": 25, "K10": 5}


def scheduling_workloads() -> Dict[str, Workload]:
    """The study's workloads, re-chunked to scheduler-scale jobs."""
    return {name: workload(name).with_job_size(_JOB_CHUNKS[name]) for name in STUDY_WORKLOADS}


def light_transition_costs(
    *,
    boot_latency_s: float = 1.0,
    shutdown_latency_s: float = 0.5,
) -> Dict[str, TransitionCosts]:
    """Per-type transition costs matched to the study's compressed day.

    The study replays 24 hours as 24 twenty-second intervals, so latencies
    must compress with it: a 1 s boot per 20 s interval corresponds to a
    three-minute boot per hour-long real interval (embedded-class boards
    and suspend-capable servers are faster still).  Each transition draws
    the node's nameplate power for its duration.  The hysteresis analysis
    uses the heavyweight :class:`TransitionCosts` defaults instead.
    """
    return {
        name: TransitionCosts.scaled(
            get_node_spec(name).power.nameplate_peak_w,
            boot_latency_s=boot_latency_s,
            shutdown_latency_s=shutdown_latency_s,
        )
        for name in ("A9", "K10")
    }


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's autoscaled replay, scored against the offline oracle."""

    policy: str
    total_energy_j: float
    oracle_gap: float
    p50_s: float
    p95_s: float
    p99_s: float
    jobs_arrived: int
    boots: int
    rung_switches: int
    epm: float
    sublinear_fraction: float


@dataclass(frozen=True)
class WorkloadComparison:
    """All policies replaying one workload's day, plus the offline bounds."""

    workload: str
    static_label: str
    static_energy_j: float
    oracle_energy_j: float
    outcomes: Tuple[PolicyOutcome, ...]
    timeline: Tuple[TimelineSample, ...]

    def outcome(self, policy: str) -> PolicyOutcome:
        """The outcome row of one policy."""
        for o in self.outcomes:
            if o.policy == policy:
                return o
        raise ReproError(f"no outcome for policy {policy!r} in {self.workload}")


@dataclass(frozen=True)
class MixContrast:
    """p95 response of one workload on the reference vs the wimpy mix."""

    workload: str
    demand_fraction: float
    reference_label: str
    wimpy_label: str
    reference_p95_s: float
    wimpy_p95_s: float

    @property
    def degradation(self) -> float:
        """How many times worse the wimpy mix's p95 is."""
        return self.wimpy_p95_s / self.reference_p95_s


@dataclass(frozen=True)
class HeterogeneousEnergy:
    """Energy of round-robin vs ppr-greedy on a fixed mixed cluster."""

    workload: str
    mix_label: str
    demand_fraction: float
    round_robin_energy_j: float
    ppr_greedy_energy_j: float

    @property
    def saving_fraction(self) -> float:
        """Energy ppr-greedy saves over round-robin (same arrivals)."""
        return 1.0 - self.ppr_greedy_energy_j / self.round_robin_energy_j


@dataclass(frozen=True)
class SchedulingStudy:
    """The full study: policy comparison, mix contrast, dispatch energy."""

    seed: int
    interval_s: float
    trace: Tuple[float, ...]
    comparisons: Tuple[WorkloadComparison, ...]
    contrasts: Tuple[MixContrast, ...]
    het_energy: HeterogeneousEnergy

    def comparison(self, name: str) -> WorkloadComparison:
        """The policy-comparison block of one workload."""
        for c in self.comparisons:
            if c.workload == name:
                return c
        raise ReproError(f"no comparison for workload {name!r}")

    def contrast(self, name: str) -> MixContrast:
        """The mix-contrast row of one workload."""
        for c in self.contrasts:
            if c.workload == name:
                return c
        raise ReproError(f"no mix contrast for workload {name!r}")


def _autoscaled_run(
    w: Workload,
    policy: str,
    trace: np.ndarray,
    ladder,
    costs: Dict[str, TransitionCosts],
    *,
    interval_s: float,
    seed: int,
    arrival_model=None,
    service_model=None,
) -> ScheduleResult:
    scaler = PredictiveAutoscaler(
        ladder,
        trace,
        ladder[-1].capacity_ops,
        target_utilisation=0.98,
        lookahead=0,
    )
    return ClusterScheduler(
        w,
        policy,
        trace,
        interval_s=interval_s,
        autoscaler=scaler,
        transition_costs=costs,
        seed=seed,
        arrival_model=arrival_model,
        service_model=service_model,
    ).run()


def _fixed_run(
    w: Workload,
    policy: str,
    trace: np.ndarray,
    config: ClusterConfiguration,
    costs: Dict[str, TransitionCosts],
    *,
    interval_s: float,
    seed: int,
    reference_capacity_ops: Optional[float] = None,
    arrival_model=None,
    service_model=None,
) -> ScheduleResult:
    return ClusterScheduler(
        w,
        policy,
        trace,
        interval_s=interval_s,
        config=config,
        reference_capacity_ops=reference_capacity_ops,
        transition_costs=costs,
        seed=seed,
        arrival_model=arrival_model,
        service_model=service_model,
    ).run()


def run_scheduling_study(
    seed: int = DEFAULT_SEED,
    *,
    n_intervals: int = 24,
    interval_s: float = 20.0,
    budget_w: float = 1000.0,
    policies: Sequence[str] = POLICY_NAMES,
    contrast_demand: float = 0.40,
    het_demand: float = 0.08,
) -> SchedulingStudy:
    """Run the whole scheduling study; deterministic for a fixed seed.

    One simulated day is ``n_intervals`` control intervals of
    ``interval_s`` seconds (compressed from 24 h so tests replay it in
    seconds of wall clock; every rate scales with the interval, so the
    energy *ratios* the study asserts are horizon-free).  The oracle is
    :func:`repro.extensions.dynamic.simulate_adaptation` replayed over the
    same ladder configurations, so both sides normalise demand by the same
    top-rung capacity.
    """
    if n_intervals <= 0:
        raise ReproError(f"n_intervals must be positive, got {n_intervals}")
    rng = RngRegistry(seed).stream("scheduler/trace")
    trace = diurnal_trace(n_intervals=n_intervals, rng=rng, noise=0.03)
    loads = scheduling_workloads()
    costs = light_transition_costs()
    candidates = scaled_candidates(budget_w, a9_step=4, k10_step=1)

    comparisons: List[WorkloadComparison] = []
    for name in STUDY_WORKLOADS:
        w = loads[name]
        ladder = build_ladder(w, candidates)
        # Replay the oracle over the ladder's own configurations: the
        # dominance filter never removes a min-power covering choice, and
        # sharing the rung set pins both sides to one demand normalisation.
        oracle = simulate_adaptation(
            w,
            trace,
            candidates=[r.config for r in ladder],
            interval_s=interval_s,
        )
        outcomes: List[PolicyOutcome] = []
        timeline: Tuple[TimelineSample, ...] = ()
        for policy in policies:
            result = _autoscaled_run(
                w, policy, trace, ladder, costs, interval_s=interval_s, seed=seed
            )
            prop = result.proportionality
            outcomes.append(
                PolicyOutcome(
                    policy=policy,
                    total_energy_j=result.total_energy_j,
                    oracle_gap=result.total_energy_j / oracle.dynamic_energy_j - 1.0,
                    p50_s=result.p50_s,
                    p95_s=result.p95_s,
                    p99_s=result.p99_s,
                    jobs_arrived=result.jobs_arrived,
                    boots=result.boots,
                    rung_switches=result.rung_switches,
                    epm=prop.epm if prop is not None else float("nan"),
                    sublinear_fraction=(
                        prop.sublinear_fraction if prop is not None else float("nan")
                    ),
                )
            )
            if policy == ENERGY_POLICY:
                timeline = result.timeline
        comparisons.append(
            WorkloadComparison(
                workload=name,
                static_label=oracle.static_label,
                static_energy_j=oracle.static_energy_j,
                oracle_energy_j=oracle.dynamic_energy_j,
                outcomes=tuple(outcomes),
                timeline=timeline,
            )
        )

    # Fig. 9-style contrast: same absolute load, reference vs wimpy mix.
    ref_config = ClusterConfiguration.mix(_REFERENCE_MIX)
    contrasts = run_mix_contrast(
        seed=seed,
        n_intervals=n_intervals,
        interval_s=interval_s,
        contrast_demand=contrast_demand,
    )

    # Dispatch energy on a fixed mixed cluster: identical arrivals (neither
    # policy consumes the RNG), different silicon choices.
    w = loads["x264"]
    low = np.full(n_intervals, het_demand)
    rr = _fixed_run(w, "round-robin", low, ref_config, costs, interval_s=interval_s, seed=seed)
    ppr = _fixed_run(w, ENERGY_POLICY, low, ref_config, costs, interval_s=interval_s, seed=seed)
    het = HeterogeneousEnergy(
        workload="x264",
        mix_label=ref_config.label(),
        demand_fraction=het_demand,
        round_robin_energy_j=rr.total_energy_j,
        ppr_greedy_energy_j=ppr.total_energy_j,
    )

    return SchedulingStudy(
        seed=seed,
        interval_s=interval_s,
        trace=tuple(float(x) for x in trace),
        comparisons=tuple(comparisons),
        contrasts=tuple(contrasts),
        het_energy=het,
    )


def run_mix_contrast(
    workload_names: Sequence[str] = ("EP", "x264"),
    *,
    seed: int = DEFAULT_SEED,
    n_intervals: int = 24,
    interval_s: float = 20.0,
    contrast_demand: float = 0.40,
    arrival_model=None,
    service_model=None,
) -> Tuple[MixContrast, ...]:
    """The Fig. 9-style mix contrast on its own: same absolute load on the
    reference mix (32 A9 : 12 K10) and the wimpy Pareto mix (25 A9 : 5 K10).

    Extracted from :func:`run_scheduling_study` so the claim monitors can
    re-derive the EP x~1.03 vs x264 x~11 p95 contrast without replaying
    the whole policy comparison.  Deterministic for a fixed seed.

    ``arrival_model`` / ``service_model`` swap the within-interval
    stochastic processes (:mod:`repro.queueing.processes`) so the
    robustness study can re-ask the Fig. 9 question under bursty (MMPP)
    or flash-crowd arrivals and heavy-tailed services; the defaults
    reproduce the paper's Poisson/deterministic replay bit-for-bit.
    """
    loads = scheduling_workloads()
    unknown = [n for n in workload_names if n not in loads]
    if unknown:
        raise ReproError(f"unknown study workloads {unknown}")
    costs = light_transition_costs()
    ref_config = ClusterConfiguration.mix(_REFERENCE_MIX)
    wimpy_config = ClusterConfiguration.mix(_WIMPY_MIX)
    flat = np.full(n_intervals, contrast_demand)
    contrasts: List[MixContrast] = []
    for name in workload_names:
        w = loads[name]
        ref_capacity = config_constants(w, ref_config)[0]
        ref = _fixed_run(
            w,
            ENERGY_POLICY,
            flat,
            ref_config,
            costs,
            interval_s=interval_s,
            seed=seed,
            arrival_model=arrival_model,
            service_model=service_model,
        )
        wimpy = _fixed_run(
            w,
            ENERGY_POLICY,
            flat,
            wimpy_config,
            costs,
            interval_s=interval_s,
            seed=seed,
            reference_capacity_ops=ref_capacity,
            arrival_model=arrival_model,
            service_model=service_model,
        )
        contrasts.append(
            MixContrast(
                workload=name,
                demand_fraction=contrast_demand,
                reference_label=ref_config.label(),
                wimpy_label=wimpy_config.label(),
                reference_p95_s=ref.p95_s,
                wimpy_p95_s=wimpy.p95_s,
            )
        )
    return tuple(contrasts)


def replay_scalars(result: ScheduleResult, oracle=None) -> Dict[str, float]:
    """One replayed day's key result scalars for the run ledger.

    Deterministic for a fixed (seed, configuration) — these are model
    outputs, not timings — so ledger records of the same seeded replay
    are byte-comparable across runs.
    """
    out: Dict[str, float] = {
        "total_energy_j": result.total_energy_j,
        "p95_s": result.p95_s,
        "p99_s": result.p99_s,
        "jobs_arrived": float(result.jobs_arrived),
        "boots": float(result.boots),
        "rung_switches": float(result.rung_switches),
    }
    if oracle is not None:
        out["oracle_gap"] = result.total_energy_j / oracle.dynamic_energy_j - 1.0
    prop = result.proportionality
    if prop is not None:
        out["epm"] = prop.epm
    return out


def study_scalars(study: SchedulingStudy) -> Dict[str, float]:
    """The full study's headline scalars (one flat dict for the ledger)."""
    out: Dict[str, float] = {}
    for comp in study.comparisons:
        o = comp.outcome(ENERGY_POLICY)
        out[f"{comp.workload}.oracle_gap"] = o.oracle_gap
        out[f"{comp.workload}.p95_s"] = o.p95_s
        out[f"{comp.workload}.total_energy_j"] = o.total_energy_j
    for c in study.contrasts:
        out[f"{c.workload}.degradation"] = c.degradation
    out["het_saving_fraction"] = study.het_energy.saving_fraction
    return out


def replay_day(
    workload_name: str,
    policy: str = ENERGY_POLICY,
    *,
    trace_kind: str = "diurnal",
    seed: int = DEFAULT_SEED,
    n_intervals: int = 24,
    interval_s: float = 20.0,
    demand: float = 0.5,
    budget_w: float = 1000.0,
    shards: int = 0,
    workers: Optional[int] = None,
    arrival_model=None,
    service_model=None,
):
    """One autoscaled day for the CLI: ``(ScheduleResult, AdaptationResult)``.

    ``trace_kind`` is ``"diurnal"`` (the seeded sinusoid-plus-noise day)
    or ``"constant"`` (flat at ``demand``).  Deterministic for a fixed
    seed — the CLI test replays ``repro schedule --policy ppr-greedy
    --trace diurnal --seed 42`` twice and compares bytes.

    ``shards > 1`` replays the day with the fleet partitioned into that
    many independently-autoscaled shards (:mod:`repro.parallel.sharding`),
    executed across ``workers`` processes; the shard plan is a pure
    function of ``(shards, seed)``, so the result is worker-count
    invariant.  The oracle keeps modelling the unpartitioned fleet, so
    the reported gap includes the cost of partitioning.

    ``arrival_model`` names a within-interval arrival process (``"poisson"``,
    ``"mmpp"``, ``"flash-crowd"``) and ``service_model`` is an optional
    unit-mean service-multiplier sampler (see
    :mod:`repro.queueing.processes`); both default to the paper's
    Poisson/deterministic replay.  The oracle always models the
    Poisson/deterministic fluid limit, so under heavy-tail or bursty
    processes the reported gap also measures model misspecification —
    exactly the quantity the robustness monitors band.
    """
    if workload_name not in STUDY_WORKLOADS:
        raise ReproError(
            f"unknown study workload {workload_name!r}; expected one of {STUDY_WORKLOADS}"
        )
    if trace_kind == "diurnal":
        rng = RngRegistry(seed).stream("scheduler/trace")
        trace = diurnal_trace(n_intervals=n_intervals, rng=rng, noise=0.03)
    elif trace_kind == "constant":
        if not 0.0 < demand <= 1.0:
            raise ReproError(f"demand must be in (0, 1], got {demand}")
        trace = np.full(n_intervals, demand)
    else:
        raise ReproError(f"trace must be 'diurnal' or 'constant', got {trace_kind!r}")
    w = scheduling_workloads()[workload_name]
    candidates = scaled_candidates(budget_w, a9_step=4, k10_step=1)
    ladder = build_ladder(w, candidates)
    oracle = simulate_adaptation(
        w, trace, candidates=[r.config for r in ladder], interval_s=interval_s
    )
    if shards and shards > 1:
        from repro.parallel.sharding import sharded_replay

        result = sharded_replay(
            w,
            policy,
            trace,
            n_shards=int(shards),
            workers=workers,
            candidates=candidates,
            interval_s=interval_s,
            transition_costs=light_transition_costs(),
            seed=seed,
            arrival_model=arrival_model,
            service_model=service_model,
        )
    else:
        result = _autoscaled_run(
            w,
            policy,
            trace,
            ladder,
            light_transition_costs(),
            interval_s=interval_s,
            seed=seed,
            arrival_model=arrival_model,
            service_model=service_model,
        )
    return result, oracle


def schedule_result_json(
    result: ScheduleResult, oracle=None, *, seed: Optional[int] = None
) -> Dict[str, object]:
    """One replayed day as a JSON-serialisable dict (CLI ``schedule --json``).

    ``telemetry`` carries the full per-interval stream (every
    :class:`TimelineSample` field, one entry per control interval) so
    external tools can consume what the ASCII timeline only sketches;
    ``node_stats`` is the per-node outcome, ``oracle`` the offline bound
    when one was computed.
    """
    out: Dict[str, object] = {
        "schema": "repro-schedule/1",
        "workload": result.workload_name,
        "policy": result.policy_name,
        "interval_s": result.interval_s,
        "horizon_s": result.horizon_s,
        "summary": {
            "jobs_arrived": result.jobs_arrived,
            "jobs_completed": result.jobs_completed,
            "p50_s": result.p50_s,
            "p95_s": result.p95_s,
            "p99_s": result.p99_s,
            "mean_response_s": result.mean_response_s,
            "baseline_energy_j": result.baseline_energy_j,
            "dynamic_energy_j": result.dynamic_energy_j,
            "transition_energy_j": result.transition_energy_j,
            "total_energy_j": result.total_energy_j,
            "mean_power_w": result.mean_power_w,
            "boots": result.boots,
            "shutdowns": result.shutdowns,
            "rung_switches": result.rung_switches,
        },
        "telemetry": [dataclasses.asdict(s) for s in result.timeline],
        "node_stats": [dataclasses.asdict(n) for n in result.node_stats],
    }
    if seed is not None:
        out["seed"] = int(seed)
    prop = result.proportionality
    if prop is not None:
        out["proportionality"] = {
            "epm": prop.epm,
            "mean_pg": prop.mean_pg,
            "sublinear_fraction": prop.sublinear_fraction,
        }
    if oracle is not None:
        out["oracle"] = {
            "static_label": oracle.static_label,
            "static_energy_j": oracle.static_energy_j,
            "dynamic_energy_j": oracle.dynamic_energy_j,
            "gap": result.total_energy_j / oracle.dynamic_energy_j - 1.0,
        }
    return out


def render_schedule_summary(result: ScheduleResult, oracle) -> str:
    """One replayed day as a timeline plus a key-value summary."""
    prop = result.proportionality
    summary = {
        "workload / policy": f"{result.workload_name} / {result.policy_name}",
        "horizon": f"{len(result.timeline)} x {result.interval_s:g}s",
        "jobs (arrived/completed)": f"{result.jobs_arrived}/{result.jobs_completed}",
        "p50 / p95 / p99 [s]": (
            f"{result.p50_s:.2f} / {result.p95_s:.2f} / {result.p99_s:.2f}"
        ),
        "total energy [kJ]": round(result.total_energy_j / 1e3, 1),
        "  baseline [kJ]": round(result.baseline_energy_j / 1e3, 1),
        "  dynamic [kJ]": round(result.dynamic_energy_j / 1e3, 1),
        "  transitions [kJ]": round(result.transition_energy_j / 1e3, 1),
        "boots / shutdowns": f"{result.boots}/{result.shutdowns}",
        "rung switches": result.rung_switches,
        "offline oracle [kJ]": round(oracle.dynamic_energy_j / 1e3, 1),
        "gap vs oracle": f"{result.total_energy_j / oracle.dynamic_energy_j - 1.0:+.1%}",
        "static provisioning [kJ]": round(oracle.static_energy_j / 1e3, 1),
    }
    if prop is not None:
        summary["realised EPM"] = round(prop.epm, 3)
        summary["mean proportionality gap"] = f"{prop.mean_pg:+.1%}"
    timeline = render_timeline(
        [
            ("demand", [s.demand_fraction for s in result.timeline]),
            ("active", [float(s.n_active) for s in result.timeline]),
            ("powered", [float(s.n_powered) for s in result.timeline]),
            ("power W", [s.power_w for s in result.timeline]),
        ],
        title=f"{result.workload_name} / {result.policy_name} day",
        dt_s=result.interval_s,
    )
    return "\n\n".join(
        [timeline, render_kv(summary, title="Schedule replay")]
    )


def render_scheduling_report(study: SchedulingStudy) -> str:
    """The study as printable tables and a timeline (CLI ``schedule``)."""
    blocks: List[str] = []
    for comp in study.comparisons:
        rows = [
            (
                o.policy,
                round(o.total_energy_j / 1e3, 1),
                f"{o.oracle_gap:+.1%}",
                round(o.p95_s, 2),
                round(o.p99_s, 2),
                o.boots,
                o.rung_switches,
                round(o.epm, 3),
            )
            for o in comp.outcomes
        ]
        rows.append(
            (
                "offline oracle",
                round(comp.oracle_energy_j / 1e3, 1),
                "+0.0%",
                "-",
                "-",
                "-",
                "-",
                "-",
            )
        )
        rows.append(
            (
                f"static ({comp.static_label})",
                round(comp.static_energy_j / 1e3, 1),
                f"{comp.static_energy_j / comp.oracle_energy_j - 1.0:+.1%}",
                "-",
                "-",
                "-",
                "-",
                "-",
            )
        )
        blocks.append(
            render_table(
                ("policy", "energy [kJ]", "vs oracle", "p95 [s]", "p99 [s]", "boots", "switches", "EPM"),
                rows,
                title=f"Autoscaled day: {comp.workload}",
            )
        )
        if comp.timeline:
            blocks.append(
                render_timeline(
                    [
                        ("demand", [s.demand_fraction for s in comp.timeline]),
                        ("active", [float(s.n_active) for s in comp.timeline]),
                        ("powered", [float(s.n_powered) for s in comp.timeline]),
                        ("power W", [s.power_w for s in comp.timeline]),
                    ],
                    title=f"{comp.workload} / {ENERGY_POLICY} timeline",
                    dt_s=study.interval_s,
                )
            )
    blocks.append(
        render_table(
            ("workload", "demand", "ref mix p95 [s]", "wimpy mix p95 [s]", "degradation"),
            [
                (
                    c.workload,
                    f"{c.demand_fraction:.0%}",
                    round(c.reference_p95_s, 2),
                    round(c.wimpy_p95_s, 2),
                    f"x{c.degradation:.1f}",
                )
                for c in study.contrasts
            ],
            title=(
                f"Mix contrast ({study.contrasts[0].reference_label} vs "
                f"{study.contrasts[0].wimpy_label})"
            ),
        )
    )
    het = study.het_energy
    blocks.append(
        render_kv(
            {
                "workload / mix": f"{het.workload} on {het.mix_label}",
                "demand": f"{het.demand_fraction:.0%} of mix capacity",
                "round-robin energy [kJ]": round(het.round_robin_energy_j / 1e3, 1),
                "ppr-greedy energy [kJ]": round(het.ppr_greedy_energy_j / 1e3, 1),
                "dispatch saving": f"{het.saving_fraction:.1%}",
            },
            title="Heterogeneity-aware dispatch energy",
        )
    )
    return "\n\n".join(blocks)
