"""Paper experiment drivers: one regenerator per table and figure."""

from repro.experiments.figures import (
    PARETO_MIXES,
    compute_pareto_mixes,
    figure2_metric_relationships,
    figure5_node_proportionality,
    figure6_node_ppr,
    figure7_cluster_proportionality,
    figure8_cluster_ppr,
    figure9_pareto_proportionality,
    figure11_response_time,
    pareto_mix_configs,
)
from repro.experiments.report import (
    report_characterization,
    report_figure,
    report_table4,
    report_table5,
    report_table6,
    report_table7,
    report_table8,
)
from repro.experiments.validation_mc import (
    AgreementCell,
    AgreementReport,
    render_validation_report,
    run_validation,
    validate_cell,
)
from repro.experiments.tables import (
    most_efficient_single_node_config,
    table4_validation,
    table5_nodes,
    table6_ppr,
    table7_single_node,
    table8_cluster,
)

__all__ = [
    "PARETO_MIXES",
    "pareto_mix_configs",
    "compute_pareto_mixes",
    "figure2_metric_relationships",
    "figure5_node_proportionality",
    "figure6_node_ppr",
    "figure7_cluster_proportionality",
    "figure8_cluster_ppr",
    "figure9_pareto_proportionality",
    "figure11_response_time",
    "table4_validation",
    "table5_nodes",
    "table6_ppr",
    "table7_single_node",
    "table8_cluster",
    "most_efficient_single_node_config",
    "report_table4",
    "report_table5",
    "report_table6",
    "report_table7",
    "report_table8",
    "report_figure",
    "report_characterization",
    "AgreementCell",
    "AgreementReport",
    "validate_cell",
    "run_validation",
    "render_validation_report",
]
