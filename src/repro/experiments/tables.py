"""Regenerators for every table in the paper's evaluation.

Each function returns ``(headers, rows)`` ready for
:func:`repro.util.tables.render_table`; the benchmark harness prints them
and asserts the reproduction bands documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.budget import budget_mixes
from repro.cluster.configuration import ClusterConfiguration, NodeGroup
from repro.core.proportionality import ppr_curve, proportionality_report
from repro.hardware.specs import get_node_spec
from repro.model.validation import ValidationRow, validate_workloads
from repro.util.rng import DEFAULT_SEED
from repro.util.units import GB, GHZ, KB, MB, MBPS
from repro.workloads.suite import (
    PAPER_UNITS,
    PAPER_WORKLOAD_NAMES,
    paper_workloads,
)

__all__ = [
    "table4_validation",
    "table5_nodes",
    "table6_ppr",
    "table7_single_node",
    "table8_cluster",
    "most_efficient_single_node_config",
]

Headers = Tuple[str, ...]
Rows = List[Tuple]


def table4_validation(
    *, seed: int = DEFAULT_SEED, n_jobs: int = 3, job_scale: float = 64.0
) -> Tuple[Headers, Rows, List[ValidationRow]]:
    """Table 4: model-vs-measured time and energy errors per workload."""
    workloads = [paper_workloads()[name] for name in PAPER_WORKLOAD_NAMES]
    results = validate_workloads(
        workloads, seed=seed, n_jobs=n_jobs, job_scale=job_scale
    )
    headers = ("Domain", "Program", "Execution time error[%]", "Energy error[%]")
    rows: Rows = [
        (r.domain, r.workload_name, round(r.time_error_pct, 1), round(r.energy_error_pct, 1))
        for r in results
    ]
    return headers, rows, results


def table5_nodes() -> Tuple[Headers, Rows]:
    """Table 5: the two node types' specifications."""
    a9 = get_node_spec("A9")
    k10 = get_node_spec("K10")

    def fmt_l3(spec) -> str:
        return f"{spec.l3_bytes // MB}MB / node" if spec.l3_bytes else "NA"

    headers = ("Attribute", a9.name, k10.name)
    rows: Rows = [
        ("ISA", a9.isa, k10.isa),
        (
            "Clock Freq",
            f"{a9.fmin_hz / GHZ:.1f}-{a9.fmax_hz / GHZ:.1f} GHz",
            f"{k10.fmin_hz / GHZ:.1f}-{k10.fmax_hz / GHZ:.1f} GHz",
        ),
        ("Cores/node", a9.cores, k10.cores),
        (
            "L1 data cache",
            f"{a9.l1d_bytes_per_core // KB}KB / core",
            f"{k10.l1d_bytes_per_core // KB}KB / core",
        ),
        ("L2 cache", f"{a9.l2_bytes // MB}MB / node", f"{k10.l2_bytes // KB}KB / core"),
        ("L3 cache", fmt_l3(a9), fmt_l3(k10)),
        (
            "Memory",
            f"{a9.memory_bytes // GB}GB {a9.memory_type}",
            f"{k10.memory_bytes // GB}GB {k10.memory_type}",
        ),
        (
            "I/O bandwidth",
            f"{a9.nic_bps / MBPS:.0f}Mbps",
            f"{k10.nic_bps / MBPS:.0f}Mbps",
        ),
        ("Idle power", f"{a9.power.idle_w:.1f}W", f"{k10.power.idle_w:.0f}W"),
        (
            "Nameplate peak",
            f"{a9.power.nameplate_peak_w:.0f}W",
            f"{k10.power.nameplate_peak_w:.0f}W",
        ),
    ]
    return headers, rows


def most_efficient_single_node_config(
    workload_name: str, node_type: str
) -> Tuple[NodeGroup, float]:
    """The single-node (cores, frequency) point with the highest peak PPR.

    The paper's Table 6 reports the PPR "computed for the most energy-
    efficient configuration per type of node"; this searches all operating
    points of one node.
    """
    spec = get_node_spec(node_type)
    w = paper_workloads()[workload_name]
    best: Optional[Tuple[NodeGroup, float]] = None
    for c in range(1, spec.cores + 1):
        for f in spec.frequencies_hz:
            group = NodeGroup(spec=spec, count=1, cores=c, frequency_hz=f)
            config = ClusterConfiguration.of(group)
            value = ppr_curve(w, config).peak_ppr
            if best is None or value > best[1]:
                best = (group, value)
    assert best is not None
    return best


def table6_ppr() -> Tuple[Headers, Rows]:
    """Table 6: peak PPR per workload per node type (best operating point)."""
    headers = ("Program", "Performance per Watt (PPR)", "A9 node", "K10 node")
    rows: Rows = []
    for name in PAPER_WORKLOAD_NAMES:
        _, ppr_a9 = most_efficient_single_node_config(name, "A9")
        _, ppr_k10 = most_efficient_single_node_config(name, "K10")
        rows.append((name, f"({PAPER_UNITS[name]})/W", round(ppr_a9, 1), round(ppr_k10, 1)))
    return headers, rows


def table7_single_node() -> Tuple[Headers, Rows]:
    """Table 7: single-node DPR/IPR/EPM/LDR per workload, A9 and K10."""
    headers = (
        "Program",
        "DPR A9",
        "DPR K10",
        "IPR A9",
        "IPR K10",
        "EPM A9",
        "EPM K10",
        "LDR A9",
        "LDR K10",
    )
    rows: Rows = []
    for name in PAPER_WORKLOAD_NAMES:
        w = paper_workloads()[name]
        reports = {
            node: proportionality_report(w, ClusterConfiguration.mix({node: 1}))
            for node in ("A9", "K10")
        }
        rows.append(
            (
                name,
                round(reports["A9"].dpr, 2),
                round(reports["K10"].dpr, 2),
                round(reports["A9"].ipr, 2),
                round(reports["K10"].ipr, 2),
                round(reports["A9"].epm, 2),
                round(reports["K10"].epm, 2),
                round(reports["A9"].ldr_paper, 2),
                round(reports["K10"].ldr_paper, 2),
            )
        )
    return headers, rows


def table8_cluster(*, budget_w: float = 1000.0) -> Tuple[Headers, Rows]:
    """Table 8: cluster-wide DPR/IPR/EPM/LDR for three budget mixes.

    The paper's columns are the homogeneous wimpy cluster (128 A9), the
    middle mix (64 A9 : 8 K10) and the homogeneous brawny cluster (16 K10).
    """
    mixes = budget_mixes(budget_w)
    # budget_mixes orders brawny-heavy first; Table 8 columns go wimpy-first.
    columns = [mixes[-1], mixes[len(mixes) // 2], mixes[0]]
    labels = [c.label() for c in columns]
    headers = ("Program", "Metric", *labels)
    rows: Rows = []
    for name in PAPER_WORKLOAD_NAMES:
        w = paper_workloads()[name]
        reports = [proportionality_report(w, c) for c in columns]
        rows.append((name, "DPR", *[round(r.dpr, 2) for r in reports]))
        rows.append((name, "IPR", *[round(r.ipr, 2) for r in reports]))
        rows.append((name, "EPM", *[round(r.epm, 2) for r in reports]))
        rows.append((name, "LDR", *[round(r.ldr_paper, 2) for r in reports]))
    return headers, rows
