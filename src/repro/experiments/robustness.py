"""Robustness of the paper's rankings to the stochastic-process assumptions.

The paper's queueing results assume Poisson arrivals and deterministic
service (the M/D/1 of Section II-B).  Real datacenter traffic is burstier
and real service times are heavier-tailed, so this experiment re-asks the
two headline *comparative* questions under the full process grid of
:mod:`repro.queueing.processes`:

1. **Table 6 ranking** — for every workload and every (arrival, service)
   process pair, which node type sustains the higher throughput-per-watt
   subject to an absolute p95 SLO?  Per node type the experiment finds
   ``u*``, the highest grid utilisation whose simulated p95 response still
   meets the SLO, and scores the type by jobs-per-joule at that point:
   ``score = (u* / T_P) / P(u*)``.  The SLO is *absolute* (a multiple of
   the slowest type's T_P) because a per-type relative SLO is
   scale-invariant: simulated ``p95 / T_P`` at fixed utilisation is the
   same dimensionless curve for every node type, so relative targets can
   never invert a winner.  Under the baseline (Poisson + deterministic)
   cell the winner must agree with the calibrated Table 6 winner
   (:func:`repro.experiments.sensitivity.ppr_winner`); every other cell
   reports whether that winner *holds* or *inverts*.

2. **Fig. 9 contrast** — the reference-vs-wimpy-mix p95 contrast
   (:func:`repro.experiments.scheduling.run_mix_contrast`) replayed under
   each within-interval arrival model.  Burstiness amplifies the
   contrast: queues that barely absorb Poisson arrivals at 40% demand
   melt down under MMPP episodes, and they melt down hardest on the mix
   with the least fast-node headroom.

3. **Scheduler oracle gap under heavy tails** — the online ``ppr-greedy``
   day replayed with heavy-tailed service multipliers
   (:func:`repro.experiments.scheduling.replay_day` with a
   ``service_model``).  The offline oracle keeps assuming the fluid
   deterministic model, so the gap now includes model misspecification —
   the claim monitors band how far it is allowed to grow.

Every Monte-Carlo cell derives its own seed from
``(seed, workload, node, arrival, service, u)`` via BLAKE2s (the
:mod:`repro.experiments.validation_mc` recipe), so cells are decorrelated
and the whole report is deterministic for a fixed seed at any worker
count.  The CLI command is ``repro robustness``; the report is recorded
to the run ledger as a ``repro-robustness/1`` envelope.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.experiments.scheduling import (
    STUDY_WORKLOADS,
    MixContrast,
    replay_day,
    run_mix_contrast,
)
from repro.queueing.mc import MonteCarloQueue
from repro.queueing.processes import (
    ARRIVAL_KINDS,
    INTERVAL_ARRIVAL_KINDS,
    SERVICE_KINDS,
    make_arrivals,
    make_service,
)
from repro.util.rng import DEFAULT_SEED
from repro.util.tables import render_kv, render_table

__all__ = [
    "ROBUSTNESS_WORKLOADS",
    "DEFAULT_U_GRID",
    "DEFAULT_SLO_MULTIPLE",
    "NodeOutcome",
    "RankingCell",
    "ContrastCell",
    "OracleGapCell",
    "RobustnessReport",
    "run_robustness",
    "robustness_scalars",
    "robustness_json",
    "render_robustness_report",
]

#: Workloads of the default ranking sweep: the three study workloads plus
#: the paper's closest Table 6 call (rsa2048, where K10 wins by ~13%) —
#: the ranking most likely to invert under heavy tails.
ROBUSTNESS_WORKLOADS: Tuple[str, ...] = ("EP", "memcached", "x264", "rsa2048")

#: Utilisation grid searched for ``u*`` (ascending; early exit on the
#: first SLO breach keeps the sweep cheap).
DEFAULT_U_GRID: Tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9)

#: The absolute p95 SLO as a multiple of the slowest node type's T_P.
#: Large enough that the slow type meets it on the baseline grid at
#: moderate utilisation, small enough that heavy tails push it out.
DEFAULT_SLO_MULTIPLE: float = 12.0


def _cell_seed(seed: int, tag: str) -> int:
    """A decorrelated per-cell seed (the validation_mc recipe)."""
    digest = hashlib.blake2s(
        f"{seed}|robustness|{tag}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class NodeOutcome:
    """One node type's SLO-constrained operating point in one cell."""

    node: str
    t_p_s: float
    power_peak_w: float
    u_star: float
    p95_s: float
    p95_lo: float
    p95_hi: float
    score: float

    @property
    def meets_slo(self) -> bool:
        return self.u_star > 0.0


@dataclass(frozen=True)
class RankingCell:
    """One (workload, arrival, service) cell of the Table 6 re-ranking."""

    workload: str
    arrival: str
    service: str
    slo_s: float
    outcomes: Tuple[NodeOutcome, ...]
    winner: str
    paper_winner: str

    @property
    def is_baseline(self) -> bool:
        return self.arrival == "poisson" and self.service == "deterministic"

    @property
    def holds(self) -> bool:
        """Whether this cell's winner agrees with the paper's Table 6."""
        return self.winner == self.paper_winner

    def outcome(self, node: str) -> NodeOutcome:
        for o in self.outcomes:
            if o.node == node:
                return o
        raise ReproError(f"no outcome for node {node!r} in cell {self.workload}")


@dataclass(frozen=True)
class ContrastCell:
    """The Fig. 9 mix contrast under one within-interval arrival model."""

    arrival: str
    contrasts: Tuple[MixContrast, ...]

    def degradation(self, workload: str) -> float:
        for c in self.contrasts:
            if c.workload == workload:
                return c.degradation
        raise ReproError(f"no contrast for workload {workload!r}")


@dataclass(frozen=True)
class OracleGapCell:
    """ppr-greedy's energy gap to the oracle under one service process."""

    service: str
    workload: str
    gap: float


@dataclass(frozen=True)
class RobustnessReport:
    """The full robustness study: ranking grid, contrasts, oracle gaps."""

    seed: int
    slo_multiple: float
    u_grid: Tuple[float, ...]
    n_jobs: int
    n_reps: int
    cells: Tuple[RankingCell, ...]
    contrasts: Tuple[ContrastCell, ...]
    oracle_gaps: Tuple[OracleGapCell, ...]

    @property
    def baseline_cells(self) -> Tuple[RankingCell, ...]:
        return tuple(c for c in self.cells if c.is_baseline)

    @property
    def baseline_match_fraction(self) -> float:
        """Fraction of baseline (Poisson + det) cells matching Table 6."""
        base = self.baseline_cells
        if not base:
            return math.nan
        return sum(c.holds for c in base) / len(base)

    @property
    def holds_fraction(self) -> float:
        """Fraction of non-baseline cells where the Table 6 winner holds."""
        rest = [c for c in self.cells if not c.is_baseline]
        if not rest:
            return math.nan
        return sum(c.holds for c in rest) / len(rest)

    @property
    def inversions(self) -> Tuple[RankingCell, ...]:
        """Non-baseline cells whose winner differs from the paper's."""
        return tuple(
            c for c in self.cells if not c.is_baseline and not c.holds
        )


def _rank_cell(
    workload_name: str,
    arrival: str,
    service: str,
    node_points: Sequence[Tuple[str, float, float, float]],
    slo_s: float,
    paper: str,
    *,
    u_grid: Sequence[float],
    n_jobs: int,
    n_reps: int,
    seed: int,
    workers: Optional[int],
) -> RankingCell:
    outcomes: List[NodeOutcome] = []
    for node, t_p, idle_w, dyn_w in node_points:
        u_star, best = 0.0, (math.nan, math.nan, math.nan)
        for u in u_grid:
            cell = _cell_seed(
                seed, f"{workload_name}|{node}|{arrival}|{service}|{u:.6f}"
            )
            queue = MonteCarloQueue(
                make_arrivals(arrival, u / t_p),
                make_service(service, t_p),
                seed=cell,
            )
            result = queue.run(n_jobs, n_reps, workers=workers)
            ci = result.percentile_ci(95.0, method="bootstrap", seed=cell)
            if ci.mean > slo_s:
                break  # p95 grows with u; higher grid points only get worse
            u_star, best = u, (ci.mean, ci.lo, ci.hi)
        power_w = idle_w + u_star * dyn_w
        score = (u_star / t_p) / power_w if u_star > 0.0 else 0.0
        outcomes.append(
            NodeOutcome(
                node=node,
                t_p_s=t_p,
                power_peak_w=idle_w + dyn_w,
                u_star=u_star,
                p95_s=best[0],
                p95_lo=best[1],
                p95_hi=best[2],
                score=score,
            )
        )
    scored = [o for o in outcomes if o.score > 0.0]
    winner = max(scored, key=lambda o: o.score).node if scored else "none"
    return RankingCell(
        workload=workload_name,
        arrival=arrival,
        service=service,
        slo_s=slo_s,
        outcomes=tuple(outcomes),
        winner=winner,
        paper_winner=paper,
    )


def run_robustness(
    seed: int = DEFAULT_SEED,
    *,
    workloads: Sequence[str] = ROBUSTNESS_WORKLOADS,
    arrivals: Sequence[str] = ARRIVAL_KINDS,
    services: Sequence[str] = SERVICE_KINDS,
    u_grid: Sequence[float] = DEFAULT_U_GRID,
    slo_multiple: float = DEFAULT_SLO_MULTIPLE,
    n_jobs: int = 4000,
    n_reps: int = 12,
    workers: Optional[int] = None,
    contrast: bool = True,
    replay: bool = True,
) -> RobustnessReport:
    """Run the robustness study; deterministic for a fixed seed.

    ``workloads`` x ``arrivals`` x ``services`` spans the ranking grid;
    the (``"poisson"``, ``"deterministic"``) cell is the baseline and must
    be part of the grid (the study is about drift *from* it).  ``contrast``
    and ``replay`` gate the Fig. 9 and oracle-gap parts so the CI smoke
    can run the ranking grid alone.  ``workers`` parallelises each cell's
    Monte-Carlo replications; results are worker-count invariant.
    """
    from repro.cluster.configuration import ClusterConfiguration
    from repro.experiments.sensitivity import ppr_winner
    from repro.model.batched import config_constants
    from repro.workloads.suite import paper_workloads

    if "poisson" not in arrivals or "deterministic" not in services:
        raise ReproError(
            "the robustness grid needs the baseline cell: include 'poisson' "
            "in arrivals and 'deterministic' in services"
        )
    if slo_multiple <= 1.0:
        raise ReproError(f"slo_multiple must exceed 1, got {slo_multiple}")
    if not u_grid or any(not 0.0 < u < 1.0 for u in u_grid):
        raise ReproError(f"u_grid values must be in (0, 1), got {u_grid!r}")
    suite = paper_workloads()
    unknown = [n for n in workloads if n not in suite]
    if unknown:
        raise ReproError(f"unknown workloads {unknown}")
    grid = tuple(sorted(float(u) for u in u_grid))

    cells: List[RankingCell] = []
    for name in workloads:
        w = suite[name]
        points: List[Tuple[str, float, float, float]] = []
        for node in w.node_types():
            rate, idle_w, dyn_w = config_constants(
                w, ClusterConfiguration.mix({node: 1})
            )
            points.append((node, w.ops_per_job / rate, idle_w, dyn_w))
        slo_s = slo_multiple * max(p[1] for p in points)
        paper = ppr_winner(w)
        for arrival in arrivals:
            for service in services:
                cells.append(
                    _rank_cell(
                        name,
                        arrival,
                        service,
                        points,
                        slo_s,
                        paper,
                        u_grid=grid,
                        n_jobs=n_jobs,
                        n_reps=n_reps,
                        seed=seed,
                        workers=workers,
                    )
                )

    contrasts: List[ContrastCell] = []
    if contrast:
        kinds = [k for k in INTERVAL_ARRIVAL_KINDS if k in arrivals]
        for kind in kinds:
            contrasts.append(
                ContrastCell(
                    arrival=kind,
                    contrasts=run_mix_contrast(
                        ("EP", "x264"), seed=seed, arrival_model=kind
                    ),
                )
            )

    gaps: List[OracleGapCell] = []
    if replay:
        for service in services:
            model = make_service(service, 1.0)
            for name in STUDY_WORKLOADS:
                result, oracle = replay_day(
                    name, seed=seed, service_model=model
                )
                gaps.append(
                    OracleGapCell(
                        service=service,
                        workload=name,
                        gap=result.total_energy_j / oracle.dynamic_energy_j
                        - 1.0,
                    )
                )

    return RobustnessReport(
        seed=seed,
        slo_multiple=float(slo_multiple),
        u_grid=grid,
        n_jobs=int(n_jobs),
        n_reps=int(n_reps),
        cells=tuple(cells),
        contrasts=tuple(contrasts),
        oracle_gaps=tuple(gaps),
    )


def robustness_scalars(report: RobustnessReport) -> Dict[str, float]:
    """The study's headline scalars (one flat dict for the run ledger)."""
    out: Dict[str, float] = {
        "baseline_match_fraction": report.baseline_match_fraction,
        "holds_fraction": report.holds_fraction,
        "n_cells": float(len(report.cells)),
        "n_inversions": float(len(report.inversions)),
    }
    for cell in report.contrasts:
        for c in cell.contrasts:
            out[f"contrast.{cell.arrival}.{c.workload.lower()}"] = c.degradation
    by_service: Dict[str, List[float]] = {}
    for g in report.oracle_gaps:
        by_service.setdefault(g.service, []).append(g.gap)
    for service, values in by_service.items():
        out[f"oracle_gap.{service}.max"] = max(values)
    return out


def robustness_json(report: RobustnessReport) -> Dict[str, object]:
    """The study as a ``repro-robustness/1`` envelope for the ledger."""
    return {
        "schema": "repro-robustness/1",
        "seed": report.seed,
        "params": {
            "slo_multiple": report.slo_multiple,
            "u_grid": list(report.u_grid),
            "n_jobs": report.n_jobs,
            "n_reps": report.n_reps,
        },
        "ranking": [
            {
                "workload": c.workload,
                "arrival": c.arrival,
                "service": c.service,
                "slo_s": c.slo_s,
                "winner": c.winner,
                "paper_winner": c.paper_winner,
                "holds": c.holds,
                "nodes": [
                    {
                        "node": o.node,
                        "t_p_s": o.t_p_s,
                        "u_star": o.u_star,
                        "p95_s": o.p95_s,
                        "p95_ci": [o.p95_lo, o.p95_hi],
                        "score": o.score,
                    }
                    for o in c.outcomes
                ],
            }
            for c in report.cells
        ],
        "contrasts": [
            {
                "arrival": cell.arrival,
                "degradation": {
                    c.workload: c.degradation for c in cell.contrasts
                },
            }
            for cell in report.contrasts
        ],
        "oracle_gaps": [
            {"service": g.service, "workload": g.workload, "gap": g.gap}
            for g in report.oracle_gaps
        ],
        "scalars": robustness_scalars(report),
    }


def render_robustness_report(report: RobustnessReport) -> str:
    """The study as printable tables (CLI ``repro robustness``)."""
    blocks: List[str] = []
    rows = []
    for c in report.cells:
        marks = []
        for o in c.outcomes:
            star = f"{o.u_star:.2f}" if o.meets_slo else "-"
            marks.append(star)
        rows.append(
            (
                c.workload,
                c.arrival,
                c.service,
                *marks,
                c.winner,
                "holds" if c.holds else ("BASE-MISS" if c.is_baseline else "INVERTS"),
            )
        )
    node_names = [o.node for o in report.cells[0].outcomes] if report.cells else []
    blocks.append(
        render_table(
            (
                "workload",
                "arrivals",
                "service",
                *[f"u* {n}" for n in node_names],
                "winner",
                "vs Table 6",
            ),
            rows,
            title=(
                f"SLO-constrained ranking (p95 <= {report.slo_multiple:g} x "
                "slowest T_P)"
            ),
        )
    )
    if report.contrasts:
        blocks.append(
            render_table(
                ("arrivals", "EP degradation", "x264 degradation"),
                [
                    (
                        cell.arrival,
                        f"x{cell.degradation('EP'):.2f}",
                        f"x{cell.degradation('x264'):.2f}",
                    )
                    for cell in report.contrasts
                ],
                title="Fig. 9 mix contrast by arrival process",
            )
        )
    if report.oracle_gaps:
        by_service: Dict[str, Dict[str, float]] = {}
        for g in report.oracle_gaps:
            by_service.setdefault(g.service, {})[g.workload] = g.gap
        blocks.append(
            render_table(
                ("service", *STUDY_WORKLOADS, "max"),
                [
                    (
                        service,
                        *[f"{gaps.get(w, math.nan):+.1%}" for w in STUDY_WORKLOADS],
                        f"{max(gaps.values()):+.1%}",
                    )
                    for service, gaps in by_service.items()
                ],
                title="ppr-greedy vs oracle energy gap by service process",
            )
        )
    blocks.append(
        render_kv(
            {
                "baseline matches Table 6": f"{report.baseline_match_fraction:.0%}",
                "winner holds off-baseline": f"{report.holds_fraction:.0%}",
                "inversions": len(report.inversions),
                "cells": len(report.cells),
                "seed": report.seed,
            },
            title="Robustness summary",
        )
    )
    return "\n\n".join(blocks)
