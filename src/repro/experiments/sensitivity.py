"""Sensitivity analysis: how robust are the paper's conclusions?

The calibration inverts the paper's published PPR (Table 6) and IPR
(Table 7) values.  Those are measurements with error bars the paper does
not report, so a faithful reproduction should ask: if the true values were
a bit different, would the qualitative conclusions survive?  This module
perturbs the calibration targets and re-derives the three headline
findings:

1. the PPR winner per workload (A9 vs K10 — Section III-A),
2. the sub-linear crossover of the paper's (25 A9, 7 K10) example mix
   (Section III-D),
3. the EPM-vs-PPR metric contradiction for the 1 kW budget clusters
   (Section III-C).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.configuration import ClusterConfiguration
from repro.core.proportionality import power_curve, ppr_curve, sublinear_crossover
from repro.errors import CalibrationError
from repro.hardware.specs import get_node_spec
from repro.util.numerics import clamp
from repro.util.rng import DEFAULT_SEED, RngRegistry
from repro.workloads.base import Workload
from repro.workloads.calibration import solve_demand
from repro.workloads.suite import (
    BOTTLENECK_PROFILES,
    JOB_SIZES,
    PAPER_DOMAINS,
    PAPER_IPR,
    PAPER_PPR,
    PAPER_UNITS,
    PAPER_WORKLOAD_NAMES,
)

__all__ = [
    "perturbed_workload",
    "ppr_winner",
    "crossover_sensitivity",
    "conclusion_sensitivity",
    "seeded_sensitivity",
]

Headers = Tuple[str, ...]
Rows = List[Tuple]


def perturbed_workload(
    name: str,
    *,
    ppr_scale: Mapping[str, float] | float = 1.0,
    ipr_shift: Mapping[str, float] | float = 0.0,
) -> Workload:
    """A paper workload rebuilt from perturbed calibration targets.

    ``ppr_scale`` multiplies the Table 6 PPR target (per node type or one
    factor for all); ``ipr_shift`` adds to the Table 7 IPR target (clamped
    into (0.05, 0.95)).  Raises :class:`CalibrationError` when the
    perturbed targets leave the node's feasible envelope — itself useful
    information about how much slack the calibration has.
    """
    if name not in PAPER_WORKLOAD_NAMES:
        raise CalibrationError(f"unknown workload {name!r}")

    def scale_for(node: str) -> float:
        return ppr_scale[node] if isinstance(ppr_scale, Mapping) else float(ppr_scale)

    def shift_for(node: str) -> float:
        return ipr_shift[node] if isinstance(ipr_shift, Mapping) else float(ipr_shift)

    demands = {}
    for node_name, profile in BOTTLENECK_PROFILES[name].items():
        spec = get_node_spec(node_name)
        demands[node_name] = solve_demand(
            spec,
            ppr_target=PAPER_PPR[name][node_name] * scale_for(node_name),
            ipr_target=clamp(
                PAPER_IPR[name][node_name] + shift_for(node_name), 0.05, 0.95
            ),
            profile=profile,
        )
    return Workload(
        name=name,
        domain=PAPER_DOMAINS[name],
        unit=PAPER_UNITS[name],
        ops_per_job=JOB_SIZES[name],
        demands=demands,
    )


def ppr_winner(workload: Workload) -> str:
    """Which node type has the better single-node peak PPR."""
    best_name, best_value = "", -1.0
    for node in workload.node_types():
        value = ppr_curve(workload, ClusterConfiguration.mix({node: 1})).peak_ppr
        if value > best_value:
            best_name, best_value = node, value
    return best_name


def crossover_sensitivity(
    workload_name: str = "EP",
    *,
    ppr_scales: Sequence[float] = (0.8, 1.0, 1.2),
    ipr_shifts: Sequence[float] = (-0.04, -0.02, 0.0, 0.02, 0.04),
    mix: Tuple[int, int] = (25, 7),
    reference: Tuple[int, int] = (32, 12),
) -> Tuple[Headers, Rows]:
    """Sub-linear crossover of the example mix under perturbations.

    Two sweeps: PPR scaling (which turns out to leave the crossover exactly
    unchanged — sub-linearity is a pure *power* property, independent of
    throughput calibration) and IPR shifting (which moves both idle share
    and dynamic power, and with them the crossover — the perturbation the
    claim actually depends on).
    """

    def crossover_for(w: Workload) -> Optional[float]:
        ref_config = ClusterConfiguration.mix(
            {"A9": reference[0], "K10": reference[1]}
        )
        config = ClusterConfiguration.mix({"A9": mix[0], "K10": mix[1]})
        ref_peak = power_curve(w, ref_config).peak_w
        return sublinear_crossover(power_curve(w, config), reference_peak_w=ref_peak)

    rows: Rows = []
    for scale in ppr_scales:
        try:
            u_star = crossover_for(perturbed_workload(workload_name, ppr_scale=scale))
            rows.append(
                (f"PPR x {scale}", round(u_star, 3) if u_star is not None else "never", "ok")
            )
        except CalibrationError:
            rows.append((f"PPR x {scale}", "-", "infeasible"))
    for shift in ipr_shifts:
        try:
            u_star = crossover_for(perturbed_workload(workload_name, ipr_shift=shift))
            rows.append(
                (f"IPR + {shift}", round(u_star, 3) if u_star is not None else "never", "ok")
            )
        except CalibrationError:
            rows.append((f"IPR + {shift}", "-", "infeasible"))
    return (
        "perturbation",
        f"crossover u* of {mix[0]} A9:{mix[1]} K10",
        "status",
    ), rows


def seeded_sensitivity(
    seed: int = DEFAULT_SEED,
    *,
    n_draws: int = 32,
    ppr_sigma: float = 0.08,
    ipr_sigma: float = 0.02,
) -> Tuple[Headers, Rows]:
    """PPR-winner stability under *random* calibration perturbations.

    The grid sweeps above probe one axis at a time; this study draws
    ``n_draws`` joint perturbations — a log-normal PPR scale and a normal
    IPR shift per node type — and counts how often each workload's PPR
    winner survives.  Deterministic for a fixed seed (the CLI's top-level
    ``--seed`` reaches here through ``repro sensitivity``).
    """
    if n_draws <= 0:
        raise CalibrationError(f"n_draws must be positive, got {n_draws}")
    rng = RngRegistry(seed).stream("sensitivity/perturbations")
    rows: Rows = []
    for name in PAPER_WORKLOAD_NAMES:
        baseline = ppr_winner(perturbed_workload(name))
        nodes = sorted(BOTTLENECK_PROFILES[name])
        stable = 0
        infeasible = 0
        for _ in range(n_draws):
            scale = {n: float(math.exp(rng.normal(0.0, ppr_sigma))) for n in nodes}
            shift = {n: float(rng.normal(0.0, ipr_sigma)) for n in nodes}
            try:
                w = perturbed_workload(name, ppr_scale=scale, ipr_shift=shift)
            except CalibrationError:
                infeasible += 1
                continue
            if ppr_winner(w) == baseline:
                stable += 1
        feasible = n_draws - infeasible
        rows.append(
            (
                name,
                baseline,
                round(100.0 * stable / feasible, 1) if feasible else "-",
                round(100.0 * infeasible / n_draws, 1),
            )
        )
    return (
        "workload",
        "baseline winner",
        f"winner stable [% of {n_draws} draws]",
        "infeasible [%]",
    ), rows


def conclusion_sensitivity(
    *,
    ipr_shifts: Sequence[float] = (-0.05, -0.02, 0.0, 0.02, 0.05),
) -> Tuple[Headers, Rows]:
    """Do the per-workload PPR winners survive IPR perturbations?

    Shifting a node's IPR changes its workload peak power and therefore its
    PPR; the paper's Section III-A winner table (A9 everywhere except x264
    and RSA-2048) should be stable under small shifts.
    """
    rows: Rows = []
    for shift in ipr_shifts:
        winners: Dict[str, str] = {}
        status = "ok"
        for name in PAPER_WORKLOAD_NAMES:
            try:
                winners[name] = ppr_winner(perturbed_workload(name, ipr_shift=shift))
            except CalibrationError:
                winners[name] = "infeasible"
                status = "partial"
        rows.append(
            (
                shift,
                *[winners[name] for name in PAPER_WORKLOAD_NAMES],
                status,
            )
        )
    return ("IPR shift", *PAPER_WORKLOAD_NAMES, "status"), rows
