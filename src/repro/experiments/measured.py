"""Measured power-vs-utilisation curves from the simulated testbed.

The proportionality figures use the *analytic* curve P(u) = P_idle + u*P_dyn
that falls out of the M/D/1 window accounting.  This module validates that
curve empirically, the way a datacenter operator would: drive the testbed
with n jobs over an observation window T (u = n*T_P/T, the paper's
utilisation sweep), let the power meter integrate the whole window — job
runs, inter-job idle gaps, dispatch overheads and all — and read the mean
power off the instrument.

The measured points assemble into a
:class:`~repro.core.metrics.SampledPowerCurve`, so every Table 3 metric can
be computed from measurement alone and compared against the model
(:func:`compare_measured_vs_model` does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.configuration import ClusterConfiguration
from repro.core.metrics import (
    ProportionalityReport,
    SampledPowerCurve,
    analyze_curve,
)
from repro.core.proportionality import power_curve as model_power_curve
from repro.errors import MeasurementError
from repro.hardware.node import NonIdealities
from repro.hardware.testbed import Testbed
from repro.model.time_model import job_execution, node_service_rate
from repro.util.rng import DEFAULT_SEED, RngRegistry
from repro.workloads.base import Workload

__all__ = [
    "MeasuredCurvePoint",
    "measure_power_curve",
    "compare_measured_vs_model",
]


@dataclass(frozen=True)
class MeasuredCurvePoint:
    """One measured (utilisation, power) sample."""

    target_utilisation: float
    achieved_utilisation: float
    mean_power_w: float
    n_jobs: int


def _work_split(workload: Workload, config: ClusterConfiguration) -> dict:
    rates = {
        g.spec.name: node_service_rate(g, workload.demand_for(g.spec.name))
        for g in config.groups
    }
    total = sum(rates[g.spec.name] * g.count for g in config.groups)
    return {name: r / total for name, r in rates.items()}


def measure_power_curve(
    workload: Workload,
    config: ClusterConfiguration,
    *,
    utilisations: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
    window_multiplier: float = 24.0,
    registry: Optional[RngRegistry] = None,
    nonideal: NonIdealities = NonIdealities(),
) -> Tuple[SampledPowerCurve, List[MeasuredCurvePoint]]:
    """Measure the cluster's power-vs-utilisation curve on the testbed.

    For each target utilisation the window holds ``n = round(u * T / T_P)``
    evenly spaced jobs (T = ``window_multiplier`` * T_P); the achieved
    utilisation is quantised accordingly and reported per point.  The idle
    (u = 0) and saturated (u = 1, jobs back to back) anchors are always
    measured so the sampled curve spans the full domain.
    """
    if window_multiplier < 2.0:
        raise MeasurementError("window must hold at least a couple of jobs")
    for u in utilisations:
        if not 0.0 < u < 1.0:
            raise MeasurementError(
                f"interior utilisations must be in (0, 1), got {u}"
            )
    reg = registry if registry is not None else RngRegistry(DEFAULT_SEED)
    testbed = Testbed(config, reg, nonideal=nonideal)
    split = _work_split(workload, config)
    tp_model = job_execution(workload, config).tp_s
    window_s = window_multiplier * tp_model

    points: List[MeasuredCurvePoint] = []

    # u = 0 anchor: the cluster idles for the whole window.
    idle_energy = testbed.measure_idle(window_s)
    points.append(
        MeasuredCurvePoint(
            target_utilisation=0.0,
            achieved_utilisation=0.0,
            mean_power_w=idle_energy / window_s,
            n_jobs=0,
        )
    )

    job_counter = 0
    for u in sorted(utilisations):
        n_jobs = max(1, int(round(u * window_s / tp_model)))
        busy = 0.0
        energy = 0.0
        for j in range(n_jobs):
            measured = testbed.run_job(
                workload, work_split=split, job_index=job_counter
            )
            job_counter += 1
            busy += measured.makespan_s
            energy += measured.energy_j
        if busy > window_s:
            raise MeasurementError(
                f"u = {u}: {n_jobs} jobs overran the window; raise window_multiplier"
            )
        # Between jobs the cluster idles; meter the remaining window.
        energy += testbed.measure_idle(window_s - busy)
        points.append(
            MeasuredCurvePoint(
                target_utilisation=float(u),
                achieved_utilisation=busy / window_s,
                mean_power_w=energy / window_s,
                n_jobs=n_jobs,
            )
        )

    # u = 1 anchor: jobs back to back for the whole window.
    n_jobs = int(np.ceil(window_s / tp_model))
    busy = 0.0
    energy = 0.0
    for j in range(n_jobs):
        measured = testbed.run_job(workload, work_split=split, job_index=job_counter)
        job_counter += 1
        busy += measured.makespan_s
        energy += measured.energy_j
    points.append(
        MeasuredCurvePoint(
            target_utilisation=1.0,
            achieved_utilisation=1.0,
            mean_power_w=energy / busy,
            n_jobs=n_jobs,
        )
    )

    curve = SampledPowerCurve(
        utilisations=[min(p.achieved_utilisation, 1.0) for p in points],
        powers_w=[p.mean_power_w for p in points],
    )
    return curve, points


def compare_measured_vs_model(
    workload: Workload,
    config: ClusterConfiguration,
    *,
    registry: Optional[RngRegistry] = None,
    utilisations: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
) -> Tuple[ProportionalityReport, ProportionalityReport]:
    """(measured report, model report) for one workload + configuration.

    The measured report comes entirely from power-meter readings on the
    testbed; the model report from the analytic curve.  Their agreement is
    the empirical justification for using the analytic curves in the
    figures.
    """
    measured_curve, _ = measure_power_curve(
        workload, config, registry=registry, utilisations=utilisations
    )
    model_curve = model_power_curve(workload, config)
    return analyze_curve(measured_curve), analyze_curve(model_curve)
