"""Regenerators for every figure in the paper's evaluation.

Each function returns a :class:`repro.viz.series.Figure` holding the same
series the paper plots; the benchmark harness renders it as ASCII, exports
CSV/gnuplot, and asserts the qualitative shape (orderings, crossovers,
sub-linearity) documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.cluster.budget import budget_mixes
from repro.cluster.configuration import ClusterConfiguration
from repro.cluster.pareto import ConfigEvaluation, pareto_frontier
from repro.core.metrics import QuadraticPowerCurve
from repro.core.proportionality import power_curve, ppr_curve, sweep
from repro.core.response import response_sweep
from repro.errors import ReproError
from repro.viz.series import Figure
from repro.workloads.suite import PAPER_UNITS, paper_workloads

__all__ = [
    "PARETO_MIXES",
    "pareto_mix_configs",
    "figure2_metric_relationships",
    "figure5_node_proportionality",
    "figure6_node_ppr",
    "figure7_cluster_proportionality",
    "figure8_cluster_ppr",
    "figure9_pareto_proportionality",
    "figure11_response_time",
    "compute_pareto_mixes",
]

#: The paper's Figures 9-12 configurations: (A9 count, K10 count) pairs on
#: the energy-deadline Pareto frontier of a <= 32 A9 + <= 12 K10 space.
PARETO_MIXES: Tuple[Tuple[int, int], ...] = (
    (32, 12),
    (25, 10),
    (25, 8),
    (25, 7),
    (25, 5),
)

#: Utilisation grid of the single-node figures (10% steps, as plotted).
_NODE_GRID = np.linspace(0.1, 1.0, 10)

#: Utilisation grid of the Pareto figures (20%..100%).
_PARETO_GRID = np.linspace(0.2, 1.0, 17)

#: Utilisation grid of the response-time figures.  M/D/1 percentiles
#: diverge as u -> 1; stopping at 95% keeps the log axis within the
#: roughly one-decade span the paper's Figures 11/12 show.
_RESPONSE_GRID = np.linspace(0.2, 0.95, 16)

#: Log-spaced utilisation grid of Figure 7 (1%..100%).
_CLUSTER_GRID = np.logspace(-2, 0, 25)


def pareto_mix_configs(
    mixes: Sequence[Tuple[int, int]] = PARETO_MIXES,
) -> List[ClusterConfiguration]:
    """Build full-throttle configurations from (A9, K10) count pairs."""
    return [ClusterConfiguration.mix({"A9": a, "K10": k}) for a, k in mixes]


def _mix_label(a9: int, k10: int) -> str:
    return f"{a9} A9: {k10} K10"


# ----------------------------------------------------------------------
# Figure 2 — metric relationship illustration
# ----------------------------------------------------------------------
def figure2_metric_relationships(*, ipr: float = 0.4) -> Figure:
    """Figure 2: how the metrics relate on sub- and super-linear curves.

    The paper's Figure 2 is an annotated sketch; we regenerate its content:
    an ideal line plus one super-linear and one sub-linear power curve with
    the same idle/peak, whose DPR/IPR/EPM/LDR/PG values the accompanying
    benchmark prints.
    """
    if not 0.0 < ipr < 1.0:
        raise ReproError(f"ipr must be in (0, 1), got {ipr}")
    grid = np.linspace(0.0, 1.0, 21)
    peak = 100.0
    idle = ipr * peak
    super_linear = QuadraticPowerCurve(idle, peak, curvature=-0.6)
    sub_linear = QuadraticPowerCurve(idle, peak, curvature=0.6)
    fig = Figure(
        title="Figure 2: energy proportionality metric relationships",
        xlabel="Utilization [%]",
        ylabel="Peak Power [%]",
    )
    fig.add("Ideal", 100 * grid, 100 * grid)
    fig.add("super-linear", 100 * grid, super_linear.power_series(grid))
    fig.add("sub-linear", 100 * grid, sub_linear.power_series(grid))
    return fig


# ----------------------------------------------------------------------
# Figures 5/6 — single-node proportionality and PPR
# ----------------------------------------------------------------------
def figure5_node_proportionality(workload_name: str) -> Figure:
    """Figure 5: percent-of-peak power vs utilisation, A9 vs K10 vs ideal."""
    w = paper_workloads()[workload_name]
    fig = Figure(
        title=f"Figure 5: energy proportionality of brawny and wimpy nodes ({workload_name})",
        xlabel="Utilization [%]",
        ylabel="Peak Power [%]",
    )
    fig.add("Ideal", 100 * _NODE_GRID, 100 * _NODE_GRID)
    for node in ("K10", "A9"):
        s = sweep(w, ClusterConfiguration.mix({node: 1}), _NODE_GRID, label=node)
        fig.add(node, 100 * s.utilisation, s.pct_of_reference_peak)
    return fig


def figure6_node_ppr(workload_name: str) -> Figure:
    """Figure 6: PPR vs utilisation for single A9 and K10 nodes (log y)."""
    w = paper_workloads()[workload_name]
    fig = Figure(
        title=f"Figure 6: PPR of brawny and wimpy nodes ({workload_name})",
        xlabel="Utilization [%]",
        ylabel=f"PPR [({PAPER_UNITS[workload_name]})/W]",
        logy=True,
    )
    for node in ("K10", "A9"):
        curve = ppr_curve(w, ClusterConfiguration.mix({node: 1}))
        fig.add(node, 100 * _NODE_GRID, curve.series(_NODE_GRID))
    return fig


# ----------------------------------------------------------------------
# Figures 7/8 — cluster-wide proportionality and PPR under a 1 kW budget
# ----------------------------------------------------------------------
def figure7_cluster_proportionality(
    workload_name: str = "EP", *, budget_w: float = 1000.0
) -> Figure:
    """Figure 7: cluster-wide percent-of-peak power, five budget mixes."""
    w = paper_workloads()[workload_name]
    fig = Figure(
        title=f"Figure 7: cluster-wide energy proportionality of {workload_name}",
        xlabel="Utilization [%]",
        ylabel="Peak Power [%]",
        logx=True,
    )
    fig.add("Ideal", 100 * _CLUSTER_GRID, 100 * _CLUSTER_GRID)
    for config in budget_mixes(budget_w):
        s = sweep(w, config, _CLUSTER_GRID)
        fig.add(config.label(), 100 * s.utilisation, s.pct_of_reference_peak)
    return fig


def figure8_cluster_ppr(
    workload_name: str = "EP", *, budget_w: float = 1000.0
) -> Figure:
    """Figure 8: cluster-wide PPR vs utilisation, five budget mixes."""
    w = paper_workloads()[workload_name]
    grid = np.linspace(0.1, 1.0, 10)
    fig = Figure(
        title=f"Figure 8: cluster-wide PPR of {workload_name}",
        xlabel="Utilization [%]",
        ylabel=f"PPR [({PAPER_UNITS[workload_name]})/W]",
    )
    for config in budget_mixes(budget_w):
        curve = ppr_curve(w, config)
        fig.add(config.label(), 100 * grid, curve.series(grid))
    return fig


# ----------------------------------------------------------------------
# Figures 9/10 — proportionality of Pareto-optimal configurations
# ----------------------------------------------------------------------
def figure9_pareto_proportionality(
    workload_name: str,
    *,
    mixes: Sequence[Tuple[int, int]] = PARETO_MIXES,
) -> Figure:
    """Figures 9/10: Pareto-mix power normalised by the maximal mix's peak.

    The first entry of ``mixes`` is the maximal (reference) configuration;
    every curve is normalised by ITS workload peak, which is how smaller
    mixes fall below the reference ideal line — the paper's sub-linear
    proportionality.
    """
    if not mixes:
        raise ReproError("need at least one mix")
    w = paper_workloads()[workload_name]
    configs = pareto_mix_configs(mixes)
    reference_peak = power_curve(w, configs[0]).peak_w
    fig = Figure(
        title=(
            f"Figure {'9' if workload_name == 'EP' else '10'}: energy proportionality "
            f"of Pareto-optimal configurations ({workload_name})"
        ),
        xlabel="Utilization [%]",
        ylabel="Peak Power [%]",
    )
    fig.add("Ideal", 100 * _PARETO_GRID, 100 * _PARETO_GRID)
    for (a, k), config in zip(mixes, configs):
        s = sweep(w, config, _PARETO_GRID, reference_peak_w=reference_peak)
        fig.add(_mix_label(a, k), 100 * s.utilisation, s.pct_of_reference_peak)
    return fig


# ----------------------------------------------------------------------
# Figures 11/12 — 95th-percentile response time of the Pareto mixes
# ----------------------------------------------------------------------
def figure11_response_time(
    workload_name: str,
    *,
    mixes: Sequence[Tuple[int, int]] = PARETO_MIXES,
    unit: str = "auto",
) -> Figure:
    """Figures 11/12: p95 response time vs utilisation for the Pareto mixes.

    ``unit`` selects milliseconds or seconds for the y axis ("ms", "s", or
    "auto": ms when the fastest configuration's service time is sub-second).
    """
    w = paper_workloads()[workload_name]
    configs = pareto_mix_configs(mixes)
    sweeps = [
        response_sweep(w, config, _RESPONSE_GRID, label=_mix_label(a, k))
        for (a, k), config in zip(mixes, configs)
    ]
    if unit == "auto":
        unit = "ms" if sweeps[0].service_time_s < 1.0 else "s"
    if unit not in ("ms", "s"):
        raise ReproError(f"unit must be 'ms', 's' or 'auto', got {unit!r}")
    scale = 1e3 if unit == "ms" else 1.0
    fig = Figure(
        title=(
            f"Figure {'11' if workload_name == 'EP' else '12'}: 95th percentile "
            f"response time of sub-linear mixes ({workload_name})"
        ),
        xlabel="Utilization [%]",
        ylabel=f"95th Percentile Response Time [{unit}]",
        logy=True,
    )
    for s in sweeps:
        fig.add(s.label, 100 * s.utilisation, scale * s.p95_s)
    return fig


# ----------------------------------------------------------------------
# Supporting computation: our own frontier over the <=32 A9 + <=12 K10 space
# ----------------------------------------------------------------------
def compute_pareto_mixes(
    workload_name: str, *, n_a9: int = 32, n_k10: int = 12
) -> List[ConfigEvaluation]:
    """The energy-deadline Pareto frontier over full-throttle (a, k) mixes.

    The paper takes its Figure 9/10 configurations from its prior work's
    frontier; this computes the frontier of OUR calibrated model over the
    same node-count space (all cores at f_max, counts a <= n_a9, k <= n_k10),
    letting the benchmarks check that sub-linear mixes really come from the
    frontier's energy-saving end.  The whole grid is scored in one
    vectorised pass and only the frontier mixes are materialised.
    """
    from repro.cluster.pareto import pareto_indices
    from repro.model.vectorized import evaluate_mix_grid

    w = paper_workloads()[workload_name]
    a_grid, k_grid = np.meshgrid(np.arange(n_a9 + 1), np.arange(n_k10 + 1))
    a_grid, k_grid = a_grid.ravel(), k_grid.ravel()
    occupied = (a_grid + k_grid) > 0
    a_grid, k_grid = a_grid[occupied], k_grid[occupied]
    grid = evaluate_mix_grid(w, {"A9": a_grid, "K10": k_grid})
    peak_w = grid.peak_w
    return [
        ConfigEvaluation(
            config=ClusterConfiguration.mix(
                {"A9": int(a_grid[i]), "K10": int(k_grid[i])}
            ),
            workload_name=w.name,
            tp_s=float(grid.tp_s[i]),
            energy_j=float(grid.energy_j[i]),
            peak_power_w=float(peak_w[i]),
            idle_power_w=float(grid.idle_w[i]),
        )
        for i in pareto_indices(grid.tp_s, grid.energy_j)
    ]
