"""DVFS and core-scaling study: what the full configuration tuple buys.

The paper's system configuration is a tuple per node type — count, active
cores AND operating frequency (Section II-A) — but its figures only vary
node counts.  This study quantifies the other two dimensions: enumerate a
small heterogeneous space with and without the (cores, frequency) choices
and compare the energy-deadline frontiers.

Two effects compete: lower frequency cuts CPU power cubically (f·V²)
while stretching execution time only linearly, but the large idle baseline
keeps burning throughout the longer run ("race to idle").  Which wins
depends on the deadline slack — exactly what the frontier comparison
shows.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cluster.configuration import TypeSpace
from repro.cluster.pareto import (
    ConfigEvaluation,
    evaluate_space,
    pareto_frontier,
    sweet_spot,
)
from repro.errors import ModelError
from repro.hardware.specs import get_node_spec
from repro.util.units import GHZ
from repro.workloads.suite import paper_workloads

__all__ = ["dvfs_frontier_study", "frontier_pair"]

Headers = Tuple[str, ...]
Rows = List[Tuple]


def _scaled_idle_spec(name: str, idle_scale: float):
    """A copy of a registered spec with its idle power scaled.

    ``idle_scale < 1`` models hypothetically more proportional hardware;
    the DVFS study uses it to show that frequency scaling only joins the
    energy-deadline frontier once the idle baseline shrinks — on the
    paper's real nodes, race-to-idle always wins.
    """
    import dataclasses

    if idle_scale <= 0:
        raise ModelError(f"idle_scale must be positive, got {idle_scale}")
    spec = get_node_spec(name)
    if idle_scale == 1.0:
        return spec
    power = dataclasses.replace(
        spec.power,
        idle_w=spec.power.idle_w * idle_scale,
        nameplate_peak_w=max(
            spec.power.nameplate_peak_w, spec.power.idle_w * idle_scale
        ),
    )
    return dataclasses.replace(spec, power=power)


def frontier_pair(
    workload_name: str,
    *,
    n_a9: int = 8,
    n_k10: int = 3,
    idle_scale: float = 1.0,
) -> Tuple[List[ConfigEvaluation], List[ConfigEvaluation], List[ConfigEvaluation]]:
    """(all evaluations, full-tuple frontier, counts-only frontier).

    The full-tuple space varies node counts, active cores and DVFS points;
    the counts-only space pins every node at full throttle.
    """
    a9 = _scaled_idle_spec("A9", idle_scale)
    k10 = _scaled_idle_spec("K10", idle_scale)
    w = paper_workloads()[workload_name]
    full_spaces = [TypeSpace(a9, n_max=n_a9), TypeSpace(k10, n_max=n_k10)]
    evals = evaluate_space(w, full_spaces)
    full_frontier = pareto_frontier(evals)
    counts_only = [
        ev
        for ev in evals
        if all(
            g.cores == g.spec.cores and g.frequency_hz == g.spec.fmax_hz
            for g in ev.config.groups
        )
    ]
    return evals, full_frontier, pareto_frontier(counts_only)


def dvfs_frontier_study(
    workload_name: str = "blackscholes",
    *,
    n_a9: int = 8,
    n_k10: int = 3,
    deadline_slacks: Sequence[float] = (1.2, 1.5, 2.0, 4.0, 8.0),
    idle_scale: float = 1.0,
) -> Tuple[Headers, Rows]:
    """Energy at matched deadlines: counts-only vs full-tuple configuration.

    Deadlines are multiples of the fastest configuration's execution time;
    each row reports the sweet-spot energy with and without the DVFS/core
    dimensions and the saving the extra dimensions deliver.

    On the paper's real nodes the saving is exactly zero at every slack —
    idle power dominates, so race-to-idle beats any down-clocking.  That IS
    the energy-proportionality wall, restated; rerun with ``idle_scale``
    well below 1 (hypothetically proportional hardware) and DVFS points
    start winning.
    """
    for slack in deadline_slacks:
        if slack < 1.0:
            raise ModelError(f"deadline slack must be >= 1, got {slack}")
    evals, full_frontier, counts_frontier = frontier_pair(
        workload_name, n_a9=n_a9, n_k10=n_k10, idle_scale=idle_scale
    )
    fastest = full_frontier[0]
    counts_evals = [
        ev
        for ev in evals
        if all(
            g.cores == g.spec.cores and g.frequency_hz == g.spec.fmax_hz
            for g in ev.config.groups
        )
    ]
    rows: Rows = []
    for slack in deadline_slacks:
        deadline = slack * fastest.tp_s
        with_dvfs = sweet_spot(evals, deadline)
        counts_only = sweet_spot(counts_evals, deadline)
        assert with_dvfs is not None and counts_only is not None
        group = with_dvfs.config.groups[0]
        rows.append(
            (
                slack,
                round(counts_only.energy_j, 3),
                round(with_dvfs.energy_j, 3),
                f"{(1 - with_dvfs.energy_j / counts_only.energy_j):.1%}",
                with_dvfs.config.label(),
                f"c={group.cores}, f={group.frequency_hz / GHZ:.1f}GHz",
            )
        )
    return (
        "deadline slack",
        "counts-only E [J]",
        "full-tuple E [J]",
        "extra saving",
        "full-tuple mix",
        "first group's point",
    ), rows
