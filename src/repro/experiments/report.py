"""Text rendering of the reproduction's tables and figures.

One entry point per paper artefact; each returns a printable string.  The
benchmark harness and the examples are thin wrappers over these.
"""

from __future__ import annotations

from repro.experiments import figures as fig
from repro.experiments import tables as tab
from repro.util.rng import DEFAULT_SEED
from repro.util.tables import render_table
from repro.viz.ascii import render_figure

__all__ = [
    "report_table4",
    "report_table5",
    "report_table6",
    "report_table7",
    "report_table8",
    "report_figure",
    "report_characterization",
]


def report_table4(*, seed: int = DEFAULT_SEED, job_scale: float = 64.0) -> str:
    """Render Table 4 (cluster validation errors)."""
    headers, rows, _ = tab.table4_validation(seed=seed, job_scale=job_scale)
    return render_table(headers, rows, title="Table 4: Cluster validation")


def report_table5() -> str:
    """Render Table 5 (node types)."""
    headers, rows = tab.table5_nodes()
    return render_table(headers, rows, title="Table 5: Types of heterogeneous nodes")


def report_table6() -> str:
    """Render Table 6 (performance-to-power ratios)."""
    headers, rows = tab.table6_ppr()
    return render_table(headers, rows, title="Table 6: Performance-to-power ratio")


def report_table7() -> str:
    """Render Table 7 (single-node energy proportionality)."""
    headers, rows = tab.table7_single_node()
    return render_table(headers, rows, title="Table 7: Single-node energy proportionality")


def report_table8(*, budget_w: float = 1000.0) -> str:
    """Render Table 8 (cluster-wide energy proportionality)."""
    headers, rows = tab.table8_cluster(budget_w=budget_w)
    return render_table(headers, rows, title="Table 8: Cluster-wide energy proportionality")


def report_characterization(workload_name: str, *, seed: int = DEFAULT_SEED) -> str:
    """Render a workload's measured-vs-true characterization (Table 1 view).

    Runs the measurement pipeline (micro-benchmark power characterization +
    small-input demand characterization) on the simulated validation rack
    and tabulates the recovered Table 1 parameters next to the hidden
    ground truth — the provenance view of what the validated model actually
    sees.
    """
    from repro.hardware.microbench import characterize_node_power
    from repro.hardware.testbed import validation_testbed
    from repro.util.rng import RngRegistry
    from repro.workloads.characterize import characterize_workload
    from repro.workloads.suite import workload as get_workload

    w = get_workload(workload_name)
    registry = RngRegistry(seed)
    testbed = validation_testbed(registry)
    specs = {
        g.spec.name: characterize_node_power(
            testbed.node_of_type(g.spec.name), testbed.meter_for_type(g.spec.name)
        )
        for g in testbed.config.groups
    }
    nodes = {name: testbed.node_of_type(name) for name in specs}
    meters = {name: testbed.meter_for_type(name) for name in specs}
    _, records = characterize_workload(
        w, nodes, meters, testbed.perf, registry, characterized_specs=specs
    )

    rows = []
    for node_name in sorted(records):
        record = records[node_name]
        true = w.demand_for(node_name)
        got = record.demand
        rows.extend(
            [
                (node_name, "cycles_core / op", round(got.core_cycles_per_op, 1), round(true.core_cycles_per_op, 1)),
                (node_name, "cycles_mem / op", round(got.mem_cycles_per_op, 1), round(true.mem_cycles_per_op, 1)),
                (node_name, "io_bytes / op", round(got.io_bytes_per_op, 3), round(true.io_bytes_per_op, 3)),
                (node_name, "CPU activity", round(got.activity.cpu_active, 3), round(true.activity.cpu_active, 3)),
                (node_name, "P_dyn measured [W]", round(record.measured_dynamic_power_w, 3), "-"),
            ]
        )
    return render_table(
        ("node", "parameter", "measured", "true"),
        rows,
        title=f"Characterization of {workload_name} (paper Table 1 parameters)",
    )


_FIGURES = {
    "fig2": lambda: fig.figure2_metric_relationships(),
    "fig5a": lambda: fig.figure5_node_proportionality("EP"),
    "fig5b": lambda: fig.figure5_node_proportionality("x264"),
    "fig5c": lambda: fig.figure5_node_proportionality("blackscholes"),
    "fig6a": lambda: fig.figure6_node_ppr("EP"),
    "fig6b": lambda: fig.figure6_node_ppr("x264"),
    "fig6c": lambda: fig.figure6_node_ppr("blackscholes"),
    "fig7": lambda: fig.figure7_cluster_proportionality("EP"),
    "fig8": lambda: fig.figure8_cluster_ppr("EP"),
    "fig9": lambda: fig.figure9_pareto_proportionality("EP"),
    "fig10": lambda: fig.figure9_pareto_proportionality("x264"),
    "fig11": lambda: fig.figure11_response_time("EP"),
    "fig12": lambda: fig.figure11_response_time("x264"),
}


def report_figure(name: str) -> str:
    """Render one figure by its paper identifier (e.g. ``"fig9"``)."""
    try:
        figure = _FIGURES[name]()
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; available: {sorted(_FIGURES)}"
        ) from None
    return render_figure(figure)
