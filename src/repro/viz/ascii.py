"""ASCII chart rendering for terminal output.

Renders a :class:`~repro.viz.series.Figure` as a character grid: one marker
glyph per series, optional log axes, y-axis tick labels and a legend.  This
is how the benchmark harness shows the paper's figures in a matplotlib-free
environment; the shapes (who is above whom, where curves cross) are what the
reproduction is judged on, and those survive character resolution.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.viz.series import Figure

__all__ = ["render_figure", "render_timeline", "render_flame", "render_sparkline"]

#: Marker glyphs assigned to series in order.
_MARKERS = "*o+x#@%&st"

#: Intensity ramp for timeline tracks, lowest to highest.
_RAMP = " .:-=+*#%@"


def _transform(values: np.ndarray, log: bool, axis: str) -> np.ndarray:
    if not log:
        return values.astype(float)
    if np.any(values <= 0):
        raise ReproError(f"log {axis}-axis requires positive values")
    return np.log10(values)


def _ticks(lo: float, hi: float, log: bool, count: int = 5) -> List[float]:
    """Tick positions in *transformed* coordinates."""
    if math.isclose(lo, hi):
        return [lo]
    return list(np.linspace(lo, hi, count))


def _fmt_tick(value: float, log: bool) -> str:
    v = 10.0**value if log else value
    if v == 0:
        return "0"
    magnitude = abs(v)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{v:.1e}"
    if magnitude >= 100:
        return f"{v:.0f}"
    return f"{v:.3g}"


def render_figure(
    figure: Figure,
    *,
    width: int = 68,
    height: int = 18,
) -> str:
    """Render ``figure`` as an ASCII chart string."""
    if not figure.series:
        raise ReproError(f"figure {figure.title!r} has no series to render")
    if width < 16 or height < 6:
        raise ReproError("chart must be at least 16x6 characters")

    xs = [_transform(s.x, figure.logx, "x") for s in figure.series]
    ys = [_transform(s.y, figure.logy, "y") for s in figure.series]
    x_lo = min(float(x.min()) for x in xs)
    x_hi = max(float(x.max()) for x in xs)
    y_lo = min(float(y.min()) for y in ys)
    y_hi = max(float(y.max()) for y in ys)
    if math.isclose(x_lo, x_hi):
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if math.isclose(y_lo, y_hi):
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5

    grid = [[" "] * width for _ in range(height)]

    def to_col(xv: float) -> int:
        return int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))

    def to_row(yv: float) -> int:
        return (height - 1) - int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))

    # Draw series in order; later series overwrite earlier at collisions,
    # with interpolated line segments between sample points.
    for idx, (sx, sy) in enumerate(zip(xs, ys)):
        marker = _MARKERS[idx % len(_MARKERS)]
        # Interpolate along x for a continuous line.
        for col in range(width):
            xv = x_lo + col / (width - 1) * (x_hi - x_lo)
            if xv < sx.min() or xv > sx.max():
                continue
            order = np.argsort(sx)
            yv = float(np.interp(xv, sx[order], sy[order]))
            grid[to_row(yv)][col] = marker
        # Emphasise actual sample points.
        for xv, yv in zip(sx, sy):
            grid[to_row(float(yv))][to_col(float(xv))] = marker

    # Assemble with y tick labels.
    tick_rows = {to_row(t): _fmt_tick(t, figure.logy) for t in _ticks(y_lo, y_hi, figure.logy)}
    label_width = max(len(lbl) for lbl in tick_rows.values()) if tick_rows else 0
    lines = [figure.title, ""]
    for r in range(height):
        label = tick_rows.get(r, "").rjust(label_width)
        lines.append(f"{label} |" + "".join(grid[r]))
    # x axis.
    lines.append(" " * label_width + " +" + "-" * width)
    xticks = _ticks(x_lo, x_hi, figure.logx)
    axis_line = [" "] * width
    tick_labels = []
    for t in xticks:
        tick_labels.append((to_col(t), _fmt_tick(t, figure.logx)))
    axis_str = " " * (label_width + 2)
    out = list(axis_str + "".join(axis_line))
    for col, lbl in tick_labels:
        pos = label_width + 2 + max(0, min(col - len(lbl) // 2, width - len(lbl)))
        for i, ch in enumerate(lbl):
            if pos + i < len(out):
                out[pos + i] = ch
            else:
                out.append(ch)
    lines.append("".join(out))
    lines.append(" " * (label_width + 2) + f"x: {figure.xlabel}   y: {figure.ylabel}")
    lines.append("")
    for idx, s in enumerate(figure.series):
        lines.append(f"  {_MARKERS[idx % len(_MARKERS)]} {s.label}")
    return "\n".join(lines)


def render_timeline(
    tracks: Sequence[Tuple[str, Sequence[float]]],
    *,
    title: str = "",
    t0_s: float = 0.0,
    dt_s: float = 1.0,
) -> str:
    """Render per-interval metric tracks as intensity rows, one column per
    interval.

    Each ``(label, values)`` track is normalised to its own [min, max] range
    and drawn with the glyph ramp ``" .:-=+*#%@"`` — what matters in a
    scheduler timeline is the *shape* of each signal (demand rising, the
    active set following, power tracking both), which survives a 10-level
    ramp.  The row suffix prints the track's actual min/max so magnitudes
    stay readable.
    """
    if not tracks:
        raise ReproError("timeline needs at least one track")
    arrays = []
    for label, values in tracks:
        v = np.asarray(values, dtype=float)
        if v.ndim != 1 or v.size == 0:
            raise ReproError(f"track {label!r} must be a non-empty 1-D sequence")
        arrays.append((str(label), v))
    n = arrays[0][1].size
    if any(v.size != n for _, v in arrays):
        raise ReproError("all timeline tracks must have the same length")
    if dt_s <= 0:
        raise ReproError(f"dt must be positive, got {dt_s}")

    label_width = max(len(label) for label, _ in arrays)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, v in arrays:
        lo, hi = float(v.min()), float(v.max())
        if math.isclose(lo, hi):
            levels = np.zeros(n, dtype=int)
        else:
            levels = np.clip(
                ((v - lo) / (hi - lo) * (len(_RAMP) - 1)).round().astype(int),
                0,
                len(_RAMP) - 1,
            )
        row = "".join(_RAMP[i] for i in levels)
        lines.append(
            f"{label.rjust(label_width)} |{row}| "
            f"[{lo:.3g} .. {hi:.3g}]"
        )
    axis = f"{'t [s]'.rjust(label_width)} |{'^'}{' ' * (n - 2)}{'^' if n > 1 else ''}|"
    lines.append(axis)
    t_end = t0_s + (n - 1) * dt_s
    lines.append(f"{' ' * label_width}  {t0_s:g} .. {t_end:g} (dt={dt_s:g}s)")
    return "\n".join(lines)


def render_sparkline(values: Sequence[float], *, width: int = 40) -> str:
    """One metric history as a single-line intensity sparkline.

    Values are normalised to their own [min, max] range and drawn with the
    shared glyph ramp (oldest left, newest right); histories longer than
    ``width`` keep the newest ``width`` points, shorter ones render at
    their natural length.  NaNs draw as ``?`` — a recorded-but-missing
    point is information, not an error.  The ledger dashboard puts one of
    these per (run name, scalar) row.
    """
    if width < 1:
        raise ReproError(f"sparkline width must be at least 1, got {width}")
    v = np.asarray(values, dtype=float)
    if v.ndim != 1 or v.size == 0:
        raise ReproError("sparkline needs a non-empty 1-D sequence")
    v = v[-width:]
    finite = v[np.isfinite(v)]
    if finite.size == 0:
        return "?" * v.size
    lo, hi = float(finite.min()), float(finite.max())
    vv = np.where(np.isfinite(v), v, lo)  # placeholders; drawn as '?' below
    if math.isclose(lo, hi):
        levels = np.full(v.size, (len(_RAMP) - 1) // 2, dtype=int)
    else:
        levels = np.clip(
            ((vv - lo) / (hi - lo) * (len(_RAMP) - 1)).round().astype(int),
            0,
            len(_RAMP) - 1,
        )
    return "".join(
        "?" if not np.isfinite(x) else _RAMP[i] for x, i in zip(v, levels)
    )


def render_flame(rows: Sequence, *, width: int = 40) -> str:
    """Render a span flame aggregation as an indented ASCII summary.

    ``rows`` are :class:`repro.obs.tracing.FlameRow` records (or anything
    with ``path``/``calls``/``wall_s``/``self_wall_s``/``cpu_s``) — one row
    per call path.  Rows print in depth-first path order, indented by
    nesting depth, with a bar of up to ``width`` characters proportional to
    each path's share of the maximum wall time.
    """
    if width < 4:
        raise ReproError(f"flame bar width must be at least 4, got {width}")
    ordered = sorted(rows, key=lambda r: tuple(r.path))
    if not ordered:
        return "Flame summary: no spans recorded"
    max_wall = max(r.wall_s for r in ordered) or 1.0
    names = [
        "  " * (len(r.path) - 1) + r.path[-1] for r in ordered
    ]
    name_width = max(len(n) for n in names + ["path"])
    header = (
        f"{'path'.ljust(name_width)}  {'calls':>7}  {'wall ms':>10}  "
        f"{'self ms':>10}  {'cpu ms':>10}"
    )
    lines = ["Flame summary (wall time)", header, "-" * len(header)]
    for name, r in zip(names, ordered):
        bar = "#" * max(1, int(round(r.wall_s / max_wall * width)))
        lines.append(
            f"{name.ljust(name_width)}  {r.calls:>7d}  {r.wall_s * 1e3:>10.3f}  "
            f"{r.self_wall_s * 1e3:>10.3f}  {r.cpu_s * 1e3:>10.3f}  {bar}"
        )
    return "\n".join(lines)
