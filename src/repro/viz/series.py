"""Data containers for figures: named series + figure metadata + exporters.

matplotlib is not available in the reproduction environment, so figures are
delivered as data: each benchmark builds a :class:`Figure` (a set of named
(x, y) series with axis metadata), renders it as an ASCII chart for the
console, and can export CSV (one column per series) and a gnuplot script
for offline plotting.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError

__all__ = ["Series", "Figure"]


@dataclass(frozen=True)
class Series:
    """One named line of a figure."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __init__(self, label: str, x: Sequence[float], y: Sequence[float]) -> None:
        xa = np.asarray(x, dtype=float)
        ya = np.asarray(y, dtype=float)
        if xa.ndim != 1 or xa.shape != ya.shape:
            raise ReproError(
                f"series {label!r}: x and y must be matching 1-D arrays, "
                f"got {xa.shape} and {ya.shape}"
            )
        if xa.size == 0:
            raise ReproError(f"series {label!r} is empty")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "x", xa)
        object.__setattr__(self, "y", ya)

    def __len__(self) -> int:
        return int(self.x.size)


@dataclass
class Figure:
    """A figure: titled collection of series with axis metadata."""

    title: str
    xlabel: str
    ylabel: str
    series: List[Series] = field(default_factory=list)
    logx: bool = False
    logy: bool = False

    def add(self, label: str, x: Sequence[float], y: Sequence[float]) -> "Figure":
        """Append one series; returns self for chaining."""
        self.series.append(Series(label, x, y))
        return self

    def require_series(self, label: str) -> Series:
        """Look a series up by label."""
        for s in self.series:
            if s.label == label:
                return s
        raise ReproError(
            f"figure {self.title!r} has no series {label!r}; "
            f"available: {[s.label for s in self.series]}"
        )

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """CSV with one (x, y) column pair per series.

        Series may have different grids, so each gets its own x column;
        shorter series pad with empty cells.
        """
        if not self.series:
            raise ReproError(f"figure {self.title!r} has no series")
        buf = io.StringIO()
        headers = []
        for s in self.series:
            headers.append(f"{s.label} [x]")
            headers.append(f"{s.label} [y]")
        buf.write(",".join(f'"{h}"' for h in headers) + "\n")
        n = max(len(s) for s in self.series)
        for i in range(n):
            cells = []
            for s in self.series:
                if i < len(s):
                    cells.append(f"{s.x[i]:.10g}")
                    cells.append(f"{s.y[i]:.10g}")
                else:
                    cells.extend(["", ""])
            buf.write(",".join(cells) + "\n")
        return buf.getvalue()

    def to_gnuplot(self, data_filename: str = "figure.csv") -> str:
        """A gnuplot script plotting the figure from its CSV export."""
        lines = [
            "set datafile separator ','",
            f"set title {self.title!r}",
            f"set xlabel {self.xlabel!r}",
            f"set ylabel {self.ylabel!r}",
            "set key outside",
        ]
        if self.logx:
            lines.append("set logscale x")
        if self.logy:
            lines.append("set logscale y")
        plots = []
        for i, s in enumerate(self.series):
            xcol = 2 * i + 1
            ycol = 2 * i + 2
            plots.append(
                f"'{data_filename}' using {xcol}:{ycol} with linespoints title {s.label!r}"
            )
        lines.append("plot \\\n  " + ", \\\n  ".join(plots))
        return "\n".join(lines) + "\n"

    def save(self, directory: str | Path, stem: str) -> Tuple[Path, Path]:
        """Write ``<stem>.csv`` and ``<stem>.gp`` into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        csv_path = directory / f"{stem}.csv"
        gp_path = directory / f"{stem}.gp"
        csv_path.write_text(self.to_csv())
        gp_path.write_text(self.to_gnuplot(csv_path.name))
        return csv_path, gp_path
