"""Figure containers, ASCII rendering and CSV/gnuplot export."""

from repro.viz.ascii import render_figure
from repro.viz.series import Figure, Series

__all__ = ["Figure", "Series", "render_figure"]
