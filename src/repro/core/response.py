"""Response-time analysis of cluster configurations (Section III-E).

The paper asks: do the sub-linearly proportional heterogeneous mixes pay for
their energy savings in latency?  Each configuration serves jobs as an
M/D/1 queue with deterministic service time T_P (its execution time for one
job), and the figures report the 95th-percentile response time across a
utilisation sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import QueueingError
from repro.model.time_model import execution_time
from repro.queueing.mc import ConfidenceInterval, MonteCarloQueue
from repro.queueing.md1 import MD1Queue
from repro.util.rng import DEFAULT_SEED
from repro.workloads.base import Workload

__all__ = [
    "response_percentile_s",
    "simulated_response_percentile_s",
    "p95_response_s",
    "ResponseTimeSweep",
    "response_sweep",
]

#: Utilisations at or above this are treated as saturated: percentile
#: queries diverge as u -> 1, and the paper's sweeps stop at 100% by
#: evaluating *approaching* full load.
_MAX_UTILISATION = 0.999


def _effective_utilisation(utilisation: float) -> float:
    if not 0.0 < utilisation <= 1.0:
        raise QueueingError(
            f"utilisation must be in (0, 1], got {utilisation}"
        )
    return min(utilisation, _MAX_UTILISATION)


def response_percentile_s(
    workload: Workload,
    config: ClusterConfiguration,
    utilisation: float,
    *,
    percentile: float = 95.0,
) -> float:
    """A response-time percentile at one cluster utilisation (seconds).

    Utilisation 1.0 is evaluated at 0.999 — the exact limit diverges; the
    paper's plots likewise show steep but finite values at the 100% tick.
    """
    u = _effective_utilisation(utilisation)
    tp = execution_time(workload, config)
    queue = MD1Queue.from_utilisation(u, tp)
    return queue.response_percentile(percentile)


def simulated_response_percentile_s(
    workload: Workload,
    config: ClusterConfiguration,
    utilisation: float,
    *,
    percentile: float = 95.0,
    n_jobs: int = 20_000,
    n_reps: int = 40,
    level: float = 0.99,
    seed: int = DEFAULT_SEED,
) -> ConfidenceInterval:
    """The simulated counterpart of :func:`response_percentile_s`.

    Runs the vectorized Monte-Carlo engine on the same M/D/1 queue
    (service time T_P, arrival rate U / T_P) and returns the mean
    per-replication percentile with its confidence interval — the analytic
    value from :func:`response_percentile_s` should fall inside it.
    """
    u = _effective_utilisation(utilisation)
    tp = execution_time(workload, config)
    mc = MonteCarloQueue.from_utilisation(u, tp, seed=seed)
    return mc.run(n_jobs, n_reps).percentile_ci(percentile, level=level)


def p95_response_s(
    workload: Workload, config: ClusterConfiguration, utilisation: float
) -> float:
    """95th-percentile response time — the paper's Figures 11/12 metric."""
    return response_percentile_s(workload, config, utilisation, percentile=95.0)


@dataclass(frozen=True)
class ResponseTimeSweep:
    """95th-percentile response times of one configuration over utilisation."""

    label: str
    service_time_s: float
    utilisation: np.ndarray
    p95_s: np.ndarray

    @property
    def degradation_factor(self) -> np.ndarray:
        """p95 relative to the no-queueing service time."""
        return self.p95_s / self.service_time_s


def response_sweep(
    workload: Workload,
    config: ClusterConfiguration,
    grid: Sequence[float],
    *,
    percentile: float = 95.0,
    label: Optional[str] = None,
) -> ResponseTimeSweep:
    """Sweep a response-time percentile over a utilisation grid."""
    g = np.asarray(grid, dtype=float)
    if g.ndim != 1 or g.size == 0:
        raise QueueingError("utilisation grid must be a non-empty 1-D array")
    tp = execution_time(workload, config)
    values = np.asarray(
        [
            MD1Queue.from_utilisation(_effective_utilisation(float(u)), tp).response_percentile(percentile)
            for u in g
        ]
    )
    return ResponseTimeSweep(
        label=label if label is not None else config.label(),
        service_time_s=tp,
        utilisation=g,
        p95_s=values,
    )
