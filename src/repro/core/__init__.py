"""Core analysis: energy-proportionality metrics, proportionality and PPR
curves, sub-linearity analysis, and response-time sweeps (open M/D/1 and
batch-window arrival models)."""

from repro.core.batch import (
    BatchResponseSweep,
    BatchWindow,
    batch_response_percentile_s,
    batch_response_sweep,
)

from repro.core.metrics import (
    LinearPowerCurve,
    PowerCurve,
    PPRCurve,
    ProportionalityReport,
    QuadraticPowerCurve,
    SampledPowerCurve,
    analyze_curve,
    dpr,
    epm,
    ipr,
    ldr_paper,
    ldr_strict,
    ppr,
    proportionality_gap,
)
from repro.core.proportionality import (
    UtilisationSweep,
    power_curve,
    ppr_curve,
    proportionality_report,
    sublinear_crossover,
    sublinear_mask,
    sweep,
    window_energy_j,
)
from repro.core.response import (
    ResponseTimeSweep,
    p95_response_s,
    response_percentile_s,
    response_sweep,
)

__all__ = [
    "PowerCurve",
    "LinearPowerCurve",
    "QuadraticPowerCurve",
    "SampledPowerCurve",
    "PPRCurve",
    "ProportionalityReport",
    "analyze_curve",
    "dpr",
    "ipr",
    "epm",
    "ldr_strict",
    "ldr_paper",
    "ppr",
    "proportionality_gap",
    "power_curve",
    "ppr_curve",
    "proportionality_report",
    "sublinear_mask",
    "sublinear_crossover",
    "UtilisationSweep",
    "sweep",
    "window_energy_j",
    "ResponseTimeSweep",
    "response_percentile_s",
    "p95_response_s",
    "response_sweep",
    "BatchWindow",
    "BatchResponseSweep",
    "batch_response_percentile_s",
    "batch_response_sweep",
]
