"""Batch-arrival response-time model (the paper's Section II-C reading).

Besides the Poisson M/D/1 model of Section II-B, the paper sweeps
utilisation by varying "the number of jobs per batch and number of batches
in an observation interval".  Under that reading, a batch of ``n`` jobs
arrives together at the start of a window of length ``T`` and is served
FIFO by the whole cluster; the k-th job's response time is ``k * T_P`` and
the window's utilisation is ``u = n * T_P / T``.

This model's percentiles are quantised in whole service times — which is
the only reading under which the paper's "sub-millisecond range" claim for
EP's Figure 11 differences can hold (see EXPERIMENTS.md): at equal
utilisation every configuration's p95 is ~``0.95 * u * T`` and
configurations differ by at most one service time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import QueueingError
from repro.model.time_model import execution_time
from repro.workloads.base import Workload

__all__ = ["BatchWindow", "batch_response_percentile_s", "batch_response_sweep", "BatchResponseSweep"]


@dataclass(frozen=True)
class BatchWindow:
    """One observation window served as a single FIFO batch."""

    service_time_s: float
    window_s: float
    n_jobs: int

    def __post_init__(self) -> None:
        if self.service_time_s <= 0:
            raise QueueingError("service time must be positive")
        if self.window_s <= 0:
            raise QueueingError("window must be positive")
        if self.n_jobs < 0:
            raise QueueingError("job count must be non-negative")
        if self.n_jobs * self.service_time_s > self.window_s * (1 + 1e-9):
            raise QueueingError(
                f"batch of {self.n_jobs} jobs x {self.service_time_s}s does not "
                f"fit the {self.window_s}s window"
            )

    @classmethod
    def for_utilisation(
        cls, utilisation: float, service_time_s: float, window_s: float
    ) -> "BatchWindow":
        """The batch achieving a target utilisation: n = floor(u*T / T_P)."""
        if not 0.0 <= utilisation <= 1.0:
            raise QueueingError(f"utilisation must be in [0, 1], got {utilisation}")
        n = int(math.floor(utilisation * window_s / service_time_s + 1e-9))
        return cls(service_time_s=service_time_s, window_s=window_s, n_jobs=n)

    @property
    def utilisation(self) -> float:
        """Achieved utilisation (quantised by the integer job count)."""
        return self.n_jobs * self.service_time_s / self.window_s

    def response_times(self) -> np.ndarray:
        """FIFO responses of the batch: job k completes at k * T_P."""
        return self.service_time_s * np.arange(1, self.n_jobs + 1, dtype=float)

    def response_percentile(self, q: float) -> float:
        """The q-th percentile response of the batch.

        An empty batch (utilisation below one job) has no responses; the
        percentile of "no jobs" is reported as 0.
        """
        if not 0.0 <= q <= 100.0:
            raise QueueingError(f"percentile must be in [0, 100], got {q}")
        if self.n_jobs == 0:
            return 0.0
        k = max(1, int(math.ceil(q / 100.0 * self.n_jobs)))
        return k * self.service_time_s


def batch_response_percentile_s(
    workload: Workload,
    config: ClusterConfiguration,
    utilisation: float,
    *,
    window_s: float,
    percentile: float = 95.0,
) -> float:
    """Batch-mode response percentile for a configuration at a utilisation."""
    tp = execution_time(workload, config)
    window = BatchWindow.for_utilisation(utilisation, tp, window_s)
    return window.response_percentile(percentile)


@dataclass(frozen=True)
class BatchResponseSweep:
    """Batch-mode response percentiles over a utilisation grid."""

    label: str
    service_time_s: float
    window_s: float
    utilisation: np.ndarray
    p95_s: np.ndarray


def batch_response_sweep(
    workload: Workload,
    config: ClusterConfiguration,
    grid: Sequence[float],
    *,
    window_s: float,
    percentile: float = 95.0,
    label: str | None = None,
) -> BatchResponseSweep:
    """Sweep the batch-mode response percentile over utilisations."""
    g = np.asarray(grid, dtype=float)
    if g.ndim != 1 or g.size == 0:
        raise QueueingError("utilisation grid must be a non-empty 1-D array")
    tp = execution_time(workload, config)
    values = np.asarray(
        [
            BatchWindow.for_utilisation(float(u), tp, window_s).response_percentile(
                percentile
            )
            for u in g
        ]
    )
    return BatchResponseSweep(
        label=label if label is not None else config.label(),
        service_time_s=tp,
        window_s=window_s,
        utilisation=g,
        p95_s=values,
    )
