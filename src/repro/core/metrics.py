"""Energy-proportionality metrics (paper Table 3) and the PPR.

An *ideal* energy-proportional system draws zero power when idle and scales
power linearly with utilisation up to its peak.  Real servers draw a large
idle baseline; the metrics below quantify the gap:

* **DPR** (dynamic power range): ``100 - P_idle(%)``, the share of peak power
  that actually responds to load.
* **IPR** (idle-to-peak ratio): ``P_idle / P_peak``.
* **EPM** (energy proportionality metric, Ryckbosch et al.): one minus the
  normalised area between the server's power curve and the ideal line; 1 is
  perfectly proportional, 0 is completely load-insensitive.
* **LDR** (linear deviation ratio, Varsamopoulos & Gupta): the largest
  relative deviation of the power curve from the straight line between
  (0, P_idle) and (1, P_peak); negative = sub-linear bow, positive =
  super-linear bow.  NOTE: on the paper's own (exactly linear-offset)
  modelled curves this strict definition is identically 0, yet the paper's
  Tables 7/8 report LDR = EPM = 1 - IPR.  We expose both: `ldr_strict`
  implements the published formula, `ldr_paper` the paper's reported
  equivalence (see DESIGN.md Section 6).
* **PG(u)** (proportionality gap, Wong & Annavaram): the per-utilisation
  relative excess over ideal, ``(P(u) - P_ideal(u)) / P_ideal(u)``.
* **PPR(u)** (performance-to-power ratio): throughput per watt at
  utilisation ``u`` — the only metric here that sees performance, and the
  one the paper ultimately argues should guide configuration choice.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.util.numerics import trapezoid

__all__ = [
    "PowerCurve",
    "LinearPowerCurve",
    "QuadraticPowerCurve",
    "SampledPowerCurve",
    "dpr",
    "ipr",
    "epm",
    "ldr_strict",
    "ldr_paper",
    "proportionality_gap",
    "ppr",
    "PPRCurve",
    "ProportionalityReport",
    "analyze_curve",
]

#: Default utilisation grid for area metrics (1% steps; fine enough that the
#: trapezoid error is far below the paper's reported 2-decimal precision).
_DEFAULT_GRID = np.linspace(0.0, 1.0, 101)


class PowerCurve(abc.ABC):
    """Power draw as a function of utilisation u in [0, 1] (watts)."""

    @abc.abstractmethod
    def power_w(self, utilisation: float) -> float:
        """Power draw at one utilisation (watts)."""

    @property
    @abc.abstractmethod
    def idle_w(self) -> float:
        """Power at zero utilisation (watts)."""

    @property
    @abc.abstractmethod
    def peak_w(self) -> float:
        """Power at full utilisation (watts)."""

    def power_series(self, grid: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`power_w` over a utilisation grid."""
        return np.asarray([self.power_w(float(u)) for u in grid])

    def normalized(self, utilisation: float, reference_peak_w: Optional[float] = None) -> float:
        """Power as a fraction of peak (optionally of a *reference* peak).

        The reference-peak form is how the paper's Figures 9/10 compare
        Pareto configurations against the maximal configuration's ideal line.
        """
        ref = self.peak_w if reference_peak_w is None else reference_peak_w
        if ref <= 0:
            raise ModelError(f"reference peak must be positive, got {ref}")
        return self.power_w(utilisation) / ref

    @staticmethod
    def _check_u(utilisation: float) -> None:
        if not 0.0 <= utilisation <= 1.0:
            raise ModelError(f"utilisation must be in [0, 1], got {utilisation}")


@dataclass(frozen=True)
class LinearPowerCurve(PowerCurve):
    """The model's curve: ``P(u) = P_idle + u * (P_peak - P_idle)``.

    This is exactly what the paper's M/D/1 energy accounting yields: over a
    window T at utilisation u the dynamic energy is ``u * T * P_dyn`` on top
    of the always-on idle baseline.
    """

    _idle_w: float
    _peak_w: float

    def __post_init__(self) -> None:
        if self._idle_w < 0:
            raise ModelError(f"idle power must be non-negative, got {self._idle_w}")
        if self._peak_w < self._idle_w:
            raise ModelError(
                f"peak power {self._peak_w} below idle power {self._idle_w}"
            )

    @property
    def idle_w(self) -> float:
        return self._idle_w

    @property
    def peak_w(self) -> float:
        return self._peak_w

    def power_w(self, utilisation: float) -> float:
        self._check_u(utilisation)
        return self._idle_w + utilisation * (self._peak_w - self._idle_w)


@dataclass(frozen=True)
class QuadraticPowerCurve(PowerCurve):
    """Hsu & Poole's observation that real servers trend quadratically.

    ``P(u) = P_idle + (P_peak - P_idle) * ((1 - a) * u + a * u^2)`` with
    curvature ``a`` in [-1, 1]: positive bows the curve below the chord
    (power rises late), negative bows it above (power rises early).  Used by
    the ablation benchmarks to show how curve shape moves EPM/LDR away from
    the 1 - IPR degeneracy.
    """

    _idle_w: float
    _peak_w: float
    curvature: float = 0.0

    def __post_init__(self) -> None:
        if self._idle_w < 0 or self._peak_w < self._idle_w:
            raise ModelError("invalid idle/peak powers")
        if not -1.0 <= self.curvature <= 1.0:
            raise ModelError(f"curvature must be in [-1, 1], got {self.curvature}")

    @property
    def idle_w(self) -> float:
        return self._idle_w

    @property
    def peak_w(self) -> float:
        return self._peak_w

    def power_w(self, utilisation: float) -> float:
        self._check_u(utilisation)
        u = utilisation
        shape = (1.0 - self.curvature) * u + self.curvature * u * u
        return self._idle_w + (self._peak_w - self._idle_w) * shape


class SampledPowerCurve(PowerCurve):
    """A power curve interpolated from (utilisation, power) samples.

    Built from simulated-testbed measurements; linear interpolation between
    samples, which must cover u = 0 and u = 1.
    """

    def __init__(self, utilisations: Sequence[float], powers_w: Sequence[float]) -> None:
        u = np.asarray(utilisations, dtype=float)
        p = np.asarray(powers_w, dtype=float)
        if u.ndim != 1 or u.shape != p.shape or u.size < 2:
            raise ModelError("need matching 1-D sample arrays with >= 2 points")
        if np.any(np.diff(u) <= 0):
            raise ModelError("utilisation samples must be strictly increasing")
        if not (np.isclose(u[0], 0.0) and np.isclose(u[-1], 1.0)):
            raise ModelError("samples must span utilisation 0 to 1")
        if np.any(p < 0):
            raise ModelError("negative power sample")
        self._u = u
        self._p = p

    @property
    def idle_w(self) -> float:
        return float(self._p[0])

    @property
    def peak_w(self) -> float:
        return float(self._p[-1])

    def power_w(self, utilisation: float) -> float:
        self._check_u(utilisation)
        return float(np.interp(utilisation, self._u, self._p))


# ----------------------------------------------------------------------
# Scalar metrics
# ----------------------------------------------------------------------
def ipr(curve: PowerCurve) -> float:
    """Idle-to-peak power ratio."""
    if curve.peak_w <= 0:
        raise ModelError("peak power must be positive")
    return curve.idle_w / curve.peak_w


def dpr(curve: PowerCurve) -> float:
    """Dynamic power range in percent: ``100 - P_idle(%)``."""
    return 100.0 * (1.0 - ipr(curve))


def epm(curve: PowerCurve, grid: Optional[Sequence[float]] = None) -> float:
    """Energy Proportionality Metric.

    ``1 - (int P_server du - int P_ideal du) / int P_ideal du`` with powers
    normalised by the curve's peak and the ideal line ``P_ideal(u) = u *
    P_peak``.  Equals 1 - IPR for the linear-offset model curve.
    """
    g = np.asarray(_DEFAULT_GRID if grid is None else grid, dtype=float)
    server = curve.power_series(g) / curve.peak_w
    ideal = g  # ideal normalised power equals utilisation
    area_server = trapezoid(server, g)
    area_ideal = trapezoid(ideal, g)
    return 1.0 - (area_server - area_ideal) / area_ideal


def ldr_strict(curve: PowerCurve, grid: Optional[Sequence[float]] = None) -> float:
    """Linear Deviation Ratio per Varsamopoulos & Gupta's formula.

    Signed maximal relative deviation of P(u) from the chord
    ``(P_peak - P_idle) * u + P_idle``; the sign is that of the deviation
    with the largest magnitude (negative = sub-linear).  Endpoints always
    deviate by zero; grids exclude nothing because the chord's value is
    P_idle > 0 at u = 0 for any real server.
    """
    g = np.asarray(_DEFAULT_GRID if grid is None else grid, dtype=float)
    chord = curve.idle_w + g * (curve.peak_w - curve.idle_w)
    power = curve.power_series(g)
    # An ideal curve (idle = 0) has a zero chord at u = 0 where both curve
    # and chord vanish; the relative deviation is 0 by continuity, so the
    # point is simply excluded.
    valid = chord > 0
    if not valid.any():
        raise ModelError("chord is zero everywhere; LDR undefined")
    deviation = (power[valid] - chord[valid]) / chord[valid]
    idx = int(np.argmax(np.abs(deviation)))
    return float(deviation[idx])


def ldr_paper(curve: PowerCurve) -> float:
    """The LDR value the paper actually reports: ``1 - IPR``.

    The paper's Tables 7/8 state "EPM and LDR values are equal to 1 - IPR";
    on its linear-offset model curves the strict LDR formula is identically
    zero, so reproducing the published numbers requires this variant.
    """
    return 1.0 - ipr(curve)


def proportionality_gap(
    curve: PowerCurve,
    utilisation: float,
    *,
    reference_peak_w: Optional[float] = None,
) -> float:
    """PG(u): relative power excess over the ideal line at ``u`` (> 0).

    With ``reference_peak_w`` the ideal line is the *reference*
    configuration's (the paper's Figures 9/10 normalisation); negative
    values then mean the configuration is sub-linearly proportional relative
    to that reference.
    """
    if not 0.0 < utilisation <= 1.0:
        raise ModelError(f"PG is defined for utilisation in (0, 1], got {utilisation}")
    ref = curve.peak_w if reference_peak_w is None else reference_peak_w
    ideal = utilisation * ref
    return (curve.power_w(utilisation) - ideal) / ideal


# ----------------------------------------------------------------------
# Performance-to-power ratio
# ----------------------------------------------------------------------
def ppr(throughput_ops_per_s: float, power_w: float) -> float:
    """Throughput per watt — work done per joule."""
    if power_w <= 0:
        raise ModelError(f"power must be positive, got {power_w}")
    if throughput_ops_per_s < 0:
        raise ModelError(f"throughput must be non-negative, got {throughput_ops_per_s}")
    return throughput_ops_per_s / power_w


@dataclass(frozen=True)
class PPRCurve:
    """PPR as a function of utilisation for one (workload, configuration).

    At utilisation u the system performs ``u * peak_throughput`` useful work
    per second while drawing ``P(u)`` watts.
    """

    peak_throughput_ops_per_s: float
    power_curve: PowerCurve

    def __post_init__(self) -> None:
        if self.peak_throughput_ops_per_s <= 0:
            raise ModelError("peak throughput must be positive")

    def ppr_at(self, utilisation: float) -> float:
        """PPR at one utilisation (ops/s per watt)."""
        if not 0.0 < utilisation <= 1.0:
            raise ModelError(f"PPR is defined for utilisation in (0, 1], got {utilisation}")
        return ppr(
            utilisation * self.peak_throughput_ops_per_s,
            self.power_curve.power_w(utilisation),
        )

    @property
    def peak_ppr(self) -> float:
        """PPR at full utilisation — the paper's Table 6 quantity."""
        return self.ppr_at(1.0)

    def series(self, grid: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`ppr_at` over a utilisation grid."""
        return np.asarray([self.ppr_at(float(u)) for u in grid])


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProportionalityReport:
    """All Table 3 metrics of one power curve, in the paper's table layout."""

    idle_w: float
    peak_w: float
    dpr: float
    ipr: float
    epm: float
    ldr_strict: float
    ldr_paper: float

    def as_row(self) -> tuple:
        """(DPR, IPR, EPM, LDR) in the paper's Tables 7/8 column order,
        using the paper-compatible LDR."""
        return (self.dpr, self.ipr, self.epm, self.ldr_paper)


def analyze_curve(
    curve: PowerCurve, grid: Optional[Sequence[float]] = None
) -> ProportionalityReport:
    """Compute every scalar proportionality metric of ``curve``."""
    return ProportionalityReport(
        idle_w=curve.idle_w,
        peak_w=curve.peak_w,
        dpr=dpr(curve),
        ipr=ipr(curve),
        epm=epm(curve, grid),
        ldr_strict=ldr_strict(curve, grid),
        ldr_paper=ldr_paper(curve),
    )
