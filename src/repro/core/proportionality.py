"""Energy-proportionality analysis of (workload, configuration) pairs.

Bridges the time-energy model to the Table 3 metrics: builds the power-vs-
utilisation curve the M/D/1 window accounting implies, the PPR curve, and
the sub-linearity analysis of the paper's Section III-D (a configuration is
*sub-linear* at utilisation u when its absolute power falls below the ideal
line of a **reference** configuration — by convention the maximal one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cluster.configuration import ClusterConfiguration
from repro.core.metrics import (
    LinearPowerCurve,
    PowerCurve,
    PPRCurve,
    ProportionalityReport,
    analyze_curve,
)
from repro.errors import ModelError
from repro.model.energy_model import power_draw
from repro.model.time_model import cluster_service_rate
from repro.workloads.base import Workload

__all__ = [
    "power_curve",
    "ppr_curve",
    "proportionality_report",
    "window_energy_j",
    "sublinear_mask",
    "sublinear_crossover",
    "UtilisationSweep",
    "sweep",
    "DynamicProportionality",
    "dynamic_proportionality",
]


def power_curve(workload: Workload, config: ClusterConfiguration) -> LinearPowerCurve:
    """The cluster's power-vs-utilisation curve for ``workload``.

    From the M/D/1 window accounting (Section II-B): over a window T at
    utilisation u the cluster is busy u*T drawing idle + dynamic power and
    idle for (1-u)*T, hence ``P(u) = P_idle + u * P_dyn``.
    """
    draw = power_draw(workload, config)
    return LinearPowerCurve(draw.idle_w, draw.peak_w)


def ppr_curve(workload: Workload, config: ClusterConfiguration) -> PPRCurve:
    """The cluster's PPR-vs-utilisation curve for ``workload``."""
    return PPRCurve(
        peak_throughput_ops_per_s=cluster_service_rate(workload, config),
        power_curve=power_curve(workload, config),
    )


def proportionality_report(
    workload: Workload, config: ClusterConfiguration
) -> ProportionalityReport:
    """All Table 3 metrics for one (workload, configuration) pair."""
    return analyze_curve(power_curve(workload, config))


def window_energy_j(
    curve: PowerCurve, utilisation: float, window_s: float
) -> float:
    """Energy consumed over an observation window at a given utilisation."""
    if window_s <= 0:
        raise ModelError(f"window must be positive, got {window_s}")
    return curve.power_w(utilisation) * window_s


# ----------------------------------------------------------------------
# Sub-linearity (Section III-D)
# ----------------------------------------------------------------------
def sublinear_mask(
    curve: PowerCurve,
    grid: Sequence[float],
    *,
    reference_peak_w: float,
) -> np.ndarray:
    """Boolean mask: where does ``curve`` fall below the reference ideal line?

    The reference ideal line is ``u * reference_peak_w`` — the diagonal of
    the maximal configuration's proportionality plot.
    """
    if reference_peak_w <= 0:
        raise ModelError("reference peak must be positive")
    g = np.asarray(grid, dtype=float)
    return curve.power_series(g) < g * reference_peak_w


def sublinear_crossover(
    curve: LinearPowerCurve, *, reference_peak_w: float
) -> Optional[float]:
    """Utilisation above which a linear-offset curve becomes sub-linear.

    Solves ``P_idle + u * P_dyn = u * P_ref``: the crossover is
    ``u* = P_idle / (P_ref - P_dyn)``.  Returns None when the configuration
    never drops strictly below the reference ideal line within (0, 1] — in
    particular a curve compared against its own peak merely *touches* the
    ideal at u = 1 and has no sub-linear region.
    """
    if reference_peak_w <= 0:
        raise ModelError("reference peak must be positive")
    dyn = curve.peak_w - curve.idle_w
    if reference_peak_w <= dyn:
        return None
    u_star = curve.idle_w / (reference_peak_w - dyn)
    # The tolerance absorbs round-off in the self-reference case, where the
    # exact crossover is u = 1 (no sub-linear region).
    return u_star if u_star < 1.0 - 1e-12 else None


# ----------------------------------------------------------------------
# Utilisation sweeps (the data behind every proportionality figure)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UtilisationSweep:
    """Per-utilisation series for one (workload, configuration) pair.

    ``pct_of_reference_peak`` is the paper's y-axis ("Peak Power [%]"); when
    no reference was given it is normalised by the configuration's own peak
    (Figures 5/7); the Pareto figures (9/10) normalise by the maximal
    configuration's peak instead.
    """

    label: str
    utilisation: np.ndarray
    power_w: np.ndarray
    reference_peak_w: float
    ppr: np.ndarray

    @property
    def pct_of_reference_peak(self) -> np.ndarray:
        """Power as percent of the reference peak."""
        return 100.0 * self.power_w / self.reference_peak_w

    @property
    def ideal_pct(self) -> np.ndarray:
        """The ideal proportionality line in percent (= utilisation)."""
        return 100.0 * self.utilisation

    @property
    def proportionality_gap(self) -> np.ndarray:
        """PG(u) against the reference ideal line, per sample."""
        ideal = self.utilisation * self.reference_peak_w
        return (self.power_w - ideal) / ideal

    @property
    def sublinear(self) -> np.ndarray:
        """Boolean per-sample sub-linearity against the reference ideal."""
        return self.power_w < self.utilisation * self.reference_peak_w


# ----------------------------------------------------------------------
# Dynamic (realised-trace) proportionality
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DynamicProportionality:
    """Proportionality metrics of a *realised* (utilisation, power) trace.

    The Table 3 metrics above score a static power *curve*; an online
    scheduler instead produces a time series: per interval, the work it
    actually served (as a fraction of the reference configuration's peak
    throughput) and the power it actually drew — including autoscaling,
    parked-node idle draw, and power-state transition charges.  These are
    the same quantities, computed over that trace against the reference
    ideal line ``P_ideal(t) = u_t * P_ref``:

    * ``epm`` is the realised energy-proportionality metric
      ``1 - (E - E_ideal) / E_ideal`` with ``E_ideal = sum(u_t * P_ref * dt)``
      — 1 when the cluster consumed exactly the ideal energy for the work
      it did, negative when it burned more than twice the ideal;
    * ``mean_pg`` / ``max_pg`` are the time-averaged and worst per-interval
      proportionality gaps ``(P_t - P_ideal,t) / P_ideal,t``;
    * ``sublinear_fraction`` is the share of intervals served *below* the
      reference ideal line — the dynamic analogue of Section III-D's
      sub-linear region, and exactly what a Pareto-walking autoscaler is
      supposed to maximise.
    """

    reference_peak_w: float
    realized_energy_j: float
    ideal_energy_j: float
    epm: float
    mean_pg: float
    max_pg: float
    sublinear_fraction: float


def dynamic_proportionality(
    utilisation: Sequence[float],
    power_w: Sequence[float],
    reference_peak_w: float,
    *,
    interval_s: float = 1.0,
) -> DynamicProportionality:
    """Score a realised per-interval (utilisation, power) trace.

    ``utilisation`` is served work per interval as a fraction of the
    reference configuration's peak throughput (may transiently exceed 1
    when a backlog drains); ``power_w`` is the realised mean power of each
    interval.  Intervals that served no work contribute energy but have no
    defined per-interval gap; they are excluded from the gap statistics.
    """
    u = np.asarray(utilisation, dtype=float)
    p = np.asarray(power_w, dtype=float)
    if u.ndim != 1 or u.shape != p.shape or u.size == 0:
        raise ModelError("need matching non-empty 1-D utilisation/power traces")
    if interval_s <= 0:
        raise ModelError(f"interval must be positive, got {interval_s}")
    if reference_peak_w <= 0:
        raise ModelError("reference peak must be positive")
    if np.any(u < 0) or np.any(p < 0):
        raise ModelError("utilisation and power traces must be non-negative")
    ideal = u * reference_peak_w
    realized_energy = float(p.sum() * interval_s)
    ideal_energy = float(ideal.sum() * interval_s)
    if ideal_energy <= 0:
        raise ModelError("trace served no work; dynamic proportionality undefined")
    worked = ideal > 0
    gaps = (p[worked] - ideal[worked]) / ideal[worked]
    return DynamicProportionality(
        reference_peak_w=reference_peak_w,
        realized_energy_j=realized_energy,
        ideal_energy_j=ideal_energy,
        epm=1.0 - (realized_energy - ideal_energy) / ideal_energy,
        mean_pg=float(gaps.mean()),
        max_pg=float(gaps.max()),
        sublinear_fraction=float(np.mean(p[worked] < ideal[worked])),
    )


def sweep(
    workload: Workload,
    config: ClusterConfiguration,
    grid: Sequence[float],
    *,
    reference_peak_w: Optional[float] = None,
    label: Optional[str] = None,
) -> UtilisationSweep:
    """Evaluate power and PPR over a utilisation grid.

    The grid must lie in (0, 1]; zero utilisation has no PPR (no work done).
    """
    g = np.asarray(grid, dtype=float)
    if g.ndim != 1 or g.size == 0:
        raise ModelError("utilisation grid must be a non-empty 1-D array")
    if np.any(g <= 0.0) or np.any(g > 1.0):
        raise ModelError("utilisation grid must lie in (0, 1]")
    curve = power_curve(workload, config)
    pprs = ppr_curve(workload, config).series(g)
    return UtilisationSweep(
        label=label if label is not None else config.label(),
        utilisation=g,
        power_w=curve.power_series(g),
        reference_peak_w=reference_peak_w if reference_peak_w is not None else curve.peak_w,
        ppr=pprs,
    )
