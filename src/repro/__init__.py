"""repro — energy proportionality and time-energy performance of
heterogeneous clusters.

A complete, self-contained reproduction of Ramapantulu, Loghin & Teo,
"On Energy Proportionality and Time-Energy Performance of Heterogeneous
Clusters" (IEEE CLUSTER 2016): the measurement-driven time-energy model,
the energy-proportionality metric suite (DPR/IPR/EPM/LDR/PG/PPR), the
M/D/1 utilisation and response-time analysis, the heterogeneous
configuration space with its power-budget mixes and energy-deadline Pareto
frontier, a simulated measurement testbed (nodes + perf-style counters +
power meter) standing in for the paper's physical cluster, and experiment
drivers regenerating every table and figure of the evaluation.

Quick start::

    import repro

    ep = repro.workload("EP")
    cluster = repro.ClusterConfiguration.mix({"A9": 64, "K10": 8})
    print(repro.proportionality_report(ep, cluster))
    print(repro.p95_response_s(ep, cluster, utilisation=0.9))

See README.md for the architecture overview and DESIGN.md / EXPERIMENTS.md
for the reproduction methodology and results.
"""

from repro.cluster.budget import (
    PowerBudget,
    budget_mixes,
    substitution_ratio,
    switch_power_w,
)
from repro.cluster.configuration import (
    ClusterConfiguration,
    NodeGroup,
    TypeSpace,
    count_configurations,
    enumerate_configurations,
)
from repro.cluster.search import (
    Recommendation,
    recommend_exhaustive,
    recommend_greedy,
)
from repro.cluster.pareto import (
    TIME_TIE_REL,
    ConfigEvaluation,
    evaluate_configuration,
    evaluate_configuration_cached,
    evaluate_space,
    pareto_frontier,
    pareto_indices,
    sweet_region,
    sweet_spot,
)
from repro.core.metrics import (
    LinearPowerCurve,
    PowerCurve,
    PPRCurve,
    ProportionalityReport,
    QuadraticPowerCurve,
    SampledPowerCurve,
    analyze_curve,
    dpr,
    epm,
    ipr,
    ldr_paper,
    ldr_strict,
    ppr,
    proportionality_gap,
)
from repro.core.proportionality import (
    UtilisationSweep,
    power_curve,
    ppr_curve,
    proportionality_report,
    sublinear_crossover,
    sublinear_mask,
    sweep,
    window_energy_j,
)
from repro.core.response import (
    ResponseTimeSweep,
    p95_response_s,
    response_percentile_s,
    response_sweep,
    simulated_response_percentile_s,
)
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    MeasurementError,
    ModelError,
    QueueingError,
    ReproError,
    WorkloadError,
)
from repro.hardware.specs import (
    DvfsPoint,
    NodeSpec,
    PowerProfile,
    get_node_spec,
    register_node_spec,
    registered_node_names,
)
from repro.hardware.testbed import MeasuredJob, Testbed, validation_testbed
from repro.model.energy_model import (
    JobEnergy,
    PowerDraw,
    dynamic_power_w,
    job_energy,
    peak_power_w,
    power_draw,
)
from repro.model.time_model import (
    JobExecution,
    cluster_service_rate,
    execution_time,
    job_execution,
    node_service_rate,
)
from repro.model.batched import (
    OperatingPointConstants,
    SpaceEvaluationArrays,
    clear_constants_cache,
    config_constants,
    evaluate_space_arrays,
    operating_point_constants,
)
from repro.model.vectorized import MixEvaluation, evaluate_mix_grid
from repro.model.validation import (
    ValidationPipeline,
    ValidationRow,
    validate_workloads,
)
from repro.queueing import (
    MD1Queue,
    MDCQueue,
    MG1Queue,
    MM1Queue,
    MonteCarloQueue,
    PoissonArrivals,
    QueueSimulator,
    ReplicatedResult,
)
from repro.util.rng import DEFAULT_SEED, RngRegistry
from repro.workloads.base import ActivityFactors, Workload, WorkloadDemand
from repro.workloads.suite import (
    PAPER_WORKLOAD_NAMES,
    build_workload,
    paper_workloads,
    workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "CalibrationError",
    "ModelError",
    "QueueingError",
    "MeasurementError",
    "WorkloadError",
    # hardware
    "NodeSpec",
    "PowerProfile",
    "DvfsPoint",
    "get_node_spec",
    "register_node_spec",
    "registered_node_names",
    "Testbed",
    "MeasuredJob",
    "validation_testbed",
    # workloads
    "Workload",
    "WorkloadDemand",
    "ActivityFactors",
    "PAPER_WORKLOAD_NAMES",
    "paper_workloads",
    "workload",
    "build_workload",
    # cluster
    "ClusterConfiguration",
    "NodeGroup",
    "TypeSpace",
    "count_configurations",
    "enumerate_configurations",
    "PowerBudget",
    "budget_mixes",
    "substitution_ratio",
    "switch_power_w",
    "ConfigEvaluation",
    "TIME_TIE_REL",
    "evaluate_configuration",
    "evaluate_configuration_cached",
    "evaluate_space",
    "pareto_frontier",
    "pareto_indices",
    "sweet_region",
    "sweet_spot",
    "Recommendation",
    "recommend_exhaustive",
    "recommend_greedy",
    # model
    "JobExecution",
    "JobEnergy",
    "PowerDraw",
    "job_execution",
    "job_energy",
    "execution_time",
    "cluster_service_rate",
    "node_service_rate",
    "dynamic_power_w",
    "peak_power_w",
    "power_draw",
    "ValidationPipeline",
    "ValidationRow",
    "validate_workloads",
    "MixEvaluation",
    "evaluate_mix_grid",
    "OperatingPointConstants",
    "SpaceEvaluationArrays",
    "operating_point_constants",
    "config_constants",
    "evaluate_space_arrays",
    "clear_constants_cache",
    # queueing
    "MD1Queue",
    "MDCQueue",
    "MM1Queue",
    "MG1Queue",
    "QueueSimulator",
    "MonteCarloQueue",
    "ReplicatedResult",
    "PoissonArrivals",
    # metrics and analysis
    "PowerCurve",
    "LinearPowerCurve",
    "QuadraticPowerCurve",
    "SampledPowerCurve",
    "PPRCurve",
    "ProportionalityReport",
    "analyze_curve",
    "dpr",
    "ipr",
    "epm",
    "ldr_strict",
    "ldr_paper",
    "ppr",
    "proportionality_gap",
    "power_curve",
    "ppr_curve",
    "proportionality_report",
    "sublinear_mask",
    "sublinear_crossover",
    "UtilisationSweep",
    "sweep",
    "window_energy_j",
    "ResponseTimeSweep",
    "response_percentile_s",
    "simulated_response_percentile_s",
    "p95_response_s",
    "response_sweep",
    # utilities
    "RngRegistry",
    "DEFAULT_SEED",
]
