"""Power-budget arithmetic and the paper's substitution-ratio cluster mixes.

Datacenters cap peak power draw; the paper compares cluster mixes under a
fixed 1 kW budget (Section III-C).  Nameplate peaks are 5 W per A9 and 60 W
per K10, and every 8 A9 nodes bring a 20 W switch share, so one K10 trades
for exactly 8 A9 nodes — the paper's 8:1 *power substitution ratio*
(footnote 3).  Sweeping the brawny node count from the budget maximum down
to zero in equal steps produces the mixes of Figures 7/8:

    0 A9:16 K10, 32 A9:12 K10, 64 A9:8 K10, 96 A9:4 K10, 128 A9:0 K10.

Switch power counts against the *budget* only; the paper's proportionality
metrics exclude it (its quoted 720 W idle for the K10 cluster is exactly
16 x 45 W).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import ConfigurationError
from repro.hardware.specs import (
    A9_NODES_PER_SWITCH,
    SWITCH_PEAK_W,
    NodeSpec,
    get_node_spec,
)

__all__ = [
    "switch_power_w",
    "substitution_ratio",
    "PowerBudget",
    "budget_mixes",
]


def switch_power_w(
    wimpy_count: int,
    *,
    nodes_per_switch: int = A9_NODES_PER_SWITCH,
    switch_w: float = SWITCH_PEAK_W,
) -> float:
    """Peak power of the switches connecting ``wimpy_count`` nodes."""
    if wimpy_count < 0:
        raise ConfigurationError(f"node count must be non-negative, got {wimpy_count}")
    if nodes_per_switch <= 0:
        raise ConfigurationError("nodes_per_switch must be positive")
    if wimpy_count == 0:
        return 0.0
    return math.ceil(wimpy_count / nodes_per_switch) * switch_w


def substitution_ratio(
    wimpy: str | NodeSpec = "A9",
    brawny: str | NodeSpec = "K10",
    *,
    nodes_per_switch: int = A9_NODES_PER_SWITCH,
    switch_w: float = SWITCH_PEAK_W,
) -> float:
    """Wimpy nodes per brawny node at equal peak power, switch included.

    ``P_brawny / (P_wimpy + switch share)`` — 60 / (5 + 20/8) = 8 for the
    paper's nodes.
    """
    w = get_node_spec(wimpy) if isinstance(wimpy, str) else wimpy
    b = get_node_spec(brawny) if isinstance(brawny, str) else brawny
    per_wimpy = w.power.nameplate_peak_w + switch_w / nodes_per_switch
    if per_wimpy <= 0:
        raise ConfigurationError("wimpy node has zero effective peak power")
    return b.power.nameplate_peak_w / per_wimpy


@dataclass(frozen=True)
class PowerBudget:
    """A peak-power cap for cluster sizing (watts)."""

    budget_w: float
    nodes_per_switch: int = A9_NODES_PER_SWITCH
    switch_w: float = SWITCH_PEAK_W

    def __post_init__(self) -> None:
        if self.budget_w <= 0:
            raise ConfigurationError(f"budget must be positive, got {self.budget_w}")

    def provisioned_peak_w(self, config: ClusterConfiguration, wimpy: str = "A9") -> float:
        """Nameplate peak of ``config`` plus switch overhead for wimpy nodes."""
        return config.nameplate_peak_w + switch_power_w(
            config.count_of(wimpy),
            nodes_per_switch=self.nodes_per_switch,
            switch_w=self.switch_w,
        )

    def fits(self, config: ClusterConfiguration, wimpy: str = "A9") -> bool:
        """True when the configuration's provisioned peak is within budget."""
        return self.provisioned_peak_w(config, wimpy) <= self.budget_w + 1e-9

    def fits_mask(
        self, nameplate_w: np.ndarray, wimpy_counts: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`fits` over whole configuration spaces.

        ``nameplate_w`` holds per-configuration summed node nameplate peaks
        and ``wimpy_counts`` the matching wimpy node counts (for switch
        overhead); the batched sweep engine supplies both
        (:class:`repro.model.batched.SpaceEvaluationArrays`).
        """
        nameplate = np.asarray(nameplate_w, dtype=float)
        wimpy = np.asarray(wimpy_counts, dtype=float)
        switch = np.ceil(wimpy / self.nodes_per_switch) * self.switch_w
        return nameplate + switch <= self.budget_w + 1e-9

    def max_nodes(self, node: str | NodeSpec, *, with_switch: bool = False) -> int:
        """Largest homogeneous node count of one type within the budget."""
        spec = get_node_spec(node) if isinstance(node, str) else node
        per_node = spec.power.nameplate_peak_w
        if with_switch:
            per_node += self.switch_w / self.nodes_per_switch
        if per_node <= 0:
            raise ConfigurationError(f"{spec.name} has zero peak power")
        return int(self.budget_w // per_node) if per_node else 0


def budget_mixes(
    budget_w: float = 1000.0,
    *,
    wimpy: str = "A9",
    brawny: str = "K10",
    steps: int = 5,
) -> List[ClusterConfiguration]:
    """The paper's substitution-ratio mixes under a power budget.

    The brawny count sweeps in ``steps`` equal decrements from its budget
    maximum down to zero; each removed brawny node is replaced by
    ``substitution_ratio`` wimpy nodes.  For the default 1 kW budget this
    returns exactly the five mixes of Figures 7/8, ordered brawny-heavy
    first (0 A9 : 16 K10, ..., 128 A9 : 0 K10).
    """
    if steps < 2:
        raise ConfigurationError(f"need at least 2 mixes, got {steps}")
    budget = PowerBudget(budget_w)
    k_max = budget.max_nodes(brawny)
    if k_max <= 0:
        raise ConfigurationError(
            f"budget {budget_w} W cannot fit even one {brawny} node"
        )
    if k_max % (steps - 1) != 0:
        raise ConfigurationError(
            f"brawny maximum {k_max} is not divisible into {steps - 1} equal steps"
        )
    ratio = substitution_ratio(wimpy, brawny)
    if abs(ratio - round(ratio)) > 1e-9:
        raise ConfigurationError(
            f"substitution ratio {ratio:.3f} is not integral; "
            f"choose node/switch powers that trade evenly"
        )
    ratio_int = int(round(ratio))
    step = k_max // (steps - 1)
    mixes = []
    for i in range(steps):
        k = k_max - i * step
        a = ratio_int * (k_max - k)
        config = ClusterConfiguration.mix({wimpy: a, brawny: k})
        if not budget.fits(config, wimpy):
            raise ConfigurationError(
                f"internal error: generated mix {config.label()} exceeds the budget"
            )
        mixes.append(config)
    return mixes
