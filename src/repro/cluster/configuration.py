"""Cluster configurations and the heterogeneous configuration space.

A *system configuration* (paper Section II-A) is a set of tuples — one per
node type — of (type, number of nodes, active cores per node, operating core
clock frequency).  The configuration space explodes combinatorially: the
paper's footnote 4 counts 36,380 configurations for just 10 ARM + 10 AMD
nodes.  This module provides the configuration data model, validation,
exhaustive enumeration and the closed-form count, which downstream modules
(Pareto frontier, power-budget mixes) build on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.hardware.specs import NodeSpec, get_node_spec
from repro.util.units import GHZ

__all__ = [
    "NodeGroup",
    "ClusterConfiguration",
    "TypeSpace",
    "enumerate_configurations",
    "count_configurations",
]


@dataclass(frozen=True)
class NodeGroup:
    """A homogeneous group inside a configuration.

    ``count`` nodes of type ``spec``, each running ``cores`` active cores at
    ``frequency_hz``.  All nodes of one type share the same operating point
    (paper Section II-D: nodes of the same type execute the same share of
    work and exhibit the same power characteristics).
    """

    spec: NodeSpec
    count: int
    cores: int
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigurationError(
                f"group of {self.spec.name}: node count must be positive, got {self.count}"
            )
        self.spec.validate_operating_point(self.cores, self.frequency_hz)

    @classmethod
    def of(
        cls,
        spec: str | NodeSpec,
        count: int,
        *,
        cores: Optional[int] = None,
        frequency_hz: Optional[float] = None,
    ) -> "NodeGroup":
        """Convenience constructor; defaults to all cores at fmax."""
        node = get_node_spec(spec) if isinstance(spec, str) else spec
        return cls(
            spec=node,
            count=count,
            cores=cores if cores is not None else node.cores,
            frequency_hz=frequency_hz if frequency_hz is not None else node.fmax_hz,
        )

    @property
    def nameplate_peak_w(self) -> float:
        """Nameplate peak power of the whole group (watts)."""
        return self.count * self.spec.power.nameplate_peak_w

    @property
    def idle_w(self) -> float:
        """Idle power of the whole group (watts)."""
        return self.count * self.spec.power.idle_w

    def __str__(self) -> str:
        return (
            f"{self.count} {self.spec.name}"
            f"(c={self.cores}, f={self.frequency_hz / GHZ:.1f}GHz)"
        )


@dataclass(frozen=True)
class ClusterConfiguration:
    """An inter-node heterogeneous cluster configuration.

    Groups are stored sorted by node-type name so two configurations with the
    same content compare equal regardless of construction order.
    """

    groups: Tuple[NodeGroup, ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("a configuration needs at least one node group")
        names = [g.spec.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate node types in configuration: {sorted(names)}"
            )
        object.__setattr__(
            self, "groups", tuple(sorted(self.groups, key=lambda g: g.spec.name))
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *groups: NodeGroup) -> "ClusterConfiguration":
        """Build a configuration from node groups."""
        return cls(groups=tuple(groups))

    @classmethod
    def mix(cls, counts: Mapping[str, int]) -> "ClusterConfiguration":
        """Build a full-throttle mix from ``{type name: node count}``.

        Types with a zero count are dropped, so ``mix({"A9": 128, "K10": 0})``
        is the homogeneous wimpy cluster — handy when sweeping the paper's
        budget mixes.
        """
        groups = [
            NodeGroup.of(name, count) for name, count in sorted(counts.items()) if count
        ]
        return cls(groups=tuple(groups))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        """Total number of nodes across all groups."""
        return sum(g.count for g in self.groups)

    @property
    def degree_of_heterogeneity(self) -> int:
        """Number of distinct node types (paper's ``d``)."""
        return len(self.groups)

    @property
    def is_homogeneous(self) -> bool:
        """True when only one node type is present."""
        return self.degree_of_heterogeneity == 1

    @property
    def nameplate_peak_w(self) -> float:
        """Sum of node nameplate peaks (watts), excluding switches."""
        return sum(g.nameplate_peak_w for g in self.groups)

    @property
    def idle_w(self) -> float:
        """Cluster idle power (watts): sum of node idle powers.

        The paper's cluster-wide metrics exclude switch power (its Table 8
        homogeneous-cluster IPRs equal the single-node values, and the quoted
        "720 W" K10-cluster idle is exactly 16 x 45 W).
        """
        return sum(g.idle_w for g in self.groups)

    def count_of(self, node: str | NodeSpec) -> int:
        """Number of nodes of one type (0 when the type is absent)."""
        name = node.name if isinstance(node, NodeSpec) else node
        for g in self.groups:
            if g.spec.name == name:
                return g.count
        return 0

    def group_for(self, node: str | NodeSpec) -> NodeGroup:
        """The group for a node type; raises when absent."""
        name = node.name if isinstance(node, NodeSpec) else node
        for g in self.groups:
            if g.spec.name == name:
                return g
        raise ConfigurationError(f"configuration has no {name!r} nodes")

    def label(self) -> str:
        """Human-readable mix label in the paper's style: ``"32 A9 : 12 K10"``."""
        return " : ".join(f"{g.count} {g.spec.name}" for g in self.groups)

    def __str__(self) -> str:
        return " + ".join(str(g) for g in self.groups)


@dataclass(frozen=True)
class TypeSpace:
    """The per-type choice space used when enumerating configurations.

    ``n_max`` nodes (1..n_max when the type is used), 1..``c_max`` active
    cores, and any of the node's DVFS frequencies (restricted to
    ``frequencies_hz`` when given).
    """

    spec: NodeSpec
    n_max: int
    c_max: Optional[int] = None
    frequencies_hz: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.n_max <= 0:
            raise ConfigurationError(f"{self.spec.name}: n_max must be positive")
        c_max = self.c_max if self.c_max is not None else self.spec.cores
        if not 1 <= c_max <= self.spec.cores:
            raise ConfigurationError(
                f"{self.spec.name}: c_max must be in [1, {self.spec.cores}]"
            )
        freqs = (
            self.frequencies_hz
            if self.frequencies_hz is not None
            else self.spec.frequencies_hz
        )
        for f in freqs:
            self.spec.voltage_at(f)  # validates membership in the DVFS table
        object.__setattr__(self, "c_max", c_max)
        object.__setattr__(self, "frequencies_hz", tuple(freqs))

    @property
    def choices(self) -> int:
        """Number of (n, c, f) choices for this type when it participates."""
        return self.n_max * self.c_max * len(self.frequencies_hz)

    def groups(self) -> Iterator[NodeGroup]:
        """Yield every possible :class:`NodeGroup` of this type."""
        for n in range(1, self.n_max + 1):
            for c in range(1, self.c_max + 1):
                for f in self.frequencies_hz:
                    yield NodeGroup(spec=self.spec, count=n, cores=c, frequency_hz=f)


def count_configurations(spaces: Sequence[TypeSpace]) -> int:
    """Closed-form size of the configuration space over ``spaces``.

    A configuration uses any non-empty subset of the node types; each
    participating type contributes ``n_max * c_max * |freqs|`` independent
    choices.  For the paper's example — 10 ARM nodes (4 cores, 5 frequencies)
    and 10 AMD nodes (6 cores, 3 frequencies) — this evaluates to
    10*5*4 * 10*3*6 + 10*5*4 + 10*3*6 = 36,380 (footnote 4).
    """
    if not spaces:
        raise ConfigurationError("no type spaces supplied")
    total = 1
    for space in spaces:
        total *= space.choices + 1  # +1: the type may be absent
    return total - 1  # remove the empty configuration


def enumerate_configurations(
    spaces: Sequence[TypeSpace],
) -> Iterator[ClusterConfiguration]:
    """Exhaustively enumerate the configuration space over ``spaces``.

    Yields every configuration over every non-empty subset of node types.
    The iteration order is deterministic: subsets in binary-counter order,
    then per-type (n, c, f) in nested ascending order.
    """
    if not spaces:
        raise ConfigurationError("no type spaces supplied")
    names = [s.spec.name for s in spaces]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate node types in spaces: {names}")

    per_type_groups = [list(space.groups()) for space in spaces]
    n_types = len(spaces)
    for mask in range(1, 1 << n_types):
        selected = [per_type_groups[i] for i in range(n_types) if mask & (1 << i)]
        for combo in itertools.product(*selected):
            yield ClusterConfiguration(groups=tuple(combo))
