"""Energy-deadline Pareto frontier and the "sweet region".

The authors' prior work (Ramapantulu et al., ICPP 2014) showed that among
the huge heterogeneous configuration space there is a Pareto-optimal set of
configurations trading execution time against energy — the *energy-deadline
Pareto frontier* — and a "sweet region" of configurations that meet a
deadline at minimum energy.  This paper (Section III-D) takes configurations
from that frontier and asks how proportional they are.

We evaluate a configuration by the time model's execution time T_P for one
job and the energy model's total energy E_P for that job, then apply a
standard two-objective dominance filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.cluster.configuration import (
    ClusterConfiguration,
    TypeSpace,
    enumerate_configurations,
)
from repro.errors import ModelError
from repro.model.energy_model import job_energy
from repro.model.time_model import job_execution
from repro.workloads.base import Workload

__all__ = [
    "ConfigEvaluation",
    "evaluate_configuration",
    "evaluate_space",
    "pareto_frontier",
    "sweet_region",
    "sweet_spot",
]


@dataclass(frozen=True)
class ConfigEvaluation:
    """Time-energy evaluation of one configuration for one workload."""

    config: ClusterConfiguration
    workload_name: str
    tp_s: float
    energy_j: float
    peak_power_w: float
    idle_power_w: float

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s), a common combined figure of merit."""
        return self.energy_j * self.tp_s

    def dominates(self, other: "ConfigEvaluation") -> bool:
        """Strict Pareto dominance on (time, energy): no worse on both and
        strictly better on at least one."""
        return (
            self.tp_s <= other.tp_s
            and self.energy_j <= other.energy_j
            and (self.tp_s < other.tp_s or self.energy_j < other.energy_j)
        )


def evaluate_configuration(
    workload: Workload, config: ClusterConfiguration
) -> ConfigEvaluation:
    """Run the time and energy models for one job on one configuration."""
    execution = job_execution(workload, config)
    energy = job_energy(workload, config)
    return ConfigEvaluation(
        config=config,
        workload_name=workload.name,
        tp_s=execution.tp_s,
        energy_j=energy.e_total_j,
        peak_power_w=energy.peak_power_w,
        idle_power_w=config.idle_w,
    )


def evaluate_space(
    workload: Workload, spaces: Sequence[TypeSpace]
) -> List[ConfigEvaluation]:
    """Evaluate every configuration of an enumerated space.

    The paper's 10+10-node example space has 36,380 configurations; each
    evaluation is a handful of arithmetic operations, so exhaustive search
    is practical well beyond that.
    """
    return [
        evaluate_configuration(workload, config)
        for config in enumerate_configurations(spaces)
    ]


def pareto_frontier(evaluations: Iterable[ConfigEvaluation]) -> List[ConfigEvaluation]:
    """The non-dominated subset, sorted by ascending execution time.

    Sort by (time, energy); a configuration joins the frontier when its
    energy is strictly below every faster configuration's.  Ties in time
    keep only the lowest-energy entry.
    """
    ordered = sorted(evaluations, key=lambda e: (e.tp_s, e.energy_j))
    if not ordered:
        return []
    frontier: List[ConfigEvaluation] = []
    best_energy = float("inf")
    for ev in ordered:
        if frontier and ev.tp_s == frontier[-1].tp_s:
            continue  # same time, not cheaper (sort order) -> dominated
        if ev.energy_j < best_energy:
            frontier.append(ev)
            best_energy = ev.energy_j
    return frontier


def sweet_region(
    evaluations: Iterable[ConfigEvaluation], deadline_s: float
) -> List[ConfigEvaluation]:
    """Pareto-optimal configurations meeting a deadline.

    The authors' "sweet region": the part of the energy-deadline frontier
    with T_P at or below the deadline, i.e. every configuration for which no
    other meets the deadline with less energy *and* less time.
    """
    if deadline_s <= 0:
        raise ModelError(f"deadline must be positive, got {deadline_s}")
    return [ev for ev in pareto_frontier(evaluations) if ev.tp_s <= deadline_s]


def sweet_spot(
    evaluations: Iterable[ConfigEvaluation], deadline_s: float
) -> Optional[ConfigEvaluation]:
    """The minimum-energy configuration meeting the deadline, if any.

    On the frontier, energy decreases as time increases, so the sweet spot
    is the *slowest* frontier configuration still within the deadline.
    """
    region = sweet_region(evaluations, deadline_s)
    return region[-1] if region else None
