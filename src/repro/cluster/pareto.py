"""Energy-deadline Pareto frontier and the "sweet region".

The authors' prior work (Ramapantulu et al., ICPP 2014) showed that among
the huge heterogeneous configuration space there is a Pareto-optimal set of
configurations trading execution time against energy — the *energy-deadline
Pareto frontier* — and a "sweet region" of configurations that meet a
deadline at minimum energy.  This paper (Section III-D) takes configurations
from that frontier and asks how proportional they are.

We evaluate a configuration by the time model's execution time T_P for one
job and the energy model's total energy E_P for that job, then apply a
standard two-objective dominance filter.

Two evaluation paths exist and are contractually interchangeable:

* :func:`evaluate_configuration` runs the full scalar dataclass model — the
  property-tested **oracle**;
* :func:`evaluate_space` / :func:`evaluate_configuration_cached` ride the
  batched engine (:mod:`repro.model.batched`), which agrees with the oracle
  to 1e-9 relative on every configuration and is orders of magnitude faster
  on whole spaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.cluster.configuration import (
    ClusterConfiguration,
    TypeSpace,
)
from repro.errors import ModelError
from repro.model.batched import config_constants, evaluate_space_arrays
from repro.model.energy_model import job_energy
from repro.model.time_model import job_execution
from repro.workloads.base import Workload

__all__ = [
    "TIME_TIE_REL",
    "ConfigEvaluation",
    "evaluate_configuration",
    "evaluate_configuration_cached",
    "evaluate_space",
    "pareto_indices",
    "pareto_frontier",
    "sweet_region",
    "sweet_spot",
]

#: Relative tolerance under which two execution times count as a tie.  The
#: frontier collapses time-ties to the cheapest configuration; exact float
#: equality would treat values differing by rounding jitter (e.g. a scalar
#: vs batched evaluation of the same configuration) as distinct points.
TIME_TIE_REL = 1e-9


@dataclass(frozen=True)
class ConfigEvaluation:
    """Time-energy evaluation of one configuration for one workload."""

    config: ClusterConfiguration
    workload_name: str
    tp_s: float
    energy_j: float
    peak_power_w: float
    idle_power_w: float

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s), a common combined figure of merit."""
        return self.energy_j * self.tp_s

    def dominates(self, other: "ConfigEvaluation") -> bool:
        """Strict Pareto dominance on (time, energy): no worse on both and
        strictly better on at least one."""
        return (
            self.tp_s <= other.tp_s
            and self.energy_j <= other.energy_j
            and (self.tp_s < other.tp_s or self.energy_j < other.energy_j)
        )


def evaluate_configuration(
    workload: Workload, config: ClusterConfiguration
) -> ConfigEvaluation:
    """Run the full scalar time and energy models for one configuration.

    This is the scalar **oracle** the batched engine is tested against; use
    :func:`evaluate_configuration_cached` on hot paths.
    """
    execution = job_execution(workload, config)
    energy = job_energy(workload, config)
    return ConfigEvaluation(
        config=config,
        workload_name=workload.name,
        tp_s=execution.tp_s,
        energy_j=energy.e_total_j,
        peak_power_w=energy.peak_power_w,
        idle_power_w=config.idle_w,
    )


def evaluate_configuration_cached(
    workload: Workload, config: ClusterConfiguration
) -> ConfigEvaluation:
    """Evaluate one configuration through the batched engine's constants cache.

    Agrees with :func:`evaluate_configuration` to 1e-9 relative; repeated
    evaluations at the same operating points (greedy descent, adaptation
    policies) cost a few multiply-adds each.
    """
    total_rate, idle_w, dyn_w = config_constants(workload, config)
    tp_s = workload.ops_per_job / total_rate
    return ConfigEvaluation(
        config=config,
        workload_name=workload.name,
        tp_s=tp_s,
        energy_j=(idle_w + dyn_w) * tp_s,
        peak_power_w=idle_w + dyn_w,
        idle_power_w=idle_w,
    )


def evaluate_space(
    workload: Workload, spaces: Sequence[TypeSpace]
) -> List[ConfigEvaluation]:
    """Evaluate every configuration of an enumerated space.

    The paper's 10+10-node example space has 36,380 configurations; the
    numbers come from one broadcasted pass of the batched engine
    (:func:`repro.model.batched.evaluate_space_arrays`), and the returned
    list preserves :func:`enumerate_configurations` order.
    """
    arrays = evaluate_space_arrays(workload, spaces)
    tp_s = arrays.tp_s
    energy_j = arrays.energy_j
    peak_w = arrays.peak_power_w
    idle_w = arrays.idle_w
    return [
        ConfigEvaluation(
            config=config,
            workload_name=workload.name,
            tp_s=float(tp_s[i]),
            energy_j=float(energy_j[i]),
            peak_power_w=float(peak_w[i]),
            idle_power_w=float(idle_w[i]),
        )
        for i, config in enumerate(arrays.iter_configs())
    ]


def pareto_indices(
    tp_s: np.ndarray,
    energy_j: np.ndarray,
    *,
    time_tie_rel: float = TIME_TIE_REL,
) -> np.ndarray:
    """Indices of the non-dominated points, sorted by ascending time.

    Sort-based O(n log n) vectorised dominance filter: lexsort by
    (time, energy), keep points strictly cheaper than every faster point
    (a running minimum), then collapse runs of time-ties — exact or within
    ``time_tie_rel`` jitter — to their cheapest member.
    """
    tp = np.asarray(tp_s, dtype=float)
    energy = np.asarray(energy_j, dtype=float)
    if tp.shape != energy.shape or tp.ndim != 1:
        raise ModelError("tp_s and energy_j must be 1-D arrays of equal length")
    n = tp.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((energy, tp))
    sorted_energy = energy[order]
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    if n > 1:
        running_min = np.minimum.accumulate(sorted_energy)
        keep[1:] = sorted_energy[1:] < running_min[:-1]
    kept = order[keep]
    if kept.shape[0] > 1:
        # Energies strictly decrease along ``kept``, so within a run of
        # near-equal times the LAST member is the cheapest: drop every
        # member whose successor is a time-tie.
        kept_tp = tp[kept]
        tie_with_next = np.isclose(
            kept_tp[:-1], kept_tp[1:], rtol=time_tie_rel, atol=0.0
        )
        kept = kept[np.append(~tie_with_next, True)]
    return kept


def pareto_frontier(evaluations: Iterable[ConfigEvaluation]) -> List[ConfigEvaluation]:
    """The non-dominated subset, sorted by ascending execution time.

    Time-ties — exact or within :data:`TIME_TIE_REL` float jitter — keep
    only the lowest-energy entry, so a configuration re-evaluated with
    rounding noise cannot shadow the frontier with a near-duplicate.
    """
    evals = list(evaluations)
    if not evals:
        return []
    tp = np.array([e.tp_s for e in evals])
    energy = np.array([e.energy_j for e in evals])
    return [evals[i] for i in pareto_indices(tp, energy)]


def sweet_region(
    evaluations: Iterable[ConfigEvaluation], deadline_s: float
) -> List[ConfigEvaluation]:
    """Pareto-optimal configurations meeting a deadline.

    The authors' "sweet region": the part of the energy-deadline frontier
    with T_P at or below the deadline, i.e. every configuration for which no
    other meets the deadline with less energy *and* less time.
    """
    if deadline_s <= 0:
        raise ModelError(f"deadline must be positive, got {deadline_s}")
    return [ev for ev in pareto_frontier(evaluations) if ev.tp_s <= deadline_s]


def sweet_spot(
    evaluations: Iterable[ConfigEvaluation], deadline_s: float
) -> Optional[ConfigEvaluation]:
    """The minimum-energy configuration meeting the deadline, if any.

    On the frontier, energy decreases as time increases, so the sweet spot
    is the *slowest* frontier configuration still within the deadline.
    """
    region = sweet_region(evaluations, deadline_s)
    return region[-1] if region else None
