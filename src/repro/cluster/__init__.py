"""Cluster configurations: the heterogeneous configuration space,
power-budget mixes and the energy-deadline Pareto frontier.

The Pareto-frontier helpers layer *above* the time-energy model (which in
turn builds on the configuration data model below), so they are re-exported
lazily to keep the import graph acyclic.
"""

from repro.cluster.budget import (
    PowerBudget,
    budget_mixes,
    substitution_ratio,
    switch_power_w,
)
from repro.cluster.configuration import (
    ClusterConfiguration,
    NodeGroup,
    TypeSpace,
    count_configurations,
    enumerate_configurations,
)

__all__ = [
    "ClusterConfiguration",
    "NodeGroup",
    "TypeSpace",
    "count_configurations",
    "enumerate_configurations",
    "PowerBudget",
    "budget_mixes",
    "substitution_ratio",
    "switch_power_w",
    "TIME_TIE_REL",
    "ConfigEvaluation",
    "evaluate_configuration",
    "evaluate_configuration_cached",
    "evaluate_space",
    "pareto_indices",
    "pareto_frontier",
    "sweet_region",
    "sweet_spot",
    "Recommendation",
    "recommend_exhaustive",
    "recommend_greedy",
]

_PARETO_NAMES = {
    "TIME_TIE_REL",
    "ConfigEvaluation",
    "evaluate_configuration",
    "evaluate_configuration_cached",
    "evaluate_space",
    "pareto_indices",
    "pareto_frontier",
    "sweet_region",
    "sweet_spot",
}

_SEARCH_NAMES = {"Recommendation", "recommend_exhaustive", "recommend_greedy"}


def __getattr__(name: str):
    if name in _PARETO_NAMES:
        from repro.cluster import pareto

        return getattr(pareto, name)
    if name in _SEARCH_NAMES:
        from repro.cluster import search

        return getattr(search, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
