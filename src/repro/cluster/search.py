"""Configuration search: recommend a cluster for a deadline and budget.

The paper's stated challenge (Section I): "for a given application with a
time deadline and energy budget, it is non-trivial to determine an
energy-proportional configuration among the large system configuration
space".  The exhaustive search is exact but the space grows as the product
of per-type choices; the greedy search exploits the model's structure (time
and energy are monotone in nodes/cores/frequency) to reach near-optimal
answers while evaluating a tiny fraction of the space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.budget import PowerBudget
from repro.cluster.configuration import (
    ClusterConfiguration,
    NodeGroup,
    TypeSpace,
    enumerate_configurations,
)
from repro.cluster.pareto import ConfigEvaluation, evaluate_configuration
from repro.errors import ModelError
from repro.workloads.base import Workload

__all__ = ["Recommendation", "recommend_exhaustive", "recommend_greedy"]


@dataclass(frozen=True)
class Recommendation:
    """Result of a configuration search."""

    evaluation: ConfigEvaluation
    deadline_s: float
    evaluated_configs: int
    strategy: str

    @property
    def config(self) -> ClusterConfiguration:
        """The recommended configuration."""
        return self.evaluation.config

    @property
    def meets_deadline(self) -> bool:
        """Whether the recommendation satisfies the deadline (always True
        for a successful search; kept for symmetric reporting)."""
        return self.evaluation.tp_s <= self.deadline_s


def _feasible(
    ev: ConfigEvaluation, deadline_s: float, budget: Optional[PowerBudget]
) -> bool:
    if ev.tp_s > deadline_s:
        return False
    if budget is not None and not budget.fits(ev.config):
        return False
    return True


def recommend_exhaustive(
    workload: Workload,
    spaces: Sequence[TypeSpace],
    *,
    deadline_s: float,
    budget: Optional[PowerBudget] = None,
) -> Optional[Recommendation]:
    """Exact search: the minimum-energy configuration meeting the deadline.

    Evaluates EVERY configuration of the space; returns None when nothing
    is feasible.  Ties in energy break toward the faster configuration.
    """
    if deadline_s <= 0:
        raise ModelError(f"deadline must be positive, got {deadline_s}")
    best: Optional[ConfigEvaluation] = None
    count = 0
    for config in enumerate_configurations(spaces):
        count += 1
        ev = evaluate_configuration(workload, config)
        if not _feasible(ev, deadline_s, budget):
            continue
        if best is None or (ev.energy_j, ev.tp_s) < (best.energy_j, best.tp_s):
            best = ev
    if best is None:
        return None
    return Recommendation(
        evaluation=best,
        deadline_s=deadline_s,
        evaluated_configs=count,
        strategy="exhaustive",
    )


def _neighbours(
    config: ClusterConfiguration, spaces: Sequence[TypeSpace]
) -> List[ClusterConfiguration]:
    """Single-step shrink moves: drop a node, a core, or one DVFS step.

    Each move strictly reduces capability (and peak power), so greedy
    descent explores the energy-saving direction of the space.
    """
    by_name = {s.spec.name: s for s in spaces}
    moves: List[ClusterConfiguration] = []
    for i, group in enumerate(config.groups):
        space = by_name[group.spec.name]
        others = [g for j, g in enumerate(config.groups) if j != i]

        def with_group(new_group: Optional[NodeGroup]) -> Optional[ClusterConfiguration]:
            groups = others + ([new_group] if new_group else [])
            if not groups:
                return None
            return ClusterConfiguration(groups=tuple(groups))

        # Remove one node (possibly the whole group).
        smaller = (
            NodeGroup(group.spec, group.count - 1, group.cores, group.frequency_hz)
            if group.count > 1
            else None
        )
        candidate = with_group(smaller)
        if candidate is not None:
            moves.append(candidate)
        # Disable one core.
        if group.cores > 1:
            moves.append(
                with_group(
                    NodeGroup(group.spec, group.count, group.cores - 1, group.frequency_hz)
                )
            )
        # Step the frequency down.
        freqs = space.frequencies_hz
        idx = freqs.index(group.frequency_hz) if group.frequency_hz in freqs else -1
        if idx > 0:
            moves.append(
                with_group(
                    NodeGroup(group.spec, group.count, group.cores, freqs[idx - 1])
                )
            )
    return [m for m in moves if m is not None]


def recommend_greedy(
    workload: Workload,
    spaces: Sequence[TypeSpace],
    *,
    deadline_s: float,
    budget: Optional[PowerBudget] = None,
) -> Optional[Recommendation]:
    """Greedy descent: start maximal, shrink while the deadline still holds.

    From the maximal configuration (all nodes, cores, top frequency), keep
    applying the single shrink move that saves the most energy while
    remaining feasible.  Evaluates O(moves * steps) configurations instead
    of the whole space; exact whenever the energy landscape is monotone
    along shrink paths (which the linear time/energy model makes the common
    case — the tests compare against the exhaustive answer).
    """
    if deadline_s <= 0:
        raise ModelError(f"deadline must be positive, got {deadline_s}")
    maximal = ClusterConfiguration(
        groups=tuple(
            NodeGroup(s.spec, s.n_max, s.c_max, s.frequencies_hz[-1]) for s in spaces
        )
    )
    count = 1
    current = evaluate_configuration(workload, maximal)
    if current.tp_s > deadline_s:
        # Shrink moves only slow things down: if the maximal configuration
        # misses the deadline, nothing in the space can meet it.
        return None
    if not _feasible(current, deadline_s, budget):
        # The maximal configuration busts the power budget; scan shrink
        # moves for a feasible start.
        frontier = [maximal]
        seen = {maximal}
        start = None
        while frontier and start is None:
            config = frontier.pop()
            for move in _neighbours(config, spaces):
                if move in seen:
                    continue
                seen.add(move)
                count += 1
                ev = evaluate_configuration(workload, move)
                if _feasible(ev, deadline_s, budget):
                    start = ev
                    break
                frontier.append(move)
        if start is None:
            return None
        current = start

    improved = True
    while improved:
        improved = False
        best_move: Optional[ConfigEvaluation] = None
        for move in _neighbours(current.config, spaces):
            count += 1
            ev = evaluate_configuration(workload, move)
            if not _feasible(ev, deadline_s, budget):
                continue
            if ev.energy_j < current.energy_j and (
                best_move is None or ev.energy_j < best_move.energy_j
            ):
                best_move = ev
        if best_move is not None:
            current = best_move
            improved = True
    return Recommendation(
        evaluation=current,
        deadline_s=deadline_s,
        evaluated_configs=count,
        strategy="greedy",
    )
