"""Configuration search: recommend a cluster for a deadline and budget.

The paper's stated challenge (Section I): "for a given application with a
time deadline and energy budget, it is non-trivial to determine an
energy-proportional configuration among the large system configuration
space".  The exhaustive search is exact but the space grows as the product
of per-type choices; the greedy search exploits the model's structure (time
and energy are monotone in nodes/cores/frequency) to reach near-optimal
answers while evaluating a tiny fraction of the space.

Both searches ride the batched engine (:mod:`repro.model.batched`): the
exhaustive search scores the whole space in one broadcasted pass and only
materialises the winning configuration; the greedy descent evaluates each
candidate through the operating-point constants cache and memoises per
configuration, so ``evaluated_configs`` counts *distinct* configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.budget import PowerBudget
from repro.cluster.configuration import (
    ClusterConfiguration,
    NodeGroup,
    TypeSpace,
)
from repro.cluster.pareto import ConfigEvaluation, evaluate_configuration_cached
from repro.errors import ModelError
from repro.model.batched import evaluate_space_arrays
from repro.workloads.base import Workload

__all__ = ["Recommendation", "recommend_exhaustive", "recommend_greedy"]


@dataclass(frozen=True)
class Recommendation:
    """Result of a configuration search.

    ``evaluated_configs`` counts the *distinct* configurations the search
    scored: the whole space for the exhaustive search, the memoised
    neighbour set for the greedy descent.
    """

    evaluation: ConfigEvaluation
    deadline_s: float
    evaluated_configs: int
    strategy: str

    @property
    def config(self) -> ClusterConfiguration:
        """The recommended configuration."""
        return self.evaluation.config

    @property
    def meets_deadline(self) -> bool:
        """Whether the recommendation satisfies the deadline (always True
        for a successful search; kept for symmetric reporting)."""
        return self.evaluation.tp_s <= self.deadline_s


def _feasible(
    ev: ConfigEvaluation, deadline_s: float, budget: Optional[PowerBudget]
) -> bool:
    if ev.tp_s > deadline_s:
        return False
    if budget is not None and not budget.fits(ev.config):
        return False
    return True


def recommend_exhaustive(
    workload: Workload,
    spaces: Sequence[TypeSpace],
    *,
    deadline_s: float,
    budget: Optional[PowerBudget] = None,
) -> Optional[Recommendation]:
    """Exact search: the minimum-energy configuration meeting the deadline.

    Scores EVERY configuration of the space in one batched pass and
    materialises only the winner; returns None when nothing is feasible.
    Ties in energy break toward the faster configuration, then toward
    enumeration order — exactly the scalar loop's semantics.
    """
    if deadline_s <= 0:
        raise ModelError(f"deadline must be positive, got {deadline_s}")
    arrays = evaluate_space_arrays(workload, spaces)
    feasible = arrays.tp_s <= deadline_s
    if budget is not None:
        wimpy_counts = arrays.counts.get(
            "A9", np.zeros(arrays.n_configs, dtype=np.int64)
        )
        feasible &= budget.fits_mask(arrays.nameplate_w, wimpy_counts)
    candidates = np.flatnonzero(feasible)
    if candidates.size == 0:
        return None
    order = np.lexsort((arrays.tp_s[candidates], arrays.energy_j[candidates]))
    best = int(candidates[order[0]])
    evaluation = ConfigEvaluation(
        config=arrays.config_at(best),
        workload_name=workload.name,
        tp_s=float(arrays.tp_s[best]),
        energy_j=float(arrays.energy_j[best]),
        peak_power_w=float(arrays.peak_power_w[best]),
        idle_power_w=float(arrays.idle_w[best]),
    )
    return Recommendation(
        evaluation=evaluation,
        deadline_s=deadline_s,
        evaluated_configs=arrays.n_configs,
        strategy="exhaustive",
    )


def _frequency_index(frequencies_hz: Sequence[float], frequency_hz: float) -> int:
    """Index of the space frequency matching ``frequency_hz``, else -1.

    Frequencies are physical DVFS points, so membership must tolerate float
    jitter: a configuration built with a frequency that is not bit-identical
    to the space's (e.g. ``1.4e9`` vs ``1.4 * GHZ`` computed differently)
    still owns its DVFS shrink move.
    """
    for i, candidate in enumerate(frequencies_hz):
        if math.isclose(candidate, frequency_hz, rel_tol=1e-9, abs_tol=0.0):
            return i
    return -1


def _neighbours(
    config: ClusterConfiguration, spaces: Sequence[TypeSpace]
) -> List[ClusterConfiguration]:
    """Single-step shrink moves: drop a node, a core, or one DVFS step.

    Each move strictly reduces capability (and peak power), so greedy
    descent explores the energy-saving direction of the space.
    """
    by_name = {s.spec.name: s for s in spaces}
    moves: List[ClusterConfiguration] = []
    for i, group in enumerate(config.groups):
        space = by_name[group.spec.name]
        others = [g for j, g in enumerate(config.groups) if j != i]

        def with_group(new_group: Optional[NodeGroup]) -> Optional[ClusterConfiguration]:
            groups = others + ([new_group] if new_group else [])
            if not groups:
                return None
            return ClusterConfiguration(groups=tuple(groups))

        # Remove one node (possibly the whole group).
        smaller = (
            NodeGroup(group.spec, group.count - 1, group.cores, group.frequency_hz)
            if group.count > 1
            else None
        )
        candidate = with_group(smaller)
        if candidate is not None:
            moves.append(candidate)
        # Disable one core.
        if group.cores > 1:
            moves.append(
                with_group(
                    NodeGroup(group.spec, group.count, group.cores - 1, group.frequency_hz)
                )
            )
        # Step the frequency down (tolerant frequency lookup: see
        # _frequency_index).
        freqs = space.frequencies_hz
        idx = _frequency_index(freqs, group.frequency_hz)
        if idx > 0:
            moves.append(
                with_group(
                    NodeGroup(group.spec, group.count, group.cores, freqs[idx - 1])
                )
            )
    return [m for m in moves if m is not None]


def recommend_greedy(
    workload: Workload,
    spaces: Sequence[TypeSpace],
    *,
    deadline_s: float,
    budget: Optional[PowerBudget] = None,
) -> Optional[Recommendation]:
    """Greedy descent: start maximal, shrink while the deadline still holds.

    From the maximal configuration (all nodes, cores, top frequency), keep
    applying the single shrink move that saves the most energy while
    remaining feasible.  Evaluations are memoised per configuration, so
    revisiting the same neighbour across descent iterations costs nothing
    and ``evaluated_configs`` reports distinct configurations.  Exact
    whenever the energy landscape is monotone along shrink paths (which the
    linear time/energy model makes the common case — the tests compare
    against the exhaustive answer).
    """
    if deadline_s <= 0:
        raise ModelError(f"deadline must be positive, got {deadline_s}")
    maximal = ClusterConfiguration(
        groups=tuple(
            NodeGroup(s.spec, s.n_max, s.c_max, s.frequencies_hz[-1]) for s in spaces
        )
    )

    memo: Dict[ClusterConfiguration, ConfigEvaluation] = {}

    def evaluate(config: ClusterConfiguration) -> ConfigEvaluation:
        ev = memo.get(config)
        if ev is None:
            ev = evaluate_configuration_cached(workload, config)
            memo[config] = ev
        return ev

    current = evaluate(maximal)
    if current.tp_s > deadline_s:
        # Shrink moves only slow things down: if the maximal configuration
        # misses the deadline, nothing in the space can meet it.
        return None
    if not _feasible(current, deadline_s, budget):
        # The maximal configuration busts the power budget; scan shrink
        # moves for a feasible start.
        frontier = [maximal]
        start = None
        while frontier and start is None:
            config = frontier.pop()
            for move in _neighbours(config, spaces):
                if move in memo:
                    continue
                ev = evaluate(move)
                if _feasible(ev, deadline_s, budget):
                    start = ev
                    break
                frontier.append(move)
        if start is None:
            return None
        current = start

    improved = True
    while improved:
        improved = False
        best_move: Optional[ConfigEvaluation] = None
        for move in _neighbours(current.config, spaces):
            ev = evaluate(move)
            if not _feasible(ev, deadline_s, budget):
                continue
            if ev.energy_j < current.energy_j and (
                best_move is None or ev.energy_j < best_move.energy_j
            ):
                best_move = ev
        if best_move is not None:
            current = best_move
            improved = True
    return Recommendation(
        evaluation=current,
        deadline_s=deadline_s,
        evaluated_configs=len(memo),
        strategy="greedy",
    )
