"""The measurement-driven time-energy model (paper Table 2)."""

from repro.model.energy_model import (
    EffectivePowers,
    GroupEnergy,
    JobEnergy,
    PowerDraw,
    dynamic_power_w,
    effective_powers,
    energy_of_execution,
    job_energy,
    peak_power_w,
    power_draw,
)
from repro.model.vectorized import (
    MixEvaluation,
    evaluate_mix_grid,
    per_node_constants,
)
from repro.model.time_model import (
    GroupExecution,
    JobExecution,
    OpTimeBreakdown,
    cluster_service_rate,
    execution_time,
    group_service_rate,
    job_execution,
    node_service_rate,
    op_time_breakdown,
)

__all__ = [
    "OpTimeBreakdown",
    "GroupExecution",
    "JobExecution",
    "op_time_breakdown",
    "node_service_rate",
    "group_service_rate",
    "cluster_service_rate",
    "job_execution",
    "execution_time",
    "EffectivePowers",
    "GroupEnergy",
    "JobEnergy",
    "PowerDraw",
    "effective_powers",
    "energy_of_execution",
    "job_energy",
    "dynamic_power_w",
    "peak_power_w",
    "power_draw",
    "MixEvaluation",
    "evaluate_mix_grid",
    "per_node_constants",
]
