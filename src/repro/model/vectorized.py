"""Vectorised time-energy evaluation over grids of cluster mixes.

The scalar model (:mod:`repro.model.time_model` / ``energy_model``) builds
dataclasses per configuration — perfect for inspection, wasteful for
sweeps: the adaptation policies, frontier computations and sensitivity
studies evaluate thousands of (n_A9, n_K10) mixes where only four numbers
per mix matter.  This module computes those four numbers for whole count
grids at once with NumPy broadcasting.

The derivation collapses nicely because, at a fixed per-type operating
point, each node type contributes a constant service rate ``r_i`` and a
constant busy power ``p_i`` (idle + dynamic):

* ``T_P(n) = ops / sum_i n_i r_i``
* ``P_dyn(n) = sum_i n_i p_dyn,i``;  ``P_idle(n) = sum_i n_i p_idle,i``
* ``E_P(n) = (P_idle(n) + P_dyn(n)) * T_P(n)``

Agreement with the scalar path is property-tested to 1e-9 relative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.hardware.specs import get_node_spec
from repro.model.batched import operating_point_constants
from repro.workloads.base import Workload

__all__ = ["MixEvaluation", "evaluate_mix_grid", "per_node_constants"]


def per_node_constants(
    workload: Workload, node_types: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(rates, idle powers, dynamic powers) per node type at full throttle.

    These are the only per-type quantities the vectorised sweep needs; they
    come from the batched engine's operating-point constants cache — which
    itself derives them from the scalar model's primitives — so the two
    paths cannot drift apart and repeated sweeps pay no recomputation.
    """
    rates = []
    idles = []
    dyns = []
    for name in node_types:
        spec = get_node_spec(name)
        k = operating_point_constants(
            spec, workload.demand_for(name), spec.cores, spec.fmax_hz
        )
        rates.append(k.rate)
        idles.append(k.idle_w)
        dyns.append(k.busy_dyn_w)
    return np.asarray(rates), np.asarray(idles), np.asarray(dyns)


@dataclass(frozen=True)
class MixEvaluation:
    """Vectorised evaluation of a grid of node-count mixes.

    All arrays share the shape of the input count grids.  ``counts`` maps
    node-type name to its count array.
    """

    workload_name: str
    ops_per_job: float
    counts: Mapping[str, np.ndarray]
    tp_s: np.ndarray
    energy_j: np.ndarray
    idle_w: np.ndarray
    dynamic_w: np.ndarray

    @property
    def peak_w(self) -> np.ndarray:
        """Per-mix workload peak power (idle + dynamic)."""
        return self.idle_w + self.dynamic_w

    @property
    def ipr(self) -> np.ndarray:
        """Per-mix idle-to-peak ratio."""
        return self.idle_w / self.peak_w

    def power_at(self, utilisation: float) -> np.ndarray:
        """Per-mix power at one utilisation (the linear-offset curve)."""
        if not 0.0 <= utilisation <= 1.0:
            raise ModelError(f"utilisation must be in [0, 1], got {utilisation}")
        return self.idle_w + utilisation * self.dynamic_w

    def ppr_at(self, utilisation: float) -> np.ndarray:
        """Per-mix PPR at one utilisation (work units per second per watt)."""
        if not 0.0 < utilisation <= 1.0:
            raise ModelError(f"utilisation must be in (0, 1], got {utilisation}")
        peak_ops_rate = self.ops_per_job / self.tp_s
        return utilisation * peak_ops_rate / self.power_at(utilisation)


def evaluate_mix_grid(
    workload: Workload,
    counts: Mapping[str, Sequence[int]],
) -> MixEvaluation:
    """Evaluate every mix of a node-count grid in one broadcasted pass.

    ``counts`` maps node-type names to integer arrays of one common
    broadcastable shape; entries may be zero (type absent) but at least one
    type must be present in every mix.

    >>> a, k = np.meshgrid(np.arange(0, 33), np.arange(0, 13))
    >>> grid = evaluate_mix_grid(repro.workload("EP"), {"A9": a, "K10": k})
    """
    if not counts:
        raise ModelError("need at least one node type")
    names = sorted(counts)
    arrays = [np.asarray(counts[name]) for name in names]
    shape = np.broadcast_shapes(*[a.shape for a in arrays])
    arrays = [np.broadcast_to(a, shape).astype(float) for a in arrays]
    for a in arrays:
        if np.any(a < 0):
            raise ModelError("node counts must be non-negative")
    total_nodes = sum(arrays)
    if np.any(total_nodes == 0):
        raise ModelError("every mix needs at least one node")

    rates, idles, dyns = per_node_constants(workload, names)
    total_rate = sum(a * r for a, r in zip(arrays, rates))
    tp = workload.ops_per_job / total_rate
    idle_w = sum(a * p for a, p in zip(arrays, idles))
    dyn_w = sum(a * p for a, p in zip(arrays, dyns))
    energy = (idle_w + dyn_w) * tp
    return MixEvaluation(
        workload_name=workload.name,
        ops_per_job=workload.ops_per_job,
        counts={name: arr for name, arr in zip(names, arrays)},
        tp_s=tp,
        energy_j=energy,
        idle_w=idle_w,
        dynamic_w=dyn_w,
    )
