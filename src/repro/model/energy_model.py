"""Energy model (paper Table 2, "Energy Performance").

For one job on a configuration, per node of type *i* (all times from the
time model, powers from the node's characterized component envelope scaled by
the workload's activity factors and the DVFS operating point):

* ``E_CPU  = P_CPU,act * T_act + P_CPU,stall * T_stall``
* ``E_mem  = P_mem * T_mem``
* ``E_I/O  = P_I/O * T_I/O``
* ``E_idle = T_i * P_idle``      (baseline power runs for the whole job)

and ``E_P = sum_i n_i * (E_CPU + E_mem + E_I/O + E_idle)``.

The *dynamic* energy (everything except the idle baseline) divided by the
execution time gives the configuration's dynamic power draw while serving the
workload; idle plus dynamic is the workload peak power that normalises every
energy-proportionality curve in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cluster.configuration import ClusterConfiguration, NodeGroup
from repro.errors import ModelError
from repro.model.time_model import JobExecution, job_execution
from repro.workloads.base import Workload, WorkloadDemand

__all__ = [
    "EffectivePowers",
    "GroupEnergy",
    "JobEnergy",
    "effective_powers",
    "job_energy",
    "energy_of_execution",
    "dynamic_power_w",
    "peak_power_w",
    "PowerDraw",
    "power_draw",
]


@dataclass(frozen=True)
class EffectivePowers:
    """Per-component power draw of one node running one workload (watts).

    Component envelopes come from the node's micro-benchmark
    characterization; the workload's activity factors and the CMOS DVFS
    scale factor (for CPU components) reduce them to the effective draw.
    """

    cpu_active_w: float
    cpu_stall_w: float
    memory_w: float
    network_w: float
    idle_w: float


def effective_powers(group: NodeGroup, demand: WorkloadDemand) -> EffectivePowers:
    """Effective per-component powers for one node of ``group``."""
    spec = group.spec
    scale = spec.cpu_power_scale(group.cores, group.frequency_hz)
    act = demand.activity
    return EffectivePowers(
        cpu_active_w=spec.power.cpu_active_w * scale * act.cpu_active,
        cpu_stall_w=spec.power.cpu_stall_w * scale * act.cpu_stall,
        memory_w=spec.power.memory_w * act.memory,
        network_w=spec.power.network_w * act.network,
        idle_w=spec.power.idle_w,
    )


@dataclass(frozen=True)
class GroupEnergy:
    """Energy of one job's share on ONE node of a group (joules)."""

    group: NodeGroup
    e_cpu_act: float
    e_cpu_stall: float
    e_mem: float
    e_io: float
    e_idle: float

    @property
    def e_cpu(self) -> float:
        """CPU energy: active plus stall components."""
        return self.e_cpu_act + self.e_cpu_stall

    @property
    def e_dynamic(self) -> float:
        """Dynamic (above-idle) energy per node."""
        return self.e_cpu + self.e_mem + self.e_io

    @property
    def e_total(self) -> float:
        """Total per-node energy including the idle baseline."""
        return self.e_dynamic + self.e_idle


@dataclass(frozen=True)
class JobEnergy:
    """The energy model's full output for one job on one configuration."""

    workload_name: str
    config: ClusterConfiguration
    tp_s: float
    groups: Tuple[GroupEnergy, ...]

    def group_for(self, node_name: str) -> GroupEnergy:
        """Per-node energy detail for one node type."""
        for ge in self.groups:
            if ge.group.spec.name == node_name:
                return ge
        raise ModelError(f"job energy has no group {node_name!r}")

    @property
    def e_dynamic_j(self) -> float:
        """Cluster-wide dynamic energy for the job (joules)."""
        return sum(ge.e_dynamic * ge.group.count for ge in self.groups)

    @property
    def e_idle_j(self) -> float:
        """Cluster-wide idle-baseline energy during the job (joules)."""
        return sum(ge.e_idle * ge.group.count for ge in self.groups)

    @property
    def e_total_j(self) -> float:
        """Cluster-wide total energy for the job, E_P (joules)."""
        return self.e_dynamic_j + self.e_idle_j

    @property
    def dynamic_power_w(self) -> float:
        """Average dynamic power while the job runs (watts)."""
        return self.e_dynamic_j / self.tp_s

    @property
    def peak_power_w(self) -> float:
        """Cluster power while serving the workload: idle + dynamic (watts).

        This is the per-workload peak that normalises the proportionality
        curves (distinct from the nameplate peak used for power budgets).
        """
        return self.dynamic_power_w + sum(ge.group.idle_w for ge in self.groups)


def energy_of_execution(workload: Workload, execution: JobExecution) -> JobEnergy:
    """Apply the energy model to a time-model result."""
    groups = []
    for ge in execution.groups:
        demand = workload.demand_for(ge.group.spec)
        powers = effective_powers(ge.group, demand)
        groups.append(
            GroupEnergy(
                group=ge.group,
                e_cpu_act=powers.cpu_active_w * ge.t_act,
                e_cpu_stall=powers.cpu_stall_w * ge.t_stall,
                e_mem=powers.memory_w * ge.t_mem,
                e_io=powers.network_w * ge.t_io,
                e_idle=powers.idle_w * execution.tp_s,
            )
        )
    return JobEnergy(
        workload_name=workload.name,
        config=execution.config,
        tp_s=execution.tp_s,
        groups=tuple(groups),
    )


def job_energy(workload: Workload, config: ClusterConfiguration) -> JobEnergy:
    """Run time and energy models for one job of ``workload`` on ``config``."""
    return energy_of_execution(workload, job_execution(workload, config))


def dynamic_power_w(workload: Workload, config: ClusterConfiguration) -> float:
    """Average dynamic power while serving ``workload`` (watts)."""
    return job_energy(workload, config).dynamic_power_w


def peak_power_w(workload: Workload, config: ClusterConfiguration) -> float:
    """Per-workload peak power: idle + dynamic (watts)."""
    return job_energy(workload, config).peak_power_w


@dataclass(frozen=True)
class PowerDraw:
    """Summary power characteristics of (workload, configuration)."""

    idle_w: float
    dynamic_w: float

    @property
    def peak_w(self) -> float:
        """Per-workload peak power (watts)."""
        return self.idle_w + self.dynamic_w

    @property
    def ipr(self) -> float:
        """Idle-to-peak power ratio of this (workload, configuration)."""
        return self.idle_w / self.peak_w


def power_draw(workload: Workload, config: ClusterConfiguration) -> PowerDraw:
    """Idle and dynamic power of ``config`` serving ``workload``."""
    je = job_energy(workload, config)
    return PowerDraw(idle_w=config.idle_w, dynamic_w=je.dynamic_power_w)
