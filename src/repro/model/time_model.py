"""Execution-time model (paper Table 2, "Time Performance").

For a scale-out job of ``O`` work units on a heterogeneous configuration the
paper divides work across node types by *matching execution rates* so that
all nodes finish at the same time (Section II-D).  Per work unit on one node
of type *i* running ``c`` cores at frequency ``f``:

* core time        ``t_core = cycles_core / (c * f)``
* memory time      ``t_mem  = cycles_mem / f``
* CPU time         ``t_CPU  = max(t_core, t_mem)``   (out-of-order overlap)
* I/O time         ``t_I/O  = max(bytes/bandwidth, 1/lambda_I/O)``
* service time     ``t_op   = max(t_CPU, t_I/O)``    (DMA overlaps I/O)

A node's service *rate* is ``1 / t_op`` ops/s; a group of ``n`` identical
nodes serves ``n / t_op`` ops/s; the job's execution time is
``T_P = O / sum_i(n_i / t_op,i)``, and every node is busy for the whole
``T_P`` (the paper's equal-finish work division).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cluster.configuration import ClusterConfiguration, NodeGroup
from repro.errors import ModelError
from repro.workloads.base import Workload, WorkloadDemand

__all__ = [
    "OpTimeBreakdown",
    "GroupExecution",
    "JobExecution",
    "op_time_breakdown",
    "node_service_rate",
    "group_service_rate",
    "cluster_service_rate",
    "job_execution",
    "execution_time",
]


@dataclass(frozen=True)
class OpTimeBreakdown:
    """Per-work-unit service time components on one node (seconds)."""

    t_core: float
    t_mem: float
    t_io: float

    @property
    def t_cpu(self) -> float:
        """CPU time: core and memory overlap out-of-order (max, not sum)."""
        return max(self.t_core, self.t_mem)

    @property
    def t_op(self) -> float:
        """Total service time per op: CPU and DMA-driven I/O overlap."""
        return max(self.t_cpu, self.t_io)

    @property
    def t_act(self) -> float:
        """Time the CPU spends executing work cycles."""
        return self.t_core

    @property
    def t_stall(self) -> float:
        """Time the CPU spends stalled on memory beyond the core overlap."""
        return max(0.0, self.t_mem - self.t_core)

    @property
    def bottleneck(self) -> str:
        """Which resource bounds this op: ``"core"``, ``"mem"`` or ``"io"``."""
        if self.t_io >= self.t_cpu:
            return "io"
        return "core" if self.t_core >= self.t_mem else "mem"


def op_time_breakdown(
    group: NodeGroup, demand: WorkloadDemand
) -> OpTimeBreakdown:
    """Per-op time components for one node of ``group`` under ``demand``."""
    spec = group.spec
    f = group.frequency_hz
    t_core = demand.core_cycles_per_op / (group.cores * f)
    t_mem = demand.mem_cycles_per_op / f
    nic_bytes_per_s = spec.nic_bps / 8.0
    t_io = max(demand.io_bytes_per_op / nic_bytes_per_s, demand.io_service_floor_s)
    return OpTimeBreakdown(t_core=t_core, t_mem=t_mem, t_io=t_io)


def node_service_rate(group: NodeGroup, demand: WorkloadDemand) -> float:
    """Service rate of ONE node of ``group``: work units per second."""
    t_op = op_time_breakdown(group, demand).t_op
    if t_op <= 0:
        raise ModelError(
            f"non-positive per-op time for {group.spec.name}; demand vector is degenerate"
        )
    return 1.0 / t_op


def group_service_rate(group: NodeGroup, demand: WorkloadDemand) -> float:
    """Aggregate service rate of the whole group (ops/s)."""
    return group.count * node_service_rate(group, demand)


def cluster_service_rate(workload: Workload, config: ClusterConfiguration) -> float:
    """Aggregate service rate of a configuration for ``workload`` (ops/s).

    This is the configuration's peak throughput — the numerator of the
    cluster-wide PPR at 100% utilisation.
    """
    return sum(
        group_service_rate(g, workload.demand_for(g.spec)) for g in config.groups
    )


@dataclass(frozen=True)
class GroupExecution:
    """Execution of one job's share on one node group.

    All times are for ONE node of the group; ``ops_per_node`` is that node's
    share of the job's work.
    """

    group: NodeGroup
    ops_per_node: float
    per_op: OpTimeBreakdown

    @property
    def t_core(self) -> float:
        """Total core-active time per node (seconds)."""
        return self.ops_per_node * self.per_op.t_core

    @property
    def t_mem(self) -> float:
        """Total memory time per node (seconds)."""
        return self.ops_per_node * self.per_op.t_mem

    @property
    def t_io(self) -> float:
        """Total network I/O time per node (seconds)."""
        return self.ops_per_node * self.per_op.t_io

    @property
    def t_act(self) -> float:
        """Total CPU work-cycle time per node (seconds)."""
        return self.ops_per_node * self.per_op.t_act

    @property
    def t_stall(self) -> float:
        """Total CPU stall time per node (seconds)."""
        return self.ops_per_node * self.per_op.t_stall

    @property
    def busy_time(self) -> float:
        """Wall-clock busy time of the node for this job (seconds)."""
        return self.ops_per_node * self.per_op.t_op


@dataclass(frozen=True)
class JobExecution:
    """The time model's full output for one job on one configuration."""

    workload_name: str
    config: ClusterConfiguration
    ops_total: float
    tp_s: float
    groups: Tuple[GroupExecution, ...]

    def group_for(self, node_name: str) -> GroupExecution:
        """Per-group execution detail for one node type."""
        for ge in self.groups:
            if ge.group.spec.name == node_name:
                return ge
        raise ModelError(f"job execution has no group {node_name!r}")

    @property
    def throughput_ops_per_s(self) -> float:
        """Job-level throughput: ops per second of execution."""
        return self.ops_total / self.tp_s

    def work_share(self, node_name: str) -> float:
        """Fraction of the job's ops served by one node type."""
        ge = self.group_for(node_name)
        return ge.ops_per_node * ge.group.count / self.ops_total


def job_execution(workload: Workload, config: ClusterConfiguration) -> JobExecution:
    """Run the time model for one job of ``workload`` on ``config``.

    Work is split so all nodes finish together: node of type *i* gets
    ``r_i * T_P`` ops where ``r_i`` is its service rate.
    """
    if workload.ops_per_job <= 0:
        raise ModelError(f"workload {workload.name!r} has no work")
    breakdowns: Dict[str, OpTimeBreakdown] = {}
    total_rate = 0.0
    for g in config.groups:
        demand = workload.demand_for(g.spec)
        per_op = op_time_breakdown(g, demand)
        breakdowns[g.spec.name] = per_op
        total_rate += g.count / per_op.t_op

    tp = workload.ops_per_job / total_rate
    groups = tuple(
        GroupExecution(
            group=g,
            ops_per_node=tp / breakdowns[g.spec.name].t_op,
            per_op=breakdowns[g.spec.name],
        )
        for g in config.groups
    )
    return JobExecution(
        workload_name=workload.name,
        config=config,
        ops_total=workload.ops_per_job,
        tp_s=tp,
        groups=groups,
    )


def execution_time(workload: Workload, config: ClusterConfiguration) -> float:
    """Shorthand for the job execution time T_P (seconds)."""
    return job_execution(workload, config).tp_s
