"""Model validation against the simulated testbed (paper Table 4).

The paper validates its time and energy models by comparing predictions
against measurements on a real heterogeneous cluster, reporting percentage
errors per workload (2-13%).  This module reproduces the full pipeline with
the simulated testbed in place of the physical one:

1. **Power characterization** — micro-benchmarks + simulated power meter
   recover each node type's component powers (measured, not true).
2. **Workload characterization** — the small-input run (``P_s``) on one node
   of each type recovers per-op demands from simulated ``perf`` counters and
   the activity fit from measured energy.
3. **Prediction** — the Table 2 model computes T_P and E_P for the *full*
   job on the validation cluster, using only measured inputs.
4. **Measurement** — the testbed executes the full job (fresh ground-truth
   traces: phase noise, stragglers, overheads, input-size effects) and the
   meters integrate the true energy.
5. **Error** — ``100 * |model - measured| / measured`` for time and energy.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.configuration import ClusterConfiguration, NodeGroup
from repro.errors import ModelError
from repro.hardware.microbench import characterize_node_power
from repro.hardware.node import NonIdealities
from repro.hardware.specs import NodeSpec
from repro.hardware.testbed import Testbed, validation_testbed
from repro.model.energy_model import job_energy
from repro.model.time_model import job_execution, node_service_rate
from repro.util.numerics import relative_error_pct
from repro.util.rng import DEFAULT_SEED, RngRegistry
from repro.workloads.base import Workload
from repro.workloads.characterize import characterize_workload

__all__ = ["ValidationRow", "ValidationPipeline", "validate_workloads"]


@dataclass(frozen=True)
class ValidationRow:
    """One workload's model-vs-measured comparison (a Table 4 row)."""

    workload_name: str
    domain: str
    model_time_s: float
    measured_time_s: float
    model_energy_j: float
    measured_energy_j: float

    @property
    def time_error_pct(self) -> float:
        """Execution-time error in percent."""
        return relative_error_pct(self.model_time_s, self.measured_time_s)

    @property
    def energy_error_pct(self) -> float:
        """Energy error in percent."""
        return relative_error_pct(self.model_energy_j, self.measured_energy_j)


class ValidationPipeline:
    """Characterize once, then validate any number of workloads.

    Parameters
    ----------
    registry:
        RNG registry; a fixed seed makes the whole pipeline reproducible.
    n_wimpy / n_brawny:
        Validation cluster composition (defaults to the paper's Figure 4
        rack: 4 A9 + 1 K10).
    nonideal:
        Second-order-effect magnitudes of the simulated nodes.
    n_jobs:
        Number of measured jobs; the row reports the median measurement,
        damping run-to-run phase noise like repeated physical experiments.
    job_scale:
        Validation runs use ``job_scale`` x the workload's nominal job size.
        The paper's validation experiments run full program inputs (seconds
        to minutes), long enough that fixed dispatch and synchronisation
        overheads are negligible; the nominal job sizes here are tuned for
        the queueing experiments and are much shorter.
    """

    def __init__(
        self,
        registry: Optional[RngRegistry] = None,
        *,
        n_wimpy: int = 4,
        n_brawny: int = 1,
        nonideal: NonIdealities = NonIdealities(),
        n_jobs: int = 3,
        job_scale: float = 64.0,
    ) -> None:
        if n_jobs <= 0:
            raise ModelError(f"n_jobs must be positive, got {n_jobs}")
        if job_scale <= 0:
            raise ModelError(f"job_scale must be positive, got {job_scale}")
        self._registry = registry if registry is not None else RngRegistry(DEFAULT_SEED)
        self._testbed = validation_testbed(
            self._registry, n_wimpy=n_wimpy, n_brawny=n_brawny, nonideal=nonideal
        )
        self._n_jobs = n_jobs
        self._job_scale = job_scale
        self._char_specs: Dict[str, NodeSpec] = {}

    @property
    def testbed(self) -> Testbed:
        """The simulated validation rack."""
        return self._testbed

    def characterized_specs(self) -> Dict[str, NodeSpec]:
        """Measured node specs (power characterization, memoised)."""
        if not self._char_specs:
            for group in self._testbed.config.groups:
                name = group.spec.name
                self._char_specs[name] = characterize_node_power(
                    self._testbed.node_of_type(name),
                    self._testbed.meter_for_type(name),
                )
        return dict(self._char_specs)

    def _model_config(self) -> ClusterConfiguration:
        """The validation cluster built from *characterized* specs."""
        specs = self.characterized_specs()
        groups = tuple(
            NodeGroup(
                spec=specs[g.spec.name],
                count=g.count,
                cores=g.cores,
                frequency_hz=g.frequency_hz,
            )
            for g in self._testbed.config.groups
        )
        return ClusterConfiguration(groups=groups)

    def validate(self, workload: Workload) -> ValidationRow:
        """Run the full validation pipeline for one workload."""
        specs = self.characterized_specs()
        nodes = {
            g.spec.name: self._testbed.node_of_type(g.spec.name)
            for g in self._testbed.config.groups
        }
        meters = {
            name: self._testbed.meter_for_type(name) for name in nodes
        }
        measured_workload, _ = characterize_workload(
            workload,
            nodes,
            meters,
            self._testbed.perf,
            self._registry,
            characterized_specs=specs,
        )

        # Validation runs use the full program input (see job_scale).
        full_job = workload.with_job_size(workload.ops_per_job * self._job_scale)
        predicted_job = measured_workload.with_job_size(full_job.ops_per_job)

        # Model prediction from measured inputs only.
        model_config = self._model_config()
        execution = job_execution(predicted_job, model_config)
        energy = job_energy(predicted_job, model_config)

        # Static work split a deployer derives from the (measured) model:
        # each node's share is its service-rate share.
        rates = {
            g.spec.name: node_service_rate(g, measured_workload.demand_for(g.spec.name))
            for g in model_config.groups
        }
        total_rate = sum(
            rates[g.spec.name] * g.count for g in model_config.groups
        )
        split = {name: rate / total_rate for name, rate in rates.items()}

        times = []
        energies = []
        for j in range(self._n_jobs):
            measured = self._testbed.run_job(full_job, work_split=split, job_index=j)
            times.append(measured.makespan_s)
            energies.append(measured.energy_j)
        return ValidationRow(
            workload_name=workload.name,
            domain=workload.domain,
            model_time_s=execution.tp_s,
            measured_time_s=float(np.median(times)),
            model_energy_j=energy.e_total_j,
            measured_energy_j=float(np.median(energies)),
        )


def validate_workloads(
    workloads: Sequence[Workload],
    *,
    seed: int = DEFAULT_SEED,
    n_wimpy: int = 4,
    n_brawny: int = 1,
    n_jobs: int = 3,
    job_scale: float = 64.0,
) -> List[ValidationRow]:
    """Validate several workloads on one characterized testbed (Table 4)."""
    pipeline = ValidationPipeline(
        RngRegistry(seed),
        n_wimpy=n_wimpy,
        n_brawny=n_brawny,
        n_jobs=n_jobs,
        job_scale=job_scale,
    )
    return [pipeline.validate(w) for w in workloads]
