"""Batched configuration-space engine.

The scalar model (:mod:`repro.model.time_model` / ``energy_model``) builds a
tree of dataclasses per configuration — ideal for inspecting one cluster,
hopeless for sweeping the paper's configuration space (footnote 4: 36,380
configurations for just 10 A9 + 10 K10 nodes).  This module evaluates a whole
enumerated space — varying node counts, active cores *and* DVFS frequency per
type — in one NumPy broadcasted pass.

The collapse that makes this possible: at a fixed per-type operating point
``(cores, frequency)``, one node of type *i* contributes three constants —

* a service rate ``r_i = 1 / t_op,i`` (work units per second),
* a busy dynamic power ``p_dyn,i`` (the equal-finish work division keeps
  every node busy for the whole job, so its dynamic draw is constant), and
* its idle power ``p_idle,i``

— and every quantity of the scalar model follows from sums over groups:

* ``T_P = O / sum_i n_i r_i``
* ``P_peak = sum_i n_i (p_idle,i + p_dyn,i)``
* ``E_P = P_peak * T_P``

The constants are computed ONCE per (workload demand, node type, operating
point) from the scalar-model primitives (:func:`op_time_breakdown`,
:func:`effective_powers`) and memoised in a process-wide cache, so repeated
sweeps — figures, ablations, sensitivity studies, greedy descent — never
recompute them.  Because the constants come from the scalar primitives, the
two paths cannot drift: agreement with the scalar oracle is property-tested
to 1e-9 relative (see ``tests/model/test_batched.py`` and DESIGN.md's
"scalar-oracle contract").

Array results are indexed in exactly the order of
:func:`repro.cluster.configuration.enumerate_configurations`, so callers can
materialise any configuration by index without evaluating it again.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.configuration import (
    ClusterConfiguration,
    NodeGroup,
    TypeSpace,
)
from repro.errors import ModelError
from repro.hardware.specs import NodeSpec
from repro.model.energy_model import effective_powers
from repro.model.time_model import op_time_breakdown
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.workloads.base import Workload, WorkloadDemand

__all__ = [
    "OperatingPointConstants",
    "operating_point_constants",
    "config_constants",
    "SpaceEvaluationArrays",
    "evaluate_space_arrays",
    "DeadlineStaircase",
    "deadline_staircase",
    "clear_constants_cache",
    "constants_cache_size",
]


@dataclass(frozen=True)
class OperatingPointConstants:
    """Per-node constants of one (workload, node type, operating point).

    ``rate`` is the node's service rate (work units/s), ``busy_dyn_w`` its
    dynamic power while serving the workload (constant under the paper's
    equal-finish work division), ``idle_w`` / ``nameplate_w`` the node's
    idle and nameplate-peak powers.
    """

    rate: float
    busy_dyn_w: float
    idle_w: float
    nameplate_w: float


#: Process-wide constants cache.  Keys capture every input the constants
#: depend on (demand vector, activity factors, spec power/DVFS/NIC data and
#: the operating point), so modified specs — e.g. the DVFS study's scaled
#: idle powers — get their own entries instead of stale hits.
_CONSTANTS_CACHE: Dict[tuple, OperatingPointConstants] = {}


def _cache_key(
    spec: NodeSpec, demand: WorkloadDemand, cores: int, frequency_hz: float
) -> tuple:
    return (
        spec.name,
        spec.cores,
        spec.nic_bps,
        spec.power,
        spec.dvfs,
        cores,
        frequency_hz,
        demand.core_cycles_per_op,
        demand.mem_cycles_per_op,
        demand.io_bytes_per_op,
        demand.io_service_floor_s,
        demand.activity,
    )


def clear_constants_cache() -> None:
    """Drop every cached operating-point constant (mainly for tests)."""
    _CONSTANTS_CACHE.clear()


def constants_cache_size() -> int:
    """Number of (workload, type, operating point) entries currently cached."""
    return len(_CONSTANTS_CACHE)


def operating_point_constants(
    spec: NodeSpec,
    demand: WorkloadDemand,
    cores: int,
    frequency_hz: float,
) -> OperatingPointConstants:
    """The three per-node constants, memoised per operating point.

    Derived from the scalar model's own primitives so the batched path and
    the scalar oracle cannot diverge.
    """
    key = _cache_key(spec, demand, cores, frequency_hz)
    cached = _CONSTANTS_CACHE.get(key)
    registry = get_registry()
    if cached is not None:
        if registry.enabled:
            registry.counter(
                "repro_model_constants_cache_hits_total",
                help="Operating-point constants served from the memo cache",
            ).inc()
        return cached
    if registry.enabled:
        registry.counter(
            "repro_model_constants_cache_misses_total",
            help="Operating-point constants computed from scalar primitives",
        ).inc()
    group = NodeGroup(spec=spec, count=1, cores=cores, frequency_hz=frequency_hz)
    per_op = op_time_breakdown(group, demand)
    if per_op.t_op <= 0:
        raise ModelError(
            f"non-positive per-op time for {spec.name}; demand vector is degenerate"
        )
    rate = 1.0 / per_op.t_op
    powers = effective_powers(group, demand)
    e_dyn_per_op = (
        powers.cpu_active_w * per_op.t_act
        + powers.cpu_stall_w * per_op.t_stall
        + powers.memory_w * per_op.t_mem
        + powers.network_w * per_op.t_io
    )
    constants = OperatingPointConstants(
        rate=rate,
        busy_dyn_w=e_dyn_per_op * rate,
        idle_w=spec.power.idle_w,
        nameplate_w=spec.power.nameplate_peak_w,
    )
    _CONSTANTS_CACHE[key] = constants
    return constants


def config_constants(
    workload: Workload, config: ClusterConfiguration
) -> Tuple[float, float, float]:
    """``(total service rate, idle power, dynamic power)`` of one cluster.

    Everything a time-energy evaluation needs, via the constants cache:
    ``T_P = ops / rate`` and ``E_P = (idle + dynamic) * T_P``.
    """
    total_rate = 0.0
    idle_w = 0.0
    dyn_w = 0.0
    for group in config.groups:
        k = operating_point_constants(
            group.spec,
            workload.demand_for(group.spec),
            group.cores,
            group.frequency_hz,
        )
        total_rate += group.count * k.rate
        idle_w += group.count * k.idle_w
        dyn_w += group.count * k.busy_dyn_w
    return total_rate, idle_w, dyn_w


# ----------------------------------------------------------------------
# Whole-space evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class SpaceEvaluationArrays:
    """Every configuration of an enumerated space, evaluated as arrays.

    All arrays have length :attr:`n_configs` and are indexed in the exact
    order of :func:`enumerate_configurations` over the same spaces, so
    ``config_at(i)`` materialises the configuration behind row ``i``.
    ``counts`` maps node-type name to that type's per-configuration node
    count (0 where the type is absent); ``nameplate_w`` is the summed node
    nameplate peak used by power-budget arithmetic.
    """

    workload_name: str
    ops_per_job: float
    spaces: Tuple[TypeSpace, ...]
    tp_s: np.ndarray
    energy_j: np.ndarray
    idle_w: np.ndarray
    dynamic_w: np.ndarray
    nameplate_w: np.ndarray
    counts: Mapping[str, np.ndarray]
    choice_idx: np.ndarray  # (n_types, n_configs); 0 = absent, j>0 = j-th group
    group_lists: Tuple[Tuple[NodeGroup, ...], ...]

    @property
    def n_configs(self) -> int:
        """Number of configurations in the space."""
        return int(self.tp_s.shape[0])

    @property
    def peak_power_w(self) -> np.ndarray:
        """Per-configuration workload peak power: idle + dynamic (watts)."""
        return self.idle_w + self.dynamic_w

    def config_at(self, index: int) -> ClusterConfiguration:
        """Materialise the configuration behind one array row."""
        if not 0 <= index < self.n_configs:
            raise ModelError(
                f"configuration index {index} out of range [0, {self.n_configs})"
            )
        groups = tuple(
            self.group_lists[t][int(j) - 1]
            for t, j in enumerate(self.choice_idx[:, index])
            if j > 0
        )
        return ClusterConfiguration(groups=groups)

    def iter_configs(self) -> Iterator[ClusterConfiguration]:
        """Yield every configuration in array order (= enumeration order)."""
        for i in range(self.n_configs):
            yield self.config_at(i)


def _type_choice_tables(
    space: TypeSpace, demand: WorkloadDemand
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-choice constant tables for one type space.

    Index 0 is the "type absent" choice (all zeros); index ``j > 0`` is the
    ``j``-th entry of :meth:`TypeSpace.groups` (n outer, then cores, then
    frequency — the enumeration order).  Returns
    ``(rate, dynamic_w, idle_w, nameplate_w, count)`` arrays.
    """
    spec = space.spec
    points = [
        (c, f)
        for c in range(1, space.c_max + 1)
        for f in space.frequencies_hz
    ]
    consts = [operating_point_constants(spec, demand, c, f) for c, f in points]
    point_rate = np.array([k.rate for k in consts])
    point_dyn = np.array([k.busy_dyn_w for k in consts])
    counts = np.arange(1, space.n_max + 1, dtype=float)
    n_points = len(points)
    zero = np.zeros(1)
    rate = np.concatenate((zero, np.outer(counts, point_rate).ravel()))
    dyn = np.concatenate((zero, np.outer(counts, point_dyn).ravel()))
    idle = np.concatenate((zero, np.repeat(counts * spec.power.idle_w, n_points)))
    nameplate = np.concatenate(
        (zero, np.repeat(counts * spec.power.nameplate_peak_w, n_points))
    )
    count = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.repeat(np.arange(1, space.n_max + 1), n_points))
    )
    return rate, dyn, idle, nameplate, count


def _choice_indices(sizes: Sequence[int]) -> np.ndarray:
    """Per-type choice indices for every configuration, in enumeration order.

    Returns an ``(n_types, n_configs)`` array where entry ``[t, i]`` is 0
    when type ``t`` is absent from configuration ``i`` and ``j > 0`` for its
    ``j``-th group choice.  Subsets iterate in binary-counter order and
    choices in C order (last type fastest), matching
    :func:`enumerate_configurations` exactly.
    """
    n_types = len(sizes)
    blocks: List[np.ndarray] = []
    for mask in range(1, 1 << n_types):
        selected = [t for t in range(n_types) if mask & (1 << t)]
        shape = tuple(sizes[t] for t in selected)
        n = int(np.prod(shape))
        grid = np.unravel_index(np.arange(n), shape)
        block = np.zeros((n_types, n), dtype=np.int64)
        for dim, t in enumerate(selected):
            block[t] = grid[dim] + 1
        blocks.append(block)
    return np.concatenate(blocks, axis=1)


def evaluate_space_arrays(
    workload: Workload, spaces: Sequence[TypeSpace]
) -> SpaceEvaluationArrays:
    """Evaluate EVERY configuration of an enumerated space in one pass.

    One broadcasted NumPy pass over per-type constant tables replaces the
    per-configuration scalar model; on the paper's 10+10-node space
    (36,380 configurations) this is orders of magnitude faster than the
    scalar loop while agreeing with it to 1e-9 relative (the benchmark
    ``repro.benchmarks.sweep`` records both).
    """
    spaces = tuple(spaces)
    if not spaces:
        raise ModelError("no type spaces supplied")
    names = [s.spec.name for s in spaces]
    if len(set(names)) != len(names):
        raise ModelError(f"duplicate node types in spaces: {names}")

    registry = get_registry()
    t_start = perf_counter() if registry.enabled else 0.0
    with span("model.evaluate_space", workload=workload.name) as sp:
        tables = [
            _type_choice_tables(space, workload.demand_for(space.spec))
            for space in spaces
        ]
        idx = _choice_indices([space.choices for space in spaces])

        total_rate = sum(tables[t][0][idx[t]] for t in range(len(spaces)))
        dyn_w = sum(tables[t][1][idx[t]] for t in range(len(spaces)))
        idle_w = sum(tables[t][2][idx[t]] for t in range(len(spaces)))
        nameplate_w = sum(tables[t][3][idx[t]] for t in range(len(spaces)))
        counts = {names[t]: tables[t][4][idx[t]] for t in range(len(spaces))}

        tp_s = workload.ops_per_job / total_rate
        energy_j = (idle_w + dyn_w) * tp_s
        n_configs = int(tp_s.shape[0])
        sp.set(n_configs=n_configs)
    if registry.enabled:
        registry.counter(
            "repro_model_configs_evaluated_total",
            help="Configurations evaluated by the batched space engine",
        ).inc(n_configs)
        elapsed = perf_counter() - t_start
        if elapsed > 0:
            registry.gauge(
                "repro_model_configs_per_s",
                help="Throughput of the most recent batched space evaluation",
            ).set(n_configs / elapsed)
    group_lists = tuple(tuple(space.groups()) for space in spaces)
    return SpaceEvaluationArrays(
        workload_name=workload.name,
        ops_per_job=workload.ops_per_job,
        spaces=spaces,
        tp_s=tp_s,
        energy_j=energy_j,
        idle_w=idle_w,
        dynamic_w=dyn_w,
        nameplate_w=nameplate_w,
        counts=counts,
        choice_idx=idx,
        group_lists=group_lists,
    )


# ----------------------------------------------------------------------
# Batched multi-query answering
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class DeadlineStaircase:
    """Min-energy-by-deadline index over one evaluated space.

    The exhaustive search answers *one* deadline query with a full argmin
    over the space.  A long-lived service answers *many* deadline queries
    against the same space, so this precomputes the answer staircase once:
    feasible configurations sorted by ascending execution time, with a
    prefix-best winner at every position under exactly the exhaustive
    search's comparator — minimum energy, ties toward the faster
    configuration, then toward enumeration order.  A query is then one
    ``searchsorted`` (O(log n)), and a batch of queries is one vectorized
    ``searchsorted`` over all of them — the ``model.batched`` multi-query
    entry point the serving layer's micro-batcher rides.

    Bit-identity contract: ``best_index(d)`` equals the configuration
    index :func:`repro.cluster.search.recommend_exhaustive` materialises
    for the same deadline and feasibility mask (pinned in
    ``tests/model/test_multiquery.py``), so answers served from a cached
    staircase are byte-identical to a fresh offline sweep.
    """

    #: Feasible execution times, ascending (searchsorted key).
    tp_sorted: np.ndarray
    #: Configuration index (into the originating arrays) of the winner
    #: among the first ``p + 1`` feasible configurations.
    best_idx: np.ndarray

    @property
    def n_feasible(self) -> int:
        """Number of feasible configurations behind the staircase."""
        return int(self.tp_sorted.shape[0])

    def best_index(self, deadline_s: float) -> int:
        """The winning configuration index for one deadline (-1: infeasible).

        Scalar fast path: one ``searchsorted`` call and no array
        round-trips — this sits on the serving layer's per-request hot
        path, where the batch entry point's asarray/where/astype overhead
        would dominate the O(log n) lookup itself.
        """
        d = float(deadline_s)
        if not d > 0.0:  # also catches NaN
            raise ModelError("deadlines must be positive numbers")
        if self.tp_sorted.shape[0] == 0:
            return -1
        pos = int(np.searchsorted(self.tp_sorted, d, side="right")) - 1
        return int(self.best_idx[pos]) if pos >= 0 else -1

    def best_indices(self, deadlines_s: Sequence[float]) -> np.ndarray:
        """Winning configuration indices for a whole batch of deadlines.

        One vectorized ``searchsorted`` pass; entries are -1 where no
        feasible configuration meets the deadline.
        """
        deadlines = np.asarray(deadlines_s, dtype=float)
        if np.any(deadlines <= 0) or np.any(np.isnan(deadlines)):
            raise ModelError("deadlines must be positive numbers")
        if self.tp_sorted.shape[0] == 0:
            return np.full(deadlines.shape, -1, dtype=np.int64)
        pos = np.searchsorted(self.tp_sorted, deadlines, side="right") - 1
        out = np.where(pos >= 0, self.best_idx[np.maximum(pos, 0)], -1)
        return out.astype(np.int64)


def deadline_staircase(
    arrays: SpaceEvaluationArrays,
    feasible_mask: Optional[np.ndarray] = None,
) -> DeadlineStaircase:
    """Build the :class:`DeadlineStaircase` of one evaluated space.

    ``feasible_mask`` restricts the space (e.g. a power budget's
    :meth:`~repro.cluster.budget.PowerBudget.fits_mask`); the staircase
    then answers deadline queries over the restricted space only.
    """
    if feasible_mask is None:
        candidates = np.arange(arrays.n_configs, dtype=np.int64)
    else:
        mask = np.asarray(feasible_mask, dtype=bool)
        if mask.shape != arrays.tp_s.shape:
            raise ModelError(
                f"feasible mask shape {mask.shape} does not match the "
                f"{arrays.n_configs}-configuration space"
            )
        candidates = np.flatnonzero(mask)
    tp = arrays.tp_s[candidates]
    energy = arrays.energy_j[candidates]
    # Ascending time; time-ties stay in enumeration order (stable sort),
    # matching recommend_exhaustive's lexsort tie-breaking exactly.
    order = np.argsort(tp, kind="stable")
    tp_sorted = tp[order]
    energy_sorted = energy[order]
    cand_sorted = candidates[order]
    # Prefix-best under (energy, tp, enumeration index): at each position
    # the winner so far.  Strict energy improvement advances the winner;
    # an energy tie advances only on strictly smaller time (impossible
    # here — times ascend — except for exact time-ties, where the earlier
    # enumeration index must win, i.e. keep the incumbent).
    best_idx = np.empty_like(cand_sorted)
    best_e = math.inf
    best = -1
    for p in range(cand_sorted.shape[0]):
        if energy_sorted[p] < best_e:
            best_e = energy_sorted[p]
            best = cand_sorted[p]
        best_idx[p] = best
    return DeadlineStaircase(tp_sorted=tp_sorted, best_idx=best_idx)
