"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's artefacts and run the library's analyses
without writing any Python:

* ``table {4,5,6,7,8}`` — print one of the paper's tables.
* ``figure <id>`` — render one figure as an ASCII chart (``fig2``,
  ``fig5a``..``fig5c``, ``fig6a``..``fig6c``, ``fig7``..``fig12``);
  ``--csv DIR`` additionally exports the data.
* ``validate`` — run the Table 4 measurement-driven validation pipeline.
* ``validate-mc`` — Monte-Carlo cross-validation of the analytic p95
  claims (exit 1 when any grid cell's analytic value falls outside the
  simulated confidence interval).
* ``report <workload> --mix A9=64,K10=8`` — proportionality + PPR +
  response-time report for one workload on one cluster mix.
* ``recommend <workload> --deadline S`` — search the configuration space
  for the minimum-energy cluster meeting a deadline.
* ``characterize <workload>`` — measured-vs-true Table 1 parameters from
  the simulated testbed.
* ``ablations`` — print every ablation study.
* ``sensitivity`` — print the calibration sensitivity analyses.
* ``schedule`` — replay one autoscaled day through the online scheduler
  (``--policy``, ``--trace``, ``--workload``) and print the timeline;
  ``--json`` emits the full per-interval telemetry stream instead.
* ``robustness`` — re-ask the Table 6 ranking and Fig. 9 contrast under
  the stochastic-process grid (bursty/flash-crowd/diurnal arrivals,
  heavy-tailed services; see :mod:`repro.experiments.robustness`); the
  report is ledgered as a ``repro-robustness/1`` envelope and exits 1
  when the baseline cell stops matching the paper.
* ``profile <command> ...`` — run any other command under instrumentation
  and print a flame summary plus the collected metrics.
* ``obs {record,report,diff,check,watch,compact}`` — the run-ledger
  family: ingest bench envelopes or manual records (``record``), render
  the sparkline trend dashboard (``report`` / ``watch``), statistically
  diff metric histories (``diff``, exit 1 on a regression beyond
  tolerance), evaluate the paper's claim monitors (``check``, exit 1 on
  any red), and archive old records (``compact``).

The top-level ``--seed`` feeds every seeded command (``schedule``,
``validate-mc``, ``robustness``, ``sensitivity``, ``table 4``,
``validate``, ``characterize``); a subcommand's own ``--seed`` takes
precedence when both are given.  The top-level ``--log-level`` configures the ``repro``
logger hierarchy (see :mod:`repro.obs.logs`).

Observability: every command accepts ``--trace-out PATH`` (Chrome-trace
JSON, loadable in ``chrome://tracing``) and ``--metrics-out PATH`` (the
metrics-registry snapshot as JSON).  Either flag runs the command under
:func:`repro.obs.instrumented`; ``profile`` does the same and adds the
human-readable summary.  Both paths get their missing parent directories
created and **overwrite** an existing file — each run's artifact replaces
the last; point different runs at different paths to keep both.

Run ledger: every non-``obs`` subcommand appends one ``repro-run/1``
record (git SHA, seed, config digest, result scalars, wall/CPU time) to
the append-only JSONL store under ``.repro/runs/`` (see
:mod:`repro.obs.ledger`).  ``--no-ledger`` disables recording for one
invocation, ``--ledger-dir DIR`` relocates the store, and the
``REPRO_LEDGER`` / ``REPRO_LEDGER_DIR`` environment variables do the
same globally.  The ``obs`` family itself never appends ``cli/*``
records — reading the ledger must not grow it (``obs check`` writes
``monitor/*`` records, which is its job).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.errors import ReproError
from repro.obs.logs import LOG_LEVELS, configure_logging

__all__ = ["main", "build_parser"]


def _parse_mix(text: str) -> Dict[str, int]:
    """Parse ``"A9=64,K10=8"`` into a mix mapping."""
    mix: Dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise argparse.ArgumentTypeError(
                f"bad mix entry {part!r}; expected NAME=COUNT"
            )
        name, _, count = part.partition("=")
        try:
            mix[name.strip()] = int(count)
        except ValueError:
            raise argparse.ArgumentTypeError(f"bad node count in {part!r}") from None
    if not mix:
        raise argparse.ArgumentTypeError(f"empty mix {text!r}")
    return mix


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    from repro import __version__
    from repro.scheduler.policies import POLICY_NAMES

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Energy proportionality and time-energy performance of "
            "heterogeneous clusters (CLUSTER 2016 reproduction)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed for every seeded command (subcommand --seed wins)",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default=None,
        help="configure the repro logger hierarchy on stderr",
    )
    parser.add_argument(
        "--ledger-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="run-ledger store (default: $REPRO_LEDGER_DIR or .repro/runs)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this run to the run ledger",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared observability flags: any command can dump a Chrome trace and a
    # metrics snapshot of its own run.  A parent parser puts the flags
    # *after* the subcommand, where argparse can still see them when
    # ``profile`` re-parses its REMAINDER.
    obs_parent = argparse.ArgumentParser(add_help=False)
    obs_parent.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "run instrumented; write spans as Chrome-trace JSON to PATH "
            "(parent dirs created, existing file overwritten)"
        ),
    )
    obs_parent.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "run instrumented; write the metrics snapshot as JSON to PATH "
            "(parent dirs created, existing file overwritten)"
        ),
    )

    # Subcommand --seed flags default to SUPPRESS so an omitted flag leaves
    # the top-level value in the namespace instead of clobbering it.
    p_table = sub.add_parser(
        "table", help="print one of the paper's tables", parents=[obs_parent]
    )
    p_table.add_argument("number", type=int, choices=(4, 5, 6, 7, 8))
    p_table.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="root seed for Table 4's pipeline",
    )

    p_fig = sub.add_parser(
        "figure", help="render one of the paper's figures", parents=[obs_parent]
    )
    p_fig.add_argument("name", help="figure id, e.g. fig9 (see repro.experiments)")
    p_fig.add_argument("--csv", type=Path, default=None, help="export data to DIR")

    p_val = sub.add_parser(
        "validate", help="run the Table 4 validation pipeline", parents=[obs_parent]
    )
    p_val.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    p_val.add_argument("--wimpy", type=int, default=4, help="A9 nodes in the rack")
    p_val.add_argument("--brawny", type=int, default=1, help="K10 nodes in the rack")

    p_mc = sub.add_parser(
        "validate-mc",
        help="Monte-Carlo cross-validation of the analytic p95 claims",
        parents=[obs_parent],
    )
    p_mc.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="root seed"
    )
    p_mc.add_argument(
        "--jobs", type=int, default=20_000, help="jobs per replication"
    )
    p_mc.add_argument(
        "--reps", type=int, default=40, help="replications per grid cell"
    )
    p_mc.add_argument(
        "--level", type=float, default=0.99, help="confidence level"
    )
    p_mc.add_argument(
        "--workloads",
        default=None,
        help="comma-separated paper workloads (default: EP,memcached,x264)",
    )
    p_mc.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the MC replications (0 = all CPUs); "
        "the report is bit-identical at any worker count",
    )

    p_rep = sub.add_parser(
        "report", help="analyse one workload on one mix", parents=[obs_parent]
    )
    p_rep.add_argument("workload")
    p_rep.add_argument("--mix", type=_parse_mix, default={"A9": 64, "K10": 8})
    p_rep.add_argument(
        "--utilisation", type=float, default=0.9, help="for the response-time row"
    )

    p_rec = sub.add_parser(
        "recommend", help="search for a deadline-meeting cluster", parents=[obs_parent]
    )
    p_rec.add_argument("workload")
    p_rec.add_argument("--deadline", type=float, required=True, help="seconds")
    p_rec.add_argument("--max-wimpy", type=int, default=16)
    p_rec.add_argument("--max-brawny", type=int, default=4)
    p_rec.add_argument("--budget", type=float, default=None, help="watts")
    p_rec.add_argument(
        "--strategy", choices=("greedy", "exhaustive"), default="greedy"
    )
    p_rec.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the exhaustive search (0 = all CPUs); "
        "the greedy descent is inherently serial and ignores this",
    )

    p_char = sub.add_parser(
        "characterize",
        help="measured-vs-true Table 1 parameters for a workload",
        parents=[obs_parent],
    )
    p_char.add_argument("workload")
    p_char.add_argument("--seed", type=int, default=argparse.SUPPRESS)

    sub.add_parser(
        "ablations", help="print every ablation study", parents=[obs_parent]
    )
    p_sens = sub.add_parser(
        "sensitivity",
        help="print the calibration sensitivity analyses",
        parents=[obs_parent],
    )
    p_sens.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="root seed for the random-perturbation draws",
    )
    p_sens.add_argument(
        "--draws", type=int, default=32, help="random perturbation draws"
    )

    p_sched = sub.add_parser(
        "schedule",
        help="replay one autoscaled day through the online scheduler",
        parents=[obs_parent],
    )
    p_sched.add_argument(
        "--workload", default="EP", help="study workload (EP, memcached, x264)"
    )
    p_sched.add_argument(
        "--policy", choices=POLICY_NAMES, default="ppr-greedy", help="dispatch policy"
    )
    p_sched.add_argument(
        "--trace",
        choices=("diurnal", "constant"),
        default="diurnal",
        help="demand trace shape",
    )
    p_sched.add_argument(
        "--demand",
        type=float,
        default=0.5,
        help="demand fraction for --trace constant",
    )
    p_sched.add_argument(
        "--intervals", type=int, default=24, help="control intervals in the day"
    )
    p_sched.add_argument(
        "--interval-s", type=float, default=20.0, help="control interval length [s]"
    )
    p_sched.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="root seed"
    )
    p_sched.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition the fleet into this many independently-autoscaled "
        "shards (0 = unsharded global dispatch); changes the experiment, "
        "not just its execution",
    )
    p_sched.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes executing the shards (0 = all CPUs); the "
        "sharded result is bit-identical at any worker count",
    )
    p_sched.add_argument(
        "--full",
        action="store_true",
        help="run the full study (all policies, mix contrast) instead of one day",
    )
    p_sched.add_argument(
        "--json",
        action="store_true",
        help="emit the replay as JSON with the full per-interval telemetry stream",
    )

    p_rob = sub.add_parser(
        "robustness",
        help="re-ask the ranking/contrast claims under the process grid",
        parents=[obs_parent],
    )
    p_rob.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="root seed"
    )
    p_rob.add_argument(
        "--workloads",
        default=None,
        help="comma-separated paper workloads (default: EP,memcached,x264,rsa2048)",
    )
    p_rob.add_argument(
        "--arrivals",
        default=None,
        help="comma-separated arrival kinds (default: poisson,mmpp,flash-crowd,diurnal)",
    )
    p_rob.add_argument(
        "--services",
        default=None,
        help="comma-separated service kinds "
        "(default: deterministic,exponential,lognormal,pareto)",
    )
    p_rob.add_argument(
        "--jobs", type=int, default=4000, help="jobs per MC replication"
    )
    p_rob.add_argument(
        "--reps", type=int, default=12, help="MC replications per grid cell"
    )
    p_rob.add_argument(
        "--slo-mult",
        type=float,
        default=None,
        help="p95 SLO as a multiple of the slowest node type's T_P (default 12)",
    )
    p_rob.add_argument(
        "--skip-contrast",
        action="store_true",
        help="skip the Fig. 9 mix-contrast part (ranking grid only)",
    )
    p_rob.add_argument(
        "--skip-replay",
        action="store_true",
        help="skip the scheduler oracle-gap part (ranking grid only)",
    )
    p_rob.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for each cell's MC replications (0 = all "
        "CPUs); the report is bit-identical at any worker count",
    )
    p_rob.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-robustness/1 envelope instead of tables",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the always-on recommendation service (HTTP)",
        parents=[obs_parent],
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=32, help="frontier-cache LRU capacity"
    )
    p_serve.add_argument(
        "--tick-ms", type=float, default=2.0, help="micro-batch coalescing tick [ms]"
    )
    p_serve.add_argument(
        "--slo-p95-ms",
        type=float,
        default=250.0,
        help="p95 response SLO the M/D/1 admission threshold is derived from [ms]",
    )
    p_serve.add_argument(
        "--precompute",
        default="EP",
        help="comma-separated workloads swept into the cache at startup "
        "('' = none)",
    )
    p_serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="stop after this many seconds (default: run until interrupted)",
    )
    p_serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="stop after this many requests (the CI smoke bound)",
    )
    p_serve.add_argument(
        "--trace-sample",
        type=float,
        default=0.05,
        help="routine-traffic request-trace sampling rate in [0, 1] "
        "(errors/sheds/p99 tail are always kept)",
    )
    p_serve.add_argument(
        "--no-request-tracing",
        action="store_true",
        help="disable per-request tracing entirely (burn-rate alerting "
        "and the request-id echo stay on)",
    )
    p_serve.add_argument(
        "--flight-dir",
        type=Path,
        default=None,
        help="flight-recorder dump directory "
        "(default: $REPRO_FLIGHT_DIR or .repro/flight)",
    )
    p_serve.add_argument(
        "--flight-capacity",
        type=int,
        default=64,
        help="fully-traced requests retained for post-mortem dumps",
    )

    p_load = sub.add_parser(
        "loadgen",
        help="drive a seeded open/closed-loop load run against the service",
        parents=[obs_parent],
    )
    p_load.add_argument(
        "--host", default="127.0.0.1", help="target service address"
    )
    p_load.add_argument(
        "--port",
        type=int,
        default=None,
        help="target service port (default: boot a service in-process)",
    )
    p_load.add_argument(
        "--mode", choices=("closed", "open"), default="closed", help="loop mode"
    )
    p_load.add_argument(
        "--clients", type=int, default=8, help="concurrent client connections"
    )
    p_load.add_argument(
        "--requests", type=int, default=200, help="measured /recommend requests"
    )
    p_load.add_argument(
        "--arrival",
        default="poisson",
        help="open-loop arrival process (poisson, mmpp, flash-crowd, diurnal)",
    )
    p_load.add_argument(
        "--rate", type=float, default=200.0, help="open-loop arrival rate [req/s]"
    )
    p_load.add_argument(
        "--workloads",
        default="EP,memcached",
        help="comma-separated workloads the query plan draws from",
    )
    p_load.add_argument("--max-wimpy", type=int, default=6)
    p_load.add_argument("--max-brawny", type=int, default=3)
    p_load.add_argument("--budget", type=float, default=None, help="watts")
    p_load.add_argument(
        "--cold-fraction",
        type=float,
        default=0.0,
        help="fraction of requests given a never-seen digest (forced cold "
        "sweeps — the overload injector for admission/burn-rate drills)",
    )
    p_load.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="query-plan seed"
    )
    p_load.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-serve/1 envelope instead of the summary table",
    )

    p_prof = sub.add_parser(
        "profile",
        help="run any command under instrumentation and print a flame summary",
    )
    p_prof.add_argument("cmd", help="the command to wrap (e.g. schedule)")
    p_prof.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        help="arguments for the wrapped command (including --trace-out/--metrics-out)",
    )

    p_obs = sub.add_parser(
        "obs",
        help="run ledger: record, report, diff, check, watch, compact",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_obs_rec = obs_sub.add_parser(
        "record",
        help="append records: ingest BENCH_*.json envelopes or one manual record",
    )
    p_obs_rec.add_argument(
        "--bench",
        type=Path,
        nargs="+",
        default=None,
        metavar="PATH",
        help="repro-bench/1 envelope(s) to ingest as bench/<name> records",
    )
    p_obs_rec.add_argument(
        "--name", default=None, help="run name for a manual record"
    )
    p_obs_rec.add_argument(
        "--kind",
        choices=("cli", "benchmark", "monitor", "experiment"),
        default="experiment",
        help="kind of the manual record",
    )
    p_obs_rec.add_argument(
        "--scalar",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="result scalar of the manual record (repeatable)",
    )
    p_obs_rec.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="seed of the recorded run"
    )

    p_obs_rep = obs_sub.add_parser(
        "report", help="render the sparkline trend dashboard over the ledger"
    )
    p_obs_rep.add_argument(
        "--names", default=None, help="comma-separated run names (default: all)"
    )
    p_obs_rep.add_argument(
        "--tolerance", type=float, default=0.25, help="drift annotation tolerance"
    )

    p_obs_diff = obs_sub.add_parser(
        "diff",
        help="statistical drift check over ledger history (exit 1 on regression)",
    )
    p_obs_diff.add_argument(
        "--names", default=None, help="comma-separated run names (default: all)"
    )
    p_obs_diff.add_argument(
        "--scalars", default=None, help="comma-separated scalar keys (default: all)"
    )
    p_obs_diff.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative-change tolerance band (default 0.25)",
    )

    p_obs_check = obs_sub.add_parser(
        "check",
        help="evaluate the paper's claim monitors (exit 1 when any goes red)",
    )
    p_obs_check.add_argument(
        "--monitors",
        default=None,
        help="comma-separated monitor names (default: all; see repro.obs.monitors)",
    )
    p_obs_check.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="root seed"
    )
    p_obs_check.add_argument(
        "--no-record",
        action="store_true",
        help="do not append monitor results to the ledger",
    )

    p_obs_watch = obs_sub.add_parser(
        "watch", help="re-render the dashboard every interval"
    )
    p_obs_watch.add_argument(
        "--interval", type=float, default=5.0, help="seconds between renders"
    )
    p_obs_watch.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after N renders (default: run until interrupted)",
    )
    p_obs_watch.add_argument(
        "--names", default=None, help="comma-separated run names (default: all)"
    )
    p_obs_watch.add_argument(
        "--serve",
        default=None,
        metavar="URL",
        help="watch a live service instead of the ledger: poll URL/stats "
        "and stream SLO burn rate + stage-latency breakdown "
        "(e.g. http://127.0.0.1:8080)",
    )

    p_obs_flight = obs_sub.add_parser(
        "flight",
        help="inspect flight-recorder post-mortem dumps",
    )
    p_obs_flight.add_argument(
        "--dir",
        type=Path,
        default=None,
        help="dump directory (default: $REPRO_FLIGHT_DIR or .repro/flight)",
    )
    p_obs_flight.add_argument(
        "--last",
        action="store_true",
        help="show the newest dump in detail (exit 1 when there is none)",
    )
    p_obs_flight.add_argument(
        "--dump",
        type=Path,
        default=None,
        metavar="PATH",
        help="show one specific dump in detail",
    )
    p_obs_flight.add_argument(
        "--json",
        action="store_true",
        help="emit the selected dump's JSON document verbatim",
    )

    p_obs_compact = obs_sub.add_parser(
        "compact",
        help="move records beyond the retention window to the archive",
    )
    p_obs_compact.add_argument(
        "--keep",
        type=int,
        default=None,
        help="records kept per run name (default: 200)",
    )
    return parser


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import report

    if args.number == 4:
        kwargs = {} if args.seed is None else {"seed": args.seed}
        print(report.report_table4(**kwargs))
    else:
        print(getattr(report, f"report_table{args.number}")())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.report import _FIGURES, report_figure

    try:
        print(report_figure(args.name))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.csv is not None:
        figure = _FIGURES[args.name]()
        csv_path, gp_path = figure.save(args.csv, args.name)
        print(f"[data: {csv_path}  plot: {gp_path}]")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.model.validation import validate_workloads
    from repro.util.rng import DEFAULT_SEED
    from repro.util.tables import render_table
    from repro.workloads.suite import paper_workloads

    rows = validate_workloads(
        list(paper_workloads().values()),
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        n_wimpy=args.wimpy,
        n_brawny=args.brawny,
    )
    print(
        render_table(
            ("Domain", "Program", "time err[%]", "energy err[%]"),
            [
                (r.domain, r.workload_name, round(r.time_error_pct, 1), round(r.energy_error_pct, 1))
                for r in rows
            ],
            title=f"Validation on {args.wimpy} A9 + {args.brawny} K10",
        )
    )
    return 0


def _cmd_validate_mc(args: argparse.Namespace) -> int:
    from repro.experiments.validation_mc import (
        VALIDATION_WORKLOADS,
        render_validation_report,
        run_validation,
    )
    from repro.util.rng import DEFAULT_SEED

    workloads = (
        tuple(part.strip() for part in args.workloads.split(",") if part.strip())
        if args.workloads
        else VALIDATION_WORKLOADS
    )
    report = run_validation(
        workloads=workloads,
        n_jobs=args.jobs,
        n_reps=args.reps,
        level=args.level,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        workers=args.workers,
    )
    from repro.experiments.validation_mc import report_scalars

    args._scalars = report_scalars(report)
    print(render_validation_report(report))
    return 0 if report.all_agree else 1


def _cmd_report(args: argparse.Namespace) -> int:
    import repro
    from repro.util.tables import render_kv

    w = repro.workload(args.workload)
    config = repro.ClusterConfiguration.mix(args.mix)
    report = repro.proportionality_report(w, config)
    ppr = repro.ppr_curve(w, config)
    print(
        render_kv(
            {
                "workload": str(w),
                "cluster": config.label(),
                "T_P [s]": repro.execution_time(w, config),
                "E_P [J]": repro.job_energy(w, config).e_total_j,
                "idle [W]": report.idle_w,
                "peak [W]": report.peak_w,
                "DPR [%]": report.dpr,
                "IPR": report.ipr,
                "EPM": report.epm,
                "LDR (paper)": report.ldr_paper,
                "peak PPR": ppr.peak_ppr,
                f"p95 response @ {args.utilisation:.0%} [s]": repro.p95_response_s(
                    w, config, args.utilisation
                ),
            },
            title="Workload report",
        )
    )
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    import repro
    from repro.cluster.search import recommend_exhaustive, recommend_greedy
    from repro.parallel.pool import resolve_workers
    from repro.util.tables import render_kv

    w = repro.workload(args.workload)
    spaces = [
        repro.TypeSpace(repro.get_node_spec("A9"), n_max=args.max_wimpy),
        repro.TypeSpace(repro.get_node_spec("K10"), n_max=args.max_brawny),
    ]
    budget = repro.PowerBudget(args.budget) if args.budget else None
    if args.strategy == "greedy":
        rec = recommend_greedy(w, spaces, deadline_s=args.deadline, budget=budget)
    elif resolve_workers(args.workers) > 1:
        from repro.parallel.search import recommend_parallel

        rec = recommend_parallel(
            w, spaces, deadline_s=args.deadline, budget=budget, workers=args.workers
        )
    else:
        rec = recommend_exhaustive(w, spaces, deadline_s=args.deadline, budget=budget)
    if rec is None:
        print("No configuration meets the deadline (and budget).", file=sys.stderr)
        return 1
    args._scalars = {
        "tp_s": rec.evaluation.tp_s,
        "energy_j": rec.evaluation.energy_j,
        "peak_power_w": rec.evaluation.peak_power_w,
        "evaluated_configs": float(rec.evaluated_configs),
    }
    group = rec.config.groups[0]
    print(
        render_kv(
            {
                "mix": rec.config.label(),
                "operating point": str(rec.config),
                "T_P [s]": rec.evaluation.tp_s,
                "E_P [J]": rec.evaluation.energy_j,
                "peak power [W]": rec.evaluation.peak_power_w,
                "configurations evaluated": rec.evaluated_configs,
                "strategy": rec.strategy,
            },
            title=f"Recommendation for {w.name} (deadline {args.deadline} s)",
        )
    )
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments import ablations
    from repro.util.tables import render_table

    studies = [
        ("Power-curve shape", ablations.curvature_ablation),
        ("Switch power vs substitution ratio", ablations.switch_power_ablation),
        ("Service-time variability", ablations.service_variability_ablation),
        ("Open vs batch arrivals", ablations.open_vs_batch_ablation),
        ("Pooled vs partitioned dispatch", ablations.pooling_ablation),
        ("Static vs dynamic configuration", ablations.adaptation_ablation),
        ("Fork-join straggler penalty", ablations.fork_join_ablation),
        ("KnightShift vs inter-node", ablations.knightshift_ablation),
        ("Batched sweep engine vs scalar oracle", ablations.sweep_engine_ablation),
    ]
    for title, fn in studies:
        headers, rows = fn()
        print(render_table(headers, rows, title=f"Ablation: {title}"))
        print()
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.experiments.report import report_characterization
    from repro.util.rng import DEFAULT_SEED

    print(
        report_characterization(
            args.workload,
            seed=args.seed if args.seed is not None else DEFAULT_SEED,
        )
    )
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.experiments import sensitivity
    from repro.util.rng import DEFAULT_SEED
    from repro.util.tables import render_table

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    for title, fn in (
        ("Sub-linear crossover (EP, 25 A9 : 7 K10)", sensitivity.crossover_sensitivity),
        ("Per-workload PPR winners", sensitivity.conclusion_sensitivity),
        (
            f"Random perturbation draws (seed {seed})",
            lambda: sensitivity.seeded_sensitivity(seed, n_draws=args.draws),
        ),
    ):
        headers, rows = fn()
        print(render_table(headers, rows, title=f"Sensitivity: {title}"))
        print()
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.experiments.scheduling import (
        render_schedule_summary,
        render_scheduling_report,
        replay_day,
        replay_scalars,
        run_scheduling_study,
        schedule_result_json,
        study_scalars,
    )
    from repro.util.rng import DEFAULT_SEED

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    if args.full:
        if args.json:
            raise ReproError("--json covers a single replay; drop --full")
        if args.shards > 1 or (args.workers is not None and args.workers != 1):
            raise ReproError(
                "--full replays every policy x trace cell unsharded; "
                "drop --shards/--workers or run a single replay"
            )
        study = run_scheduling_study(seed)
        args._scalars = study_scalars(study)
        print(render_scheduling_report(study))
        return 0
    result, oracle = replay_day(
        args.workload,
        args.policy,
        trace_kind=args.trace,
        seed=seed,
        n_intervals=args.intervals,
        interval_s=args.interval_s,
        demand=args.demand,
        shards=args.shards,
        workers=args.workers,
    )
    args._scalars = replay_scalars(result, oracle)
    if args.json:
        print(json.dumps(schedule_result_json(result, oracle, seed=seed), indent=2))
    else:
        print(render_schedule_summary(result, oracle))
    return 0


def _split_csv(text: Optional[str]) -> Optional[tuple]:
    if text is None:
        return None
    parts = tuple(part.strip() for part in text.split(",") if part.strip())
    return parts or None


def _cmd_robustness(args: argparse.Namespace) -> int:
    from time import perf_counter, process_time

    from repro.experiments.robustness import (
        DEFAULT_SLO_MULTIPLE,
        ROBUSTNESS_WORKLOADS,
        render_robustness_report,
        robustness_json,
        robustness_scalars,
        run_robustness,
    )
    from repro.queueing.processes import ARRIVAL_KINDS, SERVICE_KINDS
    from repro.util.rng import DEFAULT_SEED

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    t0, c0 = perf_counter(), process_time()
    report = run_robustness(
        seed,
        workloads=_split_csv(args.workloads) or ROBUSTNESS_WORKLOADS,
        arrivals=_split_csv(args.arrivals) or ARRIVAL_KINDS,
        services=_split_csv(args.services) or SERVICE_KINDS,
        slo_multiple=(
            args.slo_mult if args.slo_mult is not None else DEFAULT_SLO_MULTIPLE
        ),
        n_jobs=args.jobs,
        n_reps=args.reps,
        workers=args.workers,
        contrast=not args.skip_contrast,
        replay=not args.skip_replay,
    )
    wall, cpu = perf_counter() - t0, process_time() - c0
    args._scalars = robustness_scalars(report)
    envelope = robustness_json(report)
    _record_robustness_run(args, report, envelope, wall, cpu)
    if args.json:
        print(json.dumps(envelope, indent=2))
    else:
        print(render_robustness_report(report))
    return 0 if report.baseline_match_fraction == 1.0 else 1


def _record_robustness_run(
    args: argparse.Namespace, report, envelope, wall_s: float, cpu_s: float
) -> None:
    """Append the full ``repro-robustness/1`` envelope as an experiment
    record (the routine ``cli/robustness`` record only keeps the scalars)."""
    from repro.obs.ledger import default_ledger, ledger_enabled, new_record

    if getattr(args, "no_ledger", False) or not ledger_enabled():
        return
    record = new_record(
        "experiment",
        "experiment/robustness",
        params={
            "slo_multiple": report.slo_multiple,
            "n_jobs": report.n_jobs,
            "n_reps": report.n_reps,
            "n_cells": len(report.cells),
        },
        scalars=getattr(args, "_scalars", None),
        seed=report.seed,
        wall_s=wall_s,
        cpu_s=cpu_s,
        exit_code=0 if report.baseline_match_fraction == 1.0 else 1,
        extra=envelope,
    )
    try:
        default_ledger(getattr(args, "ledger_dir", None)).append(record)
    except OSError:
        pass


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on service until a stop condition, then record ONE
    ``cli/serve`` summary record — the service's internal queries never
    touch the CLI ledger path (satellite contract: no per-query records)."""
    import asyncio

    from repro.obs import get_registry
    from repro.serve import ReproService, ServeConfig

    # A serving process owns its /metrics endpoint: enable the process
    # registry so the burn-rate gauges and labelled latency histogram are
    # live in a default boot.  Library embeddings keep the off-by-default
    # contract — only the CLI flips the switch, and it restores the prior
    # state on exit so in-process callers (tests) see no global leak.
    registry = get_registry()
    registry_was_enabled = registry.enabled
    registry.enable()

    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_capacity=args.cache_size,
        tick_s=args.tick_ms / 1000.0,
        slo_p95_s=args.slo_p95_ms / 1000.0,
        precompute=tuple(_split_csv(args.precompute) or ()),
        max_requests=args.max_requests,
        request_tracing=not args.no_request_tracing,
        trace_sample=args.trace_sample,
        flight_capacity=args.flight_capacity,
        flight_dir=str(args.flight_dir) if args.flight_dir else None,
    )
    holder: Dict[str, object] = {}

    async def main() -> None:
        service = ReproService(config)
        await service.start()
        print(
            f"[serve] listening on http://{service.host}:{service.port} "
            f"(SLO p95 {config.slo_p95_s * 1e3:g} ms, "
            f"cache {config.cache_capacity}, tick {config.tick_s * 1e3:g} ms)",
            flush=True,
        )
        try:
            await service.run_until_stopped(args.duration)
        finally:
            holder["scalars"] = service.summary_scalars()
            await service.close()

    rc = 0
    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        rc = 130
    finally:
        if not registry_was_enabled:
            registry.disable()
    scalars = holder.get("scalars")
    if scalars is not None:
        args._scalars = scalars
        from repro.util.tables import render_kv

        print(render_kv(dict(scalars), title="Serve summary"))
    return rc


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    from time import perf_counter, process_time

    from repro.serve import ServeConfig
    from repro.serve.loadgen import (
        loadgen_envelope,
        loadgen_scalars,
        run_loadgen,
        selfhosted_loadgen,
    )
    from repro.util.rng import DEFAULT_SEED
    from repro.util.tables import render_kv

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    space = {
        "max_wimpy": args.max_wimpy,
        "max_brawny": args.max_brawny,
        "budget_w": args.budget,
    }
    kwargs = dict(
        mode=args.mode,
        clients=args.clients,
        total_requests=args.requests,
        arrival=args.arrival,
        rate_rps=args.rate,
        workloads=tuple(_split_csv(args.workloads) or ("EP",)),
        space=space,
        seed=seed,
        cold_fraction=args.cold_fraction,
    )
    t0, c0 = perf_counter(), process_time()
    if args.port is not None:
        result = asyncio.run(run_loadgen(args.host, args.port, **kwargs))
        serve_summary = None
    else:
        result, serve_summary = selfhosted_loadgen(ServeConfig(), **kwargs)
    wall, cpu = perf_counter() - t0, process_time() - c0
    args._scalars = loadgen_scalars(result)
    envelope = loadgen_envelope(result, params={**kwargs, "space": space})
    if serve_summary is not None:
        envelope["serve_summary"] = serve_summary
    rc = 0 if result.errors == 0 else 1
    _record_loadgen_run(args, result, envelope, wall, cpu, rc)
    if args.json:
        print(json.dumps(envelope, indent=2))
    else:
        print(
            render_kv(
                {
                    "mode": result.mode,
                    "attempted": result.attempted,
                    "completed": result.completed,
                    "shed (503)": result.shed,
                    "errors": result.errors,
                    "infeasible": result.infeasible,
                    "throughput [req/s]": result.throughput_rps,
                    "p50 latency [ms]": result.p50_s * 1e3,
                    "p95 latency [ms]": result.p95_s * 1e3,
                    "p99 latency [ms]": result.p99_s * 1e3,
                },
                title=f"Loadgen against /recommend (seed {seed})",
            )
        )
    return rc


def _record_loadgen_run(
    args: argparse.Namespace, result, envelope, wall_s: float, cpu_s: float, rc: int
) -> None:
    """Append the ``repro-serve/1`` envelope as an experiment record (the
    routine ``cli/loadgen`` record only keeps the scalars)."""
    from repro.obs.ledger import default_ledger, ledger_enabled, new_record

    if getattr(args, "no_ledger", False) or not ledger_enabled():
        return
    record = new_record(
        "experiment",
        "experiment/serve-loadgen",
        params={
            "mode": result.mode,
            "clients": args.clients,
            "requests": args.requests,
            "arrival": args.arrival,
            "rate": args.rate,
            "workloads": args.workloads,
        },
        scalars=getattr(args, "_scalars", None),
        seed=result.seed,
        wall_s=wall_s,
        cpu_s=cpu_s,
        exit_code=rc,
        extra=envelope,
    )
    try:
        default_ledger(getattr(args, "ledger_dir", None)).append(record)
    except OSError:
        pass


def _parse_scalar_pairs(pairs: Sequence[str]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ReproError(f"bad scalar {pair!r}; expected KEY=VALUE")
        try:
            out[key] = float(value)
        except ValueError:
            raise ReproError(f"bad scalar value in {pair!r}") from None
    return out


def _split_csv(text: Optional[str]) -> Optional[list]:
    if text is None:
        return None
    parts = [p.strip() for p in text.split(",") if p.strip()]
    return parts or None


def _obs_record(args: argparse.Namespace, ledger) -> int:
    from repro.obs.drift import bench_scalars
    from repro.obs.ledger import new_record

    if args.bench is None and args.name is None:
        raise ReproError("obs record needs --bench PATH... or --name NAME")
    if args.bench is not None:
        for path in args.bench:
            try:
                doc = json.loads(Path(path).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise ReproError(f"cannot read bench envelope {path}: {exc}") from None
            benchmark = str(doc.get("benchmark", "")) or "unknown"
            params = {
                k: v
                for k, v in dict(doc.get("params", {})).items()
                if isinstance(v, (str, int, float, bool)) or v is None
            }
            seed = params.get("seed")
            rec = ledger.append(
                new_record(
                    "benchmark",
                    f"bench/{benchmark}",
                    params=params,
                    scalars=bench_scalars(benchmark, doc),
                    seed=seed if isinstance(seed, int) else None,
                )
            )
            print(f"recorded bench/{benchmark} ({rec.run_id}) from {path}")
        return 0
    scalars = _parse_scalar_pairs(args.scalar or [])
    rec = ledger.append(
        new_record(
            args.kind,
            args.name,
            scalars=scalars,
            seed=getattr(args, "seed", None),
        )
    )
    print(f"recorded {rec.name} ({rec.run_id}): {len(scalars)} scalar(s)")
    return 0


def _obs_report(args: argparse.Namespace, ledger) -> int:
    from repro.obs.dashboard import render_dashboard

    print(
        render_dashboard(
            ledger, names=_split_csv(args.names), tolerance=args.tolerance
        )
    )
    return 0


def _obs_diff(args: argparse.Namespace, ledger) -> int:
    from repro.obs.drift import diff_ledger, render_drifts

    drifts = diff_ledger(
        ledger,
        names=_split_csv(args.names),
        scalars=_split_csv(args.scalars),
        tolerance=args.tolerance,
    )
    print(render_drifts(drifts))
    return 1 if any(d.status == "regression" for d in drifts) else 0


def _obs_check(args: argparse.Namespace, ledger) -> int:
    from repro.obs.monitors import render_monitor_report, run_monitors
    from repro.util.rng import DEFAULT_SEED

    results = run_monitors(
        _split_csv(args.monitors),
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        ledger=ledger,
        record=not args.no_record,
    )
    print(render_monitor_report(results))
    return 0 if all(r.passed for r in results) else 1


def _fetch_serve_stats(url: str) -> dict:
    """GET ``url/stats`` and parse the JSON body (stdlib only).

    Module-level so tests can monkeypatch the fetch without a socket.
    """
    from urllib.request import urlopen

    target = url.rstrip("/") + "/stats"
    try:
        with urlopen(target, timeout=5.0) as resp:  # noqa: S310 - user URL
            return json.loads(resp.read().decode("utf-8"))
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot fetch {target}: {exc}") from None


def _obs_watch(args: argparse.Namespace, ledger) -> int:
    import time

    from repro.obs.dashboard import render_dashboard, render_serve_watch

    if args.interval < 0:
        raise ReproError(f"interval must be >= 0, got {args.interval}")
    if args.iterations is not None and args.iterations < 1:
        raise ReproError(f"iterations must be >= 1, got {args.iterations}")
    n = 0
    burn_history: list = []
    try:
        while True:
            if args.serve is not None:
                stats = _fetch_serve_stats(args.serve)
                slo = dict(stats.get("slo") or {})
                burn_history.append(float(slo.get("fast_burn") or 0.0))
                del burn_history[:-64]  # bounded polling history
                print(render_serve_watch(stats, burn_history))
            else:
                print(render_dashboard(ledger, names=_split_csv(args.names)))
            n += 1
            if args.iterations is not None and n >= args.iterations:
                return 0
            print(f"--- refresh in {args.interval:g}s (ctrl-c to stop) ---")
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _obs_flight(args: argparse.Namespace, ledger) -> int:
    from repro.obs.dashboard import render_flight_summary
    from repro.obs.request import list_flight_dumps, load_flight_dump

    directory = args.dir
    if args.dump is not None:
        target = args.dump
    elif args.last:
        dumps = list_flight_dumps(directory)
        if not dumps:
            print("no flight dumps found")
            return 1
        target = dumps[-1]
    else:
        dumps = list_flight_dumps(directory)
        if not dumps:
            print("no flight dumps found")
            return 0
        print(f"{len(dumps)} flight dump(s):")
        for path in dumps:
            try:
                doc = load_flight_dump(path)
            except (OSError, ValueError) as exc:
                print(f"  {path.name}  UNREADABLE: {exc}")
                continue
            slowest = dict(doc.get("slowest") or {})
            print(
                f"  {path.name}  [{doc.get('reason')}]  "
                f"{len(list(doc.get('requests') or []))} request(s)  "
                f"slowest {float(slowest.get('wall_s') or 0.0) * 1e3:.2f} ms"
            )
        return 0
    try:
        doc = load_flight_dump(target)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read flight dump {target}: {exc}") from None
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_flight_summary(doc, path=str(target)))
    return 0


def _obs_compact(args: argparse.Namespace, ledger) -> int:
    from repro.obs.ledger import DEFAULT_RETENTION

    keep = args.keep if args.keep is not None else DEFAULT_RETENTION
    moved = ledger.compact(keep=keep)
    print(
        f"archived {moved} record(s) beyond the newest {keep} per name"
        f" (archive: {ledger.archive_path})"
    )
    return 0


_OBS_COMMANDS = {
    "record": _obs_record,
    "report": _obs_report,
    "diff": _obs_diff,
    "check": _obs_check,
    "watch": _obs_watch,
    "flight": _obs_flight,
    "compact": _obs_compact,
}


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.ledger import default_ledger

    ledger = default_ledger(getattr(args, "ledger_dir", None))
    return _OBS_COMMANDS[args.obs_command](args, ledger)


_COMMANDS = {
    "table": _cmd_table,
    "figure": _cmd_figure,
    "validate": _cmd_validate,
    "validate-mc": _cmd_validate_mc,
    "report": _cmd_report,
    "recommend": _cmd_recommend,
    "ablations": _cmd_ablations,
    "sensitivity": _cmd_sensitivity,
    "characterize": _cmd_characterize,
    "schedule": _cmd_schedule,
    "robustness": _cmd_robustness,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "obs": _cmd_obs,
}

#: Namespace keys that are plumbing, not run configuration — excluded from
#: the ledger record's params (and hence from its config digest).
_NON_CONFIG_KEYS = frozenset(
    {"command", "obs_command", "log_level", "trace_out", "metrics_out",
     "ledger_dir", "no_ledger", "csv",
     # Execution placement, not configuration: results are bit-identical
     # at any worker count, so the config digest must not change with it.
     # (--shards stays in params — sharding changes the experiment.)
     "workers"}
)


def _ledger_params(args: argparse.Namespace) -> Dict[str, object]:
    """The command's configuration as a JSON-able params dict.

    Output paths and plumbing flags are excluded so the config digest
    identifies *what was computed*, not where artifacts landed.
    """
    params: Dict[str, object] = {}
    for key, value in vars(args).items():
        if key.startswith("_") or key in _NON_CONFIG_KEYS:
            continue
        if isinstance(value, Path):
            continue
        if isinstance(value, dict):
            params[key] = {str(k): v for k, v in sorted(value.items())}
        elif isinstance(value, (str, int, float, bool)) or value is None:
            params[key] = value
    return params


def _record_cli_run(
    args: argparse.Namespace, rc: int, wall_s: float, cpu_s: float
) -> None:
    """Append one ``cli/<command>`` record; never fails the command."""
    from repro.obs.ledger import default_ledger, ledger_enabled, new_record

    if getattr(args, "no_ledger", False) or not ledger_enabled():
        return
    record = new_record(
        "cli",
        f"cli/{args.command}",
        params=_ledger_params(args),
        scalars=getattr(args, "_scalars", None),
        seed=getattr(args, "seed", None),
        wall_s=wall_s,
        cpu_s=cpu_s,
        exit_code=rc,
    )
    try:
        default_ledger(getattr(args, "ledger_dir", None)).append(record)
    except OSError:
        pass


def _run_command(args: argparse.Namespace, *, summary: bool = False) -> int:
    """Dispatch one parsed command, instrumenting when artifacts are asked
    for and appending the run to the ledger (``obs`` family excluded —
    reading the ledger must not grow it)."""
    from time import perf_counter, process_time

    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    record = args.command != "obs"
    t0, c0 = perf_counter(), process_time()
    if trace_out is None and metrics_out is None and not summary:
        rc = _COMMANDS[args.command](args)
        if record:
            _record_cli_run(args, rc, perf_counter() - t0, process_time() - c0)
        return rc

    from repro.obs import get_registry, get_tracer, instrumented

    with instrumented():
        rc = _COMMANDS[args.command](args)
    wall, cpu = perf_counter() - t0, process_time() - c0
    if trace_out is not None:
        get_tracer().write_chrome_trace(trace_out)
        print(f"[trace: {trace_out}]", file=sys.stderr)
    if metrics_out is not None:
        get_registry().write_json(metrics_out)
        print(f"[metrics: {metrics_out}]", file=sys.stderr)
    if summary:
        print()
        print(get_tracer().render_flame())
        prom = get_registry().to_prometheus()
        if prom:
            print()
            print(prom, end="")
    if record:
        _record_cli_run(args, rc, wall, cpu)
    return rc


def _cmd_profile(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    inner = parser.parse_args([args.cmd] + list(args.rest))
    if inner.command == "profile":
        raise ReproError("profile cannot wrap itself")
    # Propagate the outer --seed unless the wrapped command set its own.
    if args.seed is not None and getattr(inner, "seed", None) is None:
        inner.seed = args.seed
    # Ledger flags live before the subcommand, so the wrapped parse never
    # sees the outer values; carry them over.
    inner.no_ledger = args.no_ledger
    inner.ledger_dir = args.ledger_dir
    return _run_command(inner, summary=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        configure_logging(args.log_level)
    try:
        if args.command == "profile":
            return _cmd_profile(args, parser)
        return _run_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0
