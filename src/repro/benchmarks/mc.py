"""Benchmark: vectorized Monte-Carlo engine vs the scalar DES loop.

Times the *simulate phase* — drawing one replication's randomness and
producing its waiting times — for two scenarios at ``n_jobs`` jobs x
``n_reps`` replications:

* **md1** — deterministic service (the paper's M/D/1 queue).  The scalar
  arm is :class:`repro.queueing.des.QueueSimulator` with
  ``engine="scalar"``: NumPy arrival sampling plus the loop-carried
  recursion.
* **service_model** — exponential service (M/M/1).  The scalar arm is the
  DES's original general-service contract: one Python
  :data:`~repro.queueing.des.ServiceModel` call *per job*, then the scalar
  loop.  The vectorized arm replaces both with batched draws and the
  Lindley kernel — this is the scenario the >= 100x engine contract is
  pinned on, because per-job Python sampling is exactly what capped the
  replication counts before.

The scalar arms are too slow to run all ``n_reps`` replications
(~10 s for the service-model arm alone), so each is timed over
``scalar_reps`` replications and extrapolated linearly — per-replication
cost is constant, and the JSON records both the measured and the
extrapolated figures.  Alongside the timings the benchmark verifies the
engine's correctness contract: the span-normalised vectorized-vs-scalar
kernel agreement (<= 1e-12) on shared inputs, and the full
analytic-vs-simulated validation grid of
:mod:`repro.experiments.validation_mc`.

A note on the 100x target.  The issue that introduced this engine asked
for a >= 100x speedup at 1e5 jobs x 100 replications.  On a single-core
container that target is arithmetically out of reach for *any* correct
implementation: the scalar loop costs ~300 ns/job, while one sequential
memory pass over 1e5 float64s costs ~5 ns/element — and the vectorized
pipeline needs several such passes (sampling, cumsum, running max), so
its floor is ~15-25 ns/job, capping the ratio around 15-60x depending on
machine state.  Reaching 100x requires parallel replications across
cores, which the spawn-based generator streams support by construction
but a 1-CPU container cannot exercise.  The JSON therefore records the
honest measured ratio next to the aspirational target and a
``target_met`` flag instead of silently asserting it.  Run as a console
entry::

    python -m repro.benchmarks.mc [--output BENCH_mc.json]

"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.obs import get_registry, instrumented
from repro.obs.timer import bench_envelope, measure, timed, write_bench_json
from repro.parallel.pool import resolve_workers
from repro.queueing.des import QueueSimulator
from repro.queueing.mc import (
    MonteCarloQueue,
    exponential_service,
    lindley_waits,
    scalar_lindley_waits,
    waits_agreement,
)
from repro.queueing.arrivals import PoissonArrivals
from repro.util.rng import DEFAULT_SEED

__all__ = ["run_benchmark", "main"]

#: The engines' agreement contract: span-normalised max deviation.
AGREEMENT_CONTRACT = 1e-12

#: Default scenario shape — the ISSUE's 1e5 jobs x 100 replications.
DEFAULT_N_JOBS = 100_000
DEFAULT_N_REPS = 100

#: The aspirational speedup target (see the module docstring for why a
#: single-core container cannot reach it) and the floors the benchmark
#: harness actually pins, chosen with 2x headroom for machine-state swings.
TARGET_SPEEDUP = 100.0
FLOOR_SPEEDUP = {"md1": 5.0, "service_model": 12.0}

_UTILISATION = 0.7
_SERVICE_S = 1.0


def _scalar_des_seconds(
    queue: MonteCarloQueue,
    n_jobs: int,
    scalar_reps: int,
    *,
    service_model: bool,
) -> float:
    """Time ``scalar_reps`` replications of the scalar DES engine.

    Each replication is a fresh :class:`QueueSimulator` fed from the same
    spawned generator stream the vectorized engine uses, so both arms solve
    statistically identical problems.
    """
    rngs = queue.spawn_generators(scalar_reps)
    with timed() as elapsed:
        for rng in rngs:
            if service_model:
                sim = QueueSimulator(
                    PoissonArrivals(queue.arrival_rate, rng),
                    lambda r: float(r.exponential(_SERVICE_S)),
                    rng,
                    engine="scalar",
                )
            else:
                sim = QueueSimulator(
                    PoissonArrivals(queue.arrival_rate, rng),
                    _SERVICE_S,
                    engine="scalar",
                )
            sim.run_jobs(n_jobs)
    return elapsed()


def _kernel_agreement(
    queue: MonteCarloQueue, n_jobs: int, reps: int
) -> float:
    """Worst span-normalised vectorized-vs-scalar deviation on shared inputs."""
    worst = 0.0
    for rng in queue.spawn_generators(reps):
        arrivals = np.cumsum(
            rng.standard_exponential(n_jobs) / queue.arrival_rate
        )
        if queue.service_time_s is not None:
            services: object = queue.service_time_s
        else:
            services = rng.exponential(_SERVICE_S, n_jobs)
        vec = lindley_waits(arrivals, services)
        ora = scalar_lindley_waits(arrivals, services)
        worst = max(worst, waits_agreement(vec, ora, arrivals, services))
    return worst


def _scenario(
    queue: MonteCarloQueue,
    n_jobs: int,
    n_reps: int,
    scalar_reps: int,
    agreement_reps: int,
    *,
    service_model: bool,
    workers: int = 1,
) -> Dict[str, object]:
    """Time one scenario and check its agreement contract."""
    _, t_vec = measure(
        lambda: queue.simulate_waits(n_jobs, n_reps), repeats=1, warmup=0
    )
    vectorized_s = t_vec.best_s

    _, t_stats = measure(lambda: queue.run(n_jobs, n_reps), repeats=1, warmup=0)
    with_stats_s = t_stats.best_s

    scalar_measured_s = _scalar_des_seconds(
        queue, n_jobs, scalar_reps, service_model=service_model
    )
    scalar_extrapolated_s = scalar_measured_s * (n_reps / scalar_reps)
    agreement = _kernel_agreement(queue, n_jobs, agreement_reps)

    timings: Dict[str, object] = {
        "vectorized": vectorized_s,
        "vectorized_with_stats": with_stats_s,
        "scalar_measured": scalar_measured_s,
        "scalar_reps_measured": scalar_reps,
        "scalar_extrapolated": scalar_extrapolated_s,
    }
    speedup: Dict[str, object] = {
        "simulate_phase": scalar_extrapolated_s / vectorized_s,
        "with_stats": scalar_extrapolated_s / with_stats_s,
        "target": TARGET_SPEEDUP,
        "target_met": scalar_extrapolated_s / vectorized_s >= TARGET_SPEEDUP,
    }
    if workers > 1:
        _, t_par = measure(
            lambda: queue.run(n_jobs, n_reps, workers=workers),
            repeats=1,
            warmup=0,
        )
        timings["parallel_with_stats"] = t_par.best_s
        speedup["with_stats_parallel"] = scalar_extrapolated_s / t_par.best_s
        # With multiple cores the 100x target may be met by either arm.
        speedup["target_met"] = bool(
            speedup["target_met"]
            or scalar_extrapolated_s / t_par.best_s >= TARGET_SPEEDUP
        )
    return {
        "utilisation": _UTILISATION,
        "service": "exponential" if service_model else "deterministic",
        "timings_s": timings,
        "speedup": speedup,
        "agreement": {
            "max_span_normalised": agreement,
            "contract": AGREEMENT_CONTRACT,
            "reps_checked": agreement_reps,
        },
    }


def _parallel_bit_identity(
    queue: MonteCarloQueue, n_jobs: int, n_reps: int, workers: int
) -> bool:
    """Whether ``workers``-way and serial runs agree bit-for-bit on a
    reduced shape (the contract the parallel layer pins; cheap to verify
    inside the benchmark so every envelope carries the evidence)."""
    serial = queue.run(n_jobs, n_reps)
    par = queue.run(n_jobs, n_reps, workers=workers)
    return bool(
        np.array_equal(serial.response_percentiles_s, par.response_percentiles_s)
        and np.array_equal(serial.mean_response_s, par.mean_response_s)
        and np.array_equal(serial.mean_wait_s, par.mean_wait_s)
        and np.array_equal(serial.utilisation, par.utilisation)
    )


def run_benchmark(
    n_jobs: int = DEFAULT_N_JOBS,
    n_reps: int = DEFAULT_N_REPS,
    *,
    scalar_reps: int = 4,
    agreement_reps: int = 3,
    seed: int = DEFAULT_SEED,
    validation_jobs: int = 20_000,
    validation_reps: int = 40,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """Run both scenarios plus the validation grid; return a JSON dict in
    the shared ``repro-bench/1`` envelope.

    ``workers`` adds a parallel arm to each scenario's timings (the
    replication fan-out of :mod:`repro.parallel.mc`), feeds the validation
    grid, and is recorded in ``params`` next to ``cpus_available`` so
    envelopes from different worker counts are never compared as equals.
    """
    if n_jobs <= 0 or n_reps <= 0:
        raise ReproError("n_jobs and n_reps must be positive")
    scalar_reps = min(max(scalar_reps, 1), n_reps)
    n_workers = resolve_workers(workers)

    md1 = MonteCarloQueue.from_utilisation(_UTILISATION, _SERVICE_S, seed=seed)
    mm1 = MonteCarloQueue(
        _UTILISATION / _SERVICE_S, exponential_service(_SERVICE_S), seed=seed
    )
    with timed() as elapsed:
        scenarios = {
            "md1": _scenario(
                md1, n_jobs, n_reps, scalar_reps, agreement_reps,
                service_model=False, workers=n_workers,
            ),
            "service_model": _scenario(
                mm1, n_jobs, n_reps, scalar_reps, agreement_reps,
                service_model=True, workers=n_workers,
            ),
        }

        from repro.experiments.validation_mc import run_validation

        report = run_validation(
            n_jobs=validation_jobs,
            n_reps=validation_reps,
            seed=seed,
            workers=n_workers if n_workers > 1 else None,
        )
    import os

    parallel: Optional[Dict[str, object]] = None
    if n_workers > 1:
        check_jobs, check_reps = min(n_jobs, 10_000), min(n_reps, 8)
        parallel = {
            "workers": n_workers,
            "bit_identical": _parallel_bit_identity(
                md1, check_jobs, check_reps, n_workers
            ),
            "checked": {"n_jobs": check_jobs, "n_reps": check_reps},
        }

    # One short instrumented reduction feeds the metrics sidecar
    # (replication/job counters, buffer reuses); timed separately above.
    with instrumented():
        md1.run(min(n_jobs, 10_000), min(n_reps, 8))
        metrics = get_registry().snapshot()

    extra: Dict[str, object] = {}
    if parallel is not None:
        extra["parallel"] = parallel
    return bench_envelope(
        "mc",
        {
            "n_jobs": n_jobs,
            "n_reps": n_reps,
            "scalar_reps": scalar_reps,
            "seed": seed,
            "workers": n_workers,
            "cpus_available": os.cpu_count(),
        },
        {"total": elapsed()},
        note=(
            "serial speedups are single-core; the 100x target needs "
            "parallel replications across cores — the workers>1 arm "
            "(speedup.with_stats_parallel) measures exactly that "
            "(see repro/benchmarks/mc.py docstring)"
        ),
        scenarios=scenarios,
        validation={
            "cells": len(report.cells),
            "flagged": len(report.flagged),
            "all_agree": report.all_agree,
            "agreement_fraction": report.agreement_fraction,
            "level": report.level,
            "n_jobs": validation_jobs,
            "n_reps": validation_reps,
        },
        metrics=metrics,
        **extra,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point: run the MC benchmark and write JSON."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchmarks.mc",
        description="Time the vectorized Monte-Carlo engine vs the scalar DES loop.",
    )
    parser.add_argument("--jobs", type=int, default=DEFAULT_N_JOBS)
    parser.add_argument("--reps", type=int, default=DEFAULT_N_REPS)
    parser.add_argument(
        "--scalar-reps",
        type=int,
        default=4,
        help="replications to actually time on the scalar arms",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for the parallel replication arm "
            "(0 = all CPUs); results stay bit-identical at any value"
        ),
    )
    parser.add_argument(
        "--output",
        default="BENCH_mc.json",
        help="result JSON path (default: ./BENCH_mc.json)",
    )
    args = parser.parse_args(argv)

    try:
        result = run_benchmark(
            args.jobs,
            args.reps,
            scalar_reps=args.scalar_reps,
            workers=args.workers,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sidecar = write_bench_json(args.output, result)

    for name, sc in result["scenarios"].items():
        t = sc["timings_s"]
        s = sc["speedup"]
        a = sc["agreement"]
        parallel_note = (
            f", parallel {s['with_stats_parallel']:.0f}x"
            if "with_stats_parallel" in s
            else ""
        )
        print(
            f"{name:14s} vectorized {t['vectorized']:.3f} s, scalar "
            f"{t['scalar_extrapolated']:.1f} s (extrapolated from "
            f"{t['scalar_reps_measured']} reps) -> "
            f"{s['simulate_phase']:.0f}x{parallel_note} "
            f"(target {s['target']:.0f}x met: {s['target_met']}); "
            f"agreement {a['max_span_normalised']:.2e}"
        )
    v = result["validation"]
    print(
        f"validation grid: {v['cells']} cells, {v['flagged']} flagged "
        f"({'all agree' if v['all_agree'] else 'DISAGREEMENT'})"
    )
    par = result.get("parallel")
    if par:
        print(
            f"parallel arm: {par['workers']} workers, bit-identical to "
            f"serial: {par['bit_identical']}"
        )
    print(f"wrote {args.output}" + (f" (+ {sidecar})" if sidecar else ""))
    return 0


if __name__ == "__main__":  # pragma: no cover - console entry
    sys.exit(main())
